package contender

import (
	"fmt"
	"io"
	"os"
	"time"

	"contender/internal/core"
	"contender/internal/experiments"
	"contender/internal/obs"
)

// Predictor is a trained Contender instance: reference QS models for every
// sampled MPL plus the knowledge base of isolated statistics.
type Predictor struct {
	inner *core.Predictor
	env   *experiments.Env
}

// MPLs returns the multiprogramming levels the predictor was trained for.
func (p *Predictor) MPLs() []int { return p.inner.MPLs() }

// SetObserver installs (or, with nil, removes) the observer that
// receives this predictor's serve.* spans. Predictors trained with
// WithObserver or TrainConfig.Observer inherit the training observer
// automatically; SetObserver exists for predictors loaded from a
// snapshot and for swapping observers at runtime. Without an observer
// the serving hot path performs no clock reads and no allocations.
func (p *Predictor) SetObserver(o Observer) { p.inner.SetObserver(o) }

// Observer returns the predictor's serving observer (nil when none).
func (p *Predictor) Observer() Observer { return p.inner.Observer() }

// SetQuality installs (or, with nil, removes) the prediction-quality
// aggregator that Feedback streams into. Predictors trained with
// WithQuality or TrainConfig.Quality inherit it automatically;
// SetQuality exists for predictors loaded from a snapshot and for
// swapping aggregators at runtime. The aggregation is entirely off the
// uninstrumented serving path.
func (p *Predictor) SetQuality(q *Quality) { p.inner.SetQuality(q) }

// Quality returns the installed quality aggregator (nil when none).
func (p *Predictor) Quality() *Quality { return p.inner.Quality() }

// QualityReport snapshots the installed quality aggregator; an empty
// report without one.
func (p *Predictor) QualityReport() QualityReport { return p.inner.QualityReport() }

// Feedback closes the prediction loop: it pairs an observed latency for
// (template, concurrent) with the prediction the pipeline serves for
// that mix, records the signed relative error in the quality aggregator
// (when one is installed), and reports the template's drift state.
// With an observer installed it also emits quality.feedback and
// quality.drift points. The warm path performs no heap allocations.
func (p *Predictor) Feedback(template int, concurrent []int, observedLatency float64) (FeedbackResult, error) {
	return p.inner.Feedback(template, concurrent, observedLatency)
}

// PredictKnown estimates the steady-state latency of a known template
// executing concurrently with the given templates (the mix's MPL is
// len(concurrent)+1). The pipeline is the paper's: compute the mix's CQI,
// apply the template's QS model, scale by its measured performance
// continuum.
func (p *Predictor) PredictKnown(template int, concurrent []int) (float64, error) {
	return p.inner.PredictKnown(template, concurrent)
}

// CQI returns the Concurrent Query Intensity of a mix from the primary's
// point of view — the fraction of time the concurrent queries will spend
// competing with it for the I/O bus (Eq. 5 of the paper). The primary must
// be a known template; use CQIForStats for ad-hoc primaries.
func (p *Predictor) CQI(primary int, concurrent []int) float64 {
	o := p.inner.Observer()
	if o == nil {
		return p.inner.Know.CQI(primary, concurrent)
	}
	start := time.Now()
	r := p.inner.Know.CQI(primary, concurrent)
	obs.Emit(o, Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanServeCQI,
		Template: primary,
		MPL:      len(concurrent) + 1,
		Value:    r,
		Dur:      time.Since(start),
	})
	return r
}

// CQIForStats computes the mix's CQI for an ad-hoc primary described by
// its isolated statistics (the concurrent templates must be known).
func (p *Predictor) CQIForStats(primary TemplateStats, concurrent []int) float64 {
	return p.inner.Know.CQIForStats(primary, concurrent)
}

// PredictBuffer holds the reusable scratch space of PredictBatch. The zero
// value is ready to use; reusing one buffer across calls keeps the serving
// hot path allocation-free.
type PredictBuffer = core.PredictBuffer

// PredictBatch predicts the primary's latency under every mix, appending
// into buf's storage and returning the filled slice (valid until the next
// call with the same buffer). With a primed predictor the call performs no
// heap allocations.
func (p *Predictor) PredictBatch(buf *PredictBuffer, primary int, mixes [][]int) ([]float64, error) {
	return p.inner.PredictBatch(buf, primary, mixes)
}

// ExplainBuffer receives one Explain decomposition: the served
// prediction, the zero-contention baseline, and each concurrent
// template's additive share of the interaction (intensity and predicted
// seconds). The zero value is ready; reusing one buffer keeps the
// explain path allocation-free.
type ExplainBuffer = core.ExplainBuffer

// Explain is PredictKnown plus blame attribution: it writes the
// per-neighbor decomposition of the interaction cost into buf. The
// returned latency (and buf.Total) is bit-identical to PredictKnown for
// the same arguments — the decomposition records the terms of the same
// CQI summation in the same order rather than recomputing anything.
func (p *Predictor) Explain(buf *ExplainBuffer, primary int, concurrent []int) (float64, error) {
	return p.inner.PredictExplain(buf, primary, concurrent)
}

// Prime forces construction of the internal prediction index so the first
// PredictKnown/PredictBatch call doesn't pay the one-time build cost.
func (p *Predictor) Prime() { p.inner.Prime() }

// QSModelFor returns the reference QS model of a known template at an MPL.
func (p *Predictor) QSModelFor(template, mpl int) (QSModel, bool) {
	refs, ok := p.inner.References(mpl)
	if !ok {
		return QSModel{}, false
	}
	return refs.Model(template)
}

// NewTemplateMode selects how PredictNew fills in an ad-hoc template's
// spoiler latency.
type NewTemplateMode int

const (
	// SpoilerMeasured uses measured spoiler latencies from the template's
	// stats (linear-time sampling: one spoiler run per MPL).
	SpoilerMeasured NewTemplateMode = iota
	// SpoilerKNN predicts spoiler latencies from the template's isolated
	// statistics via KNN over known templates (constant-time sampling:
	// a single isolated execution suffices).
	SpoilerKNN
)

// PredictNew estimates the latency of a template that was never sampled
// under concurrency, reproducing Figure 5: the QS model is estimated from
// the reference models via the template's isolated latency, and the
// spoiler latency is either measured (SpoilerMeasured) or predicted
// (SpoilerKNN).
func (p *Predictor) PredictNew(t TemplateStats, concurrent []int, mode NewTemplateMode) (float64, error) {
	opts := core.NewTemplateOptions{}
	if mode == SpoilerKNN {
		knn, err := core.NewKNNSpoilerPredictor(p.inner.Know, 3)
		if err != nil {
			return 0, fmt.Errorf("contender: building spoiler predictor: %w", err)
		}
		opts.Spoiler = knn
	}
	return p.inner.PredictNew(t, concurrent, opts)
}

// PredictSpoiler predicts the worst-case (spoiler) latency of an ad-hoc
// template at an MPL from its isolated statistics alone.
func (p *Predictor) PredictSpoiler(t TemplateStats, mpl int) (float64, error) {
	knn, err := core.NewKNNSpoilerPredictor(p.inner.Know, 3)
	if err != nil {
		return 0, err
	}
	return core.PredictSpoilerLatency(knn, t, mpl)
}

// Knowledge exposes the underlying knowledge base for advanced use
// (inspection, custom experiments).
func (p *Predictor) Knowledge() *core.Knowledge { return p.inner.Know }

// ProgressTracker is a concurrency-aware query progress indicator — one of
// the paper's motivating applications. See Predictor.TrackProgress.
type ProgressTracker = core.ProgressTracker

// TrackProgress returns a progress indicator for one execution of a known
// template. Feed it the observed timeline with Advance(dt, concurrent);
// Remaining(concurrent) estimates the time to completion under the current
// mix. Isolation (no concurrent queries) uses the template's isolated
// latency directly.
func (p *Predictor) TrackProgress(template int) (*ProgressTracker, error) {
	stats, ok := p.inner.Know.Template(template)
	if !ok {
		return nil, fmt.Errorf("contender: template %d: %w", template, ErrUnknownTemplate)
	}
	return core.NewProgressTracker(func(concurrent []int) (float64, error) {
		if len(concurrent) == 0 {
			return stats.IsolatedLatency, nil
		}
		return p.PredictKnown(template, concurrent)
	}), nil
}

// Save serializes the trained predictor to w as JSON, so training cost is
// paid once and reused across processes. Reload with LoadPredictor.
func (p *Predictor) Save(w io.Writer) error {
	return p.inner.WriteSnapshot(w)
}

// SaveFile writes the predictor snapshot to a file.
func (p *Predictor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("contender: creating snapshot: %w", err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Close()
}
