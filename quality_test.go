package contender

import (
	"errors"
	"math"
	"testing"
)

// TestQualityFeedbackLoop closes the loop on the workbench path:
// WithQuality installs the aggregator, Train hands it to the predictor,
// Feedback streams an observed latency through it, and both
// QualitySnapshot and the observer event stream see the sample.
func TestQualityFeedbackLoop(t *testing.T) {
	q := NewQuality(DriftConfig{})
	rec := NewRecordingObserver()
	wb, err := NewWorkbench(quickObsOptions(WithObserver(rec), WithQuality(q))...)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := wb.Train()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Quality() != q {
		t.Fatal("Train did not hand the workbench aggregator to the predictor")
	}

	mix := []int{26, 62}
	truth, err := wb.Simulate(mix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pred.Feedback(mix[0], mix[1:], truth[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed != truth[0] || res.Predicted <= 0 {
		t.Fatalf("feedback result: %+v", res)
	}
	if math.IsNaN(res.SignedError) || res.State != DriftHealthy || res.Transitioned {
		t.Fatalf("one accurate sample should leave the template healthy: %+v", res)
	}

	rep, ok := wb.QualitySnapshot()
	if !ok {
		t.Fatal("QualitySnapshot reported no aggregator despite WithQuality")
	}
	if rep.Samples != 1 || len(rep.Templates) != 1 || rep.Templates[0].Template != mix[0] {
		t.Fatalf("snapshot: %+v", rep)
	}
	if got := pred.QualityReport(); got.Samples != 1 {
		t.Fatalf("predictor report: %+v", got)
	}

	// The feedback point event rides the regular observer stream.
	points := 0
	for _, ev := range rec.Events() {
		if ev.Kind == EventPoint && ev.Span == PointQualityFeedback {
			points++
			if ev.Template != mix[0] || ev.MPL != len(mix) {
				t.Errorf("feedback event fields: %+v", ev)
			}
		}
	}
	if points != 1 {
		t.Errorf("got %d quality.feedback points, want 1", points)
	}
}

// TestQualitySnapshotWithoutAggregator: a workbench built without
// WithQuality reports ok=false and an empty (non-nil) report.
func TestQualitySnapshotWithoutAggregator(t *testing.T) {
	wb, _ := testWorkbench(t)
	rep, ok := wb.QualitySnapshot()
	if ok {
		t.Fatal("QualitySnapshot ok=true without WithQuality")
	}
	if rep.Templates == nil || len(rep.Templates) != 0 {
		t.Fatalf("empty snapshot: %+v", rep)
	}
}

func TestFeedbackRejectsBadObservation(t *testing.T) {
	_, pred := testWorkbench(t)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := pred.Feedback(26, []int{62}, bad); !errors.Is(err, ErrBadObservation) {
			t.Errorf("Feedback(observed=%v) error = %v, want ErrBadObservation", bad, err)
		}
	}
	// Rejected observations never reach the aggregator.
	if rep := pred.QualityReport(); rep.Samples != 0 {
		t.Errorf("rejected observations were aggregated: %+v", rep)
	}
}

// TestTrainConfigQualityPlumbs: the System path installs the aggregator
// via TrainConfig.Quality.
func TestTrainConfigQualityPlumbs(t *testing.T) {
	q := NewQuality(DriftConfig{})
	cfg := chaosTrainConfig()
	cfg.Quality = q
	res, err := TrainFromSystem(freshChaosSystem(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictor.Quality() != q {
		t.Fatal("TrainFromSystem did not install TrainConfig.Quality")
	}
	if _, err := res.Predictor.Feedback(2, []int{22}, 100); err != nil {
		t.Fatal(err)
	}
	if rep := q.Report(); rep.Samples != 1 {
		t.Fatalf("aggregator saw %d samples, want 1", rep.Samples)
	}
}
