package experiments

import (
	"encoding/json"
	"fmt"
	"reflect"
	"time"

	"contender/internal/resilience"
)

// ExtChaos exercises the resilience layer end to end and quantifies its
// two guarantees on a live campaign:
//
//   - under transient faults, retries keep the collected training data
//     BYTE-IDENTICAL to a fault-free campaign with the same seed (retried
//     tasks rerun on fresh engines with the same derived seed, and faults
//     are injected before the simulator is consulted);
//   - under a permanent per-template fault, the campaign degrades coverage
//     (quarantines the template, drops its mixes) instead of aborting.
func ExtChaos(env *Env) (*Result, error) {
	noop := func(time.Duration) {}
	retry := resilience.Default()
	retry.Sleep = noop
	// A deeper budget than the default 4 attempts: at a 20% fault rate a
	// quadruple-fault streak on one site is likely somewhere in the
	// campaign, and this experiment demonstrates absorption, not loss.
	retry.MaxAttempts = 6

	base := Options{
		MPLs:          []int{2},
		LHSRuns:       1,
		SteadySamples: 3,
		IsolatedRuns:  2,
		Seed:          env.Opts.Seed + 13,
		Workers:       env.Opts.Workers,
	}
	clean, err := NewEnvWith(env.Workload, base)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos baseline: %w", err)
	}
	cleanSnap, err := json.Marshal(clean.Know.Snapshot())
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ext-chaos",
		Title:  "Extension §8 — resilient training under injected faults",
		Paper:  "not in the paper: transient faults + retries must leave training data byte-identical; permanent faults degrade coverage instead of aborting",
		Header: []string{"Fault profile", "Injected", "Retries", "Coverage", "Dropped mixes", "Training data"},
	}
	res.AddRow("clean (baseline)", "0", "0", fmtPct(1), "0", "reference")

	for _, rate := range []float64{0.05, 0.10, 0.20} {
		opts := base
		opts.Retry = &retry
		opts.Faults = &resilience.FaultConfig{Seed: 101, TransientRate: rate, Sleep: noop}
		chaotic, err := NewEnvWith(env.Workload, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos at %.0f%%: %w", 100*rate, err)
		}
		snap, err := json.Marshal(chaotic.Know.Snapshot())
		if err != nil {
			return nil, err
		}
		r := chaotic.Resilience
		verdict := "identical to clean"
		identical := 1.0
		if string(snap) != string(cleanSnap) ||
			!reflect.DeepEqual(chaotic.Samples, clean.Samples) || r.Degraded() {
			verdict = "DIVERGED"
			identical = 0
		}
		label := fmt.Sprintf("%.0f%% transient", 100*rate)
		res.AddRow(label,
			fmt.Sprintf("%d", chaotic.FaultStats().Injected()),
			fmt.Sprintf("%d", r.Retries),
			fmtPct(r.Coverage()),
			fmt.Sprintf("%d", r.DroppedMixes),
			verdict)
		res.SetMetric(fmt.Sprintf("identical/%.0f%%", 100*rate), identical)
		res.SetMetric(fmt.Sprintf("retries/%.0f%%", 100*rate), float64(r.Retries))
	}

	// One template's profiling fails on every attempt: the campaign must
	// finish on the remaining templates and report the lost coverage.
	victim := env.Workload.IDs()[0]
	opts := base
	opts.Retry = &retry
	opts.Faults = &resilience.FaultConfig{
		Seed:           101,
		PermanentSites: []string{fmt.Sprintf("template/%d", victim)},
		Sleep:          noop,
	}
	degraded, err := NewEnvWith(env.Workload, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos permanent fault: %w", err)
	}
	r := degraded.Resilience
	res.AddRow(fmt.Sprintf("permanent @ T%d", victim),
		fmt.Sprintf("%d", degraded.FaultStats().Injected()),
		fmt.Sprintf("%d", r.Retries),
		fmtPct(r.Coverage()),
		fmt.Sprintf("%d", r.DroppedMixes),
		fmt.Sprintf("degraded (%d/%d templates)", r.TrainedTemplates, r.TotalTemplates))
	res.SetMetric("coverage/permanent", r.Coverage())
	res.SetMetric("dropped_mixes/permanent", float64(r.DroppedMixes))

	res.Notes = append(res.Notes,
		"fault schedules are seed-deterministic; every transient row must read \"identical to clean\" — retried tasks rerun the same derived engine seed",
		"the permanent row quarantines one template's profiling at every attempt; its mixes are dropped and the rest of the campaign survives")
	return res, nil
}
