package experiments

import (
	"context"
	"fmt"
	"sort"

	"contender/internal/core"
	"contender/internal/resilience"
	"contender/internal/sim"
)

// Targeted re-collection: when the drift detector declares templates
// stale, the lifecycle loop re-measures ONLY the tasks those templates
// touch — their isolated+spoiler profiles and the steady-state mixes
// containing them — instead of repeating the whole campaign. The re-run
// reuses the campaign machinery end to end (private per-task engines,
// retry/backoff, quarantine, write-through checkpoints), keyed by the
// ORIGINAL task keys, so every slot a stale template does not touch is
// re-measured to byte-identical values and the candidate predictor
// differs from the serving one exactly where the drift is.
//
// The drifted substrate is modeled by a World function mapping each
// re-measured latency of a target template to what the live system now
// produces (e.g. 1.8× for the ext-quality victim slowdown). Identity
// when nil: re-collection then reproduces the original training data.

// RecollectConfig parameterizes a targeted re-collection.
type RecollectConfig struct {
	// Templates are the stale template IDs to re-measure. Required, and
	// every ID must be in the environment's knowledge base.
	Templates []int
	// World maps a re-measured latency of a target template to the
	// drifted substrate's value: World(template, mpl, latency), with
	// mpl 1 for isolated runs. nil is the identity (no drift).
	World func(template, mpl int, latency float64) float64
	// Retry, when set, wraps every re-collection task in bounded
	// backoff with quarantine semantics; any quarantined task fails the
	// whole re-collection (a partial candidate must never be promoted).
	Retry *resilience.RetryPolicy
	// CheckpointPath, when non-empty, persists completed re-collection
	// tasks (atomic write-then-rename) and resumes an interrupted
	// re-collection exactly like a training campaign.
	CheckpointPath string
}

// Recollect re-measures the targeted templates in the (possibly drifted)
// world, merges the fresh measurements into a copy of the environment's
// knowledge and observations, and refits. The environment itself is
// never mutated — the returned candidate serves until the next retrain
// replaces it, while the Env keeps describing the original campaign.
func (e *Env) Recollect(ctx context.Context, cfg RecollectConfig) (*core.Predictor, error) {
	if len(cfg.Templates) == 0 {
		return nil, resilience.Permanent(fmt.Errorf("experiments: Recollect needs at least one template"))
	}
	if e.Resilience.Degraded() {
		// The design-index ↔ sample-index correspondence below assumes
		// the original campaign kept full coverage.
		return nil, resilience.Permanent(fmt.Errorf("experiments: Recollect needs a fully covered campaign (quarantined %d tasks, dropped %d mixes)",
			len(e.Resilience.Quarantined), e.Resilience.DroppedMixes))
	}
	targets := map[int]bool{}
	ids := append([]int(nil), cfg.Templates...)
	sort.Ints(ids)
	for _, id := range ids {
		if _, ok := e.Know.Template(id); !ok {
			return nil, resilience.Permanent(fmt.Errorf("experiments: Recollect: template %d is not in the knowledge base", id))
		}
		targets[id] = true
	}
	world := cfg.World
	if world == nil {
		world = func(_, _ int, l float64) float64 { return l }
	}

	// A shallow sub-campaign: same workload, same base configuration,
	// same observer — so per-task engine seeds derive exactly as in the
	// original campaign — but its own retry policy and checkpoint, and
	// no fault injection (the injector models collection-time chaos; the
	// drifted world is modeled by World).
	sub := &Env{Opts: e.Opts, Workload: e.Workload, Engine: e.Engine, baseCfg: e.baseCfg}
	sub.Opts.Retry = observedRetry(cfg.Retry, e.Opts.Observer)
	sub.Opts.Faults = nil
	sub.Opts.CheckpointPath = cfg.CheckpointPath
	sub.Opts.onTaskDone = nil

	if cfg.CheckpointPath != "" {
		fp := fmt.Sprintf("%s|recollect=%v", envFingerprint(sub.Opts, sub.baseCfg, sub.Workload), ids)
		ck, err := loadEnvCheckpoint(cfg.CheckpointPath, fp)
		if err != nil {
			return nil, err
		}
		sub.ckpt = ck
	}

	// Task set: one profile task per target, plus every sampled mix that
	// contains a target, under their ORIGINAL keys (the key alone seeds
	// the engine, so untargeted slots reproduce byte-identically).
	profiles := make(map[int]*templateProfile, len(ids))
	type mixSlot struct {
		mpl, idx int
		sample   MixSample
	}
	var mixSlots []*mixSlot
	var tasks []envTask

	for _, id := range ids {
		id := id
		tpl, ok := e.Workload.Template(id)
		if !ok {
			return nil, resilience.Permanent(fmt.Errorf("experiments: Recollect: template %d is not in the workload", id))
		}
		key := fmt.Sprintf("template/%d", id)
		slot := &templateProfile{}
		profiles[id] = slot
		if sub.ckpt != nil {
			if entry, ok := sub.ckpt.state.Templates[key]; ok {
				*slot = templateProfile{ts: entry.Stats.Stats(), isolatedSeconds: entry.IsolatedSeconds, spoilerSeconds: entry.SpoilerSeconds}
				sub.Resilience.Resumed++
				continue
			}
		}
		task := envTask{
			key: key,
			run: func(eng *sim.Engine) error {
				p, err := sub.profileTemplate(eng, tpl)
				if err != nil {
					return err
				}
				*slot = p
				return nil
			},
		}
		if sub.ckpt != nil {
			task.done = func() error {
				return sub.ckpt.record(func(s *envCheckpointState) {
					s.Templates[key] = templateEntry{
						Stats:           core.NewTemplateSnapshot(slot.ts),
						IsolatedSeconds: slot.isolatedSeconds,
						SpoilerSeconds:  slot.spoilerSeconds,
					}
				})
			}
		}
		tasks = append(tasks, task)
	}

	designs := e.mixDesigns()
	for _, mpl := range e.sortedMPLs() {
		mpl := mpl
		for i, mix := range designs[mpl] {
			i, mix := i, mix
			touched := false
			for _, id := range mix {
				if targets[id] {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			key := fmt.Sprintf("mix/%d/%d", mpl, i)
			slot := &mixSlot{mpl: mpl, idx: i}
			mixSlots = append(mixSlots, slot)
			if sub.ckpt != nil {
				if entry, ok := sub.ckpt.state.Mixes[key]; ok {
					slot.sample = mixSampleFromEntry(entry)
					sub.Resilience.Resumed++
					continue
				}
			}
			task := envTask{
				key: key,
				run: func(eng *sim.Engine) error {
					sample, _, err := sub.runMix(eng, mix)
					if err != nil {
						return err
					}
					slot.sample = sample
					return nil
				},
			}
			if sub.ckpt != nil {
				task.done = func() error {
					return sub.ckpt.record(func(s *envCheckpointState) {
						entry := mixEntry{Mix: append([]int(nil), slot.sample.Mix...)}
						for _, o := range slot.sample.Obs {
							entry.Lats = append(entry.Lats, o.Latency)
						}
						s.Mixes[key] = entry
					})
				}
			}
			tasks = append(tasks, task)
		}
	}

	failures, err := sub.runTasks(ctx, tasks)
	if err != nil {
		return nil, err
	}
	if len(failures) > 0 {
		// A re-collection with holes cannot produce a promotable
		// candidate: unlike the initial campaign there is no "degrade
		// coverage" option, because the caller would hot-swap the result.
		return nil, resilience.Permanent(fmt.Errorf("experiments: re-collection quarantined %d of %d tasks (first: %s: %s)",
			len(failures), len(tasks), failures[0].Key, failures[0].Reason))
	}
	e.Resilience.Retries += sub.Resilience.Retries

	// Rebuild knowledge: untargeted templates keep their original stats;
	// targets get the fresh profile pushed through the drifted World.
	ks := e.Know.Snapshot()
	know := core.NewKnowledge()
	scanTables := make([]string, 0, len(ks.ScanTimes))
	for table := range ks.ScanTimes {
		scanTables = append(scanTables, table)
	}
	sort.Strings(scanTables)
	for _, table := range scanTables {
		know.SetScanTime(table, ks.ScanTimes[table])
	}
	for _, ts := range ks.Templates {
		if !targets[ts.ID] {
			know.AddTemplate(ts.Stats())
			continue
		}
		fresh := profiles[ts.ID].ts
		fresh.IsolatedLatency = world(ts.ID, 1, fresh.IsolatedLatency)
		spoilers := make(map[int]float64, len(fresh.SpoilerLatency))
		for mpl, lat := range fresh.SpoilerLatency {
			spoilers[mpl] = world(ts.ID, mpl, lat)
		}
		fresh.SpoilerLatency = spoilers
		know.AddTemplate(fresh)
	}

	// Merge observations in canonical sample order: untouched mixes come
	// from the original campaign; touched mixes from the re-measurement,
	// with target-primary slots pushed through World.
	remeasured := make(map[string]MixSample, len(mixSlots))
	for _, s := range mixSlots {
		remeasured[fmt.Sprintf("%d/%d", s.mpl, s.idx)] = s.sample
	}
	var allObs []core.Observation
	for _, mpl := range e.sortedMPLs() {
		for i, orig := range e.Samples[mpl] {
			sample, ok := remeasured[fmt.Sprintf("%d/%d", mpl, i)]
			if !ok {
				allObs = append(allObs, orig.Obs...)
				continue
			}
			for _, o := range sample.Obs {
				if targets[o.Primary] {
					o.Latency = world(o.Primary, mpl, o.Latency)
				}
				allObs = append(allObs, o)
			}
		}
	}

	cand, err := core.Train(know, allObs, core.TrainOptions{DropOutliers: true})
	if err != nil {
		return nil, err
	}
	if sub.ckpt != nil {
		sub.ckpt.discard()
	}
	return cand, nil
}
