package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"contender/internal/core"
)

// runSelfheal builds a small environment at the given worker count and
// runs the full self-healing lifecycle replay.
func runSelfheal(t *testing.T, workers int) *Result {
	t.Helper()
	env, err := NewEnvWith(chaosWorkload(), chaosOptions(workers))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtSelfheal(env)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExtSelfhealHealsExactlyTheVictims walks the whole loop: exactly the
// two victims go stale, one targeted retrain promotes to version 2 with an
// improved canary, continued drifted traffic stays healthy, the forced
// over-correction rolls back, and the store survives crash debris and a
// bit flip.
func TestExtSelfhealHealsExactlyTheVictims(t *testing.T) {
	res := runSelfheal(t, 1)
	m := res.Metrics

	if m["victims"] != 2 || m["stale_detected"] != 2 {
		t.Fatalf("victims=%v stale_detected=%v, want 2/2\n%s", m["victims"], m["stale_detected"], res.Render())
	}
	if m["promotions"] != 1 || m["rollbacks"] != 1 {
		t.Errorf("promotions=%v rollbacks=%v, want 1/1\n%s", m["promotions"], m["rollbacks"], res.Render())
	}
	if m["stale_after_heal"] != 0 {
		t.Errorf("stale_after_heal=%v, want 0 (new model must absorb the drift)\n%s", m["stale_after_heal"], res.Render())
	}
	// baseline + promoted candidate; the rolled-back candidate never lands.
	if m["store_versions"] != 2 || m["store_publishes"] != 2 {
		t.Errorf("store_versions=%v store_publishes=%v, want 2/2\n%s", m["store_versions"], m["store_publishes"], res.Render())
	}
	if m["kept_serving_after_rollback"] != 1 {
		t.Errorf("rollback touched the serving snapshot\n%s", res.Render())
	}
	// Targeted: the victims must not force a full campaign.
	if m["remeasured_mixes"] <= 0 || m["remeasured_mixes"] >= m["total_mixes"] {
		t.Errorf("remeasured_mixes=%v of %v, want a strict subset\n%s", m["remeasured_mixes"], m["total_mixes"], res.Render())
	}
	if m["crash_tmp_swept"] != 1 || m["corrupt_versions"] != 1 || m["fell_back"] != 1 {
		t.Errorf("crash/corruption recovery = swept %v corrupt %v fell_back %v, want 1/1/1\n%s",
			m["crash_tmp_swept"], m["corrupt_versions"], m["fell_back"], res.Render())
	}
	if m["dropped_feedback"] != 0 {
		t.Errorf("dropped_feedback=%v, want 0 (ring sized for the replay)\n%s", m["dropped_feedback"], res.Render())
	}

	var heal, reject []string
	for _, row := range res.Rows {
		switch row[0] {
		case "heal":
			heal = row
		case "reject":
			reject = row
		}
	}
	if heal == nil || heal[1] != "promoted" {
		t.Fatalf("heal row = %v, want promoted\n%s", heal, res.Render())
	}
	if reject == nil || reject[1] != "rolled-back" {
		t.Fatalf("reject row = %v, want rolled-back\n%s", reject, res.Render())
	}
}

// TestExtSelfhealGoldenAcrossWorkers requires byte-identical rendering
// across collection worker counts: task engines are seeded by key, the
// replay is serial and canonical, store versions are content-addressed,
// and the lifecycle loop has no clocks — parallelism must not change one
// character.
func TestExtSelfhealGoldenAcrossWorkers(t *testing.T) {
	golden := runSelfheal(t, 1).Render()
	if !strings.Contains(golden, "promoted") || !strings.Contains(golden, "rolled-back") {
		t.Fatalf("golden render misses lifecycle actions:\n%s", golden)
	}
	for _, workers := range []int{2, 4} {
		if got := runSelfheal(t, workers).Render(); got != golden {
			t.Errorf("render differs at %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s", workers, golden, workers, got)
		}
	}
}

// TestRecollectIdentityWorldReproducesTraining re-measures two templates
// with no drift and checks the candidate predicts exactly like the
// original: per-task seeding by key makes targeted re-collection a
// byte-identical re-measurement.
func TestRecollectIdentityWorldReproducesTraining(t *testing.T) {
	env, err := NewEnvWith(chaosWorkload(), chaosOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := core.Train(env.Know, env.AllObservations(), core.TrainOptions{DropOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	mpls := env.sortedMPLs()
	refs, ok := orig.References(mpls[0])
	if !ok {
		t.Fatal("no reference models")
	}
	var trained []int
	for _, id := range env.TemplateIDs() {
		if _, ok := refs.Model(id); ok {
			trained = append(trained, id)
		}
	}
	victims := qualityVictims(trained)

	cand, err := env.Recollect(context.Background(), RecollectConfig{Templates: victims})
	if err != nil {
		t.Fatalf("Recollect: %v", err)
	}
	for _, mpl := range mpls {
		for _, o := range env.Observations(mpl) {
			want, err1 := orig.PredictKnown(o.Primary, o.Concurrent)
			got, err2 := cand.PredictKnown(o.Primary, o.Concurrent)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("T%d MPL %d: error mismatch %v vs %v", o.Primary, mpl, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("T%d MPL %d: identity re-collection changed prediction %g -> %g", o.Primary, mpl, want, got)
			}
		}
	}
}

// TestRecollectRejectsUnknownTemplate guards the promote path: a candidate
// can only ever be fit for templates the knowledge base knows.
func TestRecollectRejectsUnknownTemplate(t *testing.T) {
	env, err := NewEnvWith(chaosWorkload(), chaosOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Recollect(context.Background(), RecollectConfig{Templates: []int{999}}); err == nil {
		t.Fatal("Recollect accepted an unknown template")
	}
	if _, err := env.Recollect(context.Background(), RecollectConfig{}); err == nil {
		t.Fatal("Recollect accepted an empty template set")
	}
}
