package experiments

import (
	"fmt"

	"contender/internal/stats"
)

// Sec61Outliers measures the steady-state outlier artifact of Section 6.1:
// "cases where the query latency is greater than 105% of spoiler latency
// occur at a frequency of 4%". The artifact arises when short queries run
// with much longer partners — per-instance restart costs (plan generation,
// dimension re-caching) become a significant share of their execution and
// can push observations past the continuum's upper bound. Those
// observations are excluded from training, as in the paper.
func Sec61Outliers(env *Env) (*Result, error) {
	res := &Result{
		ID:     "sec61outliers",
		Title:  "Observations exceeding 105% of the spoiler latency",
		Paper:  "≈4% frequency; caused by restart costs of short queries paired with long ones",
		Header: []string{"MPL", "Outliers", "Observations", "Frequency"},
	}
	totalOut, totalObs := 0, 0
	// Track the latency ratio partner/primary for outliers vs the rest, to
	// verify the paper's short-with-long explanation.
	var outlierPartnerRatio, normalPartnerRatio []float64
	for _, mpl := range env.sortedMPLs() {
		nOut, nObs := 0, 0
		for _, o := range env.Observations(mpl) {
			cont, ok := env.Know.ContinuumFor(o.Primary, mpl)
			if !ok {
				continue
			}
			nObs++
			ratio := maxPartnerRatio(env, o.Primary, o.Concurrent)
			if cont.IsOutlier(o.Latency) {
				nOut++
				outlierPartnerRatio = append(outlierPartnerRatio, ratio)
			} else {
				normalPartnerRatio = append(normalPartnerRatio, ratio)
			}
		}
		freq := 0.0
		if nObs > 0 {
			freq = float64(nOut) / float64(nObs)
		}
		res.AddRow(fmt.Sprintf("%d", mpl), fmt.Sprintf("%d", nOut), fmt.Sprintf("%d", nObs), fmtPct(freq))
		res.SetMetric(fmt.Sprintf("freq/mpl%d", mpl), freq)
		totalOut += nOut
		totalObs += nObs
	}
	freq := float64(totalOut) / float64(totalObs)
	res.AddRow("All", fmt.Sprintf("%d", totalOut), fmt.Sprintf("%d", totalObs), fmtPct(freq))
	res.SetMetric("freq/all", freq)
	res.SetMetric("outlier-partner-ratio", stats.Mean(outlierPartnerRatio))
	res.SetMetric("normal-partner-ratio", stats.Mean(normalPartnerRatio))
	if len(outlierPartnerRatio) > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"outliers' longest partner averages %.1fx the primary's isolated latency (normal observations: %.1fx); on this substrate the dominant cause is single-sample spoiler noise plus memory-pressure pairs rather than the paper's restart-cost mechanism",
			stats.Mean(outlierPartnerRatio), stats.Mean(normalPartnerRatio)))
	}
	return res, nil
}

// maxPartnerRatio returns the largest concurrent-to-primary isolated
// latency ratio in the mix.
func maxPartnerRatio(env *Env, primary int, concurrent []int) float64 {
	p := env.Know.MustTemplate(primary).IsolatedLatency
	if p <= 0 {
		return 0
	}
	worst := 0.0
	for _, id := range concurrent {
		if r := env.Know.MustTemplate(id).IsolatedLatency / p; r > worst {
			worst = r
		}
	}
	return worst
}
