package experiments

import (
	"errors"
	"fmt"

	"contender/internal/core"
	"contender/internal/obs"
)

// ExtQuality demonstrates the online prediction-quality loop end to end:
// train a predictor on the environment's samples, replay the collected
// observations through Predictor.Feedback as if they were live observed
// latencies, then inject a workload shift — a deterministic subset of
// "victim" templates starts running qualityShiftFactor× slower than the
// model was trained for — and watch the drift detector move exactly
// those templates through healthy → degraded → stale while everyone
// else stays healthy.
//
// Everything is seed-deterministic: the replay order is the canonical
// sample order (identical at every worker count), the victims are
// chosen by sorted template ID, and the detector itself contains no
// clocks or randomness — so the rendered table is byte-identical across
// -workers widths and safe to golden-test.

const (
	// qualityHealthyRounds replays the training observations unshifted,
	// establishing the per-template error baseline.
	qualityHealthyRounds = 2
	// qualityShiftRounds replays them with victims slowed down.
	qualityShiftRounds = 3
	// qualityShiftFactor scales the victims' observed latencies: 1.8×
	// puts their signed relative error near +0.45, far past the drift
	// tolerance.
	qualityShiftFactor = 1.8
)

// qualityDriftConfig tunes the detector for the replay. The thresholds
// are looser than the serving defaults because training-replay errors
// are noisier than live feedback: non-victim templates must ride out
// hundreds of fluctuating samples without a false positive, while the
// +0.45 shift of a victim still fires within a handful.
func qualityDriftConfig() obs.DriftConfig {
	return obs.DriftConfig{
		MinSamples: 10,
		Delta:      0.1,
		Lambda:     3.0,
		StaleMRE:   0.35,
		RecoverMRE: 0.15,
		Window:     12,
	}
}

// qualityVictims picks the shifted templates deterministically: the
// first and the middle of the sorted trained-template list.
func qualityVictims(trained []int) []int {
	if len(trained) < 2 {
		return trained
	}
	return []int{trained[0], trained[len(trained)/2]}
}

// ExtQuality runs the drift-detection replay.
func ExtQuality(e *Env) (*Result, error) {
	p, err := core.Train(e.Know, e.AllObservations(), core.TrainOptions{DropOutliers: true})
	if err != nil {
		return nil, err
	}
	quality := obs.NewQuality(qualityDriftConfig())
	p.SetQuality(quality)

	// Trained templates: those with a reference QS model at the lowest
	// sampled MPL (sorted, so victim selection is order-independent).
	mpls := e.sortedMPLs()
	refs, ok := p.References(mpls[0])
	if !ok {
		return nil, fmt.Errorf("ext-quality: %w: no reference models at MPL %d", core.ErrUntrainedMPL, mpls[0])
	}
	var trained []int
	for _, id := range e.TemplateIDs() {
		if _, ok := refs.Model(id); ok {
			trained = append(trained, id)
		}
	}
	if len(trained) < 2 {
		return nil, fmt.Errorf("ext-quality: %w: only %d trained templates", core.ErrUntrainedMPL, len(trained))
	}
	victims := qualityVictims(trained)
	victimSet := make(map[int]bool, len(victims))
	for _, v := range victims {
		victimSet[v] = true
	}

	// Replay: the healthy rounds feed the observations back verbatim;
	// the shifted rounds slow the victims down. Serial and in canonical
	// sample order, so the feedback stream is identical at every
	// collection worker count.
	fed, skipped := 0, 0
	for round := 0; round < qualityHealthyRounds+qualityShiftRounds; round++ {
		shifted := round >= qualityHealthyRounds
		for _, mpl := range mpls {
			for _, o := range e.Observations(mpl) {
				observed := o.Latency
				if shifted && victimSet[o.Primary] {
					observed *= qualityShiftFactor
				}
				if _, err := p.Feedback(o.Primary, o.Concurrent, observed); err != nil {
					if errors.Is(err, core.ErrUntrainedMPL) || errors.Is(err, core.ErrUnknownTemplate) {
						skipped++
						continue
					}
					return nil, fmt.Errorf("ext-quality: feedback for T%d: %w", o.Primary, err)
				}
				fed++
			}
		}
	}

	rep := quality.Report()
	res := &Result{
		ID:     "ext-quality",
		Title:  "Extension §8 — online prediction quality and drift detection",
		Paper:  "beyond the paper: Eq. 6 relative error, tracked online per template with a Page-Hinkley drift detector",
		Header: []string{"template", "role", "samples", "MRE", "p90 |err|", "window MRE", "state", "transitions"},
	}
	var healthy, degraded, stale, victimFlipped int
	for _, t := range rep.Templates {
		role := "-"
		if victimSet[t.Template] {
			role = "victim"
		}
		res.AddRow(
			fmt.Sprintf("T%d", t.Template),
			role,
			fmt.Sprintf("%d", t.Count),
			fmtPct(t.MRE),
			fmtPct(t.P90),
			fmtPct(t.WindowMRE),
			t.State,
			fmt.Sprintf("%d", t.Transitions),
		)
		switch t.State {
		case obs.DriftHealthy.String():
			healthy++
		case obs.DriftDegraded.String():
			degraded++
		case obs.DriftStale.String():
			stale++
		}
		if victimSet[t.Template] && t.State != obs.DriftHealthy.String() {
			victimFlipped++
		}
	}
	res.SetMetric("templates", float64(len(rep.Templates)))
	res.SetMetric("samples", float64(fed))
	res.SetMetric("skipped", float64(skipped))
	res.SetMetric("victims", float64(len(victims)))
	res.SetMetric("victims_flipped", float64(victimFlipped))
	res.SetMetric("healthy", float64(healthy))
	res.SetMetric("degraded", float64(degraded))
	res.SetMetric("stale", float64(stale))
	res.Notes = append(res.Notes,
		fmt.Sprintf("victims %s run %.1f× slower after %d clean replay rounds; drift must flip them (and only them)",
			fmtIDs(victims), qualityShiftFactor, qualityHealthyRounds),
		fmt.Sprintf("detector: Page-Hinkley δ=%.2f λ=%.1f, stale ≥ %.0f%% window MRE, recover ≤ %.0f%%, window %d",
			qualityDriftConfig().Delta, qualityDriftConfig().Lambda,
			100*qualityDriftConfig().StaleMRE, 100*qualityDriftConfig().RecoverMRE, qualityDriftConfig().Window),
	)
	return res, nil
}

// fmtIDs renders template IDs as "T2+T61".
func fmtIDs(ids []int) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += "+"
		}
		out += fmt.Sprintf("T%d", id)
	}
	return out
}
