package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the rendered outcome of one experiment: a table shaped like the
// paper's artifact, the paper's headline numbers for comparison, and
// machine-readable metrics.
type Result struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Header and Rows form the rendered table.
	Header []string
	Rows   [][]string
	// Notes carries caveats or commentary.
	Notes []string
	// Metrics holds the key measured numbers, keyed by stable names.
	Metrics map[string]float64
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// SetMetric records a named metric.
func (r *Result) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Render returns the result as aligned plain text.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(r.Header) > 0 {
		writeRow(r.Header)
		b.WriteString(strings.Repeat("-", sum(widths)+2*(len(widths)-1)))
		b.WriteByte('\n')
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

// Experiment is a registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Env) (*Result, error)
}

// All returns every experiment in the order the paper presents them.
func All() []Experiment {
	return []Experiment{
		{"sec3static", "§3 — ML baselines on a static workload (MPL 2)", Sec3Static},
		{"fig3", "Figure 3 — ML baselines on new templates (MPL 2)", Fig3},
		{"table2", "Table 2 — CQI-based latency prediction MRE (MPL 2–5)", Table2},
		{"fig4", "Figure 4 — QS coefficient relationship", Fig4},
		{"table3", "Table 3 — template features vs. QS coefficients (R²)", Table3},
		{"fig6", "Figure 6 — spoiler latency vs. MPL by template class", Fig6},
		{"sec55mpl", "§5.5 — spoiler latency is linear in the MPL", Sec55MPL},
		{"fig7", "Figure 7 — per-template prediction error at MPL 4", Fig7},
		{"fig8", "Figure 8 — known vs. unknown templates (MPL 2–5)", Fig8},
		{"fig9", "Figure 9 — spoiler prediction for new templates", Fig9},
		{"fig10", "Figure 10 — end-to-end prediction for new templates", Fig10},
		{"sec54cost", "§5.4 — sampling-cost comparison", Sec54Cost},
		{"sec61outliers", "§6.1 — steady-state outlier frequency", Sec61Outliers},
		{"ext-growth", "Extension §8 — expanding database", ExtGrowth},
		{"ext-opmodel", "Extension §8 — operator-granularity CQPP", ExtOpModel},
		{"ext-batch", "Application §1 — batch scheduling", ExtBatch},
		{"ext-admission", "Application §1 — predictive admission control", ExtAdmission},
		{"ext-qsfeatures", "Ablation — µ-estimation features", ExtQSFeatures},
		{"ext-crossmpl", "Ablation — QS models across MPLs", ExtCrossMPL},
		{"ext-noise", "Ablation — error vs. substrate noise", ExtNoise},
		{"ext-chaos", "Extension §8 — resilient training under injected faults", ExtChaos},
		{"ext-quality", "Extension §8 — online prediction quality and drift detection", ExtQuality},
		{"ext-selfheal", "Extension §8 — self-healing knowledge lifecycle", ExtSelfheal},
		{"ext-blame", "Extension §8 — per-mix contention blame attribution", ExtBlame},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// sortedKeys returns map keys in sorted order (for deterministic output).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
