package experiments

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/lhs"
	"contender/internal/resilience"
	"contender/internal/sim"
	"contender/internal/stats"
	"contender/internal/tpcds"
)

// ExtGrowth implements the paper's Section-8 future-work direction:
// predicting query performance on an expanding database. The predictor is
// trained once at the original scale; the database then grows by
// GrowthFactor (accumulated writes). Three approaches predict latencies of
// mixes running on the grown database, validated against fresh steady-state
// simulation at the new scale:
//
//   - Stale: reuse the original predictor unchanged (what a deployment
//     that never retrains would do).
//   - Scaled (Contender): analytically scale the knowledge base
//     (core.ScaleKnowledge), estimate each template's QS model from its
//     scaled isolated latency, and predict its spoiler with KNN — zero
//     sample executions at the new scale.
//   - Oracle isolated: like Scaled, but with isolated latencies measured
//     at the new scale (one run per template), bounding how much of the
//     remaining error is due to the analytic scaling itself.
const GrowthFactor = 1.5

// growthMixCount is how many sampled mixes per MPL the validation uses.
const growthMixCount = 20

// ExtGrowth runs the expanding-database extension experiment.
func ExtGrowth(env *Env) (*Result, error) {
	res := &Result{
		ID:     "ext-growth",
		Title:  fmt.Sprintf("Extension §8 — expanding database (×%.2f growth)", GrowthFactor),
		Paper:  "future work in the paper; Contender's statistics-based inputs make the extension analytic",
		Header: []string{"MPL", "Stale predictor", "Contender scaled", "Oracle isolated"},
	}

	// Ground truth: the grown workload on a fresh engine.
	grown := env.Workload.Scaled(GrowthFactor)
	cfg := env.Engine.Config()
	cfg.Seed = env.Opts.Seed + 1000
	truthEngine := sim.NewEngine(cfg)

	// Contender's analytic view of the grown database.
	scaledKnow := core.ScaleKnowledge(env.Know, GrowthFactor)
	knn, err := core.NewKNNSpoilerPredictor(env.Know, 3)
	if err != nil {
		return nil, err
	}

	// Oracle isolated latencies at the new scale (one run per template).
	oracleKnow := scaledKnow.Clone()
	for _, id := range grown.IDs() {
		iso, err := truthEngine.RunIsolated(grown.MustSpec(id))
		if err != nil {
			return nil, err
		}
		ts := oracleKnow.MustTemplate(id)
		ts.IsolatedLatency = iso.Latency
		ts.IOFraction = iso.IOFraction()
		oracleKnow.AddTemplate(ts)
	}

	ids := env.TemplateIDs()
	staleAll, scaledAll, oracleAll := []float64{}, []float64{}, []float64{}
	for _, mpl := range []int{2, 3} {
		models, err := fitQSModels(env, mpl)
		if err != nil {
			return nil, err
		}
		refsFor := func(know *core.Knowledge) *core.ReferenceModels {
			refs := core.NewReferenceModels(know, mpl)
			for id, m := range models {
				refs.Add(id, m)
			}
			return refs
		}
		staleRefs, scaledRefs, oracleRefs := refsFor(env.Know), refsFor(scaledKnow), refsFor(oracleKnow)
		mixes := lhs.SampleDisjoint(len(ids), mpl, 4, env.Opts.Seed+int64(77*mpl))
		if len(mixes) > growthMixCount {
			mixes = mixes[:growthMixCount]
		}
		var staleErr, scaledErr, oracleErr []float64
		for _, mix := range mixes {
			idMix := make([]int, len(mix))
			specs := make([]sim.QuerySpec, len(mix))
			for i, idx := range mix {
				idMix[i] = ids[idx]
				specs[i] = grown.MustSpec(ids[idx])
			}
			truth, err := truthEngine.RunSteadyState(specs, sim.SteadyStateOptions{
				Samples: 3, WarmupSkip: 1, RestartCost: tpcds.RestartCost(),
			})
			if err != nil {
				return nil, err
			}
			for slot, primary := range idMix {
				concurrent := append(append([]int{}, idMix[:slot]...), idMix[slot+1:]...)
				observed := truth.MeanLatency(slot)

				stale, err := predictGrown(env.Know, staleRefs, knn, primary, concurrent, mpl)
				if err != nil {
					return nil, err
				}
				scaled, err := predictGrown(scaledKnow, scaledRefs, knn, primary, concurrent, mpl)
				if err != nil {
					return nil, err
				}
				oracle, err := predictGrown(oracleKnow, oracleRefs, knn, primary, concurrent, mpl)
				if err != nil {
					return nil, err
				}
				staleErr = append(staleErr, stats.RelativeError(observed, stale))
				scaledErr = append(scaledErr, stats.RelativeError(observed, scaled))
				oracleErr = append(oracleErr, stats.RelativeError(observed, oracle))
			}
		}
		res.AddRow(fmt.Sprintf("%d", mpl),
			fmtPct(stats.Mean(staleErr)), fmtPct(stats.Mean(scaledErr)), fmtPct(stats.Mean(oracleErr)))
		res.SetMetric(fmt.Sprintf("stale/mpl%d", mpl), stats.Mean(staleErr))
		res.SetMetric(fmt.Sprintf("scaled/mpl%d", mpl), stats.Mean(scaledErr))
		res.SetMetric(fmt.Sprintf("oracle/mpl%d", mpl), stats.Mean(oracleErr))
		staleAll = append(staleAll, stats.Mean(staleErr))
		scaledAll = append(scaledAll, stats.Mean(scaledErr))
		oracleAll = append(oracleAll, stats.Mean(oracleErr))
	}
	res.AddRow("Avg", fmtPct(stats.Mean(staleAll)), fmtPct(stats.Mean(scaledAll)), fmtPct(stats.Mean(oracleAll)))
	res.SetMetric("stale/avg", stats.Mean(staleAll))
	res.SetMetric("scaled/avg", stats.Mean(scaledAll))
	res.SetMetric("oracle/avg", stats.Mean(oracleAll))
	res.Notes = append(res.Notes,
		"Scaled and Oracle use the new-template path (estimated QS, KNN spoiler) with zero concurrent samples at the new scale")
	return res, nil
}

// predictGrown runs the full new-template pipeline for a primary at the
// grown scale against the given knowledge view. Reference QS models come
// from the original-scale training; continuum points are scale-free, so
// the transfer carries over.
func predictGrown(know *core.Knowledge, refs *core.ReferenceModels, knn *core.KNNSpoilerPredictor, primary int, concurrent []int, mpl int) (float64, error) {
	t := know.MustTemplate(primary)
	qs, err := refs.EstimateForNew(t.IsolatedLatency)
	if err != nil {
		return 0, err
	}
	lmax, err := core.PredictSpoilerLatency(knn, t, mpl)
	if err != nil {
		return 0, err
	}
	cont := core.Continuum{Min: t.IsolatedLatency, Max: lmax}
	if !cont.Valid() {
		return 0, resilience.Corruptf("experiments: degenerate grown continuum for T%d", primary)
	}
	r := know.CQIForStats(t, concurrent)
	return cont.Latency(qs.Point(r)), nil
}
