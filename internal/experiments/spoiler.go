package experiments

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/stats"
)

// This file reproduces the spoiler studies: Figure 6 (growth categories),
// the Section 5.5 linearity claim, Figure 9 (spoiler prediction for new
// templates), and Figure 10 (end-to-end prediction with predicted
// spoilers). Section 5.4's sampling-cost accounting lives here too.

// Fig6 charts spoiler latency against the MPL for one representative of
// each growth category: light (62), I/O-bound (71), and memory-heavy (22).
func Fig6(env *Env) (*Result, error) {
	templates := []int{62, 71, 22}
	res := &Result{
		ID:     "fig6",
		Title:  "Spoiler latency under increasing concurrency",
		Paper:  "three categories, all linear in the MPL: light templates grow slowly (62), I/O-bound grow modestly (71), memory-heavy grow fastest (22)",
		Header: []string{"MPL", "T62 (light)", "T71 (I/O-bound)", "T22 (memory)"},
	}
	for _, mpl := range append([]int{1}, env.sortedMPLs()...) {
		row := []string{fmt.Sprintf("%d", mpl)}
		for _, id := range templates {
			t := env.Know.MustTemplate(id)
			l := t.IsolatedLatency
			if mpl > 1 {
				l = t.SpoilerLatency[mpl]
			}
			row = append(row, fmt.Sprintf("%.0f s", l))
			res.SetMetric(fmt.Sprintf("t%d/mpl%d", id, mpl), l)
		}
		res.AddRow(row...)
	}
	// Growth rates (normalized slope per MPL) expose the category ordering.
	for _, id := range templates {
		g, err := core.GrowthFromStats(env.Know.MustTemplate(id), nil)
		if err != nil {
			return nil, err
		}
		norm := g.Mu / env.Know.MustTemplate(id).IsolatedLatency
		res.SetMetric(fmt.Sprintf("slope-per-mpl/t%d", id), norm)
		res.AddRow(fmt.Sprintf("T%d growth", id), fmt.Sprintf("%.0f s/MPL", g.Mu), fmt.Sprintf("%.2fx iso/MPL", norm), "")
	}
	return res, nil
}

// Sec55MPL verifies the Section 5.5 claim that spoiler latency is linear in
// the MPL: per template, fit on MPLs 1–3 and predict MPLs 4–5.
func Sec55MPL(env *Env) (*Result, error) {
	res := &Result{
		ID:     "sec55mpl",
		Title:  "Spoiler latency linearity: train MPL 1-3, test MPL 4-5",
		Paper:  "spoiler latency predicted within ≈8% using the MPL as the independent variable",
		Header: []string{"Template", "Rel. error (MPL 4-5)"},
	}
	var all []float64
	for _, id := range env.TemplateIDs() {
		t := env.Know.MustTemplate(id)
		g, err := core.GrowthFromStats(t, []int{1, 2, 3})
		if err != nil {
			continue
		}
		var errs []float64
		for _, mpl := range []int{4, 5} {
			obs, ok := t.SpoilerLatency[mpl]
			if !ok {
				continue
			}
			errs = append(errs, stats.RelativeError(obs, g.Latency(mpl)))
		}
		if len(errs) == 0 {
			continue
		}
		e := stats.Mean(errs)
		res.AddRow(fmt.Sprintf("%d", id), fmtPct(e))
		all = append(all, e)
	}
	avg := stats.Mean(all)
	res.AddRow("Avg", fmtPct(avg))
	res.SetMetric("mre", avg)
	return res, nil
}

// Fig9 evaluates spoiler-latency prediction for new templates with
// leave-one-out: Contender's KNN over (working set, I/O time) vs. the
// I/O-Time regression baseline.
func Fig9(env *Env) (*Result, error) {
	res := &Result{
		ID:     "fig9",
		Title:  "Spoiler prediction for new templates (leave-one-out)",
		Paper:  "KNN ≈15% error vs. I/O Time ≈20% across MPLs 2-5",
		Header: []string{"MPL", "KNN", "I/O Time"},
	}
	mpls := env.sortedMPLs()
	knnErrs := make(map[int][]float64)
	ioErrs := make(map[int][]float64)
	for _, id := range env.TemplateIDs() {
		loo := env.Know.Clone()
		target, _ := loo.Remove(id)
		knn, err := core.NewKNNSpoilerPredictor(loo, 3)
		if err != nil {
			return nil, err
		}
		iot, err := core.NewIOTimeSpoilerPredictor(loo)
		if err != nil {
			return nil, err
		}
		full := env.Know.MustTemplate(id)
		for _, mpl := range mpls {
			obs, ok := full.SpoilerLatency[mpl]
			if !ok {
				continue
			}
			pk, err := core.PredictSpoilerLatency(knn, target, mpl)
			if err != nil {
				return nil, err
			}
			pi, err := core.PredictSpoilerLatency(iot, target, mpl)
			if err != nil {
				return nil, err
			}
			knnErrs[mpl] = append(knnErrs[mpl], stats.RelativeError(obs, pk))
			ioErrs[mpl] = append(ioErrs[mpl], stats.RelativeError(obs, pi))
		}
	}
	var knnAll, ioAll []float64
	for _, mpl := range mpls {
		k, i := stats.Mean(knnErrs[mpl]), stats.Mean(ioErrs[mpl])
		res.AddRow(fmt.Sprintf("%d", mpl), fmtPct(k), fmtPct(i))
		res.SetMetric(fmt.Sprintf("knn/mpl%d", mpl), k)
		res.SetMetric(fmt.Sprintf("iotime/mpl%d", mpl), i)
		knnAll = append(knnAll, k)
		ioAll = append(ioAll, i)
	}
	res.AddRow("Avg", fmtPct(stats.Mean(knnAll)), fmtPct(stats.Mean(ioAll)))
	res.SetMetric("knn/avg", stats.Mean(knnAll))
	res.SetMetric("iotime/avg", stats.Mean(ioAll))
	return res, nil
}

// Fig10 is the end-to-end new-template evaluation with leave-one-out:
// Known Spoiler (estimated QS, measured l_max), KNN Spoiler (estimated QS,
// predicted l_max — Contender's constant-sampling path), and Isolated
// Prediction (inputs perturbed ±25%, zero executions of the new template).
// Template 2, the most memory-intensive query, is excluded from the
// averages as in the paper.
func Fig10(env *Env) (*Result, error) {
	res := &Result{
		ID:     "fig10",
		Title:  "End-to-end latency prediction for new templates",
		Paper:  "≈25% error with KNN spoiler (std grows vs. known spoiler); Isolated Prediction worst",
		Header: []string{"MPL", "Known Spoiler", "KNN Spoiler", "Isolated Prediction"},
	}
	rng := env.Rand(10)
	approaches := []string{"known", "knn", "isolated"}
	errs := make(map[string]map[int][]float64)
	for _, a := range approaches {
		errs[a] = make(map[int][]float64)
	}

	for _, mpl := range env.sortedMPLs() {
		models, err := fitQSModels(env, mpl)
		if err != nil {
			return nil, err
		}
		for _, id := range env.TemplateIDs() {
			if id == 2 {
				continue // excluded as in Section 6.5
			}
			refs := referenceSet(env, mpl, models, map[int]bool{id: true})
			loo := env.Know.Clone()
			target, _ := loo.Remove(id)
			knn, err := core.NewKNNSpoilerPredictor(loo, 3)
			if err != nil {
				return nil, err
			}
			t := env.Know.MustTemplate(id)
			cont, ok := env.Know.ContinuumFor(id, mpl)
			if !ok {
				continue
			}
			qs, err := refs.EstimateForNew(t.IsolatedLatency)
			if err != nil {
				return nil, err
			}

			// Continuum variants per approach.
			lmaxKNN, err := core.PredictSpoilerLatency(knn, target, mpl)
			if err != nil {
				return nil, err
			}
			pert := core.PerturbStats(target, 0.25, rng)
			qsIso, err := refs.EstimateForNew(pert.IsolatedLatency)
			if err != nil {
				return nil, err
			}
			lmaxIso, err := core.PredictSpoilerLatency(knn, pert, mpl)
			if err != nil {
				return nil, err
			}

			for _, o := range env.ObservationsFor(mpl, id) {
				if cont.IsOutlier(o.Latency) {
					continue
				}
				r := env.Know.CQI(o.Primary, o.Concurrent)
				predKnown := cont.Latency(qs.Point(r))
				predKNN := core.Continuum{Min: t.IsolatedLatency, Max: lmaxKNN}.Latency(qs.Point(r))
				predIso := core.Continuum{Min: pert.IsolatedLatency, Max: lmaxIso}.Latency(qsIso.Point(r))
				errs["known"][mpl] = append(errs["known"][mpl], stats.RelativeError(o.Latency, predKnown))
				errs["knn"][mpl] = append(errs["knn"][mpl], stats.RelativeError(o.Latency, predKNN))
				errs["isolated"][mpl] = append(errs["isolated"][mpl], stats.RelativeError(o.Latency, predIso))
			}
		}
	}

	var avgs = map[string][]float64{}
	for _, mpl := range env.sortedMPLs() {
		row := []string{fmt.Sprintf("%d", mpl)}
		for _, a := range approaches {
			m := stats.Mean(errs[a][mpl])
			sd := stats.StdDev(errs[a][mpl])
			row = append(row, fmt.Sprintf("%s ±%s", fmtPct(m), fmtPct(sd)))
			res.SetMetric(fmt.Sprintf("%s/mpl%d", a, mpl), m)
			res.SetMetric(fmt.Sprintf("%s-std/mpl%d", a, mpl), sd)
			avgs[a] = append(avgs[a], m)
		}
		res.AddRow(row...)
	}
	row := []string{"Avg"}
	for _, a := range approaches {
		m := stats.Mean(avgs[a])
		row = append(row, fmtPct(m))
		res.SetMetric(a+"/avg", m)
	}
	res.AddRow(row...)
	res.Notes = append(res.Notes, "template 2 (most memory-intensive) excluded from averages, as in the paper")
	return res, nil
}

// Sec54Cost accounts for the sampling budget of each approach, in both
// sample executions and simulated hours, reproducing Section 5.4's claim
// that spoiler-only sampling is a small fraction of mix sampling and that
// predicted spoilers make new-template onboarding constant-time.
func Sec54Cost(env *Env) (*Result, error) {
	n := len(env.TemplateIDs())
	mpls := len(env.Opts.MPLs)
	mixSamples := 0
	for _, mpl := range env.Opts.MPLs {
		mixSamples += len(env.Samples[mpl])
	}
	iso := env.SimulatedSeconds.Isolated
	spoiler := env.SimulatedSeconds.Spoiler
	mixes := env.SimulatedSeconds.Mixes

	res := &Result{
		ID:     "sec54cost",
		Title:  "Sampling cost: prior work vs. Contender",
		Paper:  "prior work needs t·m·k mix samples (O(n³)) before predicting; Contender needs one spoiler per MPL (linear), or one isolated run (constant) with predicted spoilers; spoiler sampling ≈23% of the full budget",
		Header: []string{"Approach", "Samples", "Simulated hours"},
	}
	res.AddRow("Prior work (LHS mixes, all templates+MPLs)",
		fmt.Sprintf("%d mixes", mixSamples), fmtHours(mixes))
	res.AddRow("Contender known workload (isolated + spoilers)",
		fmt.Sprintf("%d runs", n*(1+mpls)), fmtHours(iso+spoiler))
	res.AddRow("Contender new template (linear: spoiler per MPL)",
		fmt.Sprintf("%d runs", 1+mpls), fmtHours((iso+spoiler)/float64(n)))
	res.AddRow("Contender new template (constant: isolated only)",
		"1 run", fmtHours(iso/float64(n)))
	ratio := (iso + spoiler) / (iso + spoiler + mixes)
	res.AddRow("Spoiler+isolated share of full budget", fmtPct(ratio), "")
	res.SetMetric("spoiler-share", ratio)
	res.SetMetric("sim-hours/mixes", mixes/3600)
	res.SetMetric("sim-hours/spoiler", spoiler/3600)
	res.SetMetric("sim-hours/isolated", iso/3600)
	return res, nil
}

func fmtHours(seconds float64) string { return fmt.Sprintf("%.1f h", seconds/3600) }
