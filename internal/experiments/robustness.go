package experiments

import (
	"fmt"

	"contender/internal/resilience"
	"contender/internal/sim"
	"contender/internal/stats"
)

// ExtNoise quantifies how Contender's accuracy tracks the substrate's
// measurement variance. EXPERIMENTS.md attributes the gap between our
// absolute errors and the paper's to the simulator's lower residual noise;
// this ablation makes that claim measurable: the known-template CQI model
// is evaluated on hosts whose noise levels are scaled from 0× to 3× the
// default. Errors should grow roughly monotonically with the noise while
// the model stays unbiased.
func ExtNoise(env *Env) (*Result, error) {
	res := &Result{
		ID:     "ext-noise",
		Title:  "Ablation — prediction error vs. substrate noise",
		Paper:  "explains the absolute-error gap to the paper: MRE scales with the host's residual variance",
		Header: []string{"Noise scale", "Known-template MRE (MPL 2)"},
	}
	for _, scale := range []float64{0, 0.5, 1, 2, 3} {
		cfg := sim.DefaultConfig()
		cfg.SeqNoise *= scale
		cfg.RandNoise *= scale
		cfg.CPUNoise *= scale
		cfg.InstanceNoise *= scale
		noisyEnv, err := NewEnvWith(env.Workload, Options{
			MPLs:          []int{2},
			LHSRuns:       1,
			SteadySamples: 3,
			IsolatedRuns:  2,
			Seed:          env.Opts.Seed + int64(1000*scale) + 7,
			Config:        &cfg,
			Workers:       env.Opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: noise scale %g: %w", scale, err)
		}
		errs := cqiTemplateErrors(noisyEnv, variants()[2], 2, 5)
		mre := meanOfMap(errs)
		res.AddRow(fmt.Sprintf("%.1fx", scale), fmtPct(mre))
		res.SetMetric(fmt.Sprintf("mre/%.1fx", scale), mre)
	}
	res.Notes = append(res.Notes,
		"each row profiles and samples a fresh host whose log-normal noise sigmas are scaled by the factor")
	return res, nil
}

// ExtCrossMPL measures how MPL-specific the QS models are: a model trained
// at one multiprogramming level predicts observations at another (using
// the target MPL's continuum, so only the (µ, b) transfer is tested). The
// paper trains one model per MPL; this ablation shows what that buys.
func ExtCrossMPL(env *Env) (*Result, error) {
	mpls := env.sortedMPLs()
	if len(mpls) < 2 {
		return nil, resilience.Permanent(fmt.Errorf("experiments: cross-MPL needs ≥2 sampled MPLs"))
	}
	models := make(map[int]map[int]struct {
		Mu, B float64
	})
	for _, mpl := range mpls {
		fitted, err := fitQSModels(env, mpl)
		if err != nil {
			return nil, err
		}
		m := make(map[int]struct{ Mu, B float64 })
		for id, qs := range fitted {
			m[id] = struct{ Mu, B float64 }{qs.Mu, qs.B}
		}
		models[mpl] = m
	}

	res := &Result{
		ID:     "ext-crossmpl",
		Title:  "Ablation — QS models across multiprogramming levels",
		Paper:  "the paper trains one QS model per MPL; this quantifies the cost of reusing a model at a different MPL",
		Header: append([]string{"train \\ test"}, mplHeaders(mpls)...),
	}
	for _, trainMPL := range mpls {
		row := []string{fmt.Sprintf("MPL %d", trainMPL)}
		for _, testMPL := range mpls {
			var errs []float64
			for _, id := range env.TemplateIDs() {
				qs, ok := models[trainMPL][id]
				if !ok {
					continue
				}
				cont, ok := env.Know.ContinuumFor(id, testMPL)
				if !ok {
					continue
				}
				var obsL, pred []float64
				for _, o := range env.ObservationsFor(testMPL, id) {
					if cont.IsOutlier(o.Latency) {
						continue
					}
					r := env.Know.CQI(o.Primary, o.Concurrent)
					obsL = append(obsL, o.Latency)
					pred = append(pred, cont.Latency(qs.Mu*r+qs.B))
				}
				if len(obsL) > 0 {
					errs = append(errs, stats.MRE(obsL, pred))
				}
			}
			mre := stats.Mean(errs)
			row = append(row, fmtPct(mre))
			res.SetMetric(fmt.Sprintf("train%d/test%d", trainMPL, testMPL), mre)
		}
		res.AddRow(row...)
	}
	res.Notes = append(res.Notes,
		"the target MPL's measured continuum is always used; only the fitted (µ, b) cross levels")
	return res, nil
}

func mplHeaders(mpls []int) []string {
	out := make([]string, len(mpls))
	for i, m := range mpls {
		out[i] = fmt.Sprintf("MPL %d", m)
	}
	return out
}
