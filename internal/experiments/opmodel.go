package experiments

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/stats"
)

// ExtOpModel evaluates the paper's proposed plan-node-granularity CQPP
// (Section 8 / the Section 3 conclusion) against the learned QS models.
// The operator-level model predicts each stage's concurrent duration
// analytically from the mix's per-competitor intensities — zero concurrent
// training samples — while the QS path learns one model per template from
// sampled mixes. The comparison quantifies what learning buys: the
// analytic model is competitive on I/O-dominated templates but has no way
// to capture memory pressure.
func ExtOpModel(env *Env) (*Result, error) {
	res := &Result{
		ID:     "ext-opmodel",
		Title:  "Extension §8 — operator-granularity CQPP vs. learned QS models",
		Paper:  "future work in the paper (\"explore CQPP at the granularity of individual query execution plan nodes\")",
		Header: []string{"MPL", "QS (learned)", "Operator model (analytic)"},
	}
	om := core.NewOperatorModel(env.Know)

	classOf := func(id int) string {
		switch id {
		case 2, 22:
			return "memory"
		case 26, 33, 61, 71:
			return "io-bound"
		}
		return "other"
	}
	classQS := map[string][]float64{}
	classOM := map[string][]float64{}

	var qsAll, omAll []float64
	for _, mpl := range env.sortedMPLs() {
		models, err := fitQSModels(env, mpl)
		if err != nil {
			return nil, err
		}
		var qsErrs, omErrs []float64
		for _, id := range env.TemplateIDs() {
			qs, ok := models[id]
			if !ok {
				continue
			}
			cont, ok := env.Know.ContinuumFor(id, mpl)
			if !ok {
				continue
			}
			t := env.Know.MustTemplate(id)
			profiles := env.StageProfiles(id)
			var obsL, qsPred, omPred []float64
			for _, o := range env.ObservationsFor(mpl, id) {
				if cont.IsOutlier(o.Latency) {
					continue
				}
				r := env.Know.CQI(o.Primary, o.Concurrent)
				op, err := om.Predict(t, profiles, o.Concurrent)
				if err != nil {
					return nil, err
				}
				obsL = append(obsL, o.Latency)
				qsPred = append(qsPred, cont.Latency(qs.Point(r)))
				omPred = append(omPred, op)
			}
			if len(obsL) == 0 {
				continue
			}
			qe := stats.MRE(obsL, qsPred)
			oe := stats.MRE(obsL, omPred)
			qsErrs = append(qsErrs, qe)
			omErrs = append(omErrs, oe)
			c := classOf(id)
			classQS[c] = append(classQS[c], qe)
			classOM[c] = append(classOM[c], oe)
		}
		res.AddRow(fmt.Sprintf("%d", mpl), fmtPct(stats.Mean(qsErrs)), fmtPct(stats.Mean(omErrs)))
		res.SetMetric(fmt.Sprintf("qs/mpl%d", mpl), stats.Mean(qsErrs))
		res.SetMetric(fmt.Sprintf("opmodel/mpl%d", mpl), stats.Mean(omErrs))
		qsAll = append(qsAll, stats.Mean(qsErrs))
		omAll = append(omAll, stats.Mean(omErrs))
	}
	res.AddRow("Avg", fmtPct(stats.Mean(qsAll)), fmtPct(stats.Mean(omAll)))
	res.SetMetric("qs/avg", stats.Mean(qsAll))
	res.SetMetric("opmodel/avg", stats.Mean(omAll))

	for _, c := range []string{"io-bound", "memory", "other"} {
		res.AddRow(c+" templates", fmtPct(stats.Mean(classQS[c])), fmtPct(stats.Mean(classOM[c])))
		res.SetMetric("qs/"+c, stats.Mean(classQS[c]))
		res.SetMetric("opmodel/"+c, stats.Mean(classOM[c]))
	}
	res.Notes = append(res.Notes,
		"the operator model uses zero concurrent training samples; its gap on memory templates is the price of not learning")
	return res, nil
}
