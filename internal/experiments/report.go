package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable form of a set of experiment results,
// written by cmd/contender-bench -format json so downstream tooling (CI
// regression checks, plotting) can consume the reproduction without
// parsing tables.
type Report struct {
	// Experiments holds one entry per executed experiment, in paper order.
	Experiments []ReportEntry `json:"experiments"`
	// Sampling summarizes the environment's simulated sampling budget.
	Sampling SamplingBudget `json:"sampling"`
}

// ReportEntry serializes one experiment result.
type ReportEntry struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Paper   string             `json:"paper,omitempty"`
	Header  []string           `json:"header,omitempty"`
	Rows    [][]string         `json:"rows,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// SamplingBudget is the simulated time spent collecting training data.
type SamplingBudget struct {
	IsolatedHours float64 `json:"isolated_hours"`
	SpoilerHours  float64 `json:"spoiler_hours"`
	MixHours      float64 `json:"mix_hours"`
}

// NewReport assembles a report from results and the environment that
// produced them.
func NewReport(env *Env, results []*Result) *Report {
	r := &Report{
		Sampling: SamplingBudget{
			IsolatedHours: env.SimulatedSeconds.Isolated / 3600,
			SpoilerHours:  env.SimulatedSeconds.Spoiler / 3600,
			MixHours:      env.SimulatedSeconds.Mixes / 3600,
		},
	}
	for _, res := range results {
		r.Experiments = append(r.Experiments, ReportEntry{
			ID:      res.ID,
			Title:   res.Title,
			Paper:   res.Paper,
			Header:  res.Header,
			Rows:    res.Rows,
			Notes:   res.Notes,
			Metrics: res.Metrics,
		})
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("experiments: encoding report: %w", err)
	}
	return nil
}

// MetricLines renders every metric of every experiment as stable
// "id/metric value" lines, handy for diffing two runs.
func (r *Report) MetricLines() []string {
	var out []string
	for _, e := range r.Experiments {
		for _, k := range sortedKeys(e.Metrics) {
			out = append(out, fmt.Sprintf("%s/%s %.6f", e.ID, k, e.Metrics[k]))
		}
	}
	return out
}
