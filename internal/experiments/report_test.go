package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(env, []*Result{res})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].ID != "fig6" {
		t.Fatalf("round trip lost data: %+v", back.Experiments)
	}
	if back.Sampling.MixHours <= 0 {
		t.Fatal("sampling budget missing")
	}
	if len(back.Experiments[0].Metrics) == 0 {
		t.Fatal("metrics missing")
	}
}

func TestReportMetricLines(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(env, []*Result{res})
	lines := rep.MetricLines()
	if len(lines) == 0 {
		t.Fatal("no metric lines")
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatal("metric lines must be sorted for stable diffs")
		}
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "fig6/") {
			t.Fatalf("line %q missing experiment prefix", l)
		}
		if len(strings.Fields(l)) != 2 {
			t.Fatalf("line %q not 'key value'", l)
		}
	}
}
