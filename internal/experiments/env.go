// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) plus the quantitative claims embedded in the text.
// Each experiment is a named driver that runs against a shared Env — the
// profiled workload plus sampled steady-state mixes — and emits a rendered
// table along with machine-readable metrics for EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"contender/internal/core"
	"contender/internal/lhs"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Options controls how much sampling the environment performs. The defaults
// reproduce the paper's protocol (exhaustive pairs at MPL 2, four disjoint
// LHS designs at MPLs 3–5, five steady-state samples per stream).
type Options struct {
	// MPLs are the multiprogramming levels to sample. Default 2–5.
	MPLs []int
	// LHSRuns is the number of disjoint LHS designs per MPL ≥ 3. Default 4.
	LHSRuns int
	// SteadySamples is the per-stream sample count in steady state.
	// Default 5.
	SteadySamples int
	// IsolatedRuns is how many isolated executions are averaged for l_min
	// and p_t. Default 3.
	IsolatedRuns int
	// Seed drives the simulator and all sampling designs.
	Seed int64
	// Config overrides the host configuration (zero value = default host).
	Config *sim.Config
}

func (o Options) withDefaults() Options {
	if len(o.MPLs) == 0 {
		o.MPLs = []int{2, 3, 4, 5}
	}
	if o.LHSRuns <= 0 {
		o.LHSRuns = 4
	}
	if o.SteadySamples <= 0 {
		o.SteadySamples = 5
	}
	if o.IsolatedRuns <= 0 {
		o.IsolatedRuns = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// MixSample is one sampled steady-state mix with the per-slot observations
// it produced.
type MixSample struct {
	Mix lhs.Mix // template IDs (not indices)
	Obs []core.Observation
}

// Env is the shared experimental environment: the workload profiled in
// isolation and under the spoiler, plus steady-state mix samples at every
// MPL. Building it corresponds to the paper's entire training-data
// collection; on the simulator it takes seconds instead of weeks.
type Env struct {
	Opts     Options
	Workload *tpcds.Workload
	Engine   *sim.Engine
	Know     *core.Knowledge
	// Samples maps MPL → sampled mixes.
	Samples map[int][]MixSample
	// SimulatedSeconds tallies the virtual time each collection phase
	// consumed, for the Section 5.4 sampling-cost accounting.
	SimulatedSeconds struct {
		Isolated float64
		Spoiler  float64
		Mixes    float64
	}
}

// NewEnv profiles the default workload and samples mixes per opts.
func NewEnv(opts Options) (*Env, error) {
	return NewEnvWith(tpcds.NewWorkload(), opts)
}

// NewEnvWith profiles an explicit workload.
func NewEnvWith(w *tpcds.Workload, opts Options) (*Env, error) {
	opts = opts.withDefaults()
	cfg := sim.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	cfg.Seed = opts.Seed
	env := &Env{
		Opts:     opts,
		Workload: w,
		Engine:   sim.NewEngine(cfg),
		Know:     core.NewKnowledge(),
		Samples:  make(map[int][]MixSample),
	}
	if err := env.profile(); err != nil {
		return nil, err
	}
	if err := env.sampleMixes(); err != nil {
		return nil, err
	}
	return env, nil
}

// profile measures isolated statistics, per-table scan times, and spoiler
// latencies for every template.
func (e *Env) profile() error {
	// s_f for every fact table (and the restart pseudo-table).
	for _, t := range e.Workload.Catalog.FactTables() {
		s, err := e.Engine.MeasureScanTime(t.Name, t.Bytes())
		if err != nil {
			return fmt.Errorf("experiments: measuring scan of %s: %w", t.Name, err)
		}
		e.Know.SetScanTime(t.Name, s)
	}

	for _, tpl := range e.Workload.Templates() {
		spec := e.Workload.MustSpec(tpl.ID)
		var latSum, ioSum float64
		for i := 0; i < e.Opts.IsolatedRuns; i++ {
			res, err := e.Engine.RunIsolated(spec)
			if err != nil {
				return fmt.Errorf("experiments: isolated run of T%d: %w", tpl.ID, err)
			}
			latSum += res.Latency
			ioSum += res.IOTime
			e.SimulatedSeconds.Isolated += res.Latency
		}
		lmin := latSum / float64(e.Opts.IsolatedRuns)
		pt := ioSum / latSum

		ts := core.TemplateStats{
			ID:              tpl.ID,
			IsolatedLatency: lmin,
			IOFraction:      pt,
			WorkingSetBytes: spec.WorkingSetBytes,
			SpoilerLatency:  make(map[int]float64),
			Scans:           tpl.Plan.ScannedTables(),
			PlanSteps:       tpl.Plan.Steps(),
			RecordsAccessed: tpl.Plan.RecordsAccessed(),
		}
		// Restrict the scan set to fact tables: dimension scans are
		// buffer-resident and create no I/O interactions.
		for f := range ts.Scans {
			if t, ok := e.Workload.Catalog.Table(f); !ok || !t.Fact {
				delete(ts.Scans, f)
			}
		}
		for _, mpl := range e.Opts.MPLs {
			res, err := e.Engine.RunWithSpoiler(spec, mpl)
			if err != nil {
				return fmt.Errorf("experiments: spoiler run of T%d at MPL %d: %w", tpl.ID, mpl, err)
			}
			ts.SpoilerLatency[mpl] = res.Latency
			e.SimulatedSeconds.Spoiler += res.Latency
		}
		e.Know.AddTemplate(ts)
	}
	return nil
}

// sampleMixes collects steady-state measurements: exhaustive pairs at
// MPL 2, LHS designs above.
func (e *Env) sampleMixes() error {
	ids := e.Workload.IDs()
	for _, mpl := range e.Opts.MPLs {
		mixes := lhs.MixesFor(len(ids), mpl, e.Opts.LHSRuns, e.Opts.Seed+int64(mpl))
		for _, mix := range mixes {
			// Translate template indices to IDs.
			idMix := make(lhs.Mix, len(mix))
			for i, idx := range mix {
				idMix[i] = ids[idx]
			}
			sample, err := e.runMix(idMix)
			if err != nil {
				return err
			}
			e.Samples[mpl] = append(e.Samples[mpl], sample)
		}
	}
	return nil
}

// runMix executes one steady-state mix and converts per-stream mean
// latencies into observations.
func (e *Env) runMix(mix lhs.Mix) (MixSample, error) {
	specs := make([]sim.QuerySpec, len(mix))
	for i, id := range mix {
		specs[i] = e.Workload.MustSpec(id)
	}
	res, err := e.Engine.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples:     e.Opts.SteadySamples,
		WarmupSkip:  1,
		RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return MixSample{}, fmt.Errorf("experiments: steady state %v: %w", mix, err)
	}
	e.SimulatedSeconds.Mixes += res.Duration

	sample := MixSample{Mix: mix}
	for i, id := range mix {
		sample.Obs = append(sample.Obs, core.Observation{
			Primary:    id,
			Concurrent: mix.WithoutOne(id),
			Latency:    res.MeanLatency(i),
		})
	}
	return sample, nil
}

// Observations flattens all samples at an MPL into observations.
func (e *Env) Observations(mpl int) []core.Observation {
	var out []core.Observation
	for _, s := range e.Samples[mpl] {
		out = append(out, s.Obs...)
	}
	return out
}

// ObservationsFor returns the observations at mpl whose primary is the
// given template.
func (e *Env) ObservationsFor(mpl, primary int) []core.Observation {
	var out []core.Observation
	for _, o := range e.Observations(mpl) {
		if o.Primary == primary {
			out = append(out, o)
		}
	}
	return out
}

// AllObservations returns observations across all sampled MPLs.
func (e *Env) AllObservations() []core.Observation {
	var out []core.Observation
	for _, mpl := range e.Opts.MPLs {
		out = append(out, e.Observations(mpl)...)
	}
	return out
}

// TemplateIDs returns the workload's template IDs.
func (e *Env) TemplateIDs() []int { return e.Workload.IDs() }

// StageProfiles derives a template's per-operator isolated footprint — the
// input of the operator-level model — from its resource profile and the
// host configuration, the way EXPLAIN ANALYZE instrumentation would on a
// real system.
func (e *Env) StageProfiles(id int) []core.StageProfile {
	spec := e.Workload.MustSpec(id)
	cfg := e.Engine.Config()
	var out []core.StageProfile
	for _, st := range spec.Stages {
		var p core.StageProfile
		switch st.Kind {
		case sim.StageSeqIO:
			p = core.StageProfile{Class: core.StageClassSeqIO, Table: st.Table,
				IsolatedSeconds: st.Amount / cfg.SeqBandwidth}
		case sim.StageRandIO:
			p = core.StageProfile{Class: core.StageClassRandIO,
				IsolatedSeconds: st.Amount / cfg.RandIOPS}
		case sim.StageCachedIO:
			p = core.StageProfile{Class: core.StageClassCached,
				IsolatedSeconds: st.Amount / cfg.CachedBandwidth}
		case sim.StageCPU:
			p = core.StageProfile{Class: core.StageClassCPU, IsolatedSeconds: st.Amount}
		}
		out = append(out, p)
	}
	return out
}

// Rand returns a deterministic RNG derived from the environment seed and a
// purpose-specific salt, so experiments are reproducible independent of
// execution order.
func (e *Env) Rand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Opts.Seed*1315423911 + salt))
}

// sortedMPLs returns the sampled MPLs ascending.
func (e *Env) sortedMPLs() []int {
	out := append([]int(nil), e.Opts.MPLs...)
	sort.Ints(out)
	return out
}
