// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) plus the quantitative claims embedded in the text.
// Each experiment is a named driver that runs against a shared Env — the
// profiled workload plus sampled steady-state mixes — and emits a rendered
// table along with machine-readable metrics for EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"contender/internal/core"
	"contender/internal/lhs"
	"contender/internal/obs"
	"contender/internal/resilience"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Options controls how much sampling the environment performs. The defaults
// reproduce the paper's protocol (exhaustive pairs at MPL 2, four disjoint
// LHS designs at MPLs 3–5, five steady-state samples per stream).
type Options struct {
	// MPLs are the multiprogramming levels to sample. Default 2–5.
	MPLs []int
	// LHSRuns is the number of disjoint LHS designs per MPL ≥ 3. Default 4.
	LHSRuns int
	// SteadySamples is the per-stream sample count in steady state.
	// Default 5.
	SteadySamples int
	// IsolatedRuns is how many isolated executions are averaged for l_min
	// and p_t. Default 3.
	IsolatedRuns int
	// Seed drives the simulator and all sampling designs.
	Seed int64
	// Config overrides the host configuration (zero value = default host).
	Config *sim.Config
	// Workers bounds the sampling worker pool (see parallel.go). 0 uses
	// GOMAXPROCS. The collected data is identical for every value.
	Workers int
	// Retry, when set, wraps every sampling task in the policy's
	// retry/backoff loop and switches collection from fail-fast to
	// quarantine-and-degrade: a task whose retry budget is exhausted (or
	// that fails permanently) is dropped, collection continues on the rest,
	// and the loss is reported in Env.Resilience. Retried tasks rerun on a
	// fresh engine with the same derived seed, so retries never change the
	// collected data.
	Retry *resilience.RetryPolicy
	// Faults, when set, injects a seed-deterministic fault schedule into
	// the sampling tasks — the chaos harness behind the fault-injection
	// tests and the ext-chaos experiment. Injected faults fail or stall
	// tasks before the simulator runs; they never corrupt recorded values.
	Faults *resilience.FaultConfig
	// CheckpointPath, when non-empty, persists every completed task to this
	// file (atomically, as it completes) and resumes an interrupted
	// campaign from it on the next run with identical options. A resumed
	// campaign collects byte-identical data. The file is removed when the
	// campaign completes.
	CheckpointPath string
	// Observer, when set, receives a structured event stream for the whole
	// campaign: a train.campaign span wrapping the build, a train.scan/
	// train.profile/train.mix span per task, and train.retry/
	// train.quarantine/train.checkpoint/train.resume points from the
	// resilience machinery. Observation never changes what is collected —
	// the observer is outside the determinism boundary (it does not enter
	// the checkpoint fingerprint), and a panicking observer is isolated at
	// the emit site. With Workers == 1 the event order itself is
	// deterministic; wider pools emit a deterministic event multiset in
	// scheduling order.
	Observer obs.Observer
	// onTaskDone, when set (in-package tests only), fires after every task
	// resolves — completed or quarantined. It may be called concurrently
	// from pool workers.
	onTaskDone func(key string)
}

func (o Options) withDefaults() Options {
	if len(o.MPLs) == 0 {
		o.MPLs = []int{2, 3, 4, 5}
	}
	if o.LHSRuns <= 0 {
		o.LHSRuns = 4
	}
	if o.SteadySamples <= 0 {
		o.SteadySamples = 5
	}
	if o.IsolatedRuns <= 0 {
		o.IsolatedRuns = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// MixSample is one sampled steady-state mix with the per-slot observations
// it produced.
type MixSample struct {
	Mix lhs.Mix // template IDs (not indices)
	Obs []core.Observation
}

// TaskFailure is one sampling task the campaign terminally gave up on
// (retry budget exhausted or permanent failure).
type TaskFailure struct {
	Key    string `json:"key"`
	Reason string `json:"reason"`
}

// CollectionReport summarizes the resilience events of an Env build: what
// was retried, what was resumed from a checkpoint, and what coverage was
// lost to quarantine.
type CollectionReport struct {
	// Retries is the total number of extra attempts spent by the policy.
	Retries int `json:"retries"`
	// Resumed is the number of tasks replayed from the checkpoint.
	Resumed int `json:"resumed"`
	// Quarantined lists terminal task failures, in task order.
	Quarantined []TaskFailure `json:"quarantined,omitempty"`
	// DroppedMixes counts mixes lost to quarantine — failed outright or
	// containing a quarantined template.
	DroppedMixes int `json:"dropped_mixes"`
	// TotalTemplates and TrainedTemplates measure workload coverage.
	TotalTemplates   int `json:"total_templates"`
	TrainedTemplates int `json:"trained_templates"`
}

// Degraded reports whether the campaign lost any coverage.
func (r CollectionReport) Degraded() bool {
	return len(r.Quarantined) > 0 || r.DroppedMixes > 0
}

// Coverage is the fraction of the workload's templates that survived.
func (r CollectionReport) Coverage() float64 {
	if r.TotalTemplates == 0 {
		return 1
	}
	return float64(r.TrainedTemplates) / float64(r.TotalTemplates)
}

// Env is the shared experimental environment: the workload profiled in
// isolation and under the spoiler, plus steady-state mix samples at every
// MPL. Building it corresponds to the paper's entire training-data
// collection; on the simulator it takes seconds instead of weeks, and the
// collection fans out over a deterministic worker pool (parallel.go).
type Env struct {
	Opts     Options
	Workload *tpcds.Workload
	// Engine is the host used for post-build simulation (ground truth,
	// scheduling experiments). Training-data collection runs on per-task
	// engines instead; see parallel.go.
	Engine *sim.Engine
	Know   *core.Knowledge
	// Samples maps MPL → sampled mixes, in design order.
	Samples map[int][]MixSample
	// SimulatedSeconds tallies the virtual time each collection phase
	// consumed, for the Section 5.4 sampling-cost accounting.
	SimulatedSeconds struct {
		Isolated float64
		Spoiler  float64
		Mixes    float64
	}
	// Resilience reports how collection went under Options.Retry/Faults/
	// CheckpointPath: retries spent, tasks resumed, coverage lost.
	Resilience CollectionReport

	// baseCfg is the host configuration before per-task reseeding.
	baseCfg sim.Config
	// ckpt is the campaign checkpoint (nil without CheckpointPath).
	ckpt *envCheckpoint
	// injector is the fault injector (nil without Opts.Faults).
	injector *resilience.Injector
	// Flattened observation indexes, built once after sampling:
	// obsByMPL[mpl] is Samples[mpl] flattened; obsByPrimary[mpl][id] holds
	// the observations whose primary is id. Both views share backing
	// storage with the samples and are read-only.
	obsByMPL     map[int][]core.Observation
	obsByPrimary map[int]map[int][]core.Observation
}

// NewEnv profiles the default workload and samples mixes per opts.
func NewEnv(opts Options) (*Env, error) {
	return NewEnvWithContext(context.Background(), tpcds.NewWorkload(), opts)
}

// NewEnvContext is NewEnv with cancellation: the context is honored
// between sampling tasks and during retry backoff. Cancelling returns
// ctx.Err() with all completed tasks already persisted when
// opts.CheckpointPath is set, so the campaign can be resumed.
func NewEnvContext(ctx context.Context, opts Options) (*Env, error) {
	return NewEnvWithContext(ctx, tpcds.NewWorkload(), opts)
}

// NewEnvWith profiles an explicit workload.
func NewEnvWith(w *tpcds.Workload, opts Options) (*Env, error) {
	return NewEnvWithContext(context.Background(), w, opts)
}

// NewEnvWithContext profiles an explicit workload with cancellation.
func NewEnvWithContext(ctx context.Context, w *tpcds.Workload, opts Options) (*Env, error) {
	opts = opts.withDefaults()
	opts.Retry = observedRetry(opts.Retry, opts.Observer)
	cfg := sim.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	cfg.Seed = opts.Seed
	env := &Env{
		Opts:     opts,
		Workload: w,
		Engine:   sim.NewEngine(cfg),
		Know:     core.NewKnowledge(),
		Samples:  make(map[int][]MixSample),
		baseCfg:  cfg,
	}
	var start time.Time
	if opts.Observer != nil {
		start = time.Now() //contender:allow nodeterminism -- campaign span duration feeds observability only, never a canonical artifact
		obs.Emit(opts.Observer, obs.Event{Kind: obs.SpanBegin, Span: obs.SpanTrainCampaign})
	}
	err := env.collect(ctx)
	if opts.Observer != nil {
		obs.Emit(opts.Observer, obs.Event{
			Kind:  obs.SpanEnd,
			Span:  obs.SpanTrainCampaign,
			Value: float64(env.Resilience.TrainedTemplates),
			Dur:   time.Since(start), //contender:allow nodeterminism -- campaign span duration feeds observability only, never a canonical artifact
			Err:   obs.ErrLabel(err),
		})
	}
	if err != nil {
		return nil, err
	}
	env.buildObservationIndex()
	return env, nil
}

// observedRetry chains a train.retry emission onto the policy's OnRetry
// hook, copying the policy so the caller's value is never mutated. The
// retry schedule itself (delays, jitter, attempt budget) is unchanged.
func observedRetry(p *resilience.RetryPolicy, o obs.Observer) *resilience.RetryPolicy {
	if p == nil || o == nil {
		return p
	}
	rp := *p
	prev := rp.OnRetry
	rp.OnRetry = func(site string, retry int, delay time.Duration, err error) {
		if prev != nil {
			prev(site, retry, delay, err)
		}
		obs.Emit(o, obs.Event{
			Kind:    obs.Point,
			Span:    obs.PointTrainRetry,
			Key:     site,
			Attempt: retry,
			Value:   delay.Seconds(),
			Err:     obs.ErrLabel(err),
		})
	}
	return &rp
}

// emit forwards an event to the configured observer (no-op without one).
func (e *Env) emit(ev obs.Event) { obs.Emit(e.Opts.Observer, ev) }

// FaultStats returns what the configured fault injector actually injected
// (zero value without Opts.Faults).
func (e *Env) FaultStats() resilience.FaultStats {
	if e.injector == nil {
		return resilience.FaultStats{}
	}
	return e.injector.Stats()
}

// scanProfile is the result slot of one scan-time task.
type scanProfile struct {
	table   string
	seconds float64
}

// templateProfile is the result slot of one template-profiling task:
// isolated statistics plus the virtual seconds the measurements consumed.
type templateProfile struct {
	ts              core.TemplateStats
	isolatedSeconds float64
	spoilerSeconds  float64
}

// mixResult is the result slot of one steady-state mix task.
type mixResult struct {
	sample  MixSample
	seconds float64
}

// collect runs the full sampling campaign — scan times, per-template
// isolated+spoiler profiles, steady-state mixes — as one pool of
// independent tasks, then merges the results in canonical order. With
// Opts.Retry set, terminally failed tasks are quarantined and the merge
// degrades (templates dropped, their mixes dropped) instead of aborting;
// with Opts.CheckpointPath set, completed tasks are restored from the
// checkpoint instead of re-run.
func (e *Env) collect(ctx context.Context) error {
	facts := e.Workload.Catalog.FactTables()
	templates := e.Workload.Templates()
	designs := e.mixDesigns()

	scans := make([]scanProfile, len(facts))
	profiles := make([]templateProfile, len(templates))
	mixResults := make(map[int][]mixResult, len(designs))
	for _, mpl := range e.Opts.MPLs {
		mixResults[mpl] = make([]mixResult, len(designs[mpl]))
	}

	if e.Opts.Faults != nil {
		e.injector = resilience.NewInjector(*e.Opts.Faults)
	}
	failedSet := map[string]bool{}
	if e.Opts.CheckpointPath != "" {
		ck, err := loadEnvCheckpoint(e.Opts.CheckpointPath, envFingerprint(e.Opts, e.baseCfg, e.Workload))
		if err != nil {
			return err
		}
		e.ckpt = ck
		// Replay quarantine decisions so the resumed run skips the same
		// units of work instead of re-failing them.
		for _, f := range ck.state.Failed {
			failedSet[f.Key] = true
			e.Resilience.Quarantined = append(e.Resilience.Quarantined, f)
			e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainQuarantine, Key: f.Key, Err: f.Reason})
		}
	}

	var tasks []envTask
	for i, t := range facts {
		i, t := i, t
		key := "scan/" + t.Name
		if failedSet[key] {
			continue
		}
		if e.ckpt != nil {
			if v, ok := e.ckpt.state.Scans[key]; ok {
				scans[i] = scanProfile{table: t.Name, seconds: v}
				e.Resilience.Resumed++
				e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainResume, Key: key})
				continue
			}
		}
		task := envTask{
			key: key,
			run: func(eng *sim.Engine) error {
				s, err := eng.MeasureScanTime(t.Name, t.Bytes())
				if err != nil {
					return fmt.Errorf("measuring scan of %s: %w", t.Name, err)
				}
				scans[i] = scanProfile{table: t.Name, seconds: s}
				return nil
			},
		}
		if e.ckpt != nil {
			task.done = func() error {
				return e.ckpt.record(func(s *envCheckpointState) { s.Scans[key] = scans[i].seconds })
			}
		}
		tasks = append(tasks, task)
	}
	for i, tpl := range templates {
		i, tpl := i, tpl
		key := fmt.Sprintf("template/%d", tpl.ID)
		if failedSet[key] {
			continue
		}
		if e.ckpt != nil {
			if entry, ok := e.ckpt.state.Templates[key]; ok {
				profiles[i] = templateProfile{
					ts:              entry.Stats.Stats(),
					isolatedSeconds: entry.IsolatedSeconds,
					spoilerSeconds:  entry.SpoilerSeconds,
				}
				e.Resilience.Resumed++
				e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainResume, Key: key})
				continue
			}
		}
		task := envTask{
			key: key,
			run: func(eng *sim.Engine) error {
				p, err := e.profileTemplate(eng, tpl)
				if err != nil {
					return err
				}
				profiles[i] = p
				return nil
			},
		}
		if e.ckpt != nil {
			task.done = func() error {
				return e.ckpt.record(func(s *envCheckpointState) {
					s.Templates[key] = templateEntry{
						Stats:           core.NewTemplateSnapshot(profiles[i].ts),
						IsolatedSeconds: profiles[i].isolatedSeconds,
						SpoilerSeconds:  profiles[i].spoilerSeconds,
					}
				})
			}
		}
		tasks = append(tasks, task)
	}
	for _, mpl := range e.Opts.MPLs {
		mpl := mpl
		for i, mix := range designs[mpl] {
			i, mix := i, mix
			key := fmt.Sprintf("mix/%d/%d", mpl, i)
			if failedSet[key] {
				continue
			}
			if e.ckpt != nil {
				if entry, ok := e.ckpt.state.Mixes[key]; ok {
					mixResults[mpl][i] = mixResult{sample: mixSampleFromEntry(entry), seconds: entry.Seconds}
					e.Resilience.Resumed++
					e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainResume, Key: key})
					continue
				}
			}
			task := envTask{
				key: key,
				run: func(eng *sim.Engine) error {
					sample, dur, err := e.runMix(eng, mix)
					if err != nil {
						return err
					}
					mixResults[mpl][i] = mixResult{sample: sample, seconds: dur}
					return nil
				},
			}
			if e.ckpt != nil {
				task.done = func() error {
					return e.ckpt.record(func(s *envCheckpointState) {
						r := mixResults[mpl][i]
						entry := mixEntry{Mix: append([]int(nil), r.sample.Mix...), Seconds: r.seconds}
						for _, o := range r.sample.Obs {
							entry.Lats = append(entry.Lats, o.Latency)
						}
						s.Mixes[key] = entry
					})
				}
			}
			tasks = append(tasks, task)
		}
	}

	failures, err := e.runTasks(ctx, tasks)
	if err != nil {
		return err
	}
	e.Resilience.Quarantined = append(e.Resilience.Quarantined, failures...)

	// Templates whose profiling terminally failed are excluded from the
	// knowledge base, and every mix containing one is dropped: its
	// observations could neither be trained on (no continuum) nor
	// CQI-scored. Dropping at merge time keeps the surviving data exactly
	// what a fault-free campaign would have collected for those mixes.
	quarantinedTemplates := map[int]bool{}
	for _, f := range e.Resilience.Quarantined {
		var id int
		if n, _ := fmt.Sscanf(f.Key, "template/%d", &id); n == 1 {
			quarantinedTemplates[id] = true
		}
	}

	// Merge in canonical order so Knowledge, Samples, and the virtual-time
	// tallies are identical for every worker count.
	for _, s := range scans {
		if s.table == "" {
			continue // quarantined scan: CQI degrades without the shared-scan term
		}
		e.Know.SetScanTime(s.table, s.seconds)
	}
	trained := 0
	for _, p := range profiles {
		if p.ts.ID == 0 {
			continue // quarantined template
		}
		trained++
		e.Know.AddTemplate(p.ts)
		e.SimulatedSeconds.Isolated += p.isolatedSeconds
		e.SimulatedSeconds.Spoiler += p.spoilerSeconds
	}
	e.Resilience.TotalTemplates = len(templates)
	e.Resilience.TrainedTemplates = trained
	if trained < 2 {
		return resilience.Permanent(fmt.Errorf("experiments: only %d of %d templates survived sampling (need at least 2, %d tasks quarantined)",
			trained, len(templates), len(e.Resilience.Quarantined)))
	}
	for _, mpl := range e.Opts.MPLs {
		for _, r := range mixResults[mpl] {
			if r.sample.Mix == nil {
				e.Resilience.DroppedMixes++
				continue
			}
			dropped := false
			for _, id := range r.sample.Mix {
				if quarantinedTemplates[id] {
					dropped = true
					break
				}
			}
			if dropped {
				e.Resilience.DroppedMixes++
				continue
			}
			e.Samples[mpl] = append(e.Samples[mpl], r.sample)
			e.SimulatedSeconds.Mixes += r.seconds
		}
	}
	if e.ckpt != nil {
		e.ckpt.discard()
	}
	return nil
}

// mixSampleFromEntry rebuilds a mix sample from its checkpoint entry,
// through the same observation-construction code runMix uses — so resumed
// and freshly measured samples are indistinguishable.
func mixSampleFromEntry(entry mixEntry) MixSample {
	mix := lhs.Mix(append([]int(nil), entry.Mix...))
	sample := MixSample{Mix: mix}
	for i, id := range mix {
		sample.Obs = append(sample.Obs, core.Observation{
			Primary:    id,
			Concurrent: mix.WithoutOne(id),
			Latency:    entry.Lats[i],
		})
	}
	return sample
}

// mixDesigns computes the sampling design per MPL (exhaustive pairs at
// MPL 2, disjoint LHS designs above), with template indices translated to
// IDs. Designs are deterministic in (Opts.Seed, MPL) alone.
func (e *Env) mixDesigns() map[int][]lhs.Mix {
	ids := e.Workload.IDs()
	out := make(map[int][]lhs.Mix, len(e.Opts.MPLs))
	for _, mpl := range e.Opts.MPLs {
		mixes := lhs.MixesFor(len(ids), mpl, e.Opts.LHSRuns, e.Opts.Seed+int64(mpl))
		idMixes := make([]lhs.Mix, len(mixes))
		for i, mix := range mixes {
			idMix := make(lhs.Mix, len(mix))
			for j, idx := range mix {
				idMix[j] = ids[idx]
			}
			idMixes[i] = idMix
		}
		out[mpl] = idMixes
	}
	return out
}

// profileTemplate measures one template's isolated statistics and spoiler
// latencies on the task's private engine.
func (e *Env) profileTemplate(eng *sim.Engine, tpl tpcds.Template) (templateProfile, error) {
	spec := e.Workload.MustSpec(tpl.ID)
	var p templateProfile
	var latSum, ioSum float64
	for i := 0; i < e.Opts.IsolatedRuns; i++ {
		res, err := eng.RunIsolated(spec)
		if err != nil {
			return p, fmt.Errorf("isolated run of T%d: %w", tpl.ID, err)
		}
		latSum += res.Latency
		ioSum += res.IOTime
		p.isolatedSeconds += res.Latency
	}
	lmin := latSum / float64(e.Opts.IsolatedRuns)
	pt := ioSum / latSum

	ts := core.TemplateStats{
		ID:              tpl.ID,
		IsolatedLatency: lmin,
		IOFraction:      pt,
		WorkingSetBytes: spec.WorkingSetBytes,
		SpoilerLatency:  make(map[int]float64),
		Scans:           tpl.Plan.ScannedTables(),
		PlanSteps:       tpl.Plan.Steps(),
		RecordsAccessed: tpl.Plan.RecordsAccessed(),
	}
	// Restrict the scan set to fact tables: dimension scans are
	// buffer-resident and create no I/O interactions.
	for f := range ts.Scans {
		if t, ok := e.Workload.Catalog.Table(f); !ok || !t.Fact {
			delete(ts.Scans, f)
		}
	}
	for _, mpl := range e.Opts.MPLs {
		res, err := eng.RunWithSpoiler(spec, mpl)
		if err != nil {
			return p, fmt.Errorf("spoiler run of T%d at MPL %d: %w", tpl.ID, mpl, err)
		}
		ts.SpoilerLatency[mpl] = res.Latency
		p.spoilerSeconds += res.Latency
	}
	p.ts = ts
	return p, nil
}

// runMix executes one steady-state mix on the given engine and converts
// per-stream mean latencies into observations.
func (e *Env) runMix(eng *sim.Engine, mix lhs.Mix) (MixSample, float64, error) {
	specs := make([]sim.QuerySpec, len(mix))
	for i, id := range mix {
		specs[i] = e.Workload.MustSpec(id)
	}
	res, err := eng.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples:     e.Opts.SteadySamples,
		WarmupSkip:  1,
		RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return MixSample{}, 0, fmt.Errorf("steady state %v: %w", mix, err)
	}

	sample := MixSample{Mix: mix}
	for i, id := range mix {
		sample.Obs = append(sample.Obs, core.Observation{
			Primary:    id,
			Concurrent: mix.WithoutOne(id),
			Latency:    res.MeanLatency(i),
		})
	}
	return sample, res.Duration, nil
}

// buildObservationIndex flattens the samples into the per-MPL and
// per-primary views served by Observations and ObservationsFor.
func (e *Env) buildObservationIndex() {
	e.obsByMPL = make(map[int][]core.Observation, len(e.Samples))
	e.obsByPrimary = make(map[int]map[int][]core.Observation, len(e.Samples))
	for _, mpl := range e.Opts.MPLs {
		var flat []core.Observation
		byPrimary := make(map[int][]core.Observation)
		for _, s := range e.Samples[mpl] {
			flat = append(flat, s.Obs...)
			for _, o := range s.Obs {
				byPrimary[o.Primary] = append(byPrimary[o.Primary], o)
			}
		}
		e.obsByMPL[mpl] = flat
		e.obsByPrimary[mpl] = byPrimary
	}
}

// Observations returns all observations at an MPL, in sample order. The
// returned slice is shared with the Env's index and must not be mutated.
func (e *Env) Observations(mpl int) []core.Observation {
	if e.obsByMPL == nil {
		e.buildObservationIndex()
	}
	return e.obsByMPL[mpl]
}

// ObservationsFor returns the observations at mpl whose primary is the
// given template, served from the primary-keyed index (the experiment
// drivers call this once per template — re-flattening every sample per
// call made those loops quadratic). The returned slice is shared with the
// index and must not be mutated.
func (e *Env) ObservationsFor(mpl, primary int) []core.Observation {
	if e.obsByPrimary == nil {
		e.buildObservationIndex()
	}
	return e.obsByPrimary[mpl][primary]
}

// AllObservations returns observations across all sampled MPLs.
func (e *Env) AllObservations() []core.Observation {
	var out []core.Observation
	for _, mpl := range e.Opts.MPLs {
		out = append(out, e.Observations(mpl)...)
	}
	return out
}

// TemplateIDs returns the workload's template IDs.
func (e *Env) TemplateIDs() []int { return e.Workload.IDs() }

// MPLs returns the sampled multiprogramming levels in ascending order.
func (e *Env) MPLs() []int { return e.sortedMPLs() }

// StageProfiles derives a template's per-operator isolated footprint — the
// input of the operator-level model — from its resource profile and the
// host configuration, the way EXPLAIN ANALYZE instrumentation would on a
// real system.
func (e *Env) StageProfiles(id int) []core.StageProfile {
	spec := e.Workload.MustSpec(id)
	cfg := e.Engine.Config()
	var out []core.StageProfile
	for _, st := range spec.Stages {
		var p core.StageProfile
		switch st.Kind {
		case sim.StageSeqIO:
			p = core.StageProfile{Class: core.StageClassSeqIO, Table: st.Table,
				IsolatedSeconds: st.Amount / cfg.SeqBandwidth}
		case sim.StageRandIO:
			p = core.StageProfile{Class: core.StageClassRandIO,
				IsolatedSeconds: st.Amount / cfg.RandIOPS}
		case sim.StageCachedIO:
			p = core.StageProfile{Class: core.StageClassCached,
				IsolatedSeconds: st.Amount / cfg.CachedBandwidth}
		case sim.StageCPU:
			p = core.StageProfile{Class: core.StageClassCPU, IsolatedSeconds: st.Amount}
		}
		out = append(out, p)
	}
	return out
}

// Rand returns a deterministic RNG derived from the environment seed and a
// purpose-specific salt, so experiments are reproducible independent of
// execution order.
func (e *Env) Rand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Opts.Seed*1315423911 + salt))
}

// sortedMPLs returns the sampled MPLs ascending.
func (e *Env) sortedMPLs() []int {
	out := append([]int(nil), e.Opts.MPLs...)
	sort.Ints(out)
	return out
}
