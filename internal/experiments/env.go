// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) plus the quantitative claims embedded in the text.
// Each experiment is a named driver that runs against a shared Env — the
// profiled workload plus sampled steady-state mixes — and emits a rendered
// table along with machine-readable metrics for EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"contender/internal/core"
	"contender/internal/lhs"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Options controls how much sampling the environment performs. The defaults
// reproduce the paper's protocol (exhaustive pairs at MPL 2, four disjoint
// LHS designs at MPLs 3–5, five steady-state samples per stream).
type Options struct {
	// MPLs are the multiprogramming levels to sample. Default 2–5.
	MPLs []int
	// LHSRuns is the number of disjoint LHS designs per MPL ≥ 3. Default 4.
	LHSRuns int
	// SteadySamples is the per-stream sample count in steady state.
	// Default 5.
	SteadySamples int
	// IsolatedRuns is how many isolated executions are averaged for l_min
	// and p_t. Default 3.
	IsolatedRuns int
	// Seed drives the simulator and all sampling designs.
	Seed int64
	// Config overrides the host configuration (zero value = default host).
	Config *sim.Config
	// Workers bounds the sampling worker pool (see parallel.go). 0 uses
	// GOMAXPROCS. The collected data is identical for every value.
	Workers int
}

func (o Options) withDefaults() Options {
	if len(o.MPLs) == 0 {
		o.MPLs = []int{2, 3, 4, 5}
	}
	if o.LHSRuns <= 0 {
		o.LHSRuns = 4
	}
	if o.SteadySamples <= 0 {
		o.SteadySamples = 5
	}
	if o.IsolatedRuns <= 0 {
		o.IsolatedRuns = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// MixSample is one sampled steady-state mix with the per-slot observations
// it produced.
type MixSample struct {
	Mix lhs.Mix // template IDs (not indices)
	Obs []core.Observation
}

// Env is the shared experimental environment: the workload profiled in
// isolation and under the spoiler, plus steady-state mix samples at every
// MPL. Building it corresponds to the paper's entire training-data
// collection; on the simulator it takes seconds instead of weeks, and the
// collection fans out over a deterministic worker pool (parallel.go).
type Env struct {
	Opts     Options
	Workload *tpcds.Workload
	// Engine is the host used for post-build simulation (ground truth,
	// scheduling experiments). Training-data collection runs on per-task
	// engines instead; see parallel.go.
	Engine *sim.Engine
	Know   *core.Knowledge
	// Samples maps MPL → sampled mixes, in design order.
	Samples map[int][]MixSample
	// SimulatedSeconds tallies the virtual time each collection phase
	// consumed, for the Section 5.4 sampling-cost accounting.
	SimulatedSeconds struct {
		Isolated float64
		Spoiler  float64
		Mixes    float64
	}

	// baseCfg is the host configuration before per-task reseeding.
	baseCfg sim.Config
	// Flattened observation indexes, built once after sampling:
	// obsByMPL[mpl] is Samples[mpl] flattened; obsByPrimary[mpl][id] holds
	// the observations whose primary is id. Both views share backing
	// storage with the samples and are read-only.
	obsByMPL     map[int][]core.Observation
	obsByPrimary map[int]map[int][]core.Observation
}

// NewEnv profiles the default workload and samples mixes per opts.
func NewEnv(opts Options) (*Env, error) {
	return NewEnvWith(tpcds.NewWorkload(), opts)
}

// NewEnvWith profiles an explicit workload.
func NewEnvWith(w *tpcds.Workload, opts Options) (*Env, error) {
	opts = opts.withDefaults()
	cfg := sim.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	cfg.Seed = opts.Seed
	env := &Env{
		Opts:     opts,
		Workload: w,
		Engine:   sim.NewEngine(cfg),
		Know:     core.NewKnowledge(),
		Samples:  make(map[int][]MixSample),
		baseCfg:  cfg,
	}
	if err := env.collect(); err != nil {
		return nil, err
	}
	env.buildObservationIndex()
	return env, nil
}

// scanProfile is the result slot of one scan-time task.
type scanProfile struct {
	table   string
	seconds float64
}

// templateProfile is the result slot of one template-profiling task:
// isolated statistics plus the virtual seconds the measurements consumed.
type templateProfile struct {
	ts              core.TemplateStats
	isolatedSeconds float64
	spoilerSeconds  float64
}

// mixResult is the result slot of one steady-state mix task.
type mixResult struct {
	sample  MixSample
	seconds float64
}

// collect runs the full sampling campaign — scan times, per-template
// isolated+spoiler profiles, steady-state mixes — as one pool of
// independent tasks, then merges the results in canonical order.
func (e *Env) collect() error {
	facts := e.Workload.Catalog.FactTables()
	templates := e.Workload.Templates()
	designs := e.mixDesigns()

	scans := make([]scanProfile, len(facts))
	profiles := make([]templateProfile, len(templates))
	mixResults := make(map[int][]mixResult, len(designs))
	for _, mpl := range e.Opts.MPLs {
		mixResults[mpl] = make([]mixResult, len(designs[mpl]))
	}

	var tasks []envTask
	for i, t := range facts {
		i, t := i, t
		tasks = append(tasks, envTask{
			key: "scan/" + t.Name,
			run: func(eng *sim.Engine) error {
				s, err := eng.MeasureScanTime(t.Name, t.Bytes())
				if err != nil {
					return fmt.Errorf("measuring scan of %s: %w", t.Name, err)
				}
				scans[i] = scanProfile{table: t.Name, seconds: s}
				return nil
			},
		})
	}
	for i, tpl := range templates {
		i, tpl := i, tpl
		tasks = append(tasks, envTask{
			key: fmt.Sprintf("template/%d", tpl.ID),
			run: func(eng *sim.Engine) error {
				p, err := e.profileTemplate(eng, tpl)
				if err != nil {
					return err
				}
				profiles[i] = p
				return nil
			},
		})
	}
	for _, mpl := range e.Opts.MPLs {
		mpl := mpl
		for i, mix := range designs[mpl] {
			i, mix := i, mix
			tasks = append(tasks, envTask{
				key: fmt.Sprintf("mix/%d/%d", mpl, i),
				run: func(eng *sim.Engine) error {
					sample, dur, err := e.runMix(eng, mix)
					if err != nil {
						return err
					}
					mixResults[mpl][i] = mixResult{sample: sample, seconds: dur}
					return nil
				},
			})
		}
	}

	if err := e.runTasks(tasks); err != nil {
		return err
	}

	// Merge in canonical order so Knowledge, Samples, and the virtual-time
	// tallies are identical for every worker count.
	for _, s := range scans {
		e.Know.SetScanTime(s.table, s.seconds)
	}
	for _, p := range profiles {
		e.Know.AddTemplate(p.ts)
		e.SimulatedSeconds.Isolated += p.isolatedSeconds
		e.SimulatedSeconds.Spoiler += p.spoilerSeconds
	}
	for _, mpl := range e.Opts.MPLs {
		for _, r := range mixResults[mpl] {
			e.Samples[mpl] = append(e.Samples[mpl], r.sample)
			e.SimulatedSeconds.Mixes += r.seconds
		}
	}
	return nil
}

// mixDesigns computes the sampling design per MPL (exhaustive pairs at
// MPL 2, disjoint LHS designs above), with template indices translated to
// IDs. Designs are deterministic in (Opts.Seed, MPL) alone.
func (e *Env) mixDesigns() map[int][]lhs.Mix {
	ids := e.Workload.IDs()
	out := make(map[int][]lhs.Mix, len(e.Opts.MPLs))
	for _, mpl := range e.Opts.MPLs {
		mixes := lhs.MixesFor(len(ids), mpl, e.Opts.LHSRuns, e.Opts.Seed+int64(mpl))
		idMixes := make([]lhs.Mix, len(mixes))
		for i, mix := range mixes {
			idMix := make(lhs.Mix, len(mix))
			for j, idx := range mix {
				idMix[j] = ids[idx]
			}
			idMixes[i] = idMix
		}
		out[mpl] = idMixes
	}
	return out
}

// profileTemplate measures one template's isolated statistics and spoiler
// latencies on the task's private engine.
func (e *Env) profileTemplate(eng *sim.Engine, tpl tpcds.Template) (templateProfile, error) {
	spec := e.Workload.MustSpec(tpl.ID)
	var p templateProfile
	var latSum, ioSum float64
	for i := 0; i < e.Opts.IsolatedRuns; i++ {
		res, err := eng.RunIsolated(spec)
		if err != nil {
			return p, fmt.Errorf("isolated run of T%d: %w", tpl.ID, err)
		}
		latSum += res.Latency
		ioSum += res.IOTime
		p.isolatedSeconds += res.Latency
	}
	lmin := latSum / float64(e.Opts.IsolatedRuns)
	pt := ioSum / latSum

	ts := core.TemplateStats{
		ID:              tpl.ID,
		IsolatedLatency: lmin,
		IOFraction:      pt,
		WorkingSetBytes: spec.WorkingSetBytes,
		SpoilerLatency:  make(map[int]float64),
		Scans:           tpl.Plan.ScannedTables(),
		PlanSteps:       tpl.Plan.Steps(),
		RecordsAccessed: tpl.Plan.RecordsAccessed(),
	}
	// Restrict the scan set to fact tables: dimension scans are
	// buffer-resident and create no I/O interactions.
	for f := range ts.Scans {
		if t, ok := e.Workload.Catalog.Table(f); !ok || !t.Fact {
			delete(ts.Scans, f)
		}
	}
	for _, mpl := range e.Opts.MPLs {
		res, err := eng.RunWithSpoiler(spec, mpl)
		if err != nil {
			return p, fmt.Errorf("spoiler run of T%d at MPL %d: %w", tpl.ID, mpl, err)
		}
		ts.SpoilerLatency[mpl] = res.Latency
		p.spoilerSeconds += res.Latency
	}
	p.ts = ts
	return p, nil
}

// runMix executes one steady-state mix on the given engine and converts
// per-stream mean latencies into observations.
func (e *Env) runMix(eng *sim.Engine, mix lhs.Mix) (MixSample, float64, error) {
	specs := make([]sim.QuerySpec, len(mix))
	for i, id := range mix {
		specs[i] = e.Workload.MustSpec(id)
	}
	res, err := eng.RunSteadyState(specs, sim.SteadyStateOptions{
		Samples:     e.Opts.SteadySamples,
		WarmupSkip:  1,
		RestartCost: tpcds.RestartCost(),
	})
	if err != nil {
		return MixSample{}, 0, fmt.Errorf("steady state %v: %w", mix, err)
	}

	sample := MixSample{Mix: mix}
	for i, id := range mix {
		sample.Obs = append(sample.Obs, core.Observation{
			Primary:    id,
			Concurrent: mix.WithoutOne(id),
			Latency:    res.MeanLatency(i),
		})
	}
	return sample, res.Duration, nil
}

// buildObservationIndex flattens the samples into the per-MPL and
// per-primary views served by Observations and ObservationsFor.
func (e *Env) buildObservationIndex() {
	e.obsByMPL = make(map[int][]core.Observation, len(e.Samples))
	e.obsByPrimary = make(map[int]map[int][]core.Observation, len(e.Samples))
	for _, mpl := range e.Opts.MPLs {
		var flat []core.Observation
		byPrimary := make(map[int][]core.Observation)
		for _, s := range e.Samples[mpl] {
			flat = append(flat, s.Obs...)
			for _, o := range s.Obs {
				byPrimary[o.Primary] = append(byPrimary[o.Primary], o)
			}
		}
		e.obsByMPL[mpl] = flat
		e.obsByPrimary[mpl] = byPrimary
	}
}

// Observations returns all observations at an MPL, in sample order. The
// returned slice is shared with the Env's index and must not be mutated.
func (e *Env) Observations(mpl int) []core.Observation {
	if e.obsByMPL == nil {
		e.buildObservationIndex()
	}
	return e.obsByMPL[mpl]
}

// ObservationsFor returns the observations at mpl whose primary is the
// given template, served from the primary-keyed index (the experiment
// drivers call this once per template — re-flattening every sample per
// call made those loops quadratic). The returned slice is shared with the
// index and must not be mutated.
func (e *Env) ObservationsFor(mpl, primary int) []core.Observation {
	if e.obsByPrimary == nil {
		e.buildObservationIndex()
	}
	return e.obsByPrimary[mpl][primary]
}

// AllObservations returns observations across all sampled MPLs.
func (e *Env) AllObservations() []core.Observation {
	var out []core.Observation
	for _, mpl := range e.Opts.MPLs {
		out = append(out, e.Observations(mpl)...)
	}
	return out
}

// TemplateIDs returns the workload's template IDs.
func (e *Env) TemplateIDs() []int { return e.Workload.IDs() }

// StageProfiles derives a template's per-operator isolated footprint — the
// input of the operator-level model — from its resource profile and the
// host configuration, the way EXPLAIN ANALYZE instrumentation would on a
// real system.
func (e *Env) StageProfiles(id int) []core.StageProfile {
	spec := e.Workload.MustSpec(id)
	cfg := e.Engine.Config()
	var out []core.StageProfile
	for _, st := range spec.Stages {
		var p core.StageProfile
		switch st.Kind {
		case sim.StageSeqIO:
			p = core.StageProfile{Class: core.StageClassSeqIO, Table: st.Table,
				IsolatedSeconds: st.Amount / cfg.SeqBandwidth}
		case sim.StageRandIO:
			p = core.StageProfile{Class: core.StageClassRandIO,
				IsolatedSeconds: st.Amount / cfg.RandIOPS}
		case sim.StageCachedIO:
			p = core.StageProfile{Class: core.StageClassCached,
				IsolatedSeconds: st.Amount / cfg.CachedBandwidth}
		case sim.StageCPU:
			p = core.StageProfile{Class: core.StageClassCPU, IsolatedSeconds: st.Amount}
		}
		out = append(out, p)
	}
	return out
}

// Rand returns a deterministic RNG derived from the environment seed and a
// purpose-specific salt, so experiments are reproducible independent of
// execution order.
func (e *Env) Rand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Opts.Seed*1315423911 + salt))
}

// sortedMPLs returns the sampled MPLs ascending.
func (e *Env) sortedMPLs() []int {
	out := append([]int(nil), e.Opts.MPLs...)
	sort.Ints(out)
	return out
}
