package experiments

import (
	"fmt"
	"sort"

	"contender/internal/core"
	"contender/internal/ml"
	"contender/internal/qep"
	"contender/internal/resilience"
	"contender/internal/stats"
)

// This file reproduces Section 3: adapting the isolated-query ML predictors
// (KCCA, SVM) to concurrency via 4n QEP feature vectors, on static
// workloads (same templates in train and test) and on new templates.

// maxMLTrain caps the ML training-set size. Kernel methods scale
// cubically with the sample count, and the paper itself trains on 250
// mixes; larger sets add cost without changing the outcome.
const maxMLTrain = 300

// subsample deterministically reduces a training set to at most maxMLTrain
// samples.
func subsample(env *Env, salt int64, xs [][]float64, ys []float64) ([][]float64, []float64) {
	if len(xs) <= maxMLTrain {
		return xs, ys
	}
	idx := env.Rand(salt).Perm(len(xs))[:maxMLTrain]
	outX := make([][]float64, len(idx))
	outY := make([]float64, len(idx))
	for i, j := range idx {
		outX[i], outY[i] = xs[j], ys[j]
	}
	return outX, outY
}

// mixFeatures builds the 4n feature vector of an observation: the primary's
// plan features concatenated with the summed features of the concurrent
// plans.
func mixFeatures(env *Env, space *qep.FeatureSpace, o core.Observation) []float64 {
	primary := env.Workload.Plan(o.Primary)
	concurrent := make([]*qep.Plan, len(o.Concurrent))
	for i, id := range o.Concurrent {
		concurrent[i] = env.Workload.Plan(id)
	}
	return space.ExtractMix(primary, concurrent)
}

// Sec3Static reproduces the static-workload study: train on 250 MPL-2
// mixes, test on 75 (a 3.3:1 ratio), same templates on both sides.
func Sec3Static(env *Env) (*Result, error) {
	const mpl = 2
	samples := env.Samples[mpl]
	if len(samples) < 10 {
		return nil, fmt.Errorf("experiments: %w: need MPL-2 samples, have %d", core.ErrUntrainedMPL, len(samples))
	}
	space := qep.NewFeatureSpace(env.Workload.Plans())

	// Split mixes (not observations) so both slots of a mix land on the
	// same side, then collect per-slot observations.
	idx := env.Rand(3).Perm(len(samples))
	cut := len(samples) * 250 / 325
	if cut >= len(samples) {
		cut = len(samples) - 1
	}
	var trainX, testX [][]float64
	var trainY, testY []float64
	for pos, i := range idx {
		for _, o := range samples[i].Obs {
			f := mixFeatures(env, space, o)
			if pos < cut {
				trainX = append(trainX, f)
				trainY = append(trainY, o.Latency)
			} else {
				testX = append(testX, f)
				testY = append(testY, o.Latency)
			}
		}
	}

	res := &Result{
		ID:     "sec3static",
		Title:  "ML baselines on a static workload at MPL 2",
		Paper:  "KCCA 32% MRE, SVM 21% MRE (250 train / 75 test mixes)",
		Header: []string{"Learner", "MRE", "Train mixes", "Test mixes"},
	}

	trainX, trainY = subsample(env, 31, trainX, trainY)

	kcca := ml.NewKCCA()
	if err := kcca.Fit(trainX, trainY); err != nil {
		return nil, fmt.Errorf("experiments: KCCA fit: %w", err)
	}
	kccaMRE := mreOf(kcca.Predict, testX, testY)
	res.AddRow("KCCA", fmtPct(kccaMRE), fmt.Sprintf("%d", cut), fmt.Sprintf("%d", len(samples)-cut))
	res.SetMetric("mre/kcca", kccaMRE)

	svm := ml.NewSVM()
	if err := svm.Fit(trainX, trainY); err != nil {
		return nil, fmt.Errorf("experiments: SVM fit: %w", err)
	}
	svmMRE := mreOf(svm.Predict, testX, testY)
	res.AddRow("SVM", fmtPct(svmMRE), fmt.Sprintf("%d", cut), fmt.Sprintf("%d", len(samples)-cut))
	res.SetMetric("mre/svm", svmMRE)
	return res, nil
}

func mreOf(predict func([]float64) float64, xs [][]float64, ys []float64) float64 {
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = predict(x)
	}
	return stats.MRE(ys, pred)
}

// MLSubset computes the Figure 3 workload: templates whose plan features
// all appear in at least one other template (the paper drops 25 → 17 by
// the same criterion).
func MLSubset(env *Env) []int {
	var keep []int
	for _, id := range env.TemplateIDs() {
		var others []*qep.Plan
		for _, other := range env.TemplateIDs() {
			if other != id {
				others = append(others, env.Workload.Plan(other))
			}
		}
		space := qep.NewFeatureSpace(others)
		if len(space.UnseenSteps(env.Workload.Plan(id))) == 0 {
			keep = append(keep, id)
		}
	}
	sort.Ints(keep)
	return keep
}

// Fig3 reproduces the new-template ML study: leave-one-out over the
// feature-covered subset at MPL 2; train on every mix not containing the
// held-out template, test on the mixes where it is the primary.
func Fig3(env *Env) (*Result, error) {
	const mpl = 2
	subset := MLSubset(env)
	if len(subset) < 3 {
		return nil, resilience.Permanent(fmt.Errorf("experiments: ML subset too small: %v", subset))
	}
	inSubset := make(map[int]bool)
	for _, id := range subset {
		inSubset[id] = true
	}
	space := qep.NewFeatureSpace(env.Workload.Plans())

	res := &Result{
		ID:     "fig3",
		Title:  "ML baselines on new templates at MPL 2 (leave-one-out)",
		Paper:  "neither KCCA nor SVM predicts unseen templates well; per-template errors reach ~100%",
		Header: []string{"Template", "KCCA", "SVM"},
	}

	var kccaErrs, svmErrs []float64
	for _, target := range subset {
		var trainX [][]float64
		var trainY []float64
		var testX [][]float64
		var testY []float64
		for _, s := range env.Samples[mpl] {
			if s.Mix.Contains(target) {
				for _, o := range s.Obs {
					if o.Primary == target {
						testX = append(testX, mixFeatures(env, space, o))
						testY = append(testY, o.Latency)
					}
				}
				continue
			}
			for _, o := range s.Obs {
				if !inSubset[o.Primary] {
					continue
				}
				trainX = append(trainX, mixFeatures(env, space, o))
				trainY = append(trainY, o.Latency)
			}
		}
		if len(testX) == 0 || len(trainX) < 10 {
			continue
		}
		trainX, trainY = subsample(env, int64(37+target), trainX, trainY)

		kcca := ml.NewKCCA()
		if err := kcca.Fit(trainX, trainY); err != nil {
			return nil, err
		}
		ke := mreOf(kcca.Predict, testX, testY)

		svm := ml.NewSVM()
		if err := svm.Fit(trainX, trainY); err != nil {
			return nil, err
		}
		se := mreOf(svm.Predict, testX, testY)

		res.AddRow(fmt.Sprintf("%d", target), fmtPct(ke), fmtPct(se))
		res.SetMetric(fmt.Sprintf("kcca/t%d", target), ke)
		res.SetMetric(fmt.Sprintf("svm/t%d", target), se)
		kccaErrs = append(kccaErrs, ke)
		svmErrs = append(svmErrs, se)
	}
	res.AddRow("Avg", fmtPct(stats.Mean(kccaErrs)), fmtPct(stats.Mean(svmErrs)))
	res.SetMetric("kcca/avg", stats.Mean(kccaErrs))
	res.SetMetric("svm/avg", stats.Mean(svmErrs))
	res.Notes = append(res.Notes,
		fmt.Sprintf("subset of %d templates whose plan features appear in at least one other template: %v", len(subset), subset))
	return res, nil
}
