package experiments

import (
	"fmt"
	"math"

	"contender/internal/core"
	"contender/internal/stats"
)

// This file reproduces the Query Sensitivity studies: Figure 4 (coefficient
// relationship), Table 3 (feature correlations), and Figure 8 (prediction
// accuracy for known and unknown templates).

// fitQSModels fits one QS model per template at one MPL from all its
// observations, dropping continuum outliers as the paper does.
func fitQSModels(env *Env, mpl int) (map[int]core.QSModel, error) {
	out := make(map[int]core.QSModel)
	for _, id := range env.TemplateIDs() {
		m, err := fitQSFor(env, mpl, id, nil)
		if err != nil {
			continue
		}
		out[id] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: %w: no QS models could be fitted at MPL %d", core.ErrUntrainedMPL, mpl)
	}
	return out, nil
}

// fitQSFor fits a QS model for one template, optionally restricted to a
// subset of its observations (obsIdx indexes into ObservationsFor's order;
// nil means all).
func fitQSFor(env *Env, mpl, id int, obsIdx []int) (core.QSModel, error) {
	obs := env.ObservationsFor(mpl, id)
	cont, ok := env.Know.ContinuumFor(id, mpl)
	if !ok {
		return core.QSModel{}, fmt.Errorf("experiments: %w: no continuum for T%d at MPL %d", core.ErrUntrainedMPL, id, mpl)
	}
	use := obs
	if obsIdx != nil {
		use = make([]core.Observation, len(obsIdx))
		for i, j := range obsIdx {
			use[i] = obs[j]
		}
	}
	var rs, cs []float64
	for _, o := range use {
		if cont.IsOutlier(o.Latency) {
			continue
		}
		rs = append(rs, env.Know.CQI(o.Primary, o.Concurrent))
		cs = append(cs, cont.Point(o.Latency))
	}
	return core.FitQS(rs, cs)
}

// referenceSet assembles a ReferenceModels from fitted QS models,
// excluding the given template IDs (for leave-out protocols).
func referenceSet(env *Env, mpl int, models map[int]core.QSModel, exclude map[int]bool) *core.ReferenceModels {
	refs := core.NewReferenceModels(env.Know, mpl)
	for id, m := range models {
		if !exclude[id] {
			refs.Add(id, m)
		}
	}
	return refs
}

// Fig4 reproduces Figure 4: the linear relationship between QS slopes and
// y-intercepts at MPL 2.
func Fig4(env *Env) (*Result, error) {
	const mpl = 2
	models, err := fitQSModels(env, mpl)
	if err != nil {
		return nil, err
	}
	refs := referenceSet(env, mpl, models, nil)
	fit, r2, err := refs.CoefficientRelation()
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig4",
		Title:  "QS coefficient relationship at MPL 2",
		Paper:  "y-intercept and slope lie close to a common trend line (R² ≈ 0.67); negative intercepts mark templates sped up by sharing",
		Header: []string{"Template", "slope µ", "intercept b"},
	}
	negIntercepts := 0
	for _, id := range refs.IDs() {
		m, _ := refs.Model(id)
		res.AddRow(fmt.Sprintf("%d", id), fmtF(m.Mu), fmtF(m.B))
		if m.B < 0 {
			negIntercepts++
		}
	}
	res.AddRow("trend", fmt.Sprintf("b = %.3f·µ + %.3f", fit.Slope, fit.Intercept), fmt.Sprintf("R²=%.3f", r2))
	res.SetMetric("r2", r2)
	res.SetMetric("trend/slope", fit.Slope)
	res.SetMetric("negative-intercepts", float64(negIntercepts))
	return res, nil
}

// Table3 reproduces Table 3: signed R² of linear regressions correlating
// template features with the QS coefficients at MPL 2. Following the
// paper's presentation, R² carries the sign of the correlation.
func Table3(env *Env) (*Result, error) {
	const mpl = 2
	models, err := fitQSModels(env, mpl)
	if err != nil {
		return nil, err
	}

	type feature struct {
		name string
		get  func(core.TemplateStats) float64
	}
	features := []feature{
		{"% execution time spent on I/O", func(t core.TemplateStats) float64 { return t.IOFraction }},
		{"Max working set", func(t core.TemplateStats) float64 { return t.WorkingSetBytes }},
		{"Query plan steps", func(t core.TemplateStats) float64 { return float64(t.PlanSteps) }},
		{"Records accessed", func(t core.TemplateStats) float64 { return t.RecordsAccessed }},
		{"Isolated latency", func(t core.TemplateStats) float64 { return t.IsolatedLatency }},
		{"Spoiler latency", func(t core.TemplateStats) float64 { return t.SpoilerLatency[mpl] }},
		{"Spoiler slowdown", func(t core.TemplateStats) float64 { return t.SpoilerSlowdown(mpl) }},
	}

	var ids []int
	var mus, bs []float64
	for _, id := range env.TemplateIDs() {
		if m, ok := models[id]; ok {
			ids = append(ids, id)
			mus = append(mus, m.Mu)
			bs = append(bs, m.B)
		}
	}

	res := &Result{
		ID:     "table3",
		Title:  "Signed R² of template features vs. QS coefficients (MPL 2)",
		Paper:  "isolated latency correlates best: b 0.36, µ −0.51; fine-grained features (I/O time, working set, plan steps, records) correlate poorly",
		Header: []string{"Feature", "Y-intercept b", "Slope µ"},
	}
	for _, f := range features {
		xs := make([]float64, len(ids))
		for i, id := range ids {
			xs[i] = f.get(env.Know.MustTemplate(id))
		}
		r2b := signedR2(xs, bs)
		r2mu := signedR2(xs, mus)
		res.AddRow(f.name, fmtF(r2b), fmtF(r2mu))
		res.SetMetric("b/"+f.name, r2b)
		res.SetMetric("mu/"+f.name, r2mu)
	}
	return res, nil
}

// signedR2 is R² of the univariate fit carrying the correlation's sign.
func signedR2(xs, ys []float64) float64 {
	r2 := stats.LinearR2(xs, ys)
	if stats.Pearson(xs, ys) < 0 {
		return -r2
	}
	return r2
}

// Fig8 reproduces Figure 8: latency MRE at MPLs 2–5 for Known-Templates
// (QS models fitted on the template's own sampled mixes, k-fold CV),
// Unknown-Y (µ from the template's own model, b transferred from the
// coefficient relationship), and Unknown-QS (full QS model estimated from
// isolated latency alone — Contender's ad-hoc path).
func Fig8(env *Env) (*Result, error) {
	res := &Result{
		ID:     "fig8",
		Title:  "Latency MRE for known and unknown templates",
		Paper:  "Known 19%, Unknown-Y 23%, Unknown-QS 25% on average",
		Header: []string{"MPL", "Known-Templates", "Unknown-Y", "Unknown-QS"},
	}
	var knownAll, unkYAll, unkQSAll []float64
	for _, mpl := range env.sortedMPLs() {
		known := fig8Known(env, mpl)
		unkY, unkQS, err := fig8Unknown(env, mpl)
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprintf("%d", mpl), fmtPct(known), fmtPct(unkY), fmtPct(unkQS))
		res.SetMetric(fmt.Sprintf("known/mpl%d", mpl), known)
		res.SetMetric(fmt.Sprintf("unknown-y/mpl%d", mpl), unkY)
		res.SetMetric(fmt.Sprintf("unknown-qs/mpl%d", mpl), unkQS)
		knownAll = append(knownAll, known)
		unkYAll = append(unkYAll, unkY)
		unkQSAll = append(unkQSAll, unkQS)
	}
	res.AddRow("Avg", fmtPct(stats.Mean(knownAll)), fmtPct(stats.Mean(unkYAll)), fmtPct(stats.Mean(unkQSAll)))
	res.SetMetric("known/avg", stats.Mean(knownAll))
	res.SetMetric("unknown-y/avg", stats.Mean(unkYAll))
	res.SetMetric("unknown-qs/avg", stats.Mean(unkQSAll))
	return res, nil
}

// fig8Known: per template, 5-fold CV over its observations; QS fitted on
// the train folds predicts the held-out mixes.
func fig8Known(env *Env, mpl int) float64 {
	var errs []float64
	for _, id := range env.TemplateIDs() {
		obs := env.ObservationsFor(mpl, id)
		cont, ok := env.Know.ContinuumFor(id, mpl)
		if !ok || len(obs) < 5 {
			continue
		}
		var observed, predicted []float64
		for _, f := range stats.KFold(len(obs), 5, env.Opts.Seed+int64(100+id)) {
			m, err := fitQSFor(env, mpl, id, f.Train)
			if err != nil {
				continue
			}
			for _, i := range f.Test {
				o := obs[i]
				if cont.IsOutlier(o.Latency) {
					continue
				}
				r := env.Know.CQI(o.Primary, o.Concurrent)
				observed = append(observed, o.Latency)
				predicted = append(predicted, cont.Latency(m.Point(r)))
			}
		}
		if len(observed) > 0 {
			errs = append(errs, stats.MRE(observed, predicted))
		}
	}
	return stats.Mean(errs)
}

// fig8Unknown: 5-fold CV over *templates* — train reference models on the
// in-fold templates, estimate QS for the held-out ones, predict their
// observations. Spoiler latencies are measured (predicted spoilers are
// Figure 10's subject).
func fig8Unknown(env *Env, mpl int) (unkY, unkQS float64, err error) {
	models, err := fitQSModels(env, mpl)
	if err != nil {
		return 0, 0, err
	}
	ids := env.TemplateIDs()
	var errsY, errsQS []float64
	for _, fold := range stats.KFold(len(ids), 5, env.Opts.Seed+int64(200+mpl)) {
		exclude := make(map[int]bool)
		for _, i := range fold.Test {
			exclude[ids[i]] = true
		}
		refs := referenceSet(env, mpl, models, exclude)
		for _, i := range fold.Test {
			id := ids[i]
			own, ok := models[id]
			if !ok {
				continue
			}
			cont, ok := env.Know.ContinuumFor(id, mpl)
			if !ok {
				continue
			}
			t := env.Know.MustTemplate(id)

			qsNew, errN := refs.EstimateForNew(t.IsolatedLatency)
			if errN != nil {
				return 0, 0, errN
			}
			qsY, errN := refs.EstimateInterceptFromMu(own.Mu)
			if errN != nil {
				return 0, 0, errN
			}

			var obsL, predY, predQS []float64
			for _, o := range env.ObservationsFor(mpl, id) {
				if cont.IsOutlier(o.Latency) {
					continue
				}
				r := env.Know.CQI(o.Primary, o.Concurrent)
				obsL = append(obsL, o.Latency)
				predY = append(predY, cont.Latency(qsY.Point(r)))
				predQS = append(predQS, cont.Latency(qsNew.Point(r)))
			}
			if len(obsL) > 0 {
				errsY = append(errsY, stats.MRE(obsL, predY))
				errsQS = append(errsQS, stats.MRE(obsL, predQS))
			}
		}
	}
	if len(errsY) == 0 {
		return math.NaN(), math.NaN(), fmt.Errorf("experiments: %w: no unknown-template predictions at MPL %d", core.ErrUntrainedMPL, mpl)
	}
	return stats.Mean(errsY), stats.Mean(errsQS), nil
}
