package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"contender/internal/sim"
	"contender/internal/tpcds"
)

// buildEnv constructs a small environment at the given pool width. The
// options match sharedEnv's except for the template subset, kept tighter so
// the determinism test can afford several full builds.
func buildEnv(t *testing.T, workers int) *Env {
	t.Helper()
	w := tpcds.NewWorkload().Subset([]int{2, 22, 25, 26, 61, 71})
	env, err := NewEnvWith(w, Options{
		MPLs:          []int{2, 3},
		LHSRuns:       2,
		SteadySamples: 3,
		IsolatedRuns:  2,
		Seed:          7,
		Workers:       workers,
	})
	if err != nil {
		t.Fatalf("building env with %d workers: %v", workers, err)
	}
	return env
}

// TestEnvBuildDeterministic is the contract behind the parallel collector:
// worker count must be invisible in the training data. Every width has to
// produce byte-identical Knowledge snapshots, equal samples, and equal
// simulated-time tallies (exact float equality — the merge order is
// canonical, so even accumulation order matches). Running this test under
// `go test -race` also exercises the pool for data races.
func TestEnvBuildDeterministic(t *testing.T) {
	base := buildEnv(t, 1)
	baseSnap, err := json.Marshal(base.Know.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		env := buildEnv(t, workers)
		snap, err := json.Marshal(env.Know.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if string(snap) != string(baseSnap) {
			t.Errorf("workers=%d: Knowledge snapshot differs from workers=1", workers)
		}
		if !reflect.DeepEqual(env.Samples, base.Samples) {
			t.Errorf("workers=%d: Samples differ from workers=1", workers)
		}
		if env.SimulatedSeconds != base.SimulatedSeconds {
			t.Errorf("workers=%d: SimulatedSeconds %+v != %+v",
				workers, env.SimulatedSeconds, base.SimulatedSeconds)
		}
	}
}

// TestRunTasksErrorPropagates checks the pool surfaces a task failure
// (wrapped with the task key) instead of hanging, at both the sequential
// fast path and a wide pool.
func TestRunTasksErrorPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		env := &Env{Opts: Options{Workers: workers}, baseCfg: sim.DefaultConfig()}
		boom := errors.New("boom")
		var tasks []envTask
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("ok/%d", i)
			run := func(*sim.Engine) error { return nil }
			if i == 9 {
				key, run = "bad/9", func(*sim.Engine) error { return boom }
			}
			tasks = append(tasks, envTask{key: key, run: run})
		}
		_, err := env.runTasks(context.Background(), tasks)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "bad/9") {
			t.Errorf("workers=%d: error %q does not name the failing task", workers, err)
		}
	}
}

// TestObservationsForIndexed cross-checks the primary-keyed observation
// index against a straight filter of the flat list.
func TestObservationsForIndexed(t *testing.T) {
	env := buildEnv(t, 2)
	for _, mpl := range []int{2, 3} {
		all := env.Observations(mpl)
		for _, id := range env.TemplateIDs() {
			var want int
			for _, o := range all {
				if o.Primary == id {
					want++
				}
			}
			got := env.ObservationsFor(mpl, id)
			if len(got) != want {
				t.Errorf("MPL %d T%d: indexed %d observations, filter finds %d", mpl, id, len(got), want)
			}
			for _, o := range got {
				if o.Primary != id {
					t.Fatalf("MPL %d T%d: index returned observation with primary %d", mpl, id, o.Primary)
				}
			}
		}
	}
}
