package experiments

import (
	"testing"
)

func TestPick(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	got := pick(xs, []int{3, 0})
	if len(got) != 2 || got[0] != 40 || got[1] != 10 {
		t.Fatalf("pick = %v", got)
	}
	if len(pick(xs, nil)) != 0 {
		t.Fatal("empty index must give empty slice")
	}
}

func TestMeanOfMap(t *testing.T) {
	if meanOfMap(nil) != 0 {
		t.Fatal("empty map must give 0")
	}
	m := map[int]float64{1: 2, 2: 4}
	if meanOfMap(m) != 3 {
		t.Fatalf("mean = %g", meanOfMap(m))
	}
}

func TestSignedR2(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	up := []float64{2, 4, 6, 8}
	down := []float64{8, 6, 4, 2}
	if got := signedR2(xs, up); got < 0.99 {
		t.Fatalf("positive trend R² = %g", got)
	}
	if got := signedR2(xs, down); got > -0.99 {
		t.Fatalf("negative trend R² = %g", got)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtPct(0.123) != "12.3%" {
		t.Fatalf("fmtPct = %q", fmtPct(0.123))
	}
	if fmtF(1.23456) != "1.235" {
		t.Fatalf("fmtF = %q", fmtF(1.23456))
	}
	if fmtHours(7200) != "2.0 h" {
		t.Fatalf("fmtHours = %q", fmtHours(7200))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if percentile(xs, 0.5) != 5 {
		t.Fatalf("p50 = %g", percentile(xs, 0.5))
	}
	if percentile(xs, 0.95) != 10 {
		t.Fatalf("p95 = %g", percentile(xs, 0.95))
	}
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	if percentile([]float64{7}, 0.01) != 7 {
		t.Fatal("single-element percentile wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestSubsample(t *testing.T) {
	env := sharedEnv(t)
	var xs [][]float64
	var ys []float64
	for i := 0; i < maxMLTrain+100; i++ {
		xs = append(xs, []float64{float64(i)})
		ys = append(ys, float64(i))
	}
	gotX, gotY := subsample(env, 1, xs, ys)
	if len(gotX) != maxMLTrain || len(gotY) != maxMLTrain {
		t.Fatalf("subsampled to %d, want %d", len(gotX), maxMLTrain)
	}
	// Pairs stay aligned.
	for i := range gotX {
		if gotX[i][0] != gotY[i] {
			t.Fatal("subsample broke feature/target alignment")
		}
	}
	// Small inputs pass through untouched.
	sx, sy := subsample(env, 1, xs[:10], ys[:10])
	if len(sx) != 10 || len(sy) != 10 {
		t.Fatal("small input must pass through")
	}
}

func TestFlexibleLatency(t *testing.T) {
	env := sharedEnv(t)
	models, err := fitQSModels(env, 2)
	if err != nil {
		t.Fatal(err)
	}
	predict := flexibleLatency(env, models)

	iso, err := predict(71, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iso != env.Know.MustTemplate(71).IsolatedLatency {
		t.Fatal("empty mix must return isolated latency")
	}

	// A trained MPL predicts above isolation.
	l2, err := predict(71, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if l2 < iso {
		t.Fatalf("concurrent prediction %g below isolated %g", l2, iso)
	}

	// An untrained (large) mix size falls back to the nearest continuum.
	big := []int{2, 22, 26, 33, 61, 62}
	lBig, err := predict(71, big)
	if err != nil {
		t.Fatal(err)
	}
	if lBig < iso {
		t.Fatal("fallback prediction must be floored at isolation")
	}

	if _, err := predict(424242, []int{2}); err == nil {
		t.Fatal("unknown template must error")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "bb"}, []float64{1, 2}, nil, 10)
	lines := splitLines(out)
	if len(lines) != 2 {
		t.Fatalf("chart lines: %d", len(lines))
	}
	// The larger value gets the full width.
	if countRune(lines[1], '█') != 10 {
		t.Fatalf("max bar width wrong: %q", lines[1])
	}
	if countRune(lines[0], '█') != 5 {
		t.Fatalf("half bar width wrong: %q", lines[0])
	}
	// Degenerate inputs render nothing.
	if BarChart(nil, nil, nil, 10) != "" {
		t.Fatal("empty chart must be empty")
	}
	if BarChart([]string{"a"}, []float64{1, 2}, nil, 10) != "" {
		t.Fatal("mismatched chart must be empty")
	}
}

func TestParseCell(t *testing.T) {
	cases := map[string]float64{
		"19.4%":  19.4,
		"3580 s": 3580,
		"2.49x":  2.49,
		"-3.5":   -3.5,
	}
	for in, want := range cases {
		got, ok := parseCell(in)
		if !ok || got != want {
			t.Errorf("parseCell(%q) = %g, %v", in, got, ok)
		}
	}
	if _, ok := parseCell("n/a"); ok {
		t.Fatal("non-numeric cell must not parse")
	}
	if _, ok := parseCell(""); ok {
		t.Fatal("empty cell must not parse")
	}
}

func TestResultChart(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig9(env)
	if err != nil {
		t.Fatal(err)
	}
	chart := res.Chart()
	if chart == "" {
		t.Fatal("fig9 must be chartable")
	}
	if countRune(chart, '█') == 0 {
		t.Fatal("chart has no bars")
	}
	// A header-less result is not chartable.
	empty := &Result{ID: "x", Title: "t"}
	if empty.Chart() != "" {
		t.Fatal("empty result must not chart")
	}
}

func splitLines(s string) []string {
	var out []string
	for _, l := range stringsSplit(s) {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func stringsSplit(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func countRune(s string, r rune) int {
	n := 0
	for _, c := range s {
		if c == r {
			n++
		}
	}
	return n
}
