package experiments

import (
	"fmt"
	"math"
	"sort"

	"contender/internal/core"
	"contender/internal/sim"
	"contender/internal/stats"
)

// ExtAdmission evaluates predictive admission control, the cloud-side
// application of Section 1 ("more informed resource provisioning"): an
// open system receives a Poisson stream of queries and an admission gate
// decides when queued queries may start. A plain gate admits whenever a
// slot is free (fixed MPL); Contender's gate additionally holds the queue
// head back while its predicted slowdown — or that of any running query
// under the would-be mix — exceeds an SLO multiple of isolated latency.
func ExtAdmission(env *Env) (*Result, error) {
	const (
		maxActive    = 4
		nQueries     = 40
		sloSlowdown  = 3.0
		meanInterval = 120.0
	)

	// One QS model set for gate predictions.
	models, err := fitQSModels(env, env.sortedMPLs()[0])
	if err != nil {
		return nil, err
	}
	predict := flexibleLatency(env, models)

	// A Poisson arrival stream over the workload.
	rng := env.Rand(55)
	ids := env.TemplateIDs()
	var arrivals []sim.Arrival
	now := 0.0
	for i := 0; i < nQueries; i++ {
		id := ids[rng.Intn(len(ids))]
		arrivals = append(arrivals, sim.Arrival{Time: now, Spec: env.Workload.MustSpec(id)})
		now += rng.ExpFloat64() * meanInterval
	}

	gate := func(_ float64, cand sim.QuerySpec, active []int) bool {
		mix := append([]int{cand.TemplateID}, active...)
		for i, primary := range mix {
			concurrent := append(append([]int{}, mix[:i]...), mix[i+1:]...)
			l, err := predict(primary, concurrent)
			if err != nil {
				return true // fail open
			}
			iso := env.Know.MustTemplate(primary).IsolatedLatency
			if l > sloSlowdown*iso {
				return false
			}
		}
		return true
	}

	res := &Result{
		ID:     "ext-admission",
		Title:  fmt.Sprintf("Application §1 — predictive admission control (max MPL %d, SLO %.1fx)", maxActive, sloSlowdown),
		Paper:  "motivating application: informed resource provisioning; the gate trades queueing delay for bounded concurrent slowdown",
		Header: []string{"Gate", "Mean exec slowdown", "P95 exec slowdown", "SLO violations", "Mean queue time", "Mean response"},
	}

	cfg := env.Engine.Config()
	type outcome struct {
		name string
		out  []sim.OpenResult
	}
	var outcomes []outcome
	for _, variant := range []struct {
		name string
		gate sim.AdmitFunc
	}{
		{"Fixed MPL", nil},
		{"Predictive SLO", gate},
	} {
		cfg.Seed = env.Opts.Seed + 3000 // same noise stream for both gates
		engine := sim.NewEngine(cfg)
		out, err := engine.RunOpenSystem(arrivals, maxActive, variant.gate)
		if err != nil {
			return nil, err
		}
		outcomes = append(outcomes, outcome{variant.name, out})
	}

	for _, oc := range outcomes {
		var slow, queue, resp []float64
		violations := 0
		for _, o := range oc.out {
			iso := env.Know.MustTemplate(o.TemplateID).IsolatedLatency
			s := o.Latency / iso
			slow = append(slow, s)
			queue = append(queue, o.QueueTime)
			resp = append(resp, o.ResponseTime())
			if s > sloSlowdown {
				violations++
			}
		}
		key := oc.name
		res.AddRow(key,
			fmt.Sprintf("%.2fx", stats.Mean(slow)),
			fmt.Sprintf("%.2fx", percentile(slow, 0.95)),
			fmt.Sprintf("%d/%d", violations, len(oc.out)),
			fmt.Sprintf("%.0f s", stats.Mean(queue)),
			fmt.Sprintf("%.0f s", stats.Mean(resp)))
		res.SetMetric("mean-slowdown/"+key, stats.Mean(slow))
		res.SetMetric("p95-slowdown/"+key, percentile(slow, 0.95))
		res.SetMetric("violations/"+key, float64(violations))
		res.SetMetric("mean-queue/"+key, stats.Mean(queue))
		res.SetMetric("mean-response/"+key, stats.Mean(resp))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d Poisson arrivals (mean interval %.0f s) over the whole workload; identical stream for both gates", nQueries, meanInterval))
	return res, nil
}

// flexibleLatency predicts a primary's latency in an arbitrary-size mix:
// exact QS model at trained MPLs, nearest trained MPL's continuum
// otherwise, floored at the isolated latency.
func flexibleLatency(env *Env, models map[int]core.QSModel) func(primary int, concurrent []int) (float64, error) {
	mpls := env.sortedMPLs()
	return func(primary int, concurrent []int) (float64, error) {
		t, ok := env.Know.Template(primary)
		if !ok {
			return 0, fmt.Errorf("experiments: %w: T%d", core.ErrUnknownTemplate, primary)
		}
		if len(concurrent) == 0 {
			return t.IsolatedLatency, nil
		}
		qs, ok := models[primary]
		if !ok {
			return 0, fmt.Errorf("experiments: %w: no QS model for T%d", core.ErrUntrainedMPL, primary)
		}
		want := len(concurrent) + 1
		nearest := mpls[0]
		for _, m := range mpls {
			if abs(m-want) < abs(nearest-want) {
				nearest = m
			}
		}
		cont, ok := env.Know.ContinuumFor(primary, want)
		if !ok {
			cont, ok = env.Know.ContinuumFor(primary, nearest)
			if !ok {
				return 0, fmt.Errorf("experiments: %w: no continuum for T%d", core.ErrUntrainedMPL, primary)
			}
		}
		r := env.Know.CQI(primary, concurrent)
		l := cont.Latency(qs.Point(r))
		return math.Max(l, t.IsolatedLatency), nil
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// percentile returns the p-quantile of xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
