package experiments

import (
	"strings"
	"testing"
	"time"

	"contender/internal/obs"
	"contender/internal/resilience"
)

// Observability contract of the collection layer: the event stream is a
// pure function of the campaign (deterministic order at Workers=1,
// deterministic set at any width), covers every task, and surfaces the
// resilience machinery as points.

func recordedEnv(t *testing.T, opts Options) (*Env, *obs.Recording) {
	t.Helper()
	rec := obs.NewRecording()
	opts.Observer = rec
	env, err := NewEnvWith(chaosWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return env, rec
}

func TestEnvObserverGoldenSerial(t *testing.T) {
	_, a := recordedEnv(t, chaosOptions(1))
	_, b := recordedEnv(t, chaosOptions(1))
	if a.CanonicalLog() != b.CanonicalLog() {
		t.Fatal("same-seed single-worker campaigns produced different event streams")
	}
	log := a.CanonicalLog()
	for _, want := range []string{
		"begin " + obs.SpanTrainCampaign,
		"end " + obs.SpanTrainCampaign,
		"end " + obs.SpanTrainScan,
		"end " + obs.SpanTrainProfile,
		"end " + obs.SpanTrainMix,
	} {
		if !strings.Contains(log, want) {
			t.Errorf("event stream missing %q", want)
		}
	}
}

// TestEnvObserverSetMatchesAcrossWidths: arrival order differs across
// pool widths, but the SET of events (canonically sorted, wall-clock
// durations excluded) is identical — the parallel analogue of the
// golden property.
func TestEnvObserverSetMatchesAcrossWidths(t *testing.T) {
	canonicalSet := func(rec *obs.Recording) string {
		events := rec.Events()
		obs.SortEvents(events)
		sorted := obs.NewRecording()
		for _, ev := range events {
			sorted.Event(ev)
		}
		return sorted.CanonicalLog()
	}
	_, serial := recordedEnv(t, chaosOptions(1))
	_, parallel := recordedEnv(t, chaosOptions(4))
	if canonicalSet(serial) != canonicalSet(parallel) {
		t.Fatal("event set differs across worker counts")
	}
}

// TestEnvObserverTaskCoverage: every sampling task contributes exactly
// one begin and one end of its span type; the campaign end span carries
// the trained-template count.
func TestEnvObserverTaskCoverage(t *testing.T) {
	env, rec := recordedEnv(t, chaosOptions(1))
	// 6 templates, 2 isolated runs + profile work per template; exact task
	// counts come from the env itself.
	profiles := 0
	for _, ev := range rec.Events() {
		if ev.Span == obs.SpanTrainProfile && ev.Kind == obs.SpanEnd {
			profiles++
			if ev.Attempt != 1 {
				t.Errorf("fault-free task took %d attempts", ev.Attempt)
			}
		}
		if ev.Span == obs.SpanTrainCampaign && ev.Kind == obs.SpanEnd {
			if int(ev.Value) != env.Resilience.TrainedTemplates {
				t.Errorf("campaign end value %g, want %d trained", ev.Value, env.Resilience.TrainedTemplates)
			}
		}
	}
	if profiles != len(env.Workload.Templates()) {
		t.Errorf("%d profile spans, want one per template (%d)", profiles, len(env.Workload.Templates()))
	}
}

// TestEnvObserverRetryAndQuarantinePoints: injected faults surface as
// train.retry points (rescued) and train.quarantine points (permanent).
func TestEnvObserverRetryAndQuarantinePoints(t *testing.T) {
	opts := chaosOptions(1)
	opts.Retry = noSleepPolicy()
	opts.Faults = &resilience.FaultConfig{Seed: 11, TransientRate: 0.10, Sleep: func(time.Duration) {}}
	env, rec := recordedEnv(t, opts)
	if env.Resilience.Retries == 0 {
		t.Fatal("no retries; the test is vacuous")
	}
	if got := rec.CountSpan(obs.PointTrainRetry); got != env.Resilience.Retries {
		t.Errorf("%d retry points, report says %d", got, env.Resilience.Retries)
	}

	opts = chaosOptions(1)
	opts.Retry = noSleepPolicy()
	opts.Faults = &resilience.FaultConfig{
		Seed:           1,
		PermanentSites: []string{"template/26"},
		Sleep:          func(time.Duration) {},
	}
	env, rec = recordedEnv(t, opts)
	if len(env.Resilience.Quarantined) == 0 {
		t.Fatal("permanent fault did not quarantine")
	}
	if rec.CountSpan(obs.PointTrainQuarantine) == 0 {
		t.Error("no quarantine points emitted")
	}
}

// TestEnvObserverCheckpointPoints: a checkpointed campaign emits one
// train.checkpoint point per persisted task.
func TestEnvObserverCheckpointPoints(t *testing.T) {
	opts := chaosOptions(1)
	opts.CheckpointPath = t.TempDir() + "/env.ckpt"
	_, rec := recordedEnv(t, opts)
	if rec.CountSpan(obs.PointTrainCheckpoint) == 0 {
		t.Fatal("no checkpoint points on a checkpointed campaign")
	}
}

// TestEnvObserverDoesNotPerturbData: the same campaign with and without
// an observer collects byte-identical knowledge.
func TestEnvObserverDoesNotPerturbData(t *testing.T) {
	plain, err := NewEnvWith(chaosWorkload(), chaosOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	observed, _ := recordedEnv(t, chaosOptions(1))
	if envSnapshot(t, plain) != envSnapshot(t, observed) {
		t.Fatal("observation changed the collected training data")
	}
}
