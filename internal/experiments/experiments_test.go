package experiments

import (
	"strings"
	"sync"
	"testing"

	"contender/internal/core"
	"contender/internal/tpcds"
)

// The integration tests run every experiment against a reduced environment
// (12 templates, MPLs 2–4, small designs) so the whole suite stays fast.
// The full-scale paper comparison happens in the repository's benchmark
// harness and in cmd/contender-bench.

var (
	envOnce sync.Once
	testEnv *Env
	envErr  error
)

// sharedEnv builds the test environment once per process.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		w := tpcds.NewWorkload().Subset([]int{2, 17, 22, 25, 26, 32, 33, 61, 62, 65, 71, 82})
		testEnv, envErr = NewEnvWith(w, Options{
			MPLs:          []int{2, 3, 4},
			LHSRuns:       2,
			SteadySamples: 3,
			IsolatedRuns:  2,
			Seed:          7,
		})
	})
	if envErr != nil {
		t.Fatalf("building test env: %v", envErr)
	}
	return testEnv
}

func TestEnvProfiling(t *testing.T) {
	env := sharedEnv(t)
	if len(env.TemplateIDs()) != 12 {
		t.Fatalf("%d templates", len(env.TemplateIDs()))
	}
	for _, id := range env.TemplateIDs() {
		ts := env.Know.MustTemplate(id)
		if ts.IsolatedLatency <= 0 {
			t.Errorf("T%d has no isolated latency", id)
		}
		if ts.IOFraction <= 0 || ts.IOFraction > 1 {
			t.Errorf("T%d I/O fraction %g out of range", id, ts.IOFraction)
		}
		for _, mpl := range []int{2, 3, 4} {
			sp, ok := ts.SpoilerLatency[mpl]
			if !ok || sp <= ts.IsolatedLatency {
				t.Errorf("T%d spoiler at MPL %d = %g (iso %g)", id, mpl, sp, ts.IsolatedLatency)
			}
		}
	}
	// Scan times measured for every fact table.
	for _, ft := range env.Workload.Catalog.FactTables() {
		if env.Know.ScanTime(ft.Name) <= 0 {
			t.Errorf("no scan time for %s", ft.Name)
		}
	}
	if env.SimulatedSeconds.Isolated <= 0 || env.SimulatedSeconds.Spoiler <= 0 || env.SimulatedSeconds.Mixes <= 0 {
		t.Error("simulated-time accounting missing")
	}
}

func TestEnvSampling(t *testing.T) {
	env := sharedEnv(t)
	// MPL 2: exhaustive pairs over 12 templates = 78 mixes.
	if got := len(env.Samples[2]); got != 78 {
		t.Fatalf("MPL-2 mixes = %d, want 78", got)
	}
	for _, mpl := range []int{3, 4} {
		if len(env.Samples[mpl]) == 0 {
			t.Fatalf("no samples at MPL %d", mpl)
		}
		for _, s := range env.Samples[mpl] {
			if len(s.Mix) != mpl || len(s.Obs) != mpl {
				t.Fatalf("sample shape wrong at MPL %d: %v", mpl, s.Mix)
			}
			for _, o := range s.Obs {
				if o.Latency <= 0 {
					t.Fatalf("non-positive observation at MPL %d", mpl)
				}
				if o.MPL() != mpl {
					t.Fatalf("observation MPL %d, want %d", o.MPL(), mpl)
				}
			}
		}
	}
	// Each template appears as primary in at least a few observations.
	for _, id := range env.TemplateIDs() {
		if len(env.ObservationsFor(2, id)) < 5 {
			t.Errorf("T%d has too few MPL-2 observations", id)
		}
	}
	total := len(env.AllObservations())
	if total < 200 {
		t.Errorf("only %d observations total", total)
	}
}

func TestConcurrencySlowsQueriesDown(t *testing.T) {
	env := sharedEnv(t)
	// Sanity of the substrate: the average observed latency at MPL 4
	// exceeds the isolated latency for every template.
	for _, id := range env.TemplateIDs() {
		obs := env.ObservationsFor(4, id)
		if len(obs) == 0 {
			continue
		}
		var mean float64
		for _, o := range obs {
			mean += o.Latency
		}
		mean /= float64(len(obs))
		iso := env.Know.MustTemplate(id).IsolatedLatency
		if mean < iso {
			t.Errorf("T%d runs faster at MPL 4 (%g) than alone (%g)?", id, mean, iso)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("table2"); !ok {
		t.Fatal("table2 must resolve")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
	if len(IDs()) != 24 {
		t.Fatal("IDs() wrong")
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{
		ID: "x", Title: "demo", Paper: "p",
		Header: []string{"A", "BB"},
	}
	r.AddRow("1", "2")
	r.SetMetric("m", 0.5)
	r.Notes = append(r.Notes, "n")
	s := r.Render()
	for _, want := range []string{"== x — demo ==", "paper: p", "A", "BB", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
	if r.Metrics["m"] != 0.5 {
		t.Fatal("metric not set")
	}
}

func TestTable2Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Metrics["mre/Baseline I/O"]
	cqi := res.Metrics["mre/CQI"]
	if base <= 0 || cqi <= 0 {
		t.Fatal("MREs must be positive")
	}
	// The paper's headline ordering: the full CQI metric beats the
	// baseline (small tolerance for the reduced design).
	if cqi > base*1.1 {
		t.Errorf("CQI MRE %.3f not better than baseline %.3f", cqi, base)
	}
}

func TestFig4Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["r2"] < 0.15 {
		t.Errorf("coefficient relation R² = %.3f, want a visible linear trend", res.Metrics["r2"])
	}
	if res.Metrics["trend/slope"] >= 0 {
		t.Errorf("trend slope %.3f, want negative (b falls as µ rises)", res.Metrics["trend/slope"])
	}
}

func TestTable3Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 features", len(res.Rows))
	}
	// All seven features must be measured against both coefficients.
	for _, f := range []string{"Isolated latency", "Max working set", "Spoiler slowdown"} {
		if _, ok := res.Metrics["mu/"+f]; !ok {
			t.Errorf("missing µ metric for %q", f)
		}
		if _, ok := res.Metrics["b/"+f]; !ok {
			t.Errorf("missing b metric for %q", f)
		}
	}
	// In the fluid substrate the slope is driven by memory/random-I/O
	// asymmetries, which the spoiler slowdown captures: that correlation
	// must be negative (higher worst-case inflation → flatter QS slope).
	// The paper's isolated-latency correlation arises from
	// interruption-averaging the fluid model does not exhibit; see
	// EXPERIMENTS.md.
	if res.Metrics["mu/Spoiler slowdown"] >= 0 {
		t.Errorf("µ vs spoiler slowdown R² = %.3f, want negative", res.Metrics["mu/Spoiler slowdown"])
	}
}

func TestFig6Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	light := res.Metrics["slope-per-mpl/t62"]
	io := res.Metrics["slope-per-mpl/t71"]
	mem := res.Metrics["slope-per-mpl/t22"]
	if !(light < io && io < mem) {
		t.Errorf("growth ordering wrong: light %.2f, io %.2f, mem %.2f", light, io, mem)
	}
	// Spoiler latency grows with the MPL for each category.
	if res.Metrics["t22/mpl4"] <= res.Metrics["t22/mpl2"] {
		t.Error("T22 spoiler must grow with MPL")
	}
}

func TestSec55Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Sec55MPL(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["mre"] <= 0 || res.Metrics["mre"] > 0.4 {
		t.Errorf("spoiler-linearity error %.3f, want small (paper ≈8%%)", res.Metrics["mre"])
	}
}

func TestFig7Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig7(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["mre/avg"] <= 0 || res.Metrics["mre/avg"] > 0.5 {
		t.Errorf("avg error %.3f out of plausible range", res.Metrics["mre/avg"])
	}
}

func TestFig8Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig8(env)
	if err != nil {
		t.Fatal(err)
	}
	known := res.Metrics["known/avg"]
	unkQS := res.Metrics["unknown-qs/avg"]
	if known <= 0 || unkQS <= 0 {
		t.Fatal("averages missing")
	}
	// Known templates must not predict worse than the transferred models.
	if known > unkQS*1.15 {
		t.Errorf("known %.3f worse than unknown-QS %.3f", known, unkQS)
	}
}

func TestFig9Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig9(env)
	if err != nil {
		t.Fatal(err)
	}
	knn := res.Metrics["knn/avg"]
	iot := res.Metrics["iotime/avg"]
	if knn <= 0 || iot <= 0 {
		t.Fatal("averages missing")
	}
	// Contender's two-feature KNN beats the single-feature baseline
	// (modest tolerance for the reduced workload).
	if knn > iot*1.15 {
		t.Errorf("KNN %.3f not better than I/O-Time %.3f", knn, iot)
	}
}

func TestFig10Shape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Fig10(env)
	if err != nil {
		t.Fatal(err)
	}
	known := res.Metrics["known/avg"]
	knn := res.Metrics["knn/avg"]
	iso := res.Metrics["isolated/avg"]
	if !(known > 0 && knn > 0 && iso > 0) {
		t.Fatal("averages missing")
	}
	// Isolated Prediction (zero samples, ±25% inputs) must be the worst.
	if iso < knn*0.95 {
		t.Errorf("Isolated Prediction %.3f unexpectedly better than KNN spoiler %.3f", iso, knn)
	}
}

func TestSec54CostShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Sec54Cost(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["spoiler-share"] <= 0 || res.Metrics["spoiler-share"] >= 1 {
		t.Errorf("spoiler share %.3f out of (0,1)", res.Metrics["spoiler-share"])
	}
	if res.Metrics["sim-hours/mixes"] <= res.Metrics["sim-hours/spoiler"] {
		t.Error("mix sampling must dominate the budget")
	}
}

func TestSec3StaticShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ML baselines are slow; skipped in -short")
	}
	env := sharedEnv(t)
	res, err := Sec3Static(env)
	if err != nil {
		t.Fatal(err)
	}
	k := res.Metrics["mre/kcca"]
	s := res.Metrics["mre/svm"]
	if k <= 0 || s <= 0 || k > 2 || s > 2 {
		t.Errorf("ML static errors implausible: KCCA %.3f, SVM %.3f", k, s)
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("ML baselines are slow; skipped in -short")
	}
	env := sharedEnv(t)
	res, err := Fig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["kcca/avg"] <= 0 || res.Metrics["svm/avg"] <= 0 {
		t.Fatal("averages missing")
	}
	if len(res.Rows) < 4 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
}

func TestMLSubsetCoversOnlySharedFeatures(t *testing.T) {
	env := sharedEnv(t)
	subset := MLSubset(env)
	if len(subset) < 3 {
		t.Fatalf("subset too small: %v", subset)
	}
	if len(subset) > len(env.TemplateIDs()) {
		t.Fatal("subset larger than workload")
	}
}

func TestExtGrowthShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtGrowth(env)
	if err != nil {
		t.Fatal(err)
	}
	stale := res.Metrics["stale/avg"]
	scaled := res.Metrics["scaled/avg"]
	if stale <= 0 || scaled <= 0 {
		t.Fatal("averages missing")
	}
	// Analytic rescaling must beat the stale predictor clearly.
	if scaled >= stale {
		t.Errorf("scaled %.3f not better than stale %.3f", scaled, stale)
	}
}

func TestExtOpModelShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtOpModel(env)
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Metrics["qs/avg"]
	om := res.Metrics["opmodel/avg"]
	if qs <= 0 || om <= 0 {
		t.Fatal("averages missing")
	}
	// The learned QS path must beat the zero-training analytic model.
	if qs >= om {
		t.Errorf("QS %.3f not better than operator model %.3f", qs, om)
	}
}

func TestStageProfiles(t *testing.T) {
	env := sharedEnv(t)
	profiles := env.StageProfiles(71)
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	var total float64
	seq := 0
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		total += p.IsolatedSeconds
		if p.Class == core.StageClassSeqIO {
			seq++
			if p.Table == "" {
				t.Fatal("sequential profile missing table")
			}
		}
	}
	// The stage-profile sum approximates the template's isolated latency.
	iso := env.Know.MustTemplate(71).IsolatedLatency
	if total < iso*0.8 || total > iso*1.2 {
		t.Fatalf("profile sum %.0f vs isolated %.0f", total, iso)
	}
	if seq < 3 {
		t.Fatalf("T71 must have 3 fact scans, got %d", seq)
	}
}

func TestExtBatchShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtBatch(env)
	if err != nil {
		t.Fatal(err)
	}
	fifo := res.Metrics["makespan/FIFO"]
	ia := res.Metrics["makespan/Interaction-aware"]
	if fifo <= 0 || ia <= 0 {
		t.Fatal("makespans missing")
	}
	// The interaction-aware schedule must not be slower than FIFO by more
	// than forecast noise.
	if ia > fifo*1.05 {
		t.Errorf("interaction-aware %.0f worse than FIFO %.0f", ia, fifo)
	}
	// Forecasts must land near the measured makespans.
	for _, p := range []string{"FIFO", "SJF", "Interaction-aware"} {
		if e := res.Metrics["forecast-error/"+p]; e > 0.35 {
			t.Errorf("%s forecast error %.2f too large", p, e)
		}
	}
}

func TestExtAdmissionShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtAdmission(env)
	if err != nil {
		t.Fatal(err)
	}
	fixedViol := res.Metrics["violations/Fixed MPL"]
	gatedViol := res.Metrics["violations/Predictive SLO"]
	if gatedViol > fixedViol {
		t.Errorf("predictive gate has more SLO violations (%g) than fixed MPL (%g)", gatedViol, fixedViol)
	}
	if res.Metrics["p95-slowdown/Predictive SLO"] > res.Metrics["p95-slowdown/Fixed MPL"]*1.05 {
		t.Errorf("predictive gate did not curb the slowdown tail")
	}
	// The gate pays with queueing delay.
	if res.Metrics["mean-queue/Predictive SLO"] < res.Metrics["mean-queue/Fixed MPL"]*0.8 {
		t.Errorf("expected the gate to queue at least as much as fixed MPL")
	}
}

func TestExtQSFeaturesShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtQSFeatures(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 estimators", len(res.Rows))
	}
	paper := res.Metrics["mre/Isolated latency (paper)"]
	prior := res.Metrics["mre/Mean-µ prior"]
	if paper <= 0 || prior <= 0 {
		t.Fatal("metrics missing")
	}
	// Every estimator must stay within a plausible band of the prior; the
	// ablation's point is that the differences are small on this substrate.
	for _, row := range res.Rows {
		m := res.Metrics["mre/"+row[0]]
		if m <= 0 || m > prior*2 {
			t.Errorf("estimator %q MRE %.3f implausible", row[0], m)
		}
	}
}

func TestExtCrossMPLShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtCrossMPL(env)
	if err != nil {
		t.Fatal(err)
	}
	// Same-MPL (diagonal) models must not be worse than the average
	// cross-MPL transfer into that level.
	for _, mpl := range []int{2, 3, 4} {
		diag := res.Metrics[metricKey(mpl, mpl)]
		var off []float64
		for _, other := range []int{2, 3, 4} {
			if other != mpl {
				off = append(off, res.Metrics[metricKey(other, mpl)])
			}
		}
		var sum float64
		for _, v := range off {
			sum += v
		}
		if avg := sum / float64(len(off)); diag > avg*1.1 {
			t.Errorf("diagonal MPL %d (%.3f) worse than cross average (%.3f)", mpl, diag, avg)
		}
	}
}

func metricKey(train, test int) string {
	return "train" + string(rune('0'+train)) + "/test" + string(rune('0'+test))
}

func TestExtNoiseShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtNoise(env)
	if err != nil {
		t.Fatal(err)
	}
	quiet := res.Metrics["mre/0.0x"]
	loud := res.Metrics["mre/3.0x"]
	if quiet <= 0 || loud <= 0 {
		t.Fatal("metrics missing")
	}
	// Error must grow with noise.
	if loud <= quiet {
		t.Errorf("3x-noise MRE %.3f not above zero-noise MRE %.3f", loud, quiet)
	}
}

func TestExtChaosShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := ExtChaos(env)
	if err != nil {
		t.Fatal(err)
	}
	// 1 clean baseline + 3 transient rates + 1 permanent fault.
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for _, rate := range []string{"5%", "10%", "20%"} {
		if res.Metrics["identical/"+rate] != 1 {
			t.Errorf("training data at %s transient faults diverged from clean", rate)
		}
		if res.Metrics["retries/"+rate] <= 0 {
			t.Errorf("no retries recorded at %s transient faults", rate)
		}
	}
	cov := res.Metrics["coverage/permanent"]
	if cov <= 0.5 || cov >= 1 {
		t.Errorf("permanent-fault coverage %.3f, want partial degradation", cov)
	}
	if res.Metrics["dropped_mixes/permanent"] <= 0 {
		t.Error("permanent fault must drop the victim's mixes")
	}
}

func TestSec61OutliersShape(t *testing.T) {
	env := sharedEnv(t)
	res, err := Sec61Outliers(env)
	if err != nil {
		t.Fatal(err)
	}
	freq := res.Metrics["freq/all"]
	if freq < 0 || freq > 0.25 {
		t.Errorf("outlier frequency %.3f implausible (paper ≈4%%)", freq)
	}
	// Both partner-ratio metrics must be present when outliers occurred;
	// their relation is substrate-dependent (see the experiment's note).
	if res.Metrics["freq/all"] > 0 {
		if _, ok := res.Metrics["outlier-partner-ratio"]; !ok {
			t.Error("outlier partner ratio missing")
		}
	}
}
