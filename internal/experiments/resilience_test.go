package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"contender/internal/resilience"
	"contender/internal/tpcds"
)

// The resilience contract of Env building, end to end: transient faults
// plus retries leave the collected data byte-identical; permanent faults
// quarantine and degrade; an interrupted checkpointed campaign resumes to
// byte-identical data; cancellation stops the pool promptly.

func chaosWorkload() *tpcds.Workload {
	return tpcds.NewWorkload().Subset([]int{2, 22, 25, 26, 61, 71})
}

func chaosOptions(workers int) Options {
	return Options{
		MPLs:          []int{2, 3},
		LHSRuns:       2,
		SteadySamples: 3,
		IsolatedRuns:  2,
		Seed:          7,
		Workers:       workers,
	}
}

func noSleepPolicy() *resilience.RetryPolicy {
	p := resilience.Default()
	p.Sleep = func(time.Duration) {}
	return &p
}

func envSnapshot(t *testing.T, env *Env) string {
	t.Helper()
	snap, err := json.Marshal(env.Know.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(snap)
}

// TestEnvChaosTransientByteIdentical is the acceptance property: a
// campaign under a 10% transient fault rate with retries enabled collects
// training data byte-identical to a fault-free campaign with the same
// seed — at both pool widths.
func TestEnvChaosTransientByteIdentical(t *testing.T) {
	clean, err := NewEnvWith(chaosWorkload(), chaosOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	cleanSnap := envSnapshot(t, clean)

	for _, workers := range []int{1, 4} {
		opts := chaosOptions(workers)
		opts.Retry = noSleepPolicy()
		opts.Faults = &resilience.FaultConfig{
			Seed:          11,
			TransientRate: 0.10,
			Sleep:         func(time.Duration) {},
		}
		env, err := NewEnvWith(chaosWorkload(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := envSnapshot(t, env); got != cleanSnap {
			t.Errorf("workers=%d: knowledge under transient faults differs from clean run", workers)
		}
		if !reflect.DeepEqual(env.Samples, clean.Samples) {
			t.Errorf("workers=%d: samples under transient faults differ from clean run", workers)
		}
		if env.FaultStats().Transient == 0 {
			t.Errorf("workers=%d: fault injector never fired at 10%% rate", workers)
		}
		if env.Resilience.Retries == 0 {
			t.Errorf("workers=%d: retries must have rescued the injected faults", workers)
		}
		if env.Resilience.Degraded() {
			t.Errorf("workers=%d: transient faults must not degrade coverage: %+v", workers, env.Resilience)
		}
	}
}

// TestEnvPermanentFaultQuarantines: a template whose profiling fails
// permanently is quarantined — collection completes on the rest, the
// report shows the lost coverage, and no observation references the
// quarantined template.
func TestEnvPermanentFaultQuarantines(t *testing.T) {
	opts := chaosOptions(2)
	opts.Retry = noSleepPolicy()
	opts.Faults = &resilience.FaultConfig{
		Seed:           1,
		PermanentSites: []string{"template/26"},
		Sleep:          func(time.Duration) {},
	}
	env, err := NewEnvWith(chaosWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r := env.Resilience
	if !r.Degraded() {
		t.Fatalf("report must be degraded: %+v", r)
	}
	if r.TrainedTemplates != 5 || r.TotalTemplates != 6 {
		t.Fatalf("coverage %d/%d, want 5/6", r.TrainedTemplates, r.TotalTemplates)
	}
	if got := r.Coverage(); got <= 0.8 || got >= 0.9 {
		t.Fatalf("Coverage() = %g, want 5/6", got)
	}
	found := false
	for _, q := range r.Quarantined {
		if q.Key == "template/26" {
			found = true
			if !strings.Contains(q.Reason, "permanent") {
				t.Errorf("quarantine reason %q does not mention the permanent failure", q.Reason)
			}
		}
	}
	if !found {
		t.Fatalf("template/26 missing from quarantine list: %+v", r.Quarantined)
	}
	if _, ok := env.Know.Template(26); ok {
		t.Fatal("quarantined template must not enter the knowledge base")
	}
	if r.DroppedMixes == 0 {
		t.Fatal("mixes containing the quarantined template must be dropped")
	}
	for _, mpl := range []int{2, 3} {
		for _, o := range env.Observations(mpl) {
			if o.Primary == 26 {
				t.Fatalf("MPL %d: observation with quarantined primary survived", mpl)
			}
			for _, c := range o.Concurrent {
				if c == 26 {
					t.Fatalf("MPL %d: observation with quarantined concurrent survived", mpl)
				}
			}
		}
	}
}

// TestEnvTooFewSurvivorsErrors: quarantining all but one template aborts
// with a coverage error instead of training a degenerate predictor.
func TestEnvTooFewSurvivorsErrors(t *testing.T) {
	opts := chaosOptions(1)
	opts.Retry = noSleepPolicy()
	opts.Faults = &resilience.FaultConfig{
		Seed:           1,
		PermanentSites: []string{"template/2", "template/25", "template/26", "template/61", "template/71"},
		Sleep:          func(time.Duration) {},
	}
	_, err := NewEnvWith(chaosWorkload(), opts)
	if err == nil || !strings.Contains(err.Error(), "survived sampling") {
		t.Fatalf("err = %v, want too-few-survivors error", err)
	}
}

// TestEnvCheckpointResume kills a checkpointed campaign at several task
// boundaries, resumes it, and requires the resumed environment to be
// byte-identical to an uninterrupted build — the checkpoint/resume
// acceptance property.
func TestEnvCheckpointResume(t *testing.T) {
	clean, err := NewEnvWith(chaosWorkload(), chaosOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	cleanSnap := envSnapshot(t, clean)

	for _, killAfter := range []int{1, 5, 13, 29} {
		path := filepath.Join(t.TempDir(), "env.ckpt")

		ctx, cancel := context.WithCancel(context.Background())
		opts := chaosOptions(1)
		opts.CheckpointPath = path
		done := 0
		opts.onTaskDone = func(string) {
			if done++; done == killAfter {
				cancel()
			}
		}
		_, err := NewEnvWithContext(ctx, chaosWorkload(), opts)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("killAfter=%d: err = %v, want context.Canceled", killAfter, err)
		}
		if _, serr := os.Stat(path); serr != nil {
			t.Fatalf("killAfter=%d: checkpoint file missing after interrupt: %v", killAfter, serr)
		}

		resumeOpts := chaosOptions(1)
		resumeOpts.CheckpointPath = path
		env, err := NewEnvWith(chaosWorkload(), resumeOpts)
		if err != nil {
			t.Fatalf("killAfter=%d: resume failed: %v", killAfter, err)
		}
		if env.Resilience.Resumed != killAfter {
			t.Errorf("killAfter=%d: resumed %d tasks, want %d", killAfter, env.Resilience.Resumed, killAfter)
		}
		if got := envSnapshot(t, env); got != cleanSnap {
			t.Errorf("killAfter=%d: resumed knowledge differs from uninterrupted build", killAfter)
		}
		if !reflect.DeepEqual(env.Samples, clean.Samples) {
			t.Errorf("killAfter=%d: resumed samples differ from uninterrupted build", killAfter)
		}
		if env.SimulatedSeconds != clean.SimulatedSeconds {
			t.Errorf("killAfter=%d: resumed time tallies differ: %+v vs %+v",
				killAfter, env.SimulatedSeconds, clean.SimulatedSeconds)
		}
		if _, serr := os.Stat(path); serr == nil {
			t.Errorf("killAfter=%d: checkpoint must be removed after a completed campaign", killAfter)
		}
	}
}

// TestEnvCheckpointFingerprintGuard: resuming under different options is
// refused with an actionable error instead of silently mixing designs.
func TestEnvCheckpointFingerprintGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "env.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	opts := chaosOptions(1)
	opts.CheckpointPath = path
	done := 0
	opts.onTaskDone = func(string) {
		if done++; done == 2 {
			cancel()
		}
	}
	if _, err := NewEnvWithContext(ctx, chaosWorkload(), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt failed: %v", err)
	}
	cancel()

	other := chaosOptions(1)
	other.Seed = 8 // different campaign
	other.CheckpointPath = path
	_, err := NewEnvWith(chaosWorkload(), other)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

// TestEnvContextCancelStopsPromptly: after cancellation no further tasks
// start, at both pool widths.
func TestEnvContextCancelStopsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := chaosOptions(workers)
		var mu sync.Mutex
		done := 0
		opts.onTaskDone = func(string) {
			mu.Lock()
			if done++; done == 3 {
				cancel()
			}
			mu.Unlock()
		}
		_, err := NewEnvWithContext(ctx, chaosWorkload(), opts)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Already-running tasks may finish, but nothing new starts: the
		// hook fires at most once more per in-flight worker.
		mu.Lock()
		finished := done
		mu.Unlock()
		if finished > 3+workers {
			t.Errorf("workers=%d: %d tasks completed after cancellation", workers, finished-3)
		}
	}
}
