package experiments

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/resilience"
	"contender/internal/sched"
	"contender/internal/sim"
	"contender/internal/stats"
)

// ExtBatch evaluates the batch-scheduling application of Section 1 on the
// simulator: a 12-query batch executes at MPL 3 under three admission
// policies — FIFO, shortest-job-first, and Contender-driven
// interaction-aware ordering — and the measured makespans are compared.
// The experiment also validates the prediction-driven completion-time
// forecast (à la Ahmad et al. EDBT'11) against the simulated truth.
func ExtBatch(env *Env) (*Result, error) {
	const mpl = 3
	// The batch: a diverse 12-query submission, restricted to templates
	// present in the environment's workload (tests run reduced workloads).
	available := make(map[int]bool)
	for _, id := range env.TemplateIDs() {
		available[id] = true
	}
	var batch []int
	for _, id := range []int{71, 33, 2, 22, 26, 61, 62, 82, 65, 17, 90, 46,
		25, 32, 7, 15, 18, 20} {
		if available[id] {
			batch = append(batch, id)
		}
		if len(batch) == 12 {
			break
		}
	}
	if len(batch) < 4 {
		return nil, resilience.Permanent(fmt.Errorf("experiments: workload too small for the batch experiment"))
	}

	models, err := fitQSModels(env, mpl)
	if err != nil {
		return nil, err
	}
	predict := func(primary int, concurrent []int) (float64, error) {
		if len(concurrent) == 0 {
			return env.Know.MustTemplate(primary).IsolatedLatency, nil
		}
		// Pad or trim the QS model choice to the trained MPL: predictions
		// for smaller active sets use the same model with the mix's CQI,
		// scaled on the template's MPL-specific continuum.
		qs, ok := models[primary]
		if !ok {
			return 0, fmt.Errorf("%w: no QS model for T%d", core.ErrUntrainedMPL, primary)
		}
		cont, ok := env.Know.ContinuumFor(primary, len(concurrent)+1)
		if !ok {
			// Fall back to the experiment MPL's continuum.
			cont, ok = env.Know.ContinuumFor(primary, mpl)
			if !ok {
				return 0, fmt.Errorf("%w: no continuum for T%d", core.ErrUntrainedMPL, primary)
			}
		}
		r := env.Know.CQI(primary, concurrent)
		l := cont.Latency(qs.Point(r))
		iso := env.Know.MustTemplate(primary).IsolatedLatency
		if l < iso {
			l = iso
		}
		return l, nil
	}

	res := &Result{
		ID:     "ext-batch",
		Title:  fmt.Sprintf("Application §1 — batch scheduling at MPL %d", mpl),
		Paper:  "motivating application: \"better scheduling decisions for large query batches, reducing the completion time of individual queries and that of the entire batch\"",
		Header: []string{"Policy", "Forecast makespan", "Measured makespan", "Forecast error", "Mean job latency"},
	}

	cfg := env.Engine.Config()
	cfg.Seed = env.Opts.Seed + 2000
	policies := []sched.Policy{sched.FIFO{}, sched.SJF{}, sched.InteractionAware{}}
	measured := make(map[string]float64)
	for _, pol := range policies {
		order, err := pol.Order(batch, mpl, predict)
		if err != nil {
			return nil, err
		}
		_, forecastSpan, err := sched.Forecast(order, mpl, predict)
		if err != nil {
			return nil, err
		}
		specs := make([]sim.QuerySpec, len(order))
		for i, id := range order {
			specs[i] = env.Workload.MustSpec(id)
		}
		engine := sim.NewEngine(cfg)
		results, span, err := engine.RunBatch(specs, mpl)
		if err != nil {
			return nil, err
		}
		var lat []float64
		for _, r := range results {
			lat = append(lat, r.Latency)
		}
		ferr := stats.RelativeError(span, forecastSpan)
		res.AddRow(pol.Name(),
			fmt.Sprintf("%.0f s", forecastSpan),
			fmt.Sprintf("%.0f s", span),
			fmtPct(ferr),
			fmt.Sprintf("%.0f s", stats.Mean(lat)))
		key := pol.Name()
		measured[key] = span
		res.SetMetric("makespan/"+key, span)
		res.SetMetric("forecast-error/"+key, ferr)
		res.SetMetric("mean-latency/"+key, stats.Mean(lat))
	}
	if fifo, ok := measured["FIFO"]; ok {
		if ia, ok := measured["Interaction-aware"]; ok && fifo > 0 {
			res.SetMetric("improvement-vs-fifo", (fifo-ia)/fifo)
			res.AddRow("Interaction-aware vs FIFO", fmtPct((fifo-ia)/fifo), "", "", "")
		}
	}
	return res, nil
}
