package experiments

import (
	"strings"
	"testing"
)

// runQuality builds a small environment at the given worker count and runs
// the ext-quality replay.
func runQuality(t *testing.T, workers int) *Result {
	t.Helper()
	env, err := NewEnvWith(chaosWorkload(), chaosOptions(workers))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtQuality(env)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExtQualityFlipsExactlyTheVictims injects the workload shift and checks
// that the drift detector moves the victim templates out of healthy while
// every other template stays healthy.
func TestExtQualityFlipsExactlyTheVictims(t *testing.T) {
	res := runQuality(t, 1)

	if res.Metrics["victims"] != 2 {
		t.Fatalf("victims = %v, want 2\n%s", res.Metrics["victims"], res.Render())
	}
	if got, want := res.Metrics["victims_flipped"], res.Metrics["victims"]; got != want {
		t.Errorf("victims_flipped = %v, want %v\n%s", got, want, res.Render())
	}
	// Only victims may leave healthy.
	if got, want := res.Metrics["healthy"], res.Metrics["templates"]-res.Metrics["victims"]; got != want {
		t.Errorf("healthy = %v, want %v (non-victims must stay healthy)\n%s", got, want, res.Render())
	}
	// The sustained 1.8× shift should drive victims all the way to stale.
	if res.Metrics["stale"] != res.Metrics["victims"] {
		t.Errorf("stale = %v, want %v (victims should be stale after the sustained shift)\n%s",
			res.Metrics["stale"], res.Metrics["victims"], res.Render())
	}

	for _, row := range res.Rows {
		role, state := row[1], row[6]
		if role == "victim" && state == "healthy" {
			t.Errorf("victim %s still healthy:\n%s", row[0], res.Render())
		}
		if role != "victim" && state != "healthy" {
			t.Errorf("non-victim %s drifted to %s:\n%s", row[0], state, res.Render())
		}
	}
}

// TestExtQualityGoldenAcrossWorkers renders the replay at several collection
// worker counts and requires byte-identical output: the feedback stream is
// serial and in canonical sample order, so parallel collection must not
// change a single character.
func TestExtQualityGoldenAcrossWorkers(t *testing.T) {
	golden := runQuality(t, 1).Render()
	if !strings.Contains(golden, "victim") {
		t.Fatalf("golden render has no victim rows:\n%s", golden)
	}
	for _, workers := range []int{2, 4} {
		if got := runQuality(t, workers).Render(); got != golden {
			t.Errorf("render differs at %d workers:\n--- workers=1\n%s\n--- workers=%d\n%s", workers, golden, workers, got)
		}
	}
}
