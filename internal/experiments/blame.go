package experiments

import (
	"errors"
	"fmt"
	"sort"

	"contender/internal/core"
	"contender/internal/obs"
	"contender/internal/resilience"
)

// ExtBlame demonstrates the blame-attribution layer end to end and pins
// its exactness property: the CQI of Eq. 5 is a mean of per-neighbor
// intensity terms, so every prediction decomposes into per-neighbor
// seconds whose aggregate reproduces PredictKnown bit-for-bit — by
// construction, not by tolerance. The experiment replays every
// collected observation mix through PredictExplain, verifies both
// identities (the explained total against PredictKnown, the recorded
// intensity terms against the CQI) on every single mix, folds the
// decompositions into a blame matrix, and renders the per-template
// stolen/lost tallies. Replay is serial in canonical sample order, so
// the table is byte-identical across -workers widths and safe to
// golden-test.

// ExtBlame runs the blame-attribution replay.
func ExtBlame(e *Env) (*Result, error) {
	p, err := core.Train(e.Know, e.AllObservations(), core.TrainOptions{DropOutliers: true})
	if err != nil {
		return nil, err
	}
	blame := obs.NewBlame(obs.BlameConfig{})

	var buf core.ExplainBuffer
	decomposed, skipped := 0, 0
	for _, mpl := range e.sortedMPLs() {
		for _, o := range e.Observations(mpl) {
			want, err := p.PredictKnown(o.Primary, o.Concurrent)
			if err != nil {
				if errors.Is(err, core.ErrUntrainedMPL) || errors.Is(err, core.ErrUnknownTemplate) {
					skipped++
					continue
				}
				return nil, fmt.Errorf("ext-blame: predict T%d: %w", o.Primary, err)
			}
			got, err := p.PredictExplain(&buf, o.Primary, o.Concurrent)
			if err != nil {
				return nil, fmt.Errorf("ext-blame: explain T%d: %w", o.Primary, err)
			}
			if got != want || buf.Total != want {
				return nil, resilience.Permanent(fmt.Errorf("ext-blame: T%d mix %v: explained total %v, PredictKnown %v — must be bit-identical",
					o.Primary, o.Concurrent, got, want))
			}
			// Re-summing the recorded terms in slice order replays
			// cqiSlot's own summation, so the mean must reproduce the
			// CQI exactly.
			var sum float64
			for _, term := range buf.Intensity {
				sum += term
			}
			if sum/float64(len(buf.Intensity)) != buf.CQI {
				return nil, resilience.Permanent(fmt.Errorf("ext-blame: T%d mix %v: intensity terms do not reproduce the CQI bit-identically",
					o.Primary, o.Concurrent))
			}
			blame.Observe(o.Primary, buf.Neighbors, buf.Seconds)
			decomposed++
		}
	}
	if decomposed == 0 {
		return nil, resilience.Permanent(errors.New("ext-blame: no observation mix could be decomposed"))
	}

	// Collapse the pairwise matrix per template: seconds stolen from
	// others (as a neighbor) and lost to others (as a primary).
	rep := blame.Report()
	type tally struct {
		stolen, lost   float64
		stolenN, lostN int64
	}
	tallies := map[int]*tally{}
	at := func(id int) *tally {
		t, ok := tallies[id]
		if !ok {
			t = &tally{}
			tallies[id] = t
		}
		return t
	}
	for _, pr := range rep.Pairs {
		at(pr.Neighbor).stolen += pr.Seconds
		at(pr.Neighbor).stolenN += pr.Count
		at(pr.Primary).lost += pr.Seconds
		at(pr.Primary).lostN += pr.Count
	}
	ids := make([]int, 0, len(tallies))
	for id := range tallies {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	res := &Result{
		ID:     "ext-blame",
		Title:  "Extension §8 — per-mix contention blame attribution",
		Paper:  "beyond the paper: Eq. 5's CQI is a mean of per-neighbor intensity terms, so every prediction decomposes exactly into per-neighbor seconds",
		Header: []string{"template", "stolen [s]", "shares", "lost [s]", "shares", "net [s]"},
	}
	for _, id := range ids {
		t := tallies[id]
		res.AddRow(
			fmt.Sprintf("T%d", id),
			fmt.Sprintf("%.1f", t.stolen),
			fmt.Sprintf("%d", t.stolenN),
			fmt.Sprintf("%.1f", t.lost),
			fmt.Sprintf("%d", t.lostN),
			fmt.Sprintf("%+.1f", t.stolen-t.lost),
		)
	}
	res.SetMetric("decompositions", float64(decomposed))
	res.SetMetric("exact", float64(decomposed)) // every mix passed both bit-identity checks
	res.SetMetric("skipped", float64(skipped))
	res.SetMetric("pairs", float64(len(rep.Pairs)))
	res.SetMetric("templates", float64(len(ids)))
	if len(rep.Aggressors) > 0 && len(rep.Victims) > 0 {
		a, v := rep.Aggressors[0], rep.Victims[0]
		res.Notes = append(res.Notes, fmt.Sprintf(
			"top aggressor T%d steals %.1f s across %d shares; top victim T%d loses %.1f s across %d shares",
			a.Template, a.Seconds, a.Count, v.Template, v.Seconds, v.Count))
	}
	res.Notes = append(res.Notes,
		"every decomposition's total and CQI matched PredictKnown bit-for-bit; exactness is by construction, not tolerance")
	return res, nil
}
