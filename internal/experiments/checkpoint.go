package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"sync"

	"contender/internal/core"
	"contender/internal/resilience"
	"contender/internal/sim"
	"contender/internal/tpcds"
)

// Campaign checkpoints for Env building. Every sampling task's RAW result
// — one scan time, one template profile, one mix's per-slot latencies —
// is flushed atomically as it completes, keyed by the task key that also
// derives its engine seed. On resume, recorded tasks are restored into
// their result slots instead of re-run; since the merge consumes the same
// values through the same code in the same canonical order, a resumed
// campaign is byte-identical (KnowledgeSnapshot and observations) to an
// uninterrupted one.

// envCheckpointVersion guards against loading incompatible files.
const envCheckpointVersion = 1

// templateEntry persists one completed template-profiling task, using the
// canonical TemplateSnapshot encoding from internal/core.
type templateEntry struct {
	Stats           core.TemplateSnapshot `json:"stats"`
	IsolatedSeconds float64               `json:"isolated_seconds"`
	SpoilerSeconds  float64               `json:"spoiler_seconds"`
}

// mixEntry persists one completed steady-state mix task: the mix and each
// slot's mean latency, from which the observations are rebuilt on resume.
type mixEntry struct {
	Mix     []int     `json:"mix"`
	Lats    []float64 `json:"lats"`
	Seconds float64   `json:"seconds"`
}

type envCheckpointState struct {
	Version     int                      `json:"version"`
	Fingerprint string                   `json:"fingerprint"`
	Scans       map[string]float64       `json:"scans,omitempty"`
	Templates   map[string]templateEntry `json:"templates,omitempty"`
	Mixes       map[string]mixEntry      `json:"mixes,omitempty"`
	Failed      []TaskFailure            `json:"failed,omitempty"`
}

// envCheckpoint is the write-through checkpoint file. record() is safe for
// concurrent use by pool workers.
type envCheckpoint struct {
	path string

	mu    sync.Mutex
	state envCheckpointState
}

// loadEnvCheckpoint opens (or initializes) the checkpoint at path. An
// existing file must carry the same campaign fingerprint; resuming under a
// different configuration would silently mix incompatible designs.
func loadEnvCheckpoint(path, fingerprint string) (*envCheckpoint, error) {
	c := &envCheckpoint{path: path}
	c.state = envCheckpointState{
		Version:     envCheckpointVersion,
		Fingerprint: fingerprint,
		Scans:       map[string]float64{},
		Templates:   map[string]templateEntry{},
		Mixes:       map[string]mixEntry{},
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: reading checkpoint %s: %w", path, err)
	}
	var loaded envCheckpointState
	if err := json.Unmarshal(data, &loaded); err != nil {
		return nil, fmt.Errorf("experiments: corrupt checkpoint %s: %w", path, err)
	}
	if loaded.Version != envCheckpointVersion {
		return nil, resilience.Permanent(fmt.Errorf("experiments: checkpoint %s has version %d (want %d)", path, loaded.Version, envCheckpointVersion))
	}
	if loaded.Fingerprint != fingerprint {
		return nil, resilience.Permanent(fmt.Errorf("experiments: checkpoint %s was taken under a different configuration or workload (fingerprint %s, current campaign %s) — delete it or restore the original options",
			path, loaded.Fingerprint, fingerprint))
	}
	if loaded.Scans == nil {
		loaded.Scans = map[string]float64{}
	}
	if loaded.Templates == nil {
		loaded.Templates = map[string]templateEntry{}
	}
	if loaded.Mixes == nil {
		loaded.Mixes = map[string]mixEntry{}
	}
	c.state = loaded
	return c, nil
}

// record applies a mutation to the checkpoint state and flushes it
// atomically (temp file + rename).
func (c *envCheckpoint) record(fn func(*envCheckpointState)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(&c.state)
	data, err := json.MarshalIndent(&c.state, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding checkpoint: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("committing checkpoint: %w", err)
	}
	return nil
}

// discard removes the checkpoint file after the campaign completes.
func (c *envCheckpoint) discard() {
	os.Remove(c.path)
}

// envFingerprint hashes everything that shapes the campaign's measurements
// — sampling knobs, seed, host configuration, workload identity — into a
// short hex string. Workers is deliberately excluded (every worker count
// collects identical data), and so are Retry/Faults (retries rerun the
// same derived seed, and injected faults never corrupt recorded values —
// they only fail or stall tasks).
func envFingerprint(opts Options, cfg sim.Config, w *tpcds.Workload) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|mpls=%v|lhs=%d|steady=%d|iso=%d|seed=%d|cfg=%+v|ids=%v|facts=",
		envCheckpointVersion, opts.MPLs, opts.LHSRuns, opts.SteadySamples, opts.IsolatedRuns, opts.Seed, cfg, w.IDs())
	for _, t := range w.Catalog.FactTables() {
		fmt.Fprintf(h, "%s,", t.Name)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
