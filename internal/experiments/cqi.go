package experiments

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/stats"
)

// This file reproduces Table 2 and Figure 7: per-template linear models
// that predict the primary's latency directly from an intensity metric
// (Baseline I/O, Positive I/O, or full CQI), evaluated with k-fold
// cross-validation over the sampled mixes.

// intensityVariant names one of the Table 2 metrics.
type intensityVariant struct {
	name string
	eval func(k *core.Knowledge, primary int, concurrent []int) float64
}

func variants() []intensityVariant {
	return []intensityVariant{
		{"Baseline I/O", func(k *core.Knowledge, _ int, c []int) float64 { return k.BaselineIO(c) }},
		{"Positive I/O", func(k *core.Knowledge, p int, c []int) float64 { return k.PositiveIO(p, c) }},
		{"CQI", func(k *core.Knowledge, p int, c []int) float64 { return k.CQI(p, c) }},
	}
}

// cqiTemplateErrors runs the k-fold CV protocol for one variant at one MPL
// and returns the per-template mean relative error.
func cqiTemplateErrors(env *Env, v intensityVariant, mpl, folds int) map[int]float64 {
	out := make(map[int]float64)
	for _, id := range env.TemplateIDs() {
		obs := env.ObservationsFor(mpl, id)
		if len(obs) < folds {
			continue
		}
		xs := make([]float64, len(obs))
		ys := make([]float64, len(obs))
		for i, o := range obs {
			xs[i] = v.eval(env.Know, o.Primary, o.Concurrent)
			ys[i] = o.Latency
		}
		var observed, predicted []float64
		for _, f := range stats.KFold(len(obs), folds, env.Opts.Seed+int64(id)) {
			trainX := pick(xs, f.Train)
			trainY := pick(ys, f.Train)
			fit, err := stats.FitLinear(trainX, trainY)
			if err != nil {
				continue
			}
			for _, i := range f.Test {
				observed = append(observed, ys[i])
				predicted = append(predicted, fit.Predict(xs[i]))
			}
		}
		if len(observed) > 0 {
			out[id] = stats.MRE(observed, predicted)
		}
	}
	return out
}

func pick(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

func meanOfMap(m map[int]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	var s float64
	for _, v := range m {
		s += v
	}
	return s / float64(len(m))
}

// Table2 reproduces Table 2: mean relative error of latency prediction
// from each intensity metric over MPLs 2–5.
func Table2(env *Env) (*Result, error) {
	res := &Result{
		ID:     "table2",
		Title:  "MRE of intensity-metric latency prediction, MPL 2-5",
		Paper:  "Baseline I/O 25.4%, Positive I/O 20.4%, CQI 20.2%",
		Header: []string{"Metric", "MRE (MPL 2-5)"},
	}
	const folds = 5
	for _, v := range variants() {
		var all []float64
		for _, mpl := range env.sortedMPLs() {
			for _, e := range cqiTemplateErrors(env, v, mpl, folds) {
				all = append(all, e)
			}
		}
		mre := stats.Mean(all)
		res.AddRow(v.name, fmtPct(mre))
		res.SetMetric("mre/"+v.name, mre)
	}
	res.Notes = append(res.Notes,
		"one linear model per template per MPL; 5-fold CV over sampled mixes")
	return res, nil
}

// Fig7 reproduces Figure 7: the per-template relative error of the
// CQI-only latency model at MPL 4.
func Fig7(env *Env) (*Result, error) {
	const mpl = 4
	if len(env.Samples[mpl]) == 0 {
		return nil, fmt.Errorf("experiments: %w: no samples at MPL %d", core.ErrUntrainedMPL, mpl)
	}
	v := variants()[2] // CQI
	errs := cqiTemplateErrors(env, v, mpl, 5)

	res := &Result{
		ID:     "fig7",
		Title:  "Per-template error of the CQI model at MPL 4",
		Paper:  "19% average; ≤10% for extremely I/O-bound templates; ≈23% for random-I/O templates; memory-intensive templates worst",
		Header: []string{"Template", "Rel. error", "Class"},
	}
	classOf := func(id int) string {
		switch id {
		case 26, 33, 61, 71:
			return "I/O-bound"
		case 17, 25, 32:
			return "random I/O"
		case 2, 22:
			return "memory"
		case 62, 65:
			return "CPU-heavy"
		}
		return ""
	}
	avg := meanOfMap(errs)
	res.AddRow("Avg", fmtPct(avg), "")
	res.SetMetric("mre/avg", avg)

	var ioErrs, randErrs, memErrs []float64
	for _, id := range env.TemplateIDs() {
		e, ok := errs[id]
		if !ok {
			continue
		}
		class := classOf(id)
		res.AddRow(fmt.Sprintf("%d", id), fmtPct(e), class)
		switch class {
		case "I/O-bound":
			ioErrs = append(ioErrs, e)
		case "random I/O":
			randErrs = append(randErrs, e)
		case "memory":
			memErrs = append(memErrs, e)
		}
	}
	res.SetMetric("mre/io-bound", stats.Mean(ioErrs))
	res.SetMetric("mre/random-io", stats.Mean(randErrs))
	res.SetMetric("mre/memory", stats.Mean(memErrs))
	return res, nil
}
