package experiments

import (
	"context"
	"errors"
	"fmt"

	"contender/internal/core"
	"contender/internal/lifecycle"
	"contender/internal/obs"
	"contender/internal/resilience"
	"contender/internal/store"
)

// ExtSelfheal replays the whole self-healing knowledge lifecycle,
// deterministically, on top of the ext-quality drift scenario:
//
//  1. detect — train, serve through a sharded set, replay clean rounds,
//     then slow the two deterministic victim templates down by
//     qualityShiftFactor×; the drift detector must flip exactly them to
//     stale.
//  2. heal — the lifecycle control loop re-collects ONLY the victim
//     templates' tasks in the drifted world, refits, wins the canary
//     replay, publishes version 2 to the content-addressed store, and
//     hot-swaps it in with zero serving downtime; the victims' trackers
//     reset and stay healthy under continued drifted traffic.
//  3. reject — a forced retrain with an over-correcting collector (5×)
//     loses the canary against the still-1.8× world: the loop rolls
//     back, emits lifecycle.rollback, and keeps serving version 2.
//  4. survive — crash debris (a torn *.tmp from a killed publish) is
//     swept on reopen with no version loss, and a bit flip in the
//     current snapshot is caught by its checksum on the next open, which
//     falls back to version 1.
//
// Store versions are content-fingerprinted, the replay order is
// canonical, and the loop has no clocks or randomness, so the rendered
// table is byte-identical across -workers widths.
const selfhealOverFactor = 5.0

// ExtSelfheal runs the lifecycle replay.
func ExtSelfheal(e *Env) (*Result, error) {
	p1, err := core.Train(e.Know, e.AllObservations(), core.TrainOptions{DropOutliers: true})
	if err != nil {
		return nil, err
	}
	quality := obs.NewQuality(qualityDriftConfig())
	p1.SetQuality(quality)

	mpls := e.sortedMPLs()
	refs, ok := p1.References(mpls[0])
	if !ok {
		return nil, fmt.Errorf("ext-selfheal: %w: no reference models at MPL %d", core.ErrUntrainedMPL, mpls[0])
	}
	var trained []int
	for _, id := range e.TemplateIDs() {
		if _, ok := refs.Model(id); ok {
			trained = append(trained, id)
		}
	}
	if len(trained) < 2 {
		return nil, fmt.Errorf("ext-selfheal: %w: only %d trained templates", core.ErrUntrainedMPL, len(trained))
	}
	victims := qualityVictims(trained)
	victimSet := make(map[int]bool, len(victims))
	for _, v := range victims {
		victimSet[v] = true
	}

	sharded, err := core.NewSharded(p1, core.ShardOptions{Shards: 1, RingSize: 1 << 14})
	if err != nil {
		return nil, err
	}
	shard := sharded.Acquire()

	// replayRound streams one full pass of the campaign observations
	// through the serving shard as live feedback, draining per MPL so
	// the ring never overflows. The drifted world slows victims down.
	replayRound := func(shifted bool) error {
		for _, mpl := range mpls {
			for _, o := range e.Observations(mpl) {
				observed := o.Latency
				if shifted && victimSet[o.Primary] {
					observed *= qualityShiftFactor
				}
				if _, err := shard.Observe(o.Primary, o.Concurrent, observed); err != nil {
					return fmt.Errorf("ext-selfheal: observe T%d: %w", o.Primary, err)
				}
			}
			sharded.DrainFeedback()
		}
		return nil
	}
	for round := 0; round < qualityHealthyRounds; round++ {
		if err := replayRound(false); err != nil {
			return nil, err
		}
	}
	for round := 0; round < qualityShiftRounds; round++ {
		if err := replayRound(true); err != nil {
			return nil, err
		}
	}
	staleIDs := func() []int {
		var out []int
		for _, t := range quality.Report().Templates {
			if t.State == obs.DriftStale.String() {
				out = append(out, t.Template)
			}
		}
		return out
	}
	detected := staleIDs()

	// The lifecycle manager over a memory-backed store. The live world
	// keeps running victims qualityShiftFactor× slow; the collector's
	// world is switchable so the forced retrain below can over-correct.
	repo := store.NewMemRepository()
	st, err := store.New(repo)
	if err != nil {
		return nil, err
	}
	liveFactor := qualityShiftFactor
	collectFactor := qualityShiftFactor
	rec := obs.NewRecording()
	mgr, err := lifecycle.New(sharded, lifecycle.Config{
		Quality: quality,
		Collector: lifecycle.CollectorFunc(func(ctx context.Context, stale []int) (*core.Predictor, error) {
			f := collectFactor
			return e.Recollect(ctx, RecollectConfig{
				Templates: stale,
				World:     func(_, _ int, l float64) float64 { return l * f },
			})
		}),
		Holdout: func(stale []int) []lifecycle.Sample {
			var out []lifecycle.Sample
			for _, mpl := range mpls {
				for _, id := range stale {
					for _, o := range e.ObservationsFor(mpl, id) {
						out = append(out, lifecycle.Sample{
							Primary:    o.Primary,
							Concurrent: o.Concurrent,
							Observed:   o.Latency * liveFactor,
						})
					}
				}
			}
			return out
		},
		Store:    st,
		Observer: rec,
	})
	if err != nil {
		return nil, err
	}
	v1, _ := st.Current()

	// Heal: one control-loop step re-collects the stale templates,
	// passes the canary, publishes v2, and hot-swaps.
	heal, err := mgr.Step(context.Background())
	if err != nil {
		return nil, err
	}
	served := sharded.Snapshot()
	if served == p1 && heal.Action == lifecycle.ActionPromoted {
		return nil, resilience.Permanent(errors.New("ext-selfheal: promotion reported but old predictor still serving"))
	}

	// Continued drifted traffic must now look healthy to the new model.
	if err := replayRound(true); err != nil {
		return nil, err
	}
	staleAfter := staleIDs()

	// Reject: an over-correcting candidate (5× vs the 1.8× world) must
	// lose the canary and roll back without touching serving or store.
	collectFactor = selfhealOverFactor
	reject, err := mgr.ForceRetrain(context.Background(), victims)
	if err != nil {
		return nil, err
	}
	keptServing := sharded.Snapshot() == served

	// Survive: crash debris and corruption against the store.
	curBefore, _ := st.Current()
	raw, err := repo.Read("sn-" + curBefore.Fingerprint + ".json")
	if err != nil {
		return nil, err
	}
	repo.Put("sn-0000000000000000.json.tmp", raw[:len(raw)/3]) // torn write from a killed publish
	reopened, err := store.New(repo)
	if err != nil {
		return nil, err
	}
	crashRep := reopened.Report()
	afterCrash, _ := reopened.Current()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x01
	repo.Put("sn-"+curBefore.Fingerprint+".json", flipped)
	recovered, err := store.New(repo)
	if err != nil {
		return nil, err
	}
	corruptRep := recovered.Report()
	afterCorrupt, _ := recovered.Current()

	// Event tally from the lifecycle observer.
	var staleEvents, promoteEvents, rollbackEvents, publishEvents int
	for _, ev := range rec.Events() {
		switch ev.Span {
		case obs.PointLifecycleStale:
			staleEvents++
		case obs.PointLifecyclePromote:
			promoteEvents++
		case obs.PointLifecycleRollback:
			rollbackEvents++
		case obs.PointStorePublish:
			publishEvents++
		}
	}

	// How targeted was the re-collection?
	designs := e.mixDesigns()
	totalMixes, touchedMixes := 0, 0
	for _, mpl := range mpls {
		for _, mix := range designs[mpl] {
			totalMixes++
			for _, id := range mix {
				if victimSet[id] {
					touchedMixes++
					break
				}
			}
		}
	}

	res := &Result{
		ID:     "ext-selfheal",
		Title:  "Extension §8 — self-healing knowledge lifecycle",
		Paper:  "beyond the paper: drift detection closed into targeted re-collection, canary-gated hot-swap, and a versioned store",
		Header: []string{"phase", "action", "templates", "old MRE", "new MRE", "version", "detail"},
	}
	res.AddRow("detect", "stale", fmtIDs(detected), "-", "-", shortFP(v1),
		fmt.Sprintf("%.1f× victim slowdown after %d clean rounds", qualityShiftFactor, qualityHealthyRounds))
	res.AddRow("heal", string(heal.Action), fmtIDs(heal.Stale), fmtPct(heal.OldMRE), fmtPct(heal.NewMRE), shortFP(heal.Version),
		fmt.Sprintf("re-collected %d of %d mixes + %d profiles, zero-downtime swap", touchedMixes, totalMixes, len(victims)))
	res.AddRow("settle", "observe", fmtIDs(staleAfter), "-", "-", shortFP(heal.Version),
		"drifted traffic healthy on the new model; trackers reset")
	res.AddRow("reject", string(reject.Action), fmtIDs(reject.Stale), fmtPct(reject.OldMRE), fmtPct(reject.NewMRE), shortFP(curBefore),
		fmt.Sprintf("%.0f× over-corrected candidate loses the canary", selfhealOverFactor))
	res.AddRow("crash", "recover", "-", "-", "-", shortFP(afterCrash),
		fmt.Sprintf("swept %d torn tmp, no version loss", len(crashRep.RemovedTemp)))
	res.AddRow("corrupt", "fallback", "-", "-", "-", shortFP(afterCorrupt),
		fmt.Sprintf("checksum caught bit flip in %s; serving previous version", shortFP(curBefore)))

	res.SetMetric("victims", float64(len(victims)))
	res.SetMetric("stale_detected", float64(len(detected)))
	res.SetMetric("stale_after_heal", float64(len(staleAfter)))
	res.SetMetric("promotions", float64(promoteEvents))
	res.SetMetric("rollbacks", float64(rollbackEvents))
	res.SetMetric("stale_events", float64(staleEvents))
	res.SetMetric("store_publishes", float64(publishEvents))
	res.SetMetric("store_versions", float64(st.Len()))
	res.SetMetric("remeasured_mixes", float64(touchedMixes))
	res.SetMetric("total_mixes", float64(totalMixes))
	res.SetMetric("canary_samples", float64(heal.Samples))
	res.SetMetric("dropped_feedback", float64(quality.Dropped()))
	res.SetMetric("kept_serving_after_rollback", b2f(keptServing))
	res.SetMetric("crash_tmp_swept", float64(len(crashRep.RemovedTemp)))
	res.SetMetric("corrupt_versions", float64(len(corruptRep.CorruptVersions)))
	res.SetMetric("fell_back", b2f(corruptRep.FellBackTo == v1.Fingerprint))
	res.Notes = append(res.Notes,
		fmt.Sprintf("victims %s drift stale, are re-collected alone (%d of %d mixes touched), and heal through a canary-gated hot-swap",
			fmtIDs(victims), touchedMixes, totalMixes),
		"store versions are content-fingerprinted with checksums; torn writes sweep clean and bit rot falls back a version",
	)
	return res, nil
}

// shortFP abbreviates a store version for table cells.
func shortFP(v store.Version) string {
	if v.IsZero() {
		return "-"
	}
	return fmt.Sprintf("v%d:%s", v.Seq, v.Fingerprint[:8])
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
