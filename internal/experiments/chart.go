package experiments

import (
	"fmt"
	"strings"
)

// ASCII chart rendering: contender-bench can show the paper's figures as
// horizontal bar charts next to the tables, which makes the per-template
// and per-MPL shapes (Figures 3, 6, 7, 8, 9, 10) legible at a glance.

// BarChart renders labeled values as a horizontal bar chart. Bars scale to
// maxWidth characters against the largest value; each row shows the label,
// the bar, and the formatted value.
func BarChart(labels []string, values []float64, format func(float64) string, maxWidth int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if maxWidth <= 0 {
		maxWidth = 40
	}
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	labelWidth := 0
	peak := 0.0
	for i, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
		if values[i] > peak {
			peak = values[i]
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if peak > 0 && values[i] > 0 {
			n = int(values[i] / peak * float64(maxWidth))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%-*s  %-*s %s\n", labelWidth, l, maxWidth, strings.Repeat("█", n), format(values[i]))
	}
	return b.String()
}

// Chart renders a bar-chart view of a result, if the experiment has a
// natural one (per-row numeric first metric column). It returns "" when
// the result has no chartable shape.
func (r *Result) Chart() string {
	if len(r.Rows) == 0 || len(r.Header) < 2 {
		return ""
	}
	var labels []string
	var values []float64
	for _, row := range r.Rows {
		if len(row) < 2 {
			continue
		}
		v, ok := parseCell(row[1])
		if !ok {
			continue
		}
		labels = append(labels, row[0])
		values = append(values, v)
	}
	if len(labels) < 2 {
		return ""
	}
	return BarChart(labels, values, func(v float64) string { return fmt.Sprintf("%.3g", v) }, 40)
}

// parseCell extracts the leading number from a rendered table cell like
// "19.4%", "3580 s", or "2.49x".
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	end := 0
	seenDigit := false
	for end < len(s) {
		c := s[end]
		if c >= '0' && c <= '9' {
			seenDigit = true
			end++
			continue
		}
		if (c == '.' || c == '-' || c == '+') && end < len(s) {
			end++
			continue
		}
		break
	}
	if !seenDigit {
		return 0, false
	}
	var v float64
	if _, err := fmt.Sscanf(s[:end], "%g", &v); err != nil {
		return 0, false
	}
	return v, true
}
