package experiments

import (
	"fmt"

	"contender/internal/core"
	"contender/internal/stats"
)

// ExtQSFeatures ablates the µ-estimation step of the Unknown-QS transfer
// (Figure 5, step 3). The paper regresses µ on the isolated latency, the
// feature Table 3 found best on its testbed; on this substrate that
// correlation is weak (see EXPERIMENTS.md), so this experiment asks which
// isolated-statistics estimator actually transfers µ best here:
//
//   - Isolated latency — the paper's choice;
//   - I/O fraction — p_t as the single regressor;
//   - Spoiler slowdown — the best-correlated feature on this substrate
//     (requires the template's spoiler latency, i.e. linear-time
//     sampling rather than constant);
//   - Multi-feature OLS — (l_min, p_t, working set) jointly;
//   - Mean-µ prior — no feature at all (the degenerate fallback).
//
// In every variant the intercept b then comes from the b↔µ relation
// (Figure 4) and the latency is scaled on the measured continuum, so the
// comparison isolates the µ-estimation step.
func ExtQSFeatures(env *Env) (*Result, error) {
	type estimator struct {
		name string
		// estimate µ for a held-out template from training-fold data.
		fit func(train []int, models map[int]core.QSModel, mpl int) (func(core.TemplateStats) float64, error)
	}

	single := func(get func(core.TemplateStats, int) float64) func([]int, map[int]core.QSModel, int) (func(core.TemplateStats) float64, error) {
		return func(train []int, models map[int]core.QSModel, mpl int) (func(core.TemplateStats) float64, error) {
			var xs, mus []float64
			for _, id := range train {
				m, ok := models[id]
				if !ok {
					continue
				}
				xs = append(xs, get(env.Know.MustTemplate(id), mpl))
				mus = append(mus, m.Mu)
			}
			fit, err := stats.FitLinear(xs, mus)
			if err != nil {
				return nil, err
			}
			return func(t core.TemplateStats) float64 { return fit.Predict(get(t, mpl)) }, nil
		}
	}

	estimators := []estimator{
		{"Isolated latency (paper)", single(func(t core.TemplateStats, _ int) float64 { return t.IsolatedLatency })},
		{"I/O fraction", single(func(t core.TemplateStats, _ int) float64 { return t.IOFraction })},
		{"Spoiler slowdown", single(func(t core.TemplateStats, mpl int) float64 { return t.SpoilerSlowdown(mpl) })},
		{"Multi-feature OLS", func(train []int, models map[int]core.QSModel, mpl int) (func(core.TemplateStats) float64, error) {
			var xs [][]float64
			var mus []float64
			for _, id := range train {
				m, ok := models[id]
				if !ok {
					continue
				}
				t := env.Know.MustTemplate(id)
				xs = append(xs, []float64{t.IsolatedLatency, t.IOFraction, t.WorkingSetBytes})
				mus = append(mus, m.Mu)
			}
			fit, err := stats.FitMultiLinear(xs, mus)
			if err != nil {
				return nil, err
			}
			return func(t core.TemplateStats) float64 {
				return fit.Predict([]float64{t.IsolatedLatency, t.IOFraction, t.WorkingSetBytes})
			}, nil
		}},
		{"Mean-µ prior", func(train []int, models map[int]core.QSModel, _ int) (func(core.TemplateStats) float64, error) {
			var mus []float64
			for _, id := range train {
				if m, ok := models[id]; ok {
					mus = append(mus, m.Mu)
				}
			}
			mean := stats.Mean(mus)
			return func(core.TemplateStats) float64 { return mean }, nil
		}},
	}

	res := &Result{
		ID:     "ext-qsfeatures",
		Title:  "Ablation — µ-estimation features for unknown templates",
		Paper:  "the paper uses isolated latency (its Table 3 winner); this substrate's Table 3 winner is spoiler slowdown",
		Header: []string{"µ estimator", "MRE (MPL 2-5)"},
	}

	errsByName := make(map[string][]float64)
	ids := env.TemplateIDs()
	for _, mpl := range env.sortedMPLs() {
		models, err := fitQSModels(env, mpl)
		if err != nil {
			return nil, err
		}
		for _, fold := range stats.KFold(len(ids), 5, env.Opts.Seed+int64(400+mpl)) {
			train := make([]int, len(fold.Train))
			for i, j := range fold.Train {
				train[i] = ids[j]
			}
			refs := core.NewReferenceModels(env.Know, mpl)
			for _, id := range train {
				if m, ok := models[id]; ok {
					refs.Add(id, m)
				}
			}
			for _, est := range estimators {
				muOf, err := est.fit(train, models, mpl)
				if err != nil {
					return nil, fmt.Errorf("experiments: estimator %q: %w", est.name, err)
				}
				for _, j := range fold.Test {
					id := ids[j]
					cont, ok := env.Know.ContinuumFor(id, mpl)
					if !ok {
						continue
					}
					t := env.Know.MustTemplate(id)
					qs, err := refs.EstimateInterceptFromMu(muOf(t))
					if err != nil {
						return nil, err
					}
					var obsL, pred []float64
					for _, o := range env.ObservationsFor(mpl, id) {
						if cont.IsOutlier(o.Latency) {
							continue
						}
						r := env.Know.CQI(o.Primary, o.Concurrent)
						obsL = append(obsL, o.Latency)
						pred = append(pred, cont.Latency(qs.Point(r)))
					}
					if len(obsL) > 0 {
						errsByName[est.name] = append(errsByName[est.name], stats.MRE(obsL, pred))
					}
				}
			}
		}
	}
	for _, est := range estimators {
		mre := stats.Mean(errsByName[est.name])
		res.AddRow(est.name, fmtPct(mre))
		res.SetMetric("mre/"+est.name, mre)
	}
	res.Notes = append(res.Notes,
		"spoiler slowdown requires linear-time sampling of the new template; all others are constant-time")
	return res, nil
}
