package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"contender/internal/sim"
)

// Parallel training-data collection. Building an Env is the paper's entire
// sampling campaign — isolated runs, spoiler runs per MPL, exhaustive pairs
// at MPL 2, LHS designs above — and every experiment, benchmark, and CLI
// pays it on startup. The campaign is embarrassingly parallel: no unit of
// work depends on another, so the build fans out over a worker pool.
//
// Determinism scheme (see DESIGN.md "Deterministic parallel sampling"):
//
//   - Every task (one template's isolated+spoiler profile, one steady-state
//     mix, one scan-time measurement) owns a PRIVATE sim.Engine seeded with
//     sim.DeriveSeed(Opts.Seed, taskKey). The task's measurements depend
//     only on its key, never on worker count or scheduling order.
//   - Results are written to pre-assigned slots and merged into Knowledge,
//     Samples, and the SimulatedSeconds tallies in canonical order
//     (workload template order, then design order per MPL), so even the
//     floating-point accumulations are byte-identical across worker counts.
//
// A consequence: sampled values differ from the pre-parallel releases,
// which threaded one shared RNG stream through every measurement. That was
// a one-time re-baseline of EXPERIMENTS.md's golden numbers.

// envTask is one independent unit of sampling work.
type envTask struct {
	// key derives the task's engine seed and identifies it in errors.
	key string
	// run performs the measurement on the task's private engine.
	run func(eng *sim.Engine) error
}

// taskEngine builds the private engine for a task key.
func (e *Env) taskEngine(key string) *sim.Engine {
	return sim.NewEngine(e.baseCfg.WithSeed(sim.DeriveSeed(e.Opts.Seed, key)))
}

// workers resolves the effective pool width for n tasks.
func (e *Env) workers(n int) int {
	w := e.Opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runTasks executes all tasks, min(Workers, len(tasks)) wide. Each task
// runs exactly once on its own engine; the first error wins and the pool
// drains without starting further work.
func (e *Env) runTasks(tasks []envTask) error {
	workers := e.workers(len(tasks))
	if workers == 1 {
		for _, t := range tasks {
			if err := t.run(e.taskEngine(t.key)); err != nil {
				return fmt.Errorf("experiments: task %s: %w", t.key, err)
			}
		}
		return nil
	}

	var (
		ch       = make(chan envTask)
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if failed() {
					continue // drain: stop starting new work after an error
				}
				if err := t.run(e.taskEngine(t.key)); err != nil {
					fail(fmt.Errorf("experiments: task %s: %w", t.key, err))
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return firstErr
}
