package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"contender/internal/obs"
	"contender/internal/resilience"
	"contender/internal/sim"
)

// Parallel training-data collection. Building an Env is the paper's entire
// sampling campaign — isolated runs, spoiler runs per MPL, exhaustive pairs
// at MPL 2, LHS designs above — and every experiment, benchmark, and CLI
// pays it on startup. The campaign is embarrassingly parallel: no unit of
// work depends on another, so the build fans out over a worker pool.
//
// Determinism scheme (see DESIGN.md "Deterministic parallel sampling"):
//
//   - Every task (one template's isolated+spoiler profile, one steady-state
//     mix, one scan-time measurement) owns a PRIVATE sim.Engine seeded with
//     sim.DeriveSeed(Opts.Seed, taskKey). The task's measurements depend
//     only on its key, never on worker count or scheduling order.
//   - Results are written to pre-assigned slots and merged into Knowledge,
//     Samples, and the SimulatedSeconds tallies in canonical order
//     (workload template order, then design order per MPL), so even the
//     floating-point accumulations are byte-identical across worker counts.
//   - A retried task reruns on a FRESH engine with the same derived seed,
//     so retries reproduce exactly the measurement an untroubled attempt
//     would have made — which is why campaigns under transient faults stay
//     byte-identical to clean ones.
//
// A consequence: sampled values differ from the pre-parallel releases,
// which threaded one shared RNG stream through every measurement. That was
// a one-time re-baseline of EXPERIMENTS.md's golden numbers.

// envTask is one independent unit of sampling work.
type envTask struct {
	// key derives the task's engine seed and identifies it in errors, the
	// fault injector, and the checkpoint.
	key string
	// run performs the measurement on the task's private engine.
	run func(eng *sim.Engine) error
	// done persists the task's result into the checkpoint; nil when no
	// checkpoint is configured.
	done func() error
}

// taskEngine builds the private engine for a task key.
func (e *Env) taskEngine(key string) *sim.Engine {
	return sim.NewEngine(e.baseCfg.WithSeed(sim.DeriveSeed(e.Opts.Seed, key)))
}

// workers resolves the effective pool width for n tasks.
func (e *Env) workers(n int) int {
	w := e.Opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// errTaskCheckpoint marks a failed checkpoint write — always fatal, even
// under a retry policy, because continuing would break the resume
// guarantee. Classified permanent so taxonomy-aware callers agree.
var errTaskCheckpoint = resilience.Permanent(errors.New("checkpoint write failed"))

// runOne executes one task: consult the fault injector (if configured),
// then run the measurement, under the retry policy when one is set. Each
// attempt gets a fresh engine seeded from the task key alone.
func (e *Env) runOne(ctx context.Context, t envTask) (attempts int, err error) {
	attempt := func() error {
		if e.injector != nil {
			if ferr := e.injector.Decide(t.key).Err(t.key); ferr != nil {
				return ferr
			}
		}
		return t.run(e.taskEngine(t.key))
	}
	if e.Opts.Retry == nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
		return 1, attempt()
	}
	return e.Opts.Retry.Do(ctx, t.key, attempt)
}

// taskSpan maps a task key to its span taxonomy name.
func taskSpan(key string) string {
	switch {
	case strings.HasPrefix(key, "scan/"):
		return obs.SpanTrainScan
	case strings.HasPrefix(key, "template/"):
		return obs.SpanTrainProfile
	default:
		return obs.SpanTrainMix
	}
}

// runOneObserved is runOne wrapped in the task's train.* span. The nil
// check precedes the clock read, so unobserved campaigns pay nothing.
func (e *Env) runOneObserved(ctx context.Context, t envTask) (int, error) {
	o := e.Opts.Observer
	if o == nil {
		return e.runOne(ctx, t)
	}
	span := taskSpan(t.key)
	obs.Emit(o, obs.Event{Kind: obs.SpanBegin, Span: span, Key: t.key})
	start := time.Now() //contender:allow nodeterminism -- task span duration feeds observability only, never a canonical artifact
	attempts, err := e.runOne(ctx, t)
	obs.Emit(o, obs.Event{
		Kind:    obs.SpanEnd,
		Span:    span,
		Key:     t.key,
		Attempt: attempts,
		Dur:     time.Since(start), //contender:allow nodeterminism -- task span duration feeds observability only, never a canonical artifact
		Err:     obs.ErrLabel(err),
	})
	return attempts, err
}

// fatalTask reports whether a task error must abort the whole campaign:
// cancellation and checkpoint-write failures always do; without a retry
// policy every error does (legacy fail-fast mode). Everything else is
// quarantined and the campaign degrades.
func (e *Env) fatalTask(err error) bool {
	return e.Opts.Retry == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errTaskCheckpoint)
}

// finishTask checkpoints a successful task and fires the completion hook.
func (e *Env) finishTask(t envTask) error {
	if t.done != nil {
		if err := t.done(); err != nil {
			return fmt.Errorf("%w: %v", errTaskCheckpoint, err)
		}
		e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainCheckpoint, Key: t.key})
	}
	if e.Opts.onTaskDone != nil {
		e.Opts.onTaskDone(t.key)
	}
	return nil
}

// quarantineTask records a terminal, non-fatal task failure in the
// checkpoint (so a resumed campaign skips it) and fires the hook.
func (e *Env) quarantineTask(t envTask, cause error) error {
	if e.ckpt != nil {
		if err := e.ckpt.record(func(s *envCheckpointState) {
			s.Failed = append(s.Failed, TaskFailure{Key: t.key, Reason: cause.Error()})
		}); err != nil {
			return fmt.Errorf("%w: %v", errTaskCheckpoint, err)
		}
		e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainCheckpoint, Key: t.key})
	}
	e.emit(obs.Event{Kind: obs.Point, Span: obs.PointTrainQuarantine, Key: t.key, Err: obs.ErrLabel(cause)})
	if e.Opts.onTaskDone != nil {
		e.Opts.onTaskDone(t.key)
	}
	return nil
}

// poolLabel tags collection goroutines in CPU/goroutine profiles, so a
// pprof of a busy process attributes sampling work to the campaign pool
// (`pprof -tagfocus contender_pool=env-collect`).
const poolLabel = "contender_pool"

// runTasks executes all tasks, min(Workers, len(tasks)) wide, honoring ctx
// between tasks (and during retry backoff). Fatal errors win and drain the
// pool without starting further work; non-fatal terminal failures are
// returned as quarantined TaskFailures in task order. All task execution
// — including the single-worker inline path — runs under pprof labels.
func (e *Env) runTasks(ctx context.Context, tasks []envTask) ([]TaskFailure, error) {
	workers := e.workers(len(tasks))
	fails := make([]error, len(tasks))

	if workers == 1 {
		var serialErr error
		pprof.Do(ctx, pprof.Labels(poolLabel, "env-collect"), func(ctx context.Context) {
			serialErr = e.runSerial(ctx, tasks, fails)
		})
		if serialErr != nil {
			return nil, serialErr
		}
		return compactFailures(tasks, fails), nil
	}

	var (
		ch       = make(chan int)
		wg       sync.WaitGroup
		mu       sync.Mutex
		fatalErr error
	)
	fatal := func(err error) {
		mu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fatalErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(ctx, pprof.Labels(poolLabel, "env-collect"), func(ctx context.Context) {
				for i := range ch {
					if stopped() {
						continue // drain: stop starting new work after a fatal error
					}
					t := tasks[i]
					attempts, err := e.runOneObserved(ctx, t)
					if attempts > 1 {
						mu.Lock()
						e.Resilience.Retries += attempts - 1
						mu.Unlock()
					}
					if err != nil {
						if e.fatalTask(err) {
							fatal(fmt.Errorf("experiments: task %s: %w", t.key, err))
							continue
						}
						if qerr := e.quarantineTask(t, err); qerr != nil {
							fatal(fmt.Errorf("experiments: task %s: %w", t.key, qerr))
							continue
						}
						mu.Lock()
						fails[i] = err
						mu.Unlock()
						continue
					}
					if ferr := e.finishTask(t); ferr != nil {
						fatal(fmt.Errorf("experiments: task %s: %w", t.key, ferr))
					}
				}
			})
		}()
	}
	for i := range tasks {
		ch <- i
	}
	close(ch)
	wg.Wait()
	if fatalErr != nil {
		return nil, fatalErr
	}
	return compactFailures(tasks, fails), nil
}

// runSerial is the single-worker task loop, inline on the caller's
// goroutine. Its event order is fully deterministic — the property the
// golden observer test locks down.
func (e *Env) runSerial(ctx context.Context, tasks []envTask, fails []error) error {
	for i, t := range tasks {
		attempts, err := e.runOneObserved(ctx, t)
		if attempts > 1 {
			e.Resilience.Retries += attempts - 1
		}
		if err != nil {
			if e.fatalTask(err) {
				return fmt.Errorf("experiments: task %s: %w", t.key, err)
			}
			if qerr := e.quarantineTask(t, err); qerr != nil {
				return fmt.Errorf("experiments: task %s: %w", t.key, qerr)
			}
			fails[i] = err
			continue
		}
		if ferr := e.finishTask(t); ferr != nil {
			return fmt.Errorf("experiments: task %s: %w", t.key, ferr)
		}
	}
	return nil
}

// compactFailures converts the per-slot error array into TaskFailures in
// task order — canonical regardless of worker scheduling.
func compactFailures(tasks []envTask, fails []error) []TaskFailure {
	var out []TaskFailure
	for i, err := range fails {
		if err != nil {
			out = append(out, TaskFailure{Key: tasks[i].key, Reason: err.Error()})
		}
	}
	return out
}
