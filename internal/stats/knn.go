package stats

import (
	"math"
	"sort"
)

// KNN is a k-nearest-neighbors regressor over fixed-dimension feature
// vectors with Euclidean distance. Features are standardized (zero mean,
// unit variance per dimension, computed over the training set) before
// distance computation so dimensions with large magnitudes — e.g. working
// set bytes vs. an I/O fraction in [0,1] — do not dominate.
//
// Contender uses KNN in two places: predicting spoiler-model coefficients
// for new templates from (working set, I/O time) in Section 5.5, and as the
// prediction step of KCCA (nearest neighbors in projection space).
type KNN struct {
	k       int
	feats   [][]float64 // standardized training features
	targets [][]float64 // per-sample target vectors (averaged component-wise)
	mean    []float64
	std     []float64
}

// NewKNN builds a regressor from training features and matching target
// vectors. k is clamped to the number of samples. All feature rows must
// share one dimension; all target rows must share one dimension.
func NewKNN(k int, features [][]float64, targets [][]float64) *KNN {
	if len(features) == 0 || len(features) != len(targets) {
		panic("stats: KNN requires equal, non-zero features and targets")
	}
	if k < 1 {
		k = 1
	}
	if k > len(features) {
		k = len(features)
	}
	d := len(features[0])
	mean := make([]float64, d)
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, len(features))
		for i, f := range features {
			col[i] = f[j]
		}
		mean[j] = Mean(col)
		std[j] = StdDev(col)
		if std[j] == 0 {
			std[j] = 1
		}
	}
	std2 := make([][]float64, len(features))
	for i, f := range features {
		row := make([]float64, d)
		for j, v := range f {
			row[j] = (v - mean[j]) / std[j]
		}
		std2[i] = row
	}
	t := make([][]float64, len(targets))
	for i, tv := range targets {
		t[i] = append([]float64(nil), tv...)
	}
	return &KNN{k: k, feats: std2, targets: t, mean: mean, std: std}
}

// Predict returns the component-wise average of the target vectors of the
// k nearest training samples to x.
func (n *KNN) Predict(x []float64) []float64 {
	idx := n.Neighbors(x)
	out := make([]float64, len(n.targets[0]))
	for _, i := range idx {
		for j, v := range n.targets[i] {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(idx))
	}
	return out
}

// Neighbors returns the indices of the k nearest training samples to x,
// closest first.
func (n *KNN) Neighbors(x []float64) []int {
	type cand struct {
		idx  int
		dist float64
	}
	sx := make([]float64, len(x))
	for j, v := range x {
		sx[j] = (v - n.mean[j]) / n.std[j]
	}
	cands := make([]cand, len(n.feats))
	for i, f := range n.feats {
		var d float64
		for j := range f {
			diff := f[j] - sx[j]
			d += diff * diff
		}
		cands[i] = cand{i, math.Sqrt(d)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	out := make([]int, n.k)
	for i := 0; i < n.k; i++ {
		out[i] = cands[i].idx
	}
	return out
}
