package stats

import (
	"testing"
)

func TestKNNExactNeighbor(t *testing.T) {
	feats := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	targets := [][]float64{{1}, {2}, {3}}
	knn := NewKNN(1, feats, targets)
	got := knn.Predict([]float64{9, 9})
	if got[0] != 2 {
		t.Fatalf("predicted %v, want [2]", got)
	}
}

func TestKNNAveraging(t *testing.T) {
	feats := [][]float64{{0}, {1}, {100}}
	targets := [][]float64{{10}, {20}, {1000}}
	knn := NewKNN(2, feats, targets)
	got := knn.Predict([]float64{0.5})
	if got[0] != 15 {
		t.Fatalf("predicted %v, want [15] (avg of 10 and 20)", got)
	}
}

func TestKNNStandardization(t *testing.T) {
	// Dimension 0 spans millions, dimension 1 spans [0,1]. Without
	// standardization dimension 1 would be ignored; with it, the nearest
	// neighbor of (0, 0.9) by dimension-1 distance must win when
	// dimension-0 values are equal.
	feats := [][]float64{{1e6, 0.0}, {1e6, 1.0}, {2e6, 0.5}}
	targets := [][]float64{{1}, {2}, {3}}
	knn := NewKNN(1, feats, targets)
	got := knn.Predict([]float64{1e6, 0.9})
	if got[0] != 2 {
		t.Fatalf("predicted %v, want [2]", got)
	}
}

func TestKNNVectorTargets(t *testing.T) {
	feats := [][]float64{{0}, {1}}
	targets := [][]float64{{1, 10}, {3, 30}}
	knn := NewKNN(2, feats, targets)
	got := knn.Predict([]float64{0.5})
	if got[0] != 2 || got[1] != 20 {
		t.Fatalf("predicted %v, want [2 20]", got)
	}
}

func TestKNNKClamped(t *testing.T) {
	feats := [][]float64{{0}, {1}}
	targets := [][]float64{{1}, {2}}
	knn := NewKNN(10, feats, targets) // k > n must clamp
	got := knn.Predict([]float64{0})
	if got[0] != 1.5 {
		t.Fatalf("predicted %v, want [1.5]", got)
	}
	knn = NewKNN(0, feats, targets) // k < 1 must become 1
	if got := knn.Predict([]float64{0}); got[0] != 1 {
		t.Fatalf("predicted %v, want [1]", got)
	}
}

func TestKNNNeighborsOrdered(t *testing.T) {
	feats := [][]float64{{0}, {5}, {1}, {10}}
	targets := [][]float64{{0}, {0}, {0}, {0}}
	knn := NewKNN(3, feats, targets)
	nn := knn.Neighbors([]float64{0})
	if nn[0] != 0 || nn[1] != 2 || nn[2] != 1 {
		t.Fatalf("neighbors %v, want [0 2 1]", nn)
	}
}

func TestKNNEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty training set")
		}
	}()
	NewKNN(1, nil, nil)
}
