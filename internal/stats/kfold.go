package stats

import "math/rand"

// Fold is one train/test split produced by KFold: index sets into the
// original sample slice.
type Fold struct {
	Train []int
	Test  []int
}

// KFold partitions the indices 0..n-1 into k folds for cross-validation.
// Indices are shuffled with the given seed so the split is deterministic
// for a fixed seed, then each fold in turn becomes the test set.
// If k > n, k is clamped to n. k < 2 yields a single degenerate fold with
// everything in both sets (train-on-all, test-on-all).
func KFold(n, k int, seed int64) []Fold {
	if n <= 0 {
		return nil
	}
	if k < 2 {
		all := seq(n)
		return []Fold{{Train: all, Test: all}}
	}
	if k > n {
		k = n
	}
	idx := seq(n)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := append([]int(nil), idx[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds
}

// LeaveOneOut returns n folds, each testing on exactly one sample.
func LeaveOneOut(n int) []Fold {
	folds := make([]Fold, n)
	for i := 0; i < n; i++ {
		train := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				train = append(train, j)
			}
		}
		folds[i] = Fold{Train: train, Test: []int{i}}
	}
	return folds
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
