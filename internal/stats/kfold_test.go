package stats

import (
	"testing"
	"testing/quick"
)

func TestKFoldBasic(t *testing.T) {
	folds := KFold(10, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("got %d folds, want 5", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		if len(f.Test) != 2 {
			t.Fatalf("test fold size %d, want 2", len(f.Test))
		}
		if len(f.Train) != 8 {
			t.Fatalf("train fold size %d, want 8", len(f.Train))
		}
		for _, i := range f.Test {
			seen[i]++
		}
		// No index appears in both train and test of the same fold.
		inTest := make(map[int]bool)
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatalf("index %d in both train and test", i)
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times in test folds, want 1", i, seen[i])
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(20, 4, 7)
	b := KFold(20, 4, 7)
	for i := range a {
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("KFold not deterministic for fixed seed")
			}
		}
	}
	c := KFold(20, 4, 8)
	same := true
	for i := range a {
		for j := range a[i].Test {
			if a[i].Test[j] != c[i].Test[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should shuffle differently")
	}
}

func TestKFoldEdgeCases(t *testing.T) {
	if KFold(0, 5, 1) != nil {
		t.Fatal("n=0 must return nil")
	}
	// k < 2 → degenerate single fold.
	folds := KFold(5, 1, 1)
	if len(folds) != 1 || len(folds[0].Train) != 5 || len(folds[0].Test) != 5 {
		t.Fatalf("degenerate fold wrong: %+v", folds)
	}
	// k > n → clamped to n.
	folds = KFold(3, 10, 1)
	if len(folds) != 3 {
		t.Fatalf("got %d folds, want 3 (clamped)", len(folds))
	}
}

func TestLeaveOneOut(t *testing.T) {
	folds := LeaveOneOut(4)
	if len(folds) != 4 {
		t.Fatalf("got %d folds", len(folds))
	}
	for i, f := range folds {
		if len(f.Test) != 1 || f.Test[0] != i {
			t.Fatalf("fold %d test = %v", i, f.Test)
		}
		if len(f.Train) != 3 {
			t.Fatalf("fold %d train size %d", i, len(f.Train))
		}
		for _, j := range f.Train {
			if j == i {
				t.Fatalf("fold %d train contains test index", i)
			}
		}
	}
}

// Property: every index lands in exactly one test fold, and train+test
// always partition 0..n-1.
func TestKFoldPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%50) + 2
		k := int(seed%7) + 2
		folds := KFold(n, k, seed)
		testCount := make(map[int]int)
		for _, fold := range folds {
			union := make(map[int]bool)
			for _, i := range fold.Train {
				union[i] = true
			}
			for _, i := range fold.Test {
				union[i] = true
				testCount[i]++
			}
			if len(union) != n {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if testCount[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
