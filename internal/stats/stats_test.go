package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %g, want 5", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("variance = %g, want 4", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("stddev = %g, want 2", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty slices must yield 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median wrong")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if !almostEq(Pearson(xs, ys), 1, 1e-12) {
		t.Fatal("perfect positive correlation expected")
	}
	neg := []float64{8, 6, 4, 2}
	if !almostEq(Pearson(xs, neg), -1, 1e-12) {
		t.Fatal("perfect negative correlation expected")
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series must yield 0")
	}
	if Pearson(xs, ys[:2]) != 0 {
		t.Fatal("length mismatch must yield 0")
	}
}

func TestRelativeErrorAndMRE(t *testing.T) {
	if RelativeError(100, 80) != 0.2 {
		t.Fatal("relative error wrong")
	}
	if RelativeError(0, 3) != 3 {
		t.Fatal("zero-observed fallback wrong")
	}
	mre := MRE([]float64{100, 200}, []float64{110, 180})
	if !almostEq(mre, 0.1, 1e-12) {
		t.Fatalf("MRE = %g, want 0.1", mre)
	}
	if MRE(nil, nil) != 0 {
		t.Fatal("empty MRE must be 0")
	}
}

func TestMREMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MRE([]float64{1}, []float64{1, 2})
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.Predict(10), 21, 1e-12) {
		t.Fatal("Predict wrong")
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// All x equal → predict the mean.
	fit, err := FitLinear([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 2 {
		t.Fatalf("degenerate fit = %+v, want mean predictor", fit)
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for a single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if RSquared(obs, obs) != 1 {
		t.Fatal("perfect prediction must give R²=1")
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if RSquared(obs, mean) != 0 {
		t.Fatal("mean prediction must give R²=0")
	}
	if RSquared([]float64{1, 1}, []float64{1, 1}) != 0 {
		t.Fatal("constant observations must give 0")
	}
}

func TestLinearR2(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almostEq(LinearR2(xs, ys), 1, 1e-12) {
		t.Fatal("perfectly linear data must give R²=1")
	}
	if LinearR2([]float64{1}, []float64{1}) != 0 {
		t.Fatal("unfittable data must give 0")
	}
}

func TestFitMultiLinear(t *testing.T) {
	// y = 3 + 2a - b over a grid.
	var xs [][]float64
	var ys []float64
	for a := 0.0; a < 4; a++ {
		for b := 0.0; b < 4; b++ {
			xs = append(xs, []float64{a, b})
			ys = append(ys, 3+2*a-b)
		}
	}
	m, err := FitMultiLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Intercept, 3, 1e-6) || !almostEq(m.Coeffs[0], 2, 1e-6) || !almostEq(m.Coeffs[1], -1, 1e-6) {
		t.Fatalf("fit = %+v", m)
	}
	if !almostEq(m.Predict([]float64{1, 1}), 4, 1e-6) {
		t.Fatal("Predict wrong")
	}
}

func TestFitMultiLinearInsufficient(t *testing.T) {
	if _, err := FitMultiLinear(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := FitMultiLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected error for n < d+1")
	}
}

// Property: MRE is non-negative and zero only for exact predictions.
func TestMREProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		obs := make([]float64, n)
		pred := make([]float64, n)
		for i := range obs {
			obs[i] = 1 + rng.Float64()*100
			pred[i] = obs[i]
		}
		if MRE(obs, pred) != 0 {
			return false
		}
		pred[0] = obs[0] * 1.5
		return MRE(obs, pred) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: OLS recovers the generating line from noiseless data.
func TestFitLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slope := rng.NormFloat64() * 5
		intercept := rng.NormFloat64() * 5
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = slope*xs[i] + intercept
		}
		// Need at least two distinct xs.
		xs[1] = xs[0] + 1
		ys[1] = slope*xs[1] + intercept
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		return almostEq(fit.Slope, slope, 1e-8) && almostEq(fit.Intercept, intercept, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %g, want 3", s.P50)
	}
	if s.P95 != 5 {
		t.Fatalf("P95 = %g, want 5", s.P95)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary must be zero")
	}
	// Summarize must not mutate its input.
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 {
		t.Fatal("input mutated")
	}
}
