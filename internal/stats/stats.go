// Package stats provides the statistical toolkit Contender is built on:
// descriptive statistics, mean relative error (the paper's quality metric),
// simple and multiple ordinary least squares, the coefficient of
// determination R², k-fold cross-validation, and a k-nearest-neighbors
// regressor. Everything operates on plain float64 slices so callers never
// need to adapt their data structures.
package stats

import (
	"errors"
	"math"
	"sort"

	"contender/internal/linalg"
)

// ErrInsufficientData is returned when a fit is requested on fewer samples
// than the model has parameters.
var ErrInsufficientData = errors.New("stats: insufficient data for fit")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RelativeError returns |observed-predicted| / |observed|. An observed value
// of zero yields the absolute error of the prediction so the metric stays
// finite.
func RelativeError(observed, predicted float64) float64 {
	if observed == 0 {
		return math.Abs(predicted)
	}
	return math.Abs(observed-predicted) / math.Abs(observed)
}

// MRE returns the mean relative error between observed and predicted values
// (Equation 1 in the paper). It panics if the slices differ in length and
// returns 0 for empty input.
func MRE(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) {
		panic("stats: MRE length mismatch")
	}
	if len(observed) == 0 {
		return 0
	}
	var s float64
	for i := range observed {
		s += RelativeError(observed[i], predicted[i])
	}
	return s / float64(len(observed))
}

// Linear is a fitted simple linear model y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
}

// Predict evaluates the model at x.
func (l Linear) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// FitLinear fits y = a*x + b by ordinary least squares.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, ErrInsufficientData
	}
	if len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		// All xs identical: degenerate fit, predict the mean.
		return Linear{Slope: 0, Intercept: my}, nil
	}
	slope := sxy / sxx
	return Linear{Slope: slope, Intercept: my - slope*mx}, nil
}

// RSquared computes the coefficient of determination of predictions against
// observations: 1 - SS_res/SS_tot. A constant observation vector yields 0.
func RSquared(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		return 0
	}
	m := Mean(observed)
	var ssRes, ssTot float64
	for i := range observed {
		r := observed[i] - predicted[i]
		d := observed[i] - m
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// LinearR2 fits y = a*x+b and returns the R² of the fit. It is the measure
// used throughout Table 3 of the paper ("R² for linear regression
// correlating template features with ... the QS models").
func LinearR2(xs, ys []float64) float64 {
	fit, err := FitLinear(xs, ys)
	if err != nil {
		return 0
	}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = fit.Predict(x)
	}
	return RSquared(ys, pred)
}

// MultiLinear is a fitted multiple linear model
// y = Intercept + Σ Coeffs[j]*x[j].
type MultiLinear struct {
	Coeffs    []float64
	Intercept float64
}

// Predict evaluates the model on a feature vector.
func (m MultiLinear) Predict(x []float64) float64 {
	s := m.Intercept
	for j, c := range m.Coeffs {
		s += c * x[j]
	}
	return s
}

// FitMultiLinear fits a multiple OLS regression via the normal equations
// with a small ridge term for numerical stability.
func FitMultiLinear(xs [][]float64, ys []float64) (MultiLinear, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return MultiLinear{}, ErrInsufficientData
	}
	d := len(xs[0])
	if n < d+1 {
		return MultiLinear{}, ErrInsufficientData
	}
	// Design matrix with a leading 1s column for the intercept.
	x := linalg.NewMatrix(n, d+1)
	for i, row := range xs {
		x.Set(i, 0, 1)
		for j, v := range row {
			x.Set(i, j+1, v)
		}
	}
	xt := x.T()
	xtx := linalg.Mul(xt, x).AddDiag(1e-9)
	xty := xt.MulVec(ys)
	beta, err := linalg.Solve(xtx, xty)
	if err != nil {
		return MultiLinear{}, err
	}
	return MultiLinear{Intercept: beta[0], Coeffs: beta[1:]}, nil
}

// Summary is a five-number descriptive summary of a sample.
type Summary struct {
	Count     int
	Mean, Std float64
	Min, Max  float64
	P50, P95  float64
}

// Summarize computes a Summary of xs (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return Summary{
		Count: len(s),
		Mean:  Mean(s),
		Std:   StdDev(s),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   q(0.50),
		P95:   q(0.95),
	}
}
