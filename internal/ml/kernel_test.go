package ml

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStandardizer(t *testing.T) {
	rows := [][]float64{{0, 100}, {2, 200}, {4, 300}}
	s := FitStandardizer(rows)
	std := s.ApplyAll(rows)
	// Each column must have zero mean and unit variance after scaling.
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for _, r := range std {
			mean += r[j]
		}
		mean /= float64(len(std))
		for _, r := range std {
			varr += (r[j] - mean) * (r[j] - mean)
		}
		varr /= float64(len(std))
		if !almostEq(mean, 0, 1e-12) || !almostEq(varr, 1, 1e-9) {
			t.Fatalf("column %d: mean %g var %g", j, mean, varr)
		}
	}
	// Constant columns must not divide by zero.
	s2 := FitStandardizer([][]float64{{5}, {5}})
	out := s2.Apply([]float64{5})
	if out[0] != 0 {
		t.Fatalf("constant column standardized to %g, want 0", out[0])
	}
	// Empty standardizer copies input.
	s3 := FitStandardizer(nil)
	in := []float64{1, 2}
	cp := s3.Apply(in)
	cp[0] = 9
	if in[0] == 9 {
		t.Fatal("Apply must copy")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBFKernel{Sigma: 2}
	x := []float64{1, 2}
	if !almostEq(k.Eval(x, x), 1, 1e-12) {
		t.Fatal("k(x,x) must be 1")
	}
	y := []float64{3, 4}
	if k.Eval(x, y) != k.Eval(y, x) {
		t.Fatal("kernel must be symmetric")
	}
	far := []float64{100, 100}
	if k.Eval(x, far) > 1e-10 {
		t.Fatal("distant points must have near-zero kernel value")
	}
	if k.Eval(x, y) <= 0 || k.Eval(x, y) >= 1 {
		t.Fatal("kernel values must be in (0,1) for distinct points")
	}
}

func TestGramMatrix(t *testing.T) {
	k := RBFKernel{Sigma: 1}
	rows := [][]float64{{0}, {1}, {2}}
	g := k.GramMatrix(rows)
	for i := 0; i < 3; i++ {
		if g.At(i, i) != 1 {
			t.Fatal("diagonal must be 1")
		}
		for j := 0; j < 3; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatal("Gram matrix must be symmetric")
			}
		}
	}
	if g.At(0, 1) <= g.At(0, 2) {
		t.Fatal("closer points must have larger kernel values")
	}
}

func TestMedianSigma(t *testing.T) {
	rows := [][]float64{{0}, {1}, {2}}
	// Pairwise distances: 1, 1, 2 → median 1.
	if s := MedianSigma(rows); s != 1 {
		t.Fatalf("median sigma = %g, want 1", s)
	}
	if MedianSigma([][]float64{{1}}) != 1 {
		t.Fatal("single point must default to 1")
	}
	if MedianSigma([][]float64{{1}, {1}, {1}}) != 1 {
		t.Fatal("coincident points must default to 1")
	}
}

func TestCenterGram(t *testing.T) {
	k := RBFKernel{Sigma: 1}
	rows := [][]float64{{0}, {0.5}, {3}}
	g := CenterGram(k.GramMatrix(rows))
	n := g.Rows()
	// Row and column sums of a centered Gram matrix are ~0.
	for i := 0; i < n; i++ {
		var rowSum, colSum float64
		for j := 0; j < n; j++ {
			rowSum += g.At(i, j)
			colSum += g.At(j, i)
		}
		if !almostEq(rowSum, 0, 1e-10) || !almostEq(colSum, 0, 1e-10) {
			t.Fatalf("row/col %d sums (%g, %g), want 0", i, rowSum, colSum)
		}
	}
}
