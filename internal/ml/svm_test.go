package ml

import (
	"math/rand"
	"testing"
)

func TestQuantileBins(t *testing.T) {
	lats := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	labels, centers := quantileBins(lats, 4)
	if len(centers) != 4 {
		t.Fatalf("%d centers", len(centers))
	}
	// Each bin holds two values; centers are bucket means.
	want := []float64{15, 35, 55, 75}
	for b, c := range centers {
		if c != want[b] {
			t.Fatalf("center %d = %g, want %g", b, c, want[b])
		}
	}
	// Labels are monotone in latency.
	for i := 1; i < len(lats); i++ {
		if labels[i] < labels[i-1] {
			t.Fatal("labels must be monotone for sorted input")
		}
	}
}

func TestQuantileBinsDuplicates(t *testing.T) {
	lats := []float64{5, 5, 5, 5, 100}
	labels, centers := quantileBins(lats, 3)
	_ = labels
	for _, c := range centers {
		if c < 0 {
			t.Fatal("centers must be non-negative")
		}
	}
}

func TestSVMSeparatesLatencyGroups(t *testing.T) {
	// Two well-separated clusters: features near 0 → fast (~100 s),
	// features near 10 → slow (~1000 s).
	rng := rand.New(rand.NewSource(1))
	var feats [][]float64
	var lats []float64
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			feats = append(feats, []float64{rng.Float64(), rng.Float64()})
			lats = append(lats, 100+rng.Float64()*10)
		} else {
			feats = append(feats, []float64{10 + rng.Float64(), 10 + rng.Float64()})
			lats = append(lats, 1000+rng.Float64()*100)
		}
	}
	m := NewSVM()
	m.Bins = 2
	if err := m.Fit(feats, lats); err != nil {
		t.Fatal(err)
	}
	fast := m.Predict([]float64{0.5, 0.5})
	slow := m.Predict([]float64{10.5, 10.5})
	if fast > 200 {
		t.Fatalf("fast cluster predicted %g, want ~100", fast)
	}
	if slow < 900 {
		t.Fatalf("slow cluster predicted %g, want ~1000", slow)
	}
}

func TestSVMLearnsSmoothFunction(t *testing.T) {
	trainX, trainY := syntheticWorkload(120, 5)
	testX, testY := syntheticWorkload(30, 6)
	m := NewSVM()
	if err := m.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(testX))
	for i, x := range testX {
		pred[i] = m.Predict(x)
	}
	got := mre(testY, pred)
	if got > 0.35 {
		t.Fatalf("SVM MRE %.3f too high (bin granularity should keep it moderate)", got)
	}
}

func TestSVMBinsClamped(t *testing.T) {
	x, y := syntheticWorkload(4, 7)
	m := NewSVM()
	m.Bins = 100
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.Bins > 4 {
		t.Fatalf("bins = %d, must clamp to n", m.Bins)
	}
	m2 := NewSVM()
	m2.Bins = 0
	if err := m2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m2.Bins < 2 {
		t.Fatal("bins must be at least 2")
	}
}

func TestSVMErrors(t *testing.T) {
	m := NewSVM()
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if v := (&SVM{}).Predict([]float64{1}); v != 0 {
		t.Fatal("unfitted Predict must return 0")
	}
}

func TestSVMDeterministic(t *testing.T) {
	x, y := syntheticWorkload(60, 8)
	a, b := NewSVM(), NewSVM()
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{5, 2.5, 0.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("SVM must be deterministic for a fixed seed")
	}
}
