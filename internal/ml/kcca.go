package ml

import (
	"errors"
	"math"

	"contender/internal/linalg"
	"contender/internal/stats"
)

// KCCA performs Kernel Canonical Correlation Analysis between a feature
// view (QEP-derived vectors) and a performance view (latency and friends),
// following the approach of Ganapathi et al. as adapted in Section 3 of the
// paper: Gaussian kernels on both views, maximally correlated projections,
// and prediction by averaging the latencies of the k nearest training
// examples in projection space.
//
// The regularized KCCA eigenproblem
//
//	(Kx+εI)⁻¹ Ky (Ky+εI)⁻¹ Kx α = ρ² α
//
// is solved in symmetric form: with G = (Kx+εI)^{-1/2} Ky (Ky+εI)^{-1/2},
// the matrix G·Gᵀ is symmetric PSD and shares the leading spectrum of the
// problem above up to the ε-regularization (Kx(Kx+εI)⁻¹ ≈ I, the standard
// practical approximation); its eigenvectors u map back to dual weights
// α = (Kx+εI)^{-1/2} u. Eigendecompositions use the Jacobi solver.
type KCCA struct {
	// K is the neighbor count for prediction (the paper uses 3).
	K int
	// Components is the projection dimensionality.
	Components int
	// Epsilon is the kernel regularizer.
	Epsilon float64

	std     *Standardizer
	kernel  RBFKernel
	train   [][]float64 // standardized training features
	targets []float64   // training latencies
	proj    [][]float64 // training projections (N×Components)
	alphas  *linalg.Matrix
	nn      *stats.KNN
}

// ErrNoData is returned when Fit is called with no samples.
var ErrNoData = errors.New("ml: no training data")

// NewKCCA returns a KCCA with the paper's parameters: 3-NN prediction and a
// modest projection dimensionality.
func NewKCCA() *KCCA {
	return &KCCA{K: 3, Components: 4, Epsilon: 0.1}
}

// Fit learns projections from feature vectors and their observed latencies.
// The performance view pairs each latency with its log, giving the kernel a
// scale-aware second coordinate (the original work used several performance
// metrics; latency is the one we predict).
func (m *KCCA) Fit(features [][]float64, latencies []float64) error {
	n := len(features)
	if n == 0 || n != len(latencies) {
		return ErrNoData
	}
	if m.K <= 0 {
		m.K = 3
	}
	if m.Components <= 0 {
		m.Components = 4
	}
	if m.Components > n {
		m.Components = n
	}
	if m.Epsilon <= 0 {
		m.Epsilon = 0.1
	}

	m.std = FitStandardizer(features)
	m.train = m.std.ApplyAll(features)
	m.targets = append([]float64(nil), latencies...)

	perf := make([][]float64, n)
	for i, l := range latencies {
		perf[i] = []float64{l, math.Log1p(math.Max(l, 0))}
	}
	perfStd := FitStandardizer(perf)
	perfRows := perfStd.ApplyAll(perf)

	m.kernel = RBFKernel{Sigma: MedianSigma(m.train)}
	ky := RBFKernel{Sigma: MedianSigma(perfRows)}

	kx := CenterGram(m.kernel.GramMatrix(m.train))
	kyM := CenterGram(ky.GramMatrix(perfRows))

	sxInvHalf, err := invSqrtPSD(kx.Clone().AddDiag(m.Epsilon * float64(n)))
	if err != nil {
		return err
	}
	syInvHalf, err := invSqrtPSD(kyM.Clone().AddDiag(m.Epsilon * float64(n)))
	if err != nil {
		return err
	}
	g := linalg.Mul(linalg.Mul(sxInvHalf, kyM), syInvHalf)
	h := linalg.Mul(g, g.T()) // symmetric PSD

	_, vecs := linalg.EigenSym(h)
	// Dual weights: α_c = Sx^{-1/2} u_c for the top components.
	m.alphas = linalg.NewMatrix(n, m.Components)
	for c := 0; c < m.Components; c++ {
		u := make([]float64, n)
		for r := 0; r < n; r++ {
			u[r] = vecs.At(r, c)
		}
		a := sxInvHalf.MulVec(u)
		for r := 0; r < n; r++ {
			m.alphas.Set(r, c, a[r])
		}
	}

	// Project the training set: z_i = αᵀ kx(·, x_i).
	m.proj = make([][]float64, n)
	for i := 0; i < n; i++ {
		m.proj[i] = m.projectKernelColumn(kx, i)
	}
	m.nn = stats.NewKNN(m.K, m.proj, targetsAsRows(m.targets))
	return nil
}

func (m *KCCA) projectKernelColumn(kx *linalg.Matrix, col int) []float64 {
	n := kx.Rows()
	z := make([]float64, m.Components)
	for c := 0; c < m.Components; c++ {
		var s float64
		for r := 0; r < n; r++ {
			s += m.alphas.At(r, c) * kx.At(r, col)
		}
		z[c] = s
	}
	return z
}

// Predict projects the feature vector into canonical space and returns the
// average latency of its K nearest training projections.
func (m *KCCA) Predict(features []float64) float64 {
	if len(m.train) == 0 {
		return 0
	}
	x := m.std.Apply(features)
	// Kernel column against training points (uncentered approximation; the
	// constant shift cancels in nearest-neighbor distances).
	n := len(m.train)
	kcol := make([]float64, n)
	for i, t := range m.train {
		kcol[i] = m.kernel.Eval(x, t)
	}
	z := make([]float64, m.Components)
	for c := 0; c < m.Components; c++ {
		var s float64
		for r := 0; r < n; r++ {
			s += m.alphas.At(r, c) * kcol[r]
		}
		z[c] = s
	}
	return m.nn.Predict(z)[0]
}

func targetsAsRows(t []float64) [][]float64 {
	out := make([][]float64, len(t))
	for i, v := range t {
		out[i] = []float64{v}
	}
	return out
}

// invSqrtPSD computes M^{-1/2} for a symmetric positive-definite matrix via
// Jacobi eigendecomposition, flooring tiny eigenvalues for stability.
func invSqrtPSD(m *linalg.Matrix) (*linalg.Matrix, error) {
	vals, vecs := linalg.EigenSym(m)
	n := m.Rows()
	floor := 1e-10 * math.Max(vals[0], 1)
	d := linalg.NewMatrix(n, n)
	for i, v := range vals {
		if v < floor {
			v = floor
		}
		d.Set(i, i, 1/math.Sqrt(v))
	}
	return linalg.Mul(linalg.Mul(vecs, d), vecs.T()), nil
}
