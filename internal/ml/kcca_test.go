package ml

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticWorkload builds a learnable dataset: latency is a smooth
// function of two informative features plus small noise; extra feature
// dimensions are irrelevant.
func syntheticWorkload(n int, seed int64) (feats [][]float64, lats []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 5
		noise := rng.NormFloat64() * 2
		feats = append(feats, []float64{a, b, rng.Float64()})
		lats = append(lats, 100+20*a+10*b+noise)
	}
	return feats, lats
}

func mre(observed, predicted []float64) float64 {
	var s float64
	for i := range observed {
		s += math.Abs(observed[i]-predicted[i]) / observed[i]
	}
	return s / float64(len(observed))
}

func TestKCCALearnsSmoothFunction(t *testing.T) {
	trainX, trainY := syntheticWorkload(120, 1)
	testX, testY := syntheticWorkload(30, 2)

	m := NewKCCA()
	if err := m.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(testX))
	for i, x := range testX {
		pred[i] = m.Predict(x)
	}
	got := mre(testY, pred)

	// Baseline: always predict the training mean.
	mean := 0.0
	for _, y := range trainY {
		mean += y
	}
	mean /= float64(len(trainY))
	base := make([]float64, len(testY))
	for i := range base {
		base[i] = mean
	}
	baseErr := mre(testY, base)

	if got >= baseErr {
		t.Fatalf("KCCA MRE %.3f not better than mean baseline %.3f", got, baseErr)
	}
	if got > 0.25 {
		t.Fatalf("KCCA MRE %.3f too high for a smooth function", got)
	}
}

func TestKCCADeterministic(t *testing.T) {
	x, y := syntheticWorkload(60, 3)
	a, b := NewKCCA(), NewKCCA()
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{5, 2.5, 0.5}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("KCCA must be deterministic")
	}
}

func TestKCCAErrors(t *testing.T) {
	m := NewKCCA()
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("expected error for empty training set")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	// Predict before Fit must not crash.
	if v := (&KCCA{}).Predict([]float64{1}); v != 0 {
		t.Fatalf("unfitted Predict = %g, want 0", v)
	}
}

func TestKCCAComponentsClamped(t *testing.T) {
	x, y := syntheticWorkload(5, 4)
	m := NewKCCA()
	m.Components = 50 // more than samples
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.Components > 5 {
		t.Fatalf("components = %d, must be clamped to n", m.Components)
	}
	_ = m.Predict(x[0])
}
