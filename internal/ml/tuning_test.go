package ml

import (
	"testing"
)

func TestTuneSVM(t *testing.T) {
	x, y := syntheticWorkload(90, 11)
	m, score, err := TuneSVM(DefaultSVMGrid(), x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || score <= 0 || score > 1 {
		t.Fatalf("score %g", score)
	}
	// The tuned model must predict at least as well as an untuned default
	// on held-out data (same generator, new seed).
	tx, ty := syntheticWorkload(30, 12)
	tuned := mreOfModel(m.Predict, tx, ty)
	def := NewSVM()
	if err := def.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	base := mreOfModel(def.Predict, tx, ty)
	if tuned > base*1.25 {
		t.Fatalf("tuned MRE %.3f much worse than default %.3f", tuned, base)
	}
}

func TestTuneKCCA(t *testing.T) {
	x, y := syntheticWorkload(80, 13)
	m, score, err := TuneKCCA(DefaultKCCAGrid(), x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || score <= 0 || score > 1 {
		t.Fatalf("score %g", score)
	}
	tx, ty := syntheticWorkload(25, 14)
	if got := mreOfModel(m.Predict, tx, ty); got > 0.3 {
		t.Fatalf("tuned KCCA MRE %.3f too high", got)
	}
}

func TestTuneErrors(t *testing.T) {
	x, y := syntheticWorkload(20, 15)
	if _, _, err := TuneSVM(SVMGrid{}, x, y, 1); err == nil {
		t.Fatal("empty grid must error")
	}
	if _, _, err := TuneKCCA(KCCAGrid{}, x, y, 1); err == nil {
		t.Fatal("empty grid must error")
	}
	tiny, tinyY := syntheticWorkload(3, 16)
	if _, _, err := TuneSVM(DefaultSVMGrid(), tiny, tinyY, 1); err == nil {
		t.Fatal("too-small training set must error")
	}
}

func mreOfModel(predict func([]float64) float64, xs [][]float64, ys []float64) float64 {
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = predict(x)
	}
	return mre(ys, pred)
}
