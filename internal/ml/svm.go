package ml

import (
	"math"
	"math/rand"
	"sort"
)

// SVM predicts query latency the way Section 3 describes: latencies are
// discretized into coarse labels, a soft-margin kernel SVM classifies
// feature vectors into those labels (one-vs-rest over binary SMO-trained
// machines), and the label's representative latency is returned as the
// estimate.
type SVM struct {
	// Bins is the number of latency classes (quantile bins).
	Bins int
	// C is the soft-margin penalty.
	C float64
	// Seed drives SMO's working-pair randomization.
	Seed int64

	std      *Standardizer
	kernel   RBFKernel
	train    [][]float64
	machines []*binarySVM
	centers  []float64 // representative latency per bin
}

// NewSVM returns an SVM with defaults suited to the workload sizes here.
func NewSVM() *SVM {
	return &SVM{Bins: 8, C: 10, Seed: 1}
}

// Fit trains one-vs-rest binary machines over quantile latency bins.
func (m *SVM) Fit(features [][]float64, latencies []float64) error {
	n := len(features)
	if n == 0 || n != len(latencies) {
		return ErrNoData
	}
	if m.Bins < 2 {
		m.Bins = 2
	}
	if m.Bins > n {
		m.Bins = n
	}
	if m.C <= 0 {
		m.C = 10
	}

	m.std = FitStandardizer(features)
	m.train = m.std.ApplyAll(features)
	m.kernel = RBFKernel{Sigma: MedianSigma(m.train)}

	labels, centers := quantileBins(latencies, m.Bins)
	m.centers = centers

	gram := m.kernel.GramMatrix(m.train)
	m.machines = make([]*binarySVM, len(centers))
	for b := range centers {
		y := make([]float64, n)
		for i, l := range labels {
			if l == b {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		bs := &binarySVM{c: m.C, rng: rand.New(rand.NewSource(m.Seed + int64(b)))}
		bs.train(gram, y)
		m.machines[b] = bs
	}
	return nil
}

// Predict classifies the feature vector and returns its bin's
// representative latency.
func (m *SVM) Predict(features []float64) float64 {
	if len(m.train) == 0 {
		return 0
	}
	x := m.std.Apply(features)
	kcol := make([]float64, len(m.train))
	for i, t := range m.train {
		kcol[i] = m.kernel.Eval(x, t)
	}
	best, bestScore := 0, math.Inf(-1)
	for b, bs := range m.machines {
		if s := bs.decision(kcol); s > bestScore {
			best, bestScore = b, s
		}
	}
	return m.centers[best]
}

// quantileBins assigns each latency to one of `bins` quantile buckets and
// returns the per-bucket mean latency as its representative. Empty buckets
// (possible with duplicated values) fall back to the bucket boundary.
func quantileBins(latencies []float64, bins int) (labels []int, centers []float64) {
	n := len(latencies)
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	cuts := make([]float64, bins-1)
	for b := 1; b < bins; b++ {
		cuts[b-1] = sorted[b*n/bins]
	}
	labels = make([]int, n)
	for i, l := range latencies {
		b := 0
		for b < bins-1 && l >= cuts[b] {
			b++
		}
		labels[i] = b
	}
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for i, b := range labels {
		sums[b] += latencies[i]
		counts[b]++
	}
	centers = make([]float64, bins)
	for b := range centers {
		if counts[b] > 0 {
			centers[b] = sums[b] / float64(counts[b])
		} else if b > 0 {
			centers[b] = cuts[b-1]
		}
	}
	return labels, centers
}

// binarySVM is a soft-margin kernel SVM trained with simplified SMO
// (Platt's algorithm with random second-choice heuristics), operating
// directly on a precomputed Gram matrix.
type binarySVM struct {
	c     float64
	rng   *rand.Rand
	alpha []float64
	y     []float64
	bias  float64
}

const (
	smoTol      = 1e-3
	smoMaxPass  = 10
	smoMaxIters = 2000
)

func (s *binarySVM) train(gram interface{ At(i, j int) float64 }, y []float64) {
	n := len(y)
	s.y = y
	s.alpha = make([]float64, n)
	s.bias = 0

	f := func(i int) float64 {
		var sum float64
		for j := 0; j < n; j++ {
			if s.alpha[j] != 0 {
				sum += s.alpha[j] * y[j] * gram.At(j, i)
			}
		}
		return sum + s.bias
	}

	passes, iters := 0, 0
	for passes < smoMaxPass && iters < smoMaxIters {
		iters++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -smoTol && s.alpha[i] < s.c) || (y[i]*ei > smoTol && s.alpha[i] > 0)) {
				continue
			}
			j := s.rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]

			ai, aj := s.alpha[i], s.alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(s.c, s.c+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-s.c)
				hi = math.Min(s.c, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*gram.At(i, j) - gram.At(i, i) - gram.At(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)

			b1 := s.bias - ei - y[i]*(aiNew-ai)*gram.At(i, i) - y[j]*(ajNew-aj)*gram.At(i, j)
			b2 := s.bias - ej - y[i]*(aiNew-ai)*gram.At(i, j) - y[j]*(ajNew-aj)*gram.At(j, j)
			switch {
			case aiNew > 0 && aiNew < s.c:
				s.bias = b1
			case ajNew > 0 && ajNew < s.c:
				s.bias = b2
			default:
				s.bias = (b1 + b2) / 2
			}
			s.alpha[i], s.alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
}

// decision evaluates the machine on a kernel column against the training
// set (kcol[i] = k(x, x_i)).
func (s *binarySVM) decision(kcol []float64) float64 {
	var sum float64
	for i, a := range s.alpha {
		if a != 0 {
			sum += a * s.y[i] * kcol[i]
		}
	}
	return sum + s.bias
}
