// Package ml implements the Section-3 machine-learning baselines from
// scratch on the stdlib: Kernel Canonical Correlation Analysis (KCCA) and a
// multiclass support vector machine (SVM) trained with a compact SMO. The
// paper adapts these isolated-query predictors (Ganapathi et al., Akdere et
// al.) to concurrent workloads via 4n QEP feature vectors and shows they
// fit static workloads moderately well but fail on unseen templates; this
// package exists to reproduce that comparison.
package ml

import (
	"math"
	"sort"

	"contender/internal/linalg"
	"contender/internal/stats"
)

// Standardizer scales features to zero mean and unit variance, fitted on
// training data and applied to test data.
type Standardizer struct {
	mean, std []float64
}

// FitStandardizer computes per-dimension statistics over rows.
func FitStandardizer(rows [][]float64) *Standardizer {
	if len(rows) == 0 {
		return &Standardizer{}
	}
	d := len(rows[0])
	s := &Standardizer{mean: make([]float64, d), std: make([]float64, d)}
	col := make([]float64, len(rows))
	for j := 0; j < d; j++ {
		for i, r := range rows {
			col[i] = r[j]
		}
		s.mean[j] = stats.Mean(col)
		s.std[j] = stats.StdDev(col)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	if len(s.mean) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.mean[j]) / s.std[j]
	}
	return out
}

// ApplyAll standardizes every row.
func (s *Standardizer) ApplyAll(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = s.Apply(r)
	}
	return out
}

// RBFKernel is the Gaussian kernel k(x,y) = exp(-||x-y||² / (2σ²)).
type RBFKernel struct {
	Sigma float64
}

// Eval computes the kernel value for two vectors.
func (k RBFKernel) Eval(x, y []float64) float64 {
	var d float64
	for i := range x {
		diff := x[i] - y[i]
		d += diff * diff
	}
	return math.Exp(-d / (2 * k.Sigma * k.Sigma))
}

// GramMatrix computes the N×N kernel matrix over rows.
func (k RBFKernel) GramMatrix(rows [][]float64) *linalg.Matrix {
	n := len(rows)
	g := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		g.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			v := k.Eval(rows[i], rows[j])
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}

// MedianSigma returns the median pairwise Euclidean distance over rows —
// the standard bandwidth heuristic for Gaussian kernels. It returns 1 when
// all points coincide.
func MedianSigma(rows [][]float64) float64 {
	n := len(rows)
	if n < 2 {
		return 1
	}
	var dists []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d float64
			for t := range rows[i] {
				diff := rows[i][t] - rows[j][t]
				d += diff * diff
			}
			dists = append(dists, math.Sqrt(d))
		}
	}
	sort.Float64s(dists)
	m := dists[len(dists)/2]
	if m == 0 {
		return 1
	}
	return m
}

// CenterGram centers a Gram matrix in feature space: K ← HKH with
// H = I − (1/n)·11ᵀ.
func CenterGram(k *linalg.Matrix) *linalg.Matrix {
	n := k.Rows()
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowMean[i] += k.At(i, j)
		}
		total += rowMean[i]
		rowMean[i] /= float64(n)
	}
	total /= float64(n * n)
	out := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, k.At(i, j)-rowMean[i]-rowMean[j]+total)
		}
	}
	return out
}
