package ml

import (
	"fmt"
	"math"

	"contender/internal/stats"
)

// Hyperparameter tuning by k-fold cross-validation. The paper tunes both
// learners with k-fold CV (k=6, Section 3); this file provides the same
// machinery: grid search over the model's knobs, scoring each candidate by
// cross-validated mean relative error, then refitting the winner on the
// full training set.

// TuneFolds is the paper's fold count for model tuning.
const TuneFolds = 6

// SVMGrid is the search space for SVM tuning.
type SVMGrid struct {
	Cs   []float64
	Bins []int
}

// DefaultSVMGrid covers the useful range for the workloads here.
func DefaultSVMGrid() SVMGrid {
	return SVMGrid{
		Cs:   []float64{1, 10, 100},
		Bins: []int{4, 8, 12},
	}
}

// TuneSVM grid-searches (C, bins) with k-fold CV and returns the best
// model fitted on all data, along with its cross-validated MRE.
func TuneSVM(grid SVMGrid, features [][]float64, latencies []float64, seed int64) (*SVM, float64, error) {
	if len(grid.Cs) == 0 || len(grid.Bins) == 0 {
		return nil, 0, fmt.Errorf("ml: empty SVM grid")
	}
	bestScore := math.Inf(1)
	var bestC float64
	var bestBins int
	for _, c := range grid.Cs {
		for _, bins := range grid.Bins {
			make1 := func() interface {
				Fit([][]float64, []float64) error
				Predict([]float64) float64
			} {
				m := NewSVM()
				m.C, m.Bins, m.Seed = c, bins, seed
				return m
			}
			score, err := crossValidate(make1, features, latencies, seed)
			if err != nil {
				return nil, 0, err
			}
			if score < bestScore {
				bestScore, bestC, bestBins = score, c, bins
			}
		}
	}
	m := NewSVM()
	m.C, m.Bins, m.Seed = bestC, bestBins, seed
	if err := m.Fit(features, latencies); err != nil {
		return nil, 0, err
	}
	return m, bestScore, nil
}

// KCCAGrid is the search space for KCCA tuning.
type KCCAGrid struct {
	Epsilons   []float64
	Components []int
}

// DefaultKCCAGrid covers the useful range for the workloads here.
func DefaultKCCAGrid() KCCAGrid {
	return KCCAGrid{
		Epsilons:   []float64{0.01, 0.1, 1},
		Components: []int{2, 4, 8},
	}
}

// TuneKCCA grid-searches (ε, components) with k-fold CV and returns the
// best model fitted on all data, along with its cross-validated MRE.
func TuneKCCA(grid KCCAGrid, features [][]float64, latencies []float64, seed int64) (*KCCA, float64, error) {
	if len(grid.Epsilons) == 0 || len(grid.Components) == 0 {
		return nil, 0, fmt.Errorf("ml: empty KCCA grid")
	}
	bestScore := math.Inf(1)
	var bestEps float64
	var bestComp int
	for _, eps := range grid.Epsilons {
		for _, comp := range grid.Components {
			make1 := func() interface {
				Fit([][]float64, []float64) error
				Predict([]float64) float64
			} {
				m := NewKCCA()
				m.Epsilon, m.Components = eps, comp
				return m
			}
			score, err := crossValidate(make1, features, latencies, seed)
			if err != nil {
				return nil, 0, err
			}
			if score < bestScore {
				bestScore, bestEps, bestComp = score, eps, comp
			}
		}
	}
	m := NewKCCA()
	m.Epsilon, m.Components = bestEps, bestComp
	if err := m.Fit(features, latencies); err != nil {
		return nil, 0, err
	}
	return m, bestScore, nil
}

// crossValidate scores one model configuration by k-fold CV MRE.
func crossValidate(make1 func() interface {
	Fit([][]float64, []float64) error
	Predict([]float64) float64
}, features [][]float64, latencies []float64, seed int64) (float64, error) {
	n := len(features)
	if n < TuneFolds {
		return 0, fmt.Errorf("ml: need at least %d samples to tune, have %d", TuneFolds, n)
	}
	var observed, predicted []float64
	for _, fold := range stats.KFold(n, TuneFolds, seed) {
		trainX := make([][]float64, len(fold.Train))
		trainY := make([]float64, len(fold.Train))
		for i, j := range fold.Train {
			trainX[i], trainY[i] = features[j], latencies[j]
		}
		m := make1()
		if err := m.Fit(trainX, trainY); err != nil {
			return 0, err
		}
		for _, j := range fold.Test {
			observed = append(observed, latencies[j])
			predicted = append(predicted, m.Predict(features[j]))
		}
	}
	return stats.MRE(observed, predicted), nil
}
