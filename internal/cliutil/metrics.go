package cliutil

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"contender/internal/obs"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests may start several metrics servers in one
// process.
var publishOnce sync.Once

// ShutdownDrainTimeout bounds how long the stop function returned by
// ServeMetrics waits for in-flight requests to finish before severing
// their connections. Package-level so tests can shrink it.
var ShutdownDrainTimeout = 5 * time.Second

// Mount is an extra handler mounted on the diagnostics mux — the
// serving layer mounts its /v1/* prediction endpoints beside /metrics
// this way, so one -metrics-addr exposes both.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// ServeMetrics starts the shared diagnostics endpoint behind the
// -metrics-addr flag of every CLI. It listens on addr and serves
//
//	/metrics       Prometheus text exposition (version 0.0.4); when a
//	               quality or blame aggregator is given its families are
//	               appended
//	/quality       prediction-quality JSON report (empty without one)
//	/blame         contention blame matrix JSON report (empty without one)
//	/debug/vars    expvar JSON, including the contender_metrics tree
//	/debug/pprof/  the standard pprof handlers
//
// q and b may be nil: /quality and /blame then serve empty reports, so
// dashboards can scrape them unconditionally. Extra mounts (e.g. the
// serving layer's /v1/* endpoints) are added to the same mux. The
// returned address is the bound listen address (useful with ":0"), and
// the returned func shuts the server down gracefully: it stops
// accepting, waits up to ShutdownDrainTimeout for in-flight requests to
// drain, then severs what remains. The server runs on its own goroutine
// and never blocks the campaign it observes.
func ServeMetrics(addr string, m *obs.Metrics, q *obs.Quality, b *obs.Blame, mounts ...Mount) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("contender_metrics", m.Registry().ExpvarFunc())
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m.ServeHTTP(w, r)
		if q != nil {
			_ = q.WritePrometheus(w)
		}
		if b != nil {
			_ = b.WritePrometheus(w)
		}
	})
	// q.ServeHTTP and b.ServeHTTP tolerate a nil receiver (Report is
	// nil-safe), so the endpoints exist even when no aggregator is
	// attached.
	mux.Handle("/quality", http.HandlerFunc(q.ServeHTTP))
	mux.Handle("/blame", http.HandlerFunc(b.ServeHTTP))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, mt := range mounts {
		mux.Handle(mt.Pattern, mt.Handler)
	}

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownDrainTimeout)
		defer cancel()
		// Shutdown closes the listener, lets in-flight requests finish,
		// and returns ctx.Err() at the drain deadline; Close then severs
		// whatever is still open so stop() always terminates the server.
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}

// WriteTraceFile renders a recorded event stream to path as Chrome
// trace-event JSON (the -trace-out flag of every CLI). A nil recording
// or empty path is a no-op.
func WriteTraceFile(path string, rec *obs.Recording) error {
	if path == "" || rec == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace out: %w", err)
	}
	if err := rec.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace out: %w", err)
	}
	return nil
}
