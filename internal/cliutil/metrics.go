package cliutil

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"contender/internal/obs"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests may start several metrics servers in one
// process.
var publishOnce sync.Once

// ServeMetrics starts the shared diagnostics endpoint behind the
// -metrics-addr flag of every CLI. It listens on addr and serves
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/debug/vars    expvar JSON, including the contender_metrics tree
//	/debug/pprof/  the standard pprof handlers
//
// The returned address is the bound listen address (useful with ":0"),
// and the returned func shuts the listener down. The server runs on its
// own goroutine and never blocks the campaign it observes.
func ServeMetrics(addr string, m *obs.Metrics) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("contender_metrics", m.Registry().ExpvarFunc())
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", m)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	return ln.Addr().String(), func() { ln.Close() }, nil
}
