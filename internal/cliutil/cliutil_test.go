package cliutil

import "testing"

func TestParseIDs(t *testing.T) {
	got, err := ParseIDs("71, 2,22")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 71 || got[1] != 2 || got[2] != 22 {
		t.Fatalf("ParseIDs = %v", got)
	}
	// Empty segments are tolerated.
	got, err = ParseIDs("71,,2,")
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
	// Empty string yields an empty list.
	got, err = ParseIDs("")
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
	// Garbage errors with the offending token.
	if _, err := ParseIDs("71,x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMPLsUpTo(t *testing.T) {
	got := MPLsUpTo(4)
	want := []int{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("MPLsUpTo(4) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MPLsUpTo(4) = %v", got)
		}
	}
	if got := MPLsUpTo(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("MPLsUpTo(1) = %v", got)
	}
	if got := MPLsUpTo(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("MPLsUpTo(0) = %v", got)
	}
}
