package cliutil

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"contender/internal/obs"
)

func TestServeMetricsEndpoints(t *testing.T) {
	m := obs.NewMetrics()
	m.Event(obs.Event{Kind: obs.SpanBegin, Span: obs.SpanTrainCampaign})
	m.Event(obs.Event{Kind: obs.SpanEnd, Span: obs.SpanTrainCampaign, Dur: time.Millisecond})

	q := obs.NewQuality(obs.DriftConfig{})
	q.Observe(71, 0.2)

	b := obs.NewBlame(obs.BlameConfig{})
	b.Observe(71, []int{2}, []float64{1.5})

	addr, stop, err := ServeMetrics("127.0.0.1:0", m, q, b)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, `contender_spans_total{span="train.campaign"} 1`) {
		t.Errorf("/metrics missing the campaign counter:\n%s", body)
	}

	if !strings.Contains(body, `contender_quality_feedback_total{template="71"} 1`) {
		t.Errorf("/metrics missing the quality families:\n%s", body)
	}

	if !strings.Contains(body, `contender_blame_observations_total{pair="71/2"} 1`) {
		t.Errorf("/metrics missing the blame families:\n%s", body)
	}

	body, ctype = get("/quality")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/quality content type %q", ctype)
	}
	if !strings.Contains(body, `"template": 71`) || !strings.Contains(body, `"state": "healthy"`) {
		t.Errorf("/quality missing the template report:\n%s", body)
	}

	body, ctype = get("/blame")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/blame content type %q", ctype)
	}
	if !strings.Contains(body, `"primary": 71`) || !strings.Contains(body, `"neighbor": 2`) {
		t.Errorf("/blame missing the pair report:\n%s", body)
	}

	body, _ = get("/debug/vars")
	if !strings.Contains(body, "contender_metrics") {
		t.Error("/debug/vars does not publish contender_metrics")
	}

	body, _ = get("/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestServeMetricsGracefulShutdown pins that stop() drains an in-flight
// request (the slow handler finishes and its client reads a complete
// response) instead of severing it, and that the listener stops
// accepting immediately.
func TestServeMetricsGracefulShutdown(t *testing.T) {
	m := obs.NewMetrics()
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		_, _ = io.WriteString(w, "drained-ok")
	})
	addr, stop, err := ServeMetrics("127.0.0.1:0", m, nil, nil, Mount{Pattern: "/slow", Handler: slow})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-entered

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	// stop() must wait for the in-flight request, not return early.
	select {
	case <-stopped:
		t.Fatal("stop() returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	// New connections are refused once shutdown began.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after stop() began")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("in-flight request severed: %v", r.err)
		}
		if r.body != "drained-ok" {
			t.Fatalf("in-flight response truncated: %q", r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() never returned after drain")
	}
}

func TestServeMetricsNilAggregators(t *testing.T) {
	m := obs.NewMetrics()
	addr, stop, err := ServeMetrics("127.0.0.1:0", m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without an aggregator: %s", path, resp.Status)
		}
		return string(body)
	}

	if body := get("/quality"); !strings.Contains(body, `"templates": []`) {
		t.Errorf("/quality without an aggregator should report no templates:\n%s", body)
	}
	if body := get("/blame"); !strings.Contains(body, `"pairs": []`) {
		t.Errorf("/blame without an aggregator should report no pairs:\n%s", body)
	}
}
