// Package cliutil holds the small argument-parsing helpers shared by the
// command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIDs parses a comma-separated list of template IDs. Empty segments
// are skipped; a malformed segment returns an error naming it.
func ParseIDs(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad template id %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// MPLsUpTo returns the multiprogramming levels 2..m (at least [2]) — the
// sampling range a tool needs to predict mixes of size m.
func MPLsUpTo(m int) []int {
	var out []int
	for i := 2; i <= m; i++ {
		out = append(out, i)
	}
	if len(out) == 0 {
		out = []int{2}
	}
	return out
}
