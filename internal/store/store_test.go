package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contender/internal/core"
	"contender/internal/resilience"
)

// testSnapshot builds a minimal structurally valid snapshot. The knob
// shifts the isolated latency so distinct knobs yield distinct
// fingerprints.
func testSnapshot(t *testing.T, knob float64) *core.Snapshot {
	t.Helper()
	doc := map[string]any{
		"version": 1,
		"templates": []map[string]any{
			{"id": 2, "isolated_latency": 10 + knob, "io_fraction": 0.5, "working_set_bytes": 1024,
				"plan_steps": 3, "records_accessed": 100, "scans": []string{"store_sales"},
				"spoilers": []map[string]any{{"mpl": 2, "latency": 12 + knob}}},
			{"id": 22, "isolated_latency": 20 + knob, "io_fraction": 0.4, "working_set_bytes": 2048,
				"plan_steps": 4, "records_accessed": 200, "scans": []string{"inventory"},
				"spoilers": []map[string]any{{"mpl": 2, "latency": 25 + knob}}},
		},
		"scan_times": map[string]float64{"inventory": 2, "store_sales": 1},
		"models": []map[string]any{
			{"mpl": 2, "template": 2, "mu": 0.5, "b": 1},
			{"mpl": 2, "template": 22, "mu": 0.7, "b": 2},
		},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap core.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("test snapshot invalid: %v", err)
	}
	return &snap
}

func TestPublishLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, ok := s.Current(); ok {
		t.Fatal("fresh store reports a current version")
	}
	if _, _, err := s.CurrentSnapshot(); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("empty CurrentSnapshot err = %v, want ErrNoVersions", err)
	}

	v1, err := s.Publish(testSnapshot(t, 0), "baseline")
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if v1.Seq != 1 || v1.Fingerprint == "" || v1.Checksum == "" {
		t.Fatalf("bad version: %+v", v1)
	}

	// Reopen cold: the snapshot must verify and decode identically.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Report().Recovered() {
		t.Fatalf("clean store reported recovery: %+v", s2.Report())
	}
	snap, v, err := s2.CurrentSnapshot()
	if err != nil {
		t.Fatalf("CurrentSnapshot: %v", err)
	}
	if v != v1 {
		t.Fatalf("version = %+v, want %+v", v, v1)
	}
	if snap.Templates[0].IsolatedLatency != 10 {
		t.Fatalf("decoded latency = %g", snap.Templates[0].IsolatedLatency)
	}
	if _, _, err := s2.CurrentPredictor(); err != nil {
		t.Fatalf("CurrentPredictor: %v", err)
	}
}

func TestPublishDedupsIdenticalContent(t *testing.T) {
	s, err := New(NewMemRepository())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v1, err := s.Publish(testSnapshot(t, 0), "a")
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	v2, err := s.Publish(testSnapshot(t, 0), "b")
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if v2 != v1 {
		t.Fatalf("identical content republished: %+v vs %+v", v2, v1)
	}
	if s.Len() != 1 {
		t.Fatalf("history length = %d, want 1", s.Len())
	}
}

func TestRollbackAndRepublish(t *testing.T) {
	s, err := New(NewMemRepository())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Rollback(); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("empty Rollback err = %v, want ErrNoVersions", err)
	}
	v1, _ := s.Publish(testSnapshot(t, 0), "v1")
	v2, _ := s.Publish(testSnapshot(t, 1), "v2")
	back, err := s.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if back.Fingerprint != v1.Fingerprint {
		t.Fatalf("rolled back to %s, want %s", back.Fingerprint, v1.Fingerprint)
	}
	cur, _ := s.Current()
	if cur.Fingerprint != v1.Fingerprint {
		t.Fatalf("current = %s, want %s", cur.Fingerprint, v1.Fingerprint)
	}
	// Republishing the demoted content gets a fresh Seq, same blob.
	v3, err := s.Publish(testSnapshot(t, 1), "again")
	if err != nil {
		t.Fatalf("republish: %v", err)
	}
	if v3.Fingerprint != v2.Fingerprint || v3.Seq <= v2.Seq {
		t.Fatalf("republish = %+v, want fingerprint %s with new seq", v3, v2.Fingerprint)
	}
}

func TestCorruptCurrentFallsBackToPreviousVersion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	v1, _ := s.Publish(testSnapshot(t, 0), "v1")
	v2, _ := s.Publish(testSnapshot(t, 1), "v2")

	// Flip one byte in the current blob: the checksum must catch it.
	path := filepath.Join(dir, snapshotName(v2.Fingerprint))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("corrupt blob: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	rep := s2.Report()
	if !rep.Recovered() || rep.FellBackTo != v1.Fingerprint {
		t.Fatalf("recovery report = %+v, want fallback to %s", rep, v1.Fingerprint)
	}
	if len(rep.CorruptVersions) != 1 || rep.CorruptVersions[0] != v2.Fingerprint {
		t.Fatalf("corrupt versions = %v", rep.CorruptVersions)
	}
	cur, ok := s2.Current()
	if !ok || cur.Fingerprint != v1.Fingerprint {
		t.Fatalf("current after fallback = %+v, want %s", cur, v1.Fingerprint)
	}
	if _, _, err := s2.CurrentSnapshot(); err != nil {
		t.Fatalf("fallback snapshot unreadable: %v", err)
	}
}

func TestCorruptBlobReportsCorruptClass(t *testing.T) {
	repo := NewMemRepository()
	s, err := New(repo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v1, _ := s.Publish(testSnapshot(t, 0), "v1")

	// Corrupt in place, then force a cold read via a fresh store over
	// the same repository (the warm cache would mask it).
	raw, _ := repo.Read(snapshotName(v1.Fingerprint))
	raw[10] ^= 0xFF
	repo.Put(snapshotName(v1.Fingerprint), raw)
	s2, err := New(repo)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	// All versions corrupt: store opens empty-handed.
	if _, ok := s2.Current(); ok {
		t.Fatal("fully corrupt store still reports a current version")
	}
	if _, _, err := s2.CurrentSnapshot(); !errors.Is(err, ErrNoVersions) {
		t.Fatalf("err = %v, want ErrNoVersions", err)
	}

	// Direct load of a corrupt blob is errors.Is-able as Corrupt.
	s3 := &Store{repo: repo, cache: map[string]*cacheEntry{}}
	s3.man = manifest{Version: manifestVersion, Current: v1.Fingerprint, History: []Version{v1}}
	if _, err := s3.Load(v1.Fingerprint); !errors.Is(err, resilience.ErrCorruptMeasurement) {
		t.Fatalf("Load err = %v, want resilience.ErrCorruptMeasurement", err)
	}
}

func TestCrashMidPublishRecoversPriorVersionByteIdentically(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	v1, _ := s.Publish(testSnapshot(t, 0), "v1")
	manifestBefore, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	blobBefore, err := os.ReadFile(filepath.Join(dir, snapshotName(v1.Fingerprint)))
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}

	// Simulate kill -9 mid-WriteAtomic of the next version: a truncated
	// *.tmp exists, the manifest still references v1 only.
	raw, fp, _, err := encode(testSnapshot(t, 1))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	tmp := filepath.Join(dir, snapshotName(fp)+tmpSuffix)
	if err := os.WriteFile(tmp, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatalf("plant crash debris: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	rep := s2.Report()
	if len(rep.RemovedTemp) != 1 || !strings.HasSuffix(rep.RemovedTemp[0], tmpSuffix) {
		t.Fatalf("recovery report = %+v, want one swept tmp", rep)
	}
	if len(rep.CorruptVersions) != 0 || rep.FellBackTo != "" {
		t.Fatalf("crash debris misread as corruption: %+v", rep)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp debris not swept: %v", err)
	}
	cur, ok := s2.Current()
	if !ok || cur != v1 {
		t.Fatalf("current after crash = %+v, want %+v", cur, v1)
	}
	manifestAfter, _ := os.ReadFile(filepath.Join(dir, manifestName))
	blobAfter, _ := os.ReadFile(filepath.Join(dir, snapshotName(v1.Fingerprint)))
	if !bytes.Equal(manifestBefore, manifestAfter) {
		t.Fatal("manifest changed across crash recovery")
	}
	if !bytes.Equal(blobBefore, blobAfter) {
		t.Fatal("prior version blob changed across crash recovery")
	}
}

func TestCrashAfterBlobBeforeManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	v1, _ := s.Publish(testSnapshot(t, 0), "v1")

	// Crash point two: the new blob fully renamed, manifest not yet
	// rewritten — the blob is unreferenced and the store serves v1.
	raw, fp, _, err := encode(testSnapshot(t, 1))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName(fp)), raw, 0o644); err != nil {
		t.Fatalf("plant blob: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	cur, ok := s2.Current()
	if !ok || cur != v1 {
		t.Fatalf("current = %+v, want %+v", cur, v1)
	}
	if len(s2.Versions()) != 1 {
		t.Fatalf("versions = %v, want just v1", s2.Versions())
	}
}

func TestLoadUnknownVersion(t *testing.T) {
	s, err := New(NewMemRepository())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Load("deadbeef"); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("err = %v, want ErrUnknownVersion", err)
	}
}

func TestCacheServesWithoutRepository(t *testing.T) {
	repo := NewMemRepository()
	s, err := New(repo)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v1, _ := s.Publish(testSnapshot(t, 0), "v1")
	// Vandalize the repository under the store: the warm cache tier must
	// keep serving the decoded snapshot regardless.
	repo.Put(snapshotName(v1.Fingerprint), []byte("garbage"))
	if _, err := s.Load(v1.Fingerprint); err != nil {
		t.Fatalf("warm load hit the repository: %v", err)
	}
}

func TestManifestUnreadableIsCorrupt(t *testing.T) {
	repo := NewMemRepository()
	repo.Put(manifestName, []byte("{not json"))
	if _, err := New(repo); !errors.Is(err, resilience.ErrCorruptMeasurement) {
		t.Fatalf("err = %v, want resilience.ErrCorruptMeasurement", err)
	}
}
