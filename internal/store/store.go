// Package store is Contender's versioned knowledge store: trained
// predictor snapshots published as content-fingerprinted immutable
// versions with checksums, over a pluggable byte Repository (disk or
// memory), with an in-memory cache tier above it.
//
// The design splits responsibility the way a production model registry
// would:
//
//   - the Repository moves bytes and guarantees atomic publication
//     (write-then-rename), nothing else;
//   - the Store names versions by a SHA-256 content fingerprint, records
//     them in a manifest (itself atomically replaced), verifies a full
//     checksum plus structural validation on every cold read, and caches
//     decoded snapshots so repeated loads are free.
//
// Corruption is never silent: a blob whose bytes no longer match the
// manifest checksum, or whose decoded snapshot fails validation, surfaces
// as an error matching resilience.ErrCorruptMeasurement through
// errors.Is. Crash-safety falls out of the write protocol — a snapshot
// blob is only referenced after its rename, and the manifest replaces the
// previous one in a single rename — so a kill -9 at any instant leaves at
// worst *.tmp debris and an unreferenced blob, both swept by Open, and
// never an unreadable store. When the current version itself is found
// corrupt at Open (torn disk, bit rot), the store falls back to the
// newest prior version that still verifies and reports the demotion.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"

	"contender/internal/core"
	"contender/internal/resilience"
)

// manifestName is the blob holding the version index.
const manifestName = "manifest.json"

// snapshotPrefix + fingerprint + snapshotExt names a snapshot blob.
const (
	snapshotPrefix = "sn-"
	snapshotExt    = ".json"
)

// fingerprintLen is the hex length of a version fingerprint (the leading
// 16 bytes of the snapshot's SHA-256).
const fingerprintLen = 32

// manifestVersion guards against loading manifests written by an
// incompatible layout.
const manifestVersion = 1

// Sentinel errors; test with errors.Is.
var (
	// ErrNoVersions: the store holds no published (or no previous)
	// version for the requested operation.
	ErrNoVersions = resilience.Permanent(errors.New("store: no published versions"))
	// ErrUnknownVersion: the requested fingerprint is not in the
	// manifest.
	ErrUnknownVersion = resilience.Permanent(errors.New("store: unknown version"))
)

func resilientConfigErr(msg string) error {
	return resilience.Permanent(errors.New("store: " + msg))
}

// Version identifies one published snapshot.
type Version struct {
	// Seq is the publication sequence number, ascending from 1. A
	// fingerprint republished after a rollback gets a fresh Seq.
	Seq int `json:"seq"`
	// Fingerprint is the content identity: hex of the leading 16 bytes
	// of the SHA-256 over the canonical snapshot encoding. Identical
	// knowledge publishes to the identical fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Checksum is the full SHA-256 hex of the stored bytes, verified on
	// every cold read.
	Checksum string `json:"checksum"`
	// Note is the publisher's free-form annotation (e.g. "baseline",
	// "retrain T22,T61").
	Note string `json:"note,omitempty"`
}

// IsZero reports whether v is the zero Version (no version).
func (v Version) IsZero() bool { return v.Fingerprint == "" }

// manifest is the persisted version index. It is replaced atomically as
// a whole, so readers always see a consistent current/history pair.
type manifest struct {
	Version int       `json:"version"`
	Current string    `json:"current,omitempty"`
	History []Version `json:"history,omitempty"`
}

// OpenReport describes what recovery found (and repaired) while opening
// a store.
type OpenReport struct {
	// RemovedTemp lists *.tmp debris from crashed atomic writes that
	// Open swept away.
	RemovedTemp []string
	// CorruptVersions lists fingerprints whose blobs failed checksum or
	// structural validation at Open.
	CorruptVersions []string
	// FellBackTo is the fingerprint now serving because the manifest's
	// current version was corrupt (empty when no fallback happened).
	FellBackTo string
}

// Recovered reports whether Open had to repair anything.
func (r OpenReport) Recovered() bool {
	return len(r.RemovedTemp) > 0 || len(r.CorruptVersions) > 0 || r.FellBackTo != ""
}

// cacheEntry is one decoded snapshot in the in-memory tier. Entries are
// immutable once inserted: raw is exactly the stored bytes, snap the
// decoded (and validated) form shared read-only by all callers.
type cacheEntry struct {
	raw  []byte
	snap *core.Snapshot
}

// Store is a versioned knowledge store. All methods are safe for
// concurrent use. Snapshots returned by Load/CurrentSnapshot are shared
// and must be treated as read-only; CurrentPredictor builds a private
// predictor per call.
type Store struct {
	repo Repository

	mu     sync.Mutex
	man    manifest
	cache  map[string]*cacheEntry
	report OpenReport
}

// Open opens (or initializes) a disk-backed store in dir, running crash
// recovery: *.tmp debris is swept, the current version is checksum- and
// structure-verified, and a corrupt current falls back to the newest
// prior version that verifies. Inspect Report for what recovery did.
func Open(dir string) (*Store, error) {
	repo, err := NewDiskRepository(dir)
	if err != nil {
		return nil, err
	}
	return New(repo)
}

// New opens a store over an arbitrary Repository with the same recovery
// protocol as Open.
func New(repo Repository) (*Store, error) {
	if repo == nil {
		return nil, resilientConfigErr("nil repository")
	}
	s := &Store{repo: repo, cache: map[string]*cacheEntry{}, man: manifest{Version: manifestVersion}}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover sweeps crash debris and verifies the manifest chain.
func (s *Store) recover() error {
	names, err := s.repo.List()
	if err != nil {
		return err
	}
	hasManifest := false
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			if err := s.repo.Remove(name); err != nil {
				return err
			}
			s.report.RemovedTemp = append(s.report.RemovedTemp, name)
			continue
		}
		if name == manifestName {
			hasManifest = true
		}
	}
	if !hasManifest {
		return nil // fresh store
	}
	raw, err := s.repo.Read(manifestName)
	if err != nil {
		return err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return resilience.Corrupt(fmt.Errorf("store: manifest unreadable: %w", err))
	}
	if man.Version != manifestVersion {
		return resilientConfigErr(fmt.Sprintf("manifest version %d, want %d", man.Version, manifestVersion))
	}
	s.man = man
	if s.man.Current == "" {
		return nil
	}

	// Verify the current version; on corruption, demote and walk the
	// history newest-first for a version that still verifies.
	if _, err := s.loadLocked(s.man.Current); err == nil {
		return nil
	} else if !errors.Is(err, resilience.ErrCorruptMeasurement) && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	corrupt := map[string]bool{s.man.Current: true}
	s.report.CorruptVersions = append(s.report.CorruptVersions, s.man.Current)
	fallback := ""
	for i := len(s.man.History) - 1; i >= 0; i-- {
		fp := s.man.History[i].Fingerprint
		if corrupt[fp] {
			continue
		}
		if _, err := s.loadLocked(fp); err == nil {
			fallback = fp
			break
		} else if errors.Is(err, resilience.ErrCorruptMeasurement) || errors.Is(err, fs.ErrNotExist) {
			corrupt[fp] = true
			s.report.CorruptVersions = append(s.report.CorruptVersions, fp)
		} else {
			return err
		}
	}
	// Drop corrupt entries from the history and repoint current; the
	// rewritten manifest is itself published atomically.
	kept := s.man.History[:0]
	for _, v := range s.man.History {
		if !corrupt[v.Fingerprint] {
			kept = append(kept, v)
		}
	}
	s.man.History = kept
	s.man.Current = fallback
	s.report.FellBackTo = fallback
	return s.writeManifestLocked()
}

// Report returns what recovery found when the store was opened.
func (s *Store) Report() OpenReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// encode renders the canonical snapshot bytes and their identity: the
// version fingerprint (leading 16 bytes of the SHA-256, hex) and the
// full-checksum hex.
func encode(snap *core.Snapshot) (raw []byte, fingerprint, checksum string, err error) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return nil, "", "", fmt.Errorf("store: encoding snapshot: %w", err)
	}
	raw = []byte(b.String())
	sum := sha256.Sum256(raw)
	checksum = hex.EncodeToString(sum[:])
	return raw, checksum[:fingerprintLen], checksum, nil
}

func snapshotName(fingerprint string) string {
	return snapshotPrefix + fingerprint + snapshotExt
}

// Publish records snap as the current version, writing the snapshot blob
// atomically and then the manifest atomically — a crash between the two
// leaves an unreferenced blob and the previous version intact.
// Publishing bytes identical to the current version is a no-op returning
// the existing Version.
func (s *Store) Publish(snap *core.Snapshot, note string) (Version, error) {
	if snap == nil {
		return Version{}, resilientConfigErr("publish needs a snapshot")
	}
	if err := snap.Validate(); err != nil {
		return Version{}, fmt.Errorf("store: refusing to publish: %w", err)
	}
	raw, fp, sum, err := encode(snap)
	if err != nil {
		return Version{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Current == fp {
		v, _ := s.versionLocked(fp)
		return v, nil
	}
	// Content-addressed blobs never change, so republishing a historical
	// fingerprint only needs a new manifest entry.
	if _, known := s.versionLocked(fp); !known {
		if err := s.repo.WriteAtomic(snapshotName(fp), raw); err != nil {
			return Version{}, err
		}
	}
	v := Version{Seq: s.nextSeqLocked(), Fingerprint: fp, Checksum: sum, Note: note}
	man := s.man
	man.History = append(append([]Version(nil), s.man.History...), v)
	man.Current = fp
	prev := s.man
	s.man = man
	if err := s.writeManifestLocked(); err != nil {
		s.man = prev
		return Version{}, err
	}
	s.cache[fp] = &cacheEntry{raw: raw, snap: snap}
	return v, nil
}

func (s *Store) nextSeqLocked() int {
	max := 0
	for _, v := range s.man.History {
		if v.Seq > max {
			max = v.Seq
		}
	}
	return max + 1
}

// versionLocked returns the newest history entry for a fingerprint.
func (s *Store) versionLocked(fingerprint string) (Version, bool) {
	for i := len(s.man.History) - 1; i >= 0; i-- {
		if s.man.History[i].Fingerprint == fingerprint {
			return s.man.History[i], true
		}
	}
	return Version{}, false
}

func (s *Store) writeManifestLocked() error {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.man); err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	return s.repo.WriteAtomic(manifestName, []byte(b.String()))
}

// Current returns the current version, or ok=false on an empty store.
func (s *Store) Current() (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Current == "" {
		return Version{}, false
	}
	return s.versionLocked(s.man.Current)
}

// Versions returns the publication history, ascending by Seq. Entries
// whose blobs were found corrupt at Open are not included.
func (s *Store) Versions() []Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Version(nil), s.man.History...)
}

// Load returns the decoded snapshot for a fingerprint, from cache when
// warm, verifying checksum and structure on a cold read. The returned
// snapshot is shared: treat it as read-only.
func (s *Store) Load(fingerprint string) (*core.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(fingerprint)
}

func (s *Store) loadLocked(fingerprint string) (*core.Snapshot, error) {
	if e, ok := s.cache[fingerprint]; ok {
		return e.snap, nil
	}
	v, ok := s.versionLocked(fingerprint)
	if !ok && s.man.Current != fingerprint {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, fingerprint)
	}
	raw, err := s.repo.Read(snapshotName(fingerprint))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	got := hex.EncodeToString(sum[:])
	want := v.Checksum
	if want == "" {
		// Current set by a manifest whose history lost the entry; fall
		// back to the content address itself.
		want = fingerprint
		got = got[:fingerprintLen]
	}
	if got != want {
		return nil, resilience.Corrupt(fmt.Errorf("store: snapshot %s checksum mismatch", fingerprint))
	}
	var snap core.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, resilience.Corrupt(fmt.Errorf("store: snapshot %s undecodable: %w", fingerprint, err))
	}
	if err := snap.Validate(); err != nil {
		return nil, resilience.Corrupt(fmt.Errorf("store: snapshot %s invalid: %w", fingerprint, err))
	}
	s.cache[fingerprint] = &cacheEntry{raw: raw, snap: &snap}
	return &snap, nil
}

// CurrentSnapshot returns the current version's decoded snapshot (shared,
// read-only) and its Version. ErrNoVersions when the store is empty.
func (s *Store) CurrentSnapshot() (*core.Snapshot, Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Current == "" {
		return nil, Version{}, ErrNoVersions
	}
	v, _ := s.versionLocked(s.man.Current)
	snap, err := s.loadLocked(s.man.Current)
	if err != nil {
		return nil, Version{}, err
	}
	return snap, v, nil
}

// CurrentPredictor builds a fresh predictor from the current version —
// the load path a serving process uses at startup.
func (s *Store) CurrentPredictor() (*core.Predictor, Version, error) {
	snap, v, err := s.CurrentSnapshot()
	if err != nil {
		return nil, Version{}, err
	}
	p, err := core.PredictorFromSnapshot(snap)
	if err != nil {
		return nil, Version{}, err
	}
	return p, v, nil
}

// Rollback repoints the store at the newest history entry with a
// different fingerprint than the current version, returning it. The
// demoted version stays in history (its blob is content-addressed and
// immutable) and can be republished.
func (s *Store) Rollback() (Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Current == "" {
		return Version{}, ErrNoVersions
	}
	cur, _ := s.versionLocked(s.man.Current)
	var prev Version
	found := false
	for i := len(s.man.History) - 1; i >= 0; i-- {
		v := s.man.History[i]
		if v.Seq < cur.Seq && v.Fingerprint != cur.Fingerprint {
			prev, found = v, true
			break
		}
	}
	if !found {
		return Version{}, fmt.Errorf("%w: nothing to roll back to", ErrNoVersions)
	}
	old := s.man.Current
	s.man.Current = prev.Fingerprint
	if err := s.writeManifestLocked(); err != nil {
		s.man.Current = old
		return Version{}, err
	}
	return prev, nil
}

// Len returns the number of history entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.man.History)
}
