package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Repository is the byte-level persistence layer under a Store: a flat
// namespace of named blobs. The Store layers fingerprinting, checksums,
// version history, and an in-memory cache on top; a Repository only has
// to get four operations right. WriteAtomic must be all-or-nothing — a
// crash mid-write may leave detectable debris (a *.tmp orphan) but never
// a torn blob under the final name.
type Repository interface {
	// List returns every blob name, sorted, including any *.tmp debris
	// left by a crashed WriteAtomic.
	List() ([]string, error)
	// Read returns a blob's bytes. A missing blob reports fs.ErrNotExist
	// through errors.Is.
	Read(name string) ([]byte, error)
	// WriteAtomic publishes a blob all-or-nothing (write-then-rename on
	// disk). Concurrent readers see either the old bytes or the new,
	// never a mix.
	WriteAtomic(name string, data []byte) error
	// Remove deletes a blob; removing a missing blob is not an error.
	Remove(name string) error
}

// tmpSuffix marks in-flight atomic writes. Open sweeps orphans with this
// suffix: their presence means a writer died mid-publish, and by
// construction nothing references them yet.
const tmpSuffix = ".tmp"

// DiskRepository stores blobs as files in one directory, publishing each
// write through a temp file and an atomic rename.
type DiskRepository struct {
	dir string
}

// NewDiskRepository returns a repository rooted at dir, creating the
// directory if needed.
func NewDiskRepository(dir string) (*DiskRepository, error) {
	if dir == "" {
		return nil, resilientConfigErr("disk repository needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating repository dir: %w", err)
	}
	return &DiskRepository{dir: dir}, nil
}

// Dir returns the repository's root directory.
func (r *DiskRepository) Dir() string { return r.dir }

func (r *DiskRepository) List() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing repository: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (r *DiskRepository) Read(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(r.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", name, err)
	}
	return data, nil
}

func (r *DiskRepository) WriteAtomic(name string, data []byte) error {
	tmp := filepath.Join(r.dir, name+tmpSuffix)
	final := filepath.Join(r.dir, name)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: publishing %s: %w", name, err)
	}
	return nil
}

func (r *DiskRepository) Remove(name string) error {
	err := os.Remove(filepath.Join(r.dir, name))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: removing %s: %w", name, err)
	}
	return nil
}

// MemRepository is an in-memory Repository: the same semantics as the
// disk one with none of the I/O, for tests and deterministic experiment
// replays. Safe for concurrent use.
type MemRepository struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemRepository returns an empty in-memory repository.
func NewMemRepository() *MemRepository {
	return &MemRepository{blobs: map[string][]byte{}}
}

func (r *MemRepository) List() ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.blobs))
	for name := range r.blobs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (r *MemRepository) Read(name string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, ok := r.blobs[name]
	if !ok {
		return nil, fmt.Errorf("store: reading %s: %w", name, fs.ErrNotExist)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (r *MemRepository) WriteAtomic(name string, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	r.blobs[name] = cp
	return nil
}

func (r *MemRepository) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.blobs, name)
	return nil
}

// Put writes raw bytes under name without atomicity — the hook chaos
// tests use to plant crash debris (*.tmp orphans) or corrupt a published
// blob in place, exactly as a torn disk write would.
func (r *MemRepository) Put(name string, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	r.blobs[name] = cp
}
