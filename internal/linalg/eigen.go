package linalg

import (
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matching eigenvectors as the columns of the returned matrix.
//
// The input matrix is not modified. Convergence is declared when the
// off-diagonal Frobenius norm drops below tol relative to the diagonal, or
// after maxSweeps full sweeps (whichever comes first). For the workload
// sizes in this repository (N ≲ 400) Jacobi is fast and very robust.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	n := a.Rows()
	if a.Cols() != n {
		panic(ErrShape)
	}
	w := a.Clone()
	v := Identity(n)

	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < tol*(1+diagNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })

	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs
}

// rotate applies the Jacobi rotation G(p,q,θ) to w (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

func diagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows(); i++ {
		s += m.At(i, i) * m.At(i, i)
	}
	return math.Sqrt(s)
}
