package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	m.Add(1, 0, 1)
	if m.At(1, 0) != 8 {
		t.Fatalf("after Set+Add got %g, want 8", m.At(1, 0))
	}
	row := m.Row(0)
	row[0] = 99
	if m.At(0, 0) == 99 {
		t.Fatal("Row must return a copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("transpose values wrong")
	}
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := Mul(m, Identity(2))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("M*I != M at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d)=%g, want %g", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
}

func TestScaleAddMatAddDiag(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale failed")
	}
	s := AddMat(m, Identity(2))
	if s.At(0, 0) != 3 || s.At(0, 1) != 4 {
		t.Fatal("AddMat failed")
	}
	m.AddDiag(10)
	if m.At(0, 0) != 12 || m.At(0, 1) != 4 {
		t.Fatal("AddDiag failed")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("solution %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the first pivot position forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("solution %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveShapeError(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSolveMat(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 4}})
	b := FromRows([][]float64{{2, 4}, {8, 12}})
	x, err := SolveMat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 2}, {2, 3}}
	for i := range want {
		for j := range want[i] {
			if !almostEq(x.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("(%d,%d)=%g, want %g", i, j, x.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := Mul(l, l.T())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(recon.At(i, j), a.At(i, j), 1e-12) {
				t.Fatalf("LLᵀ != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for non-PD matrix")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

// Property: Solve(A, b) returns x with A·x ≈ b for random well-conditioned
// systems.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance → well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a, b := NewMatrix(n, m), NewMatrix(m, p)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		for i := 0; i < m; i++ {
			for j := 0; j < p; j++ {
				b.Set(i, j, r.NormFloat64())
			}
		}
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		for i := 0; i < p; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(left.At(i, j), right.At(i, j), 1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
