// Package linalg provides the small dense linear-algebra kernel used by the
// statistics and machine-learning packages: dense matrices, linear solves,
// Cholesky factorization, and a Jacobi eigendecomposition for symmetric
// matrices. It is deliberately minimal — just enough to support ordinary
// least squares, kernel methods (KCCA), and SMO-based SVMs on workloads of a
// few hundred samples.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve or factorization encounters a matrix
// that is singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible matrix shapes")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(ErrShape)
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element of m by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat returns a+b as a new matrix.
func AddMat(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic(ErrShape)
	}
	out := a.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// AddDiag adds v to each diagonal element of m, in place, and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += v
	}
	return m
}

// Solve solves the linear system A·x = b by Gaussian elimination with
// partial pivoting. A must be square; it is not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, ErrShape
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(w.At(r, col)); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				w.data[col*n+j], w.data[pivot*n+j] = w.data[pivot*n+j], w.data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				w.data[r*n+j] -= f * w.data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for j := r + 1; j < n; j++ {
			s -= w.At(r, j) * x[j]
		}
		x[r] = s / w.At(r, r)
	}
	return x, nil
}

// SolveMat solves A·X = B column by column.
func SolveMat(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows {
		return nil, ErrShape
	}
	out := NewMatrix(a.rows, b.cols)
	col := make([]float64, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		x, err := Solve(a, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < a.rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.rows
	if a.cols != n {
		return nil, ErrShape
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }
