package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs := EigenSym(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// Eigenvectors are axis-aligned (up to sign).
	if !almostEq(math.Abs(vecs.At(0, 0)), 1, 1e-10) {
		t.Fatalf("first eigenvector %v not axis-aligned", vecs.Row(0))
	}
}

func TestEigenSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// Check A·v = λ·v for the leading eigenpair.
	v := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	av := a.MulVec(v)
	for i := range v {
		if !almostEq(av[i], 3*v[i], 1e-10) {
			t.Fatalf("A·v != λ·v at %d", i)
		}
	}
}

func TestEigenSymDescendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSymmetric(rng, 8)
	vals, _ := EigenSym(a)
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Property: trace is preserved (sum of eigenvalues = trace) and the
// eigenvector matrix is orthogonal.
func TestEigenSymProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randomSymmetric(rng, n)

		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, vecs := EigenSym(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if !almostEq(sum, trace, 1e-8*(1+math.Abs(trace))) {
			return false
		}
		// VᵀV ≈ I.
		vtv := Mul(vecs.T(), vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstruction A ≈ V·D·Vᵀ.
func TestEigenSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randomSymmetric(rng, n)
		vals, vecs := EigenSym(a)
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		recon := Mul(Mul(vecs, d), vecs.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(recon.At(i, j), a.At(i, j), 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(NewMatrix(2, 3))
}
