package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"contender/internal/core"
	"contender/internal/obs"
)

// trainedPredictor builds a compact trained predictor (templates 1..5,
// MPLs 2 and 3) whose observations follow per-template ground-truth QS
// models, mirroring the core test fixture through the public API.
func trainedPredictor(t testing.TB) *core.Predictor {
	t.Helper()
	k := core.NewKnowledge()
	k.SetScanTime("F", 100)
	k.SetScanTime("G", 50)
	templates := []struct {
		id    int
		lmin  float64
		p     float64
		scans []string
	}{
		{1, 200, 0.8, []string{"F"}},
		{2, 400, 0.9, []string{"F", "G"}},
		{3, 100, 1.0, []string{"G"}},
		{4, 300, 0.5, nil},
		{5, 500, 0.95, []string{"F"}},
	}
	for _, tpl := range templates {
		scans := make(map[string]bool)
		for _, f := range tpl.scans {
			scans[f] = true
		}
		k.AddTemplate(core.TemplateStats{
			ID: tpl.id, IsolatedLatency: tpl.lmin, IOFraction: tpl.p,
			Scans: scans,
			SpoilerLatency: map[int]float64{
				2: tpl.lmin * 2.2,
				3: tpl.lmin * 3.4,
			},
		})
	}
	qsFor := func(id int) core.QSModel {
		return core.QSModel{Mu: 0.5 + 0.05*float64(id), B: 0.1 + 0.01*float64(id)}
	}
	var observations []core.Observation
	ids := k.IDs()
	for _, primary := range ids {
		cont2, _ := k.ContinuumFor(primary, 2)
		cont3, _ := k.ContinuumFor(primary, 3)
		for _, c1 := range ids {
			r := k.CQI(primary, []int{c1})
			observations = append(observations, core.Observation{
				Primary: primary, Concurrent: []int{c1},
				Latency: cont2.Latency(qsFor(primary).Point(r)),
			})
			for _, c2 := range ids {
				if c2 < c1 {
					continue
				}
				r3 := k.CQI(primary, []int{c1, c2})
				observations = append(observations, core.Observation{
					Primary: primary, Concurrent: []int{c1, c2},
					Latency: cont3.Latency(qsFor(primary).Point(r3)),
				})
			}
		}
	}
	p, err := core.Train(k, observations, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testServer spins up a full server (both fronts) over a fresh trained
// predictor and tears it down with the test.
func testServer(t testing.TB, cfg Config) (*Server, *core.Predictor, string) {
	t.Helper()
	p := trainedPredictor(t)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenBinary("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, p, addr
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	data, err := io.ReadAll(w.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return w, data
}

func wantCode(t *testing.T, w *httptest.ResponseRecorder, data []byte, status int, code string) WireError {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, data)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("error envelope: %v (body %s)", err, data)
	}
	if env.Error.Code != code {
		t.Fatalf("code = %q, want %q (message %q)", env.Error.Code, code, env.Error.Message)
	}
	return env.Error
}

func TestHTTPPredictMatchesCore(t *testing.T) {
	s, p, _ := testServer(t, Config{})
	h := s.Handler()

	mix := []int{2, 3}
	w, data := postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: mix})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, data)
	}
	var pr PredictResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	want, err := p.PredictKnown(1, mix)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Prediction != want {
		t.Errorf("prediction %g != PredictKnown %g", pr.Prediction, want)
	}

	mixes := [][]int{{2}, {2, 3}, {4, 5}}
	w, data = postJSON(t, h, "/v1/predict_batch", BatchRequest{Primary: 1, Mixes: mixes})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	for i, mix := range mixes {
		want, err := p.PredictKnown(1, mix)
		if err != nil {
			t.Fatal(err)
		}
		if br.Predictions[i] != want {
			t.Errorf("batch[%d] = %g, want %g", i, br.Predictions[i], want)
		}
	}

	w, data = postJSON(t, h, "/v1/feedback", FeedbackRequest{Primary: 1, Concurrent: mix, Observed: want * 1.1})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, data)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Predicted != want {
		t.Errorf("feedback predicted %g, want %g", fr.Predicted, want)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	s, _, _ := testServer(t, Config{MaxBatch: 4})
	h := s.Handler()

	// Malformed JSON.
	w, data := postJSON(t, h, "/v1/predict", `{"primary": nope}`)
	wantCode(t, w, data, http.StatusBadRequest, "bad_request")

	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	wantCode(t, rec, body, http.StatusBadRequest, "bad_request")

	// Unknown template.
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 999, Concurrent: []int{2}})
	wantCode(t, w, data, http.StatusNotFound, "unknown_template")

	// Empty mix.
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1})
	wantCode(t, w, data, http.StatusBadRequest, "empty_mix")

	// Untrained MPL (fixture trains MPL 2 and 3 only).
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2, 3, 4, 5}})
	wantCode(t, w, data, http.StatusUnprocessableEntity, "untrained_mpl")

	// Oversized batch (MaxBatch = 4).
	w, data = postJSON(t, h, "/v1/predict_batch", BatchRequest{
		Primary: 1, Mixes: [][]int{{2}, {2}, {2}, {2}, {2}},
	})
	wantCode(t, w, data, http.StatusRequestEntityTooLarge, "batch_too_large")

	// Bad observation.
	w, data = postJSON(t, h, "/v1/feedback", FeedbackRequest{Primary: 1, Concurrent: []int{2}, Observed: -1})
	wantCode(t, w, data, http.StatusBadRequest, "bad_observation")
}

// TestHTTPBatchNoPartialResults pins the truncation contract: a batch
// failing on mix i returns the error envelope only — no partial
// predictions — matching PredictBuffer.Results() after a failed
// PredictBatch.
func TestHTTPBatchNoPartialResults(t *testing.T) {
	s, _, _ := testServer(t, Config{})
	h := s.Handler()
	w, data := postJSON(t, h, "/v1/predict_batch", BatchRequest{
		Primary: 1, Mixes: [][]int{{2}, {999}, {3}},
	})
	we := wantCode(t, w, data, http.StatusNotFound, "unknown_template")
	if !strings.Contains(we.Message, "batch mix 1") {
		t.Errorf("message %q does not name the failing mix", we.Message)
	}
	if strings.Contains(string(data), "predictions") {
		t.Errorf("error body carries partial results: %s", data)
	}
}

// binaryConn is a minimal test client for the binary protocol.
type binaryConn struct {
	t    *testing.T
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

func dialBinary(t *testing.T, addr string) *binaryConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &binaryConn{t: t, conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
}

func (c *binaryConn) send(op uint8, reqID uint32, payload func(b []byte) []byte) {
	c.t.Helper()
	buf, lenOff := appendFrameHeader(nil, op, reqID)
	buf = payload(buf)
	patchFrameLen(buf, lenOff)
	if _, err := c.bw.Write(buf); err != nil {
		c.t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

// recv reads one response frame, returning (status code, reqID, payload).
func (c *binaryConn) recv() (Code, uint32, []byte) {
	c.t.Helper()
	var header [4]byte
	if _, err := io.ReadFull(c.br, header[:]); err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	n := int(binary.LittleEndian.Uint32(header[:]))
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		c.t.Fatalf("read payload: %v", err)
	}
	if payload[0] != Version {
		c.t.Fatalf("response version %d", payload[0])
	}
	return Code(payload[1]), binary.LittleEndian.Uint32(payload[2:6]), payload[frameHeaderSize:]
}

func appendMix(b []byte, primary int, mix []int) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(primary))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(mix)))
	for _, t := range mix {
		b = binary.LittleEndian.AppendUint32(b, uint32(t))
	}
	return b
}

func TestBinaryProtocol(t *testing.T) {
	_, p, addr := testServer(t, Config{})
	c := dialBinary(t, addr)

	// Predict.
	mix := []int{2, 3}
	c.send(OpPredict, 7, func(b []byte) []byte { return appendMix(b, 1, mix) })
	code, reqID, payload := c.recv()
	if code != CodeOK || reqID != 7 {
		t.Fatalf("predict: code %s reqID %d", code, reqID)
	}
	r := frameReader{b: payload}
	got := r.f64()
	want, err := p.PredictKnown(1, mix)
	if err != nil {
		t.Fatal(err)
	}
	if !r.done() || got != want {
		t.Errorf("predict %g, want %g", got, want)
	}

	// Batch.
	mixes := [][]int{{2}, {4, 5}}
	c.send(OpBatch, 8, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(mixes)))
		for _, mix := range mixes {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(mix)))
			for _, id := range mix {
				b = binary.LittleEndian.AppendUint32(b, uint32(id))
			}
		}
		return b
	})
	code, reqID, payload = c.recv()
	if code != CodeOK || reqID != 8 {
		t.Fatalf("batch: code %s reqID %d", code, reqID)
	}
	r = frameReader{b: payload}
	if m := int(r.u16()); m != len(mixes) {
		t.Fatalf("batch size %d, want %d", m, len(mixes))
	}
	for i, mix := range mixes {
		want, err := p.PredictKnown(1, mix)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.f64(); got != want {
			t.Errorf("batch[%d] = %g, want %g", i, got, want)
		}
	}
	if !r.done() {
		t.Error("trailing bytes in batch response")
	}

	// Feedback.
	c.send(OpFeedback, 9, func(b []byte) []byte {
		return appendF64(appendMix(b, 1, mix), want*1.2)
	})
	code, reqID, payload = c.recv()
	if code != CodeOK || reqID != 9 {
		t.Fatalf("feedback: code %s reqID %d", code, reqID)
	}
	r = frameReader{b: payload}
	if predicted := r.f64(); predicted != want {
		t.Errorf("feedback predicted %g, want %g", predicted, want)
	}
	_ = r.f64() // signed error
	if !r.done() {
		t.Error("trailing bytes in feedback response")
	}

	// Unknown template answers an error frame; the connection stays up.
	c.send(OpPredict, 10, func(b []byte) []byte { return appendMix(b, 999, mix) })
	code, reqID, payload = c.recv()
	if code != CodeUnknownTemplate || reqID != 10 {
		t.Fatalf("unknown template: code %s reqID %d", code, reqID)
	}
	r = frameReader{b: payload}
	msgLen := int(r.u16())
	if msgLen == 0 || r.err {
		t.Error("error frame carries no message")
	}

	// Unknown opcode: error frame, connection stays up.
	c.send(42, 11, func(b []byte) []byte { return b })
	code, reqID, _ = c.recv()
	if code != CodeBadRequest || reqID != 11 {
		t.Fatalf("bad opcode: code %s reqID %d", code, reqID)
	}

	// Still serving after the errors.
	c.send(OpPredict, 12, func(b []byte) []byte { return appendMix(b, 1, mix) })
	code, _, _ = c.recv()
	if code != CodeOK {
		t.Fatalf("post-error predict: code %s", code)
	}
}

func TestBinaryBadVersionClosesConn(t *testing.T) {
	_, _, addr := testServer(t, Config{})
	c := dialBinary(t, addr)
	buf, lenOff := appendFrameHeader(nil, OpPredict, 1)
	buf[lenOff+4] = 99 // stomp the version byte
	buf = appendMix(buf, 1, []int{2})
	patchFrameLen(buf, lenOff)
	if _, err := c.conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	code, _, _ := c.recv()
	if code != CodeBadRequest {
		t.Fatalf("version mismatch answered %s", code)
	}
	// Server hangs up after a version error.
	var one [1]byte
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.conn.Read(one[:]); err == nil {
		t.Error("connection still open after version mismatch")
	}
}

func TestBinaryOversizedFrameRejected(t *testing.T) {
	_, _, addr := testServer(t, Config{})
	c := dialBinary(t, addr)
	var header [4]byte
	binary.LittleEndian.PutUint32(header[:], MaxFrame+1)
	if _, err := c.conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	code, _, _ := c.recv()
	if code != CodeBadRequest {
		t.Fatalf("oversized frame answered %s", code)
	}
}

// TestCoalescerMatchesDirect pins that coalesced predictions are
// bit-identical to direct PredictKnown and that one request's bad mix
// never contaminates its batch-mates.
func TestCoalescerMatchesDirect(t *testing.T) {
	s, p, _ := testServer(t, Config{BatchWindow: 2 * time.Millisecond})
	h := s.Handler()

	var wg sync.WaitGroup
	type result struct {
		status int
		pred   float64
		code   string
	}
	reqs := []PredictRequest{
		{Primary: 1, Concurrent: []int{2}},
		{Primary: 1, Concurrent: []int{3, 4}},
		{Primary: 2, Concurrent: []int{5}},
		{Primary: 999, Concurrent: []int{2}}, // bad: unknown template
		{Primary: 3, Concurrent: []int{1, 2}},
	}
	results := make([]result, len(reqs))
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq PredictRequest) {
			defer wg.Done()
			body, _ := json.Marshal(rq)
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			data, _ := io.ReadAll(w.Result().Body)
			results[i].status = w.Code
			if w.Code == http.StatusOK {
				var pr PredictResponse
				_ = json.Unmarshal(data, &pr)
				results[i].pred = pr.Prediction
			} else {
				var env ErrorEnvelope
				_ = json.Unmarshal(data, &env)
				results[i].code = env.Error.Code
			}
		}(i, rq)
	}
	wg.Wait()
	for i, rq := range reqs {
		want, err := p.PredictKnown(rq.Primary, rq.Concurrent)
		if err != nil {
			if results[i].status == http.StatusOK {
				t.Errorf("req %d: served %g, want error %v", i, results[i].pred, err)
			} else if results[i].code != CodeFor(err).String() {
				t.Errorf("req %d: code %q, want %q", i, results[i].code, CodeFor(err))
			}
			continue
		}
		if results[i].status != http.StatusOK {
			t.Errorf("req %d: status %d code %q, want OK", i, results[i].status, results[i].code)
			continue
		}
		if results[i].pred != want {
			t.Errorf("req %d: coalesced %g != direct %g", i, results[i].pred, want)
		}
	}
}

// TestIdleBinaryConnsDontStarveHTTP pins per-burst shard affinity:
// binary connections that served a burst and went quiet must return
// their shard, so the HTTP front keeps working even with more open
// connections than shards.
func TestIdleBinaryConnsDontStarveHTTP(t *testing.T) {
	p := trainedPredictor(t)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// BatchWindow -1 disables the coalescer so every front must borrow
	// the single shard — the starvation-prone configuration.
	s, err := New(sh, Config{BatchWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenBinary("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})

	// Three connections each serve one frame and then sit idle, open.
	for i := 0; i < 3; i++ {
		c := dialBinary(t, addr)
		c.send(OpPredict, uint32(i), func(b []byte) []byte { return appendMix(b, 1, []int{2}) })
		if code, _, _ := c.recv(); code != CodeOK {
			t.Fatalf("conn %d predict: code %s", i, code)
		}
	}

	// The single shard must be back in the free list: HTTP succeeds.
	h := s.Handler()
	for i := 0; i < 3; i++ {
		w, data := postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2}})
		if w.Code != http.StatusOK {
			t.Fatalf("http predict %d blocked by idle conns: %d %s", i, w.Code, data)
		}
	}
}

// TestHTTPBodyTooLarge pins explicit over-limit rejection: a body past
// MaxFrame must answer bad_request naming the limit, never be silently
// truncated into a parseable prefix.
func TestHTTPBodyTooLarge(t *testing.T) {
	s, _, _ := testServer(t, Config{})
	h := s.Handler()
	big := `{"primary":1,"concurrent":[` + strings.Repeat("2,", MaxFrame/2) + `2]}`
	if len(big) <= MaxFrame {
		t.Fatalf("fixture body too small: %d", len(big))
	}
	w, data := postJSON(t, h, "/v1/predict", big)
	we := wantCode(t, w, data, http.StatusBadRequest, "bad_request")
	if !strings.Contains(we.Message, "exceeds") {
		t.Errorf("message %q does not name the size limit", we.Message)
	}
}

// TestBatcherCloseStrandsNoWaiter races predict against close: every
// in-flight predict must return (a result or overloaded), and close
// must not hang — the regression was a request enqueued concurrently
// with the run loop's exit waiting forever on its done channel.
func TestBatcherCloseStrandsNoWaiter(t *testing.T) {
	p := trainedPredictor(t)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		b := newBatcher(sh, 0, 8)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					if _, err := b.predict(1, []int{2}); errors.Is(err, ErrOverloaded) {
						return
					} else if err != nil {
						t.Errorf("predict: %v", err)
						return
					}
					if i > 10000 { // batcher closed under us eventually
						return
					}
				}
			}()
		}
		closed := make(chan struct{})
		go func() {
			b.close()
			close(closed)
		}()
		done := make(chan struct{})
		go func() {
			wg.Wait()
			close(done)
		}()
		for _, w := range []struct {
			name string
			ch   chan struct{}
		}{{"close hung", closed}, {"a waiter was stranded", done}} {
			select {
			case <-w.ch:
			case <-time.After(10 * time.Second):
				t.Fatal(w.name)
			}
		}
	}
}

// TestShutdownUnderLoad drains a server while HTTP requests hammer it:
// every response must be either a success (request caught the drain
// window) or the shutting-down overload — never a hang, never an
// internal error — and Shutdown itself must return promptly.
func TestShutdownUnderLoad(t *testing.T) {
	p := trainedPredictor(t)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sh, Config{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				body, _ := json.Marshal(PredictRequest{Primary: 1 + (i % 5), Concurrent: []int{1 + (w % 5)}})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					return // shutdown reached this worker
				default:
					data, _ := io.ReadAll(rec.Result().Body)
					t.Errorf("worker %d req %d: %d %s", w, i, rec.Code, data)
					return
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond) // let the hammer start
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
}

func TestAdmitterTokenBucket(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	a := newAdmitter(AdmissionConfig{Rate: 10, Burst: 2}, now)
	if !a.admit() || !a.admit() {
		t.Fatal("burst of 2 rejected")
	}
	a.release()
	a.release()
	if a.admit() {
		t.Fatal("empty bucket admitted")
	}
	clock = clock.Add(100 * time.Millisecond) // one token at 10/s
	if !a.admit() {
		t.Fatal("refilled token rejected")
	}
	a.release()
	if a.admit() {
		t.Fatal("second token minted from one refill")
	}
}

func TestAdmitterInflightCap(t *testing.T) {
	a := newAdmitter(AdmissionConfig{MaxInflight: 2}, nil)
	if !a.admit() || !a.admit() {
		t.Fatal("capacity rejected")
	}
	if a.admit() {
		t.Fatal("over-cap request admitted")
	}
	a.release()
	if !a.admit() {
		t.Fatal("released slot not reusable")
	}
}

func TestHTTPOverload(t *testing.T) {
	clock := time.Unix(2000, 0)
	s, _, _ := testServer(t, Config{
		Admission: AdmissionConfig{Rate: 1, Burst: 1},
		Now:       func() time.Time { return clock },
	})
	h := s.Handler()
	w, data := postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2}})
	if w.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", w.Code, data)
	}
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2}})
	wantCode(t, w, data, http.StatusTooManyRequests, "overloaded")
	if !errors.Is(ErrOverloaded, ErrOverloaded) {
		t.Fatal("sentinel identity broken")
	}
}

// TestLoadgenParityAndDeterminism runs the deterministic load
// generator over both protocols: the checksums must agree (payload
// parity) and a re-run with the same seed must reproduce them.
func TestLoadgenParityAndDeterminism(t *testing.T) {
	s, _, addr := testServer(t, Config{BatchWindow: time.Millisecond})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	cfg := LoadgenConfig{
		Addr:     addr,
		HTTPBase: hs.URL,
		Conns:    2,
		Batch:    16,
		Ops:      20,
		Seed:     42,
		Pool:     []int{1, 2, 3, 4, 5},
	}
	res, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Parity {
		t.Fatalf("parity violation: binary %s http %s", res.Checksum, res.HTTPChecksum)
	}
	if res.Predictions != int64(cfg.Conns*cfg.Batch*cfg.Ops) {
		t.Errorf("predictions %d, want %d", res.Predictions, cfg.Conns*cfg.Batch*cfg.Ops)
	}
	res2, err := RunLoadgen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Checksum != res.Checksum {
		t.Errorf("same seed, different checksum: %s vs %s", res2.Checksum, res.Checksum)
	}
}

// TestServeAcrossHotSwap hammers both protocols while the serving set
// hot-swaps snapshots; every response must be a well-formed success
// (both snapshots know the fixture templates). Run under -race this is
// the serving/swap interleaving test.
func TestServeAcrossHotSwap(t *testing.T) {
	s, _, addr := testServer(t, Config{BatchWindow: time.Millisecond})
	h := s.Handler()

	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p2 := trainedPredictor(t)
			if _, err := s.Sharded().Swap(p2); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body, _ := json.Marshal(PredictRequest{Primary: 1 + (i % 5), Concurrent: []int{1 + ((i + w) % 5)}})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					data, _ := io.ReadAll(rec.Result().Body)
					t.Errorf("worker %d req %d: %d %s", w, i, rec.Code, data)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		bc := &binaryConn{t: t, conn: c, bw: bufio.NewWriter(c), br: bufio.NewReader(c)}
		for i := 0; i < 100; i++ {
			bc.send(OpPredict, uint32(i), func(b []byte) []byte {
				return appendMix(b, 1+(i%5), []int{1 + ((i + 2) % 5)})
			})
			code, _, _ := bc.recv()
			if code != CodeOK {
				t.Errorf("binary req %d: code %s", i, code)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	swapWG.Wait()
}

// TestFeedbackDrainLoop verifies buffered feedback reaches the quality
// aggregator through the server's drain ticker.
func TestFeedbackDrainLoop(t *testing.T) {
	p := trainedPredictor(t)
	q := obs.NewQuality(obs.DriftConfig{})
	p.SetQuality(q)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sh, Config{DrainEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	h := s.Handler()
	want, err := p.PredictKnown(1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w, data := postJSON(t, h, "/v1/feedback", FeedbackRequest{Primary: 1, Concurrent: []int{2}, Observed: want * 1.1})
		if w.Code != http.StatusOK {
			t.Fatalf("feedback: %d %s", w.Code, data)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rep := q.Report(); rep.Samples >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain loop never folded feedback: %+v", q.Report())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShutdownIdempotentAndRejectsListen(t *testing.T) {
	p := trainedPredictor(t)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListenBinary("127.0.0.1:0"); err == nil {
		t.Fatal("ListenBinary accepted after Shutdown")
	}
}

func TestServeMetricsFamilies(t *testing.T) {
	m := obs.NewMetrics()
	s, _, _ := testServer(t, Config{Metrics: m, Observer: m})
	h := s.Handler()
	w, data := postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2}})
	if w.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", w.Code, data)
	}
	postJSON(t, h, "/v1/predict", PredictRequest{Primary: 999, Concurrent: []int{2}})
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`contender_serve_requests_total{op="predict"} 2`,
		`contender_serve_errors_total{code="unknown_template"} 1`,
		"contender_serve_predictions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func BenchmarkBinaryBatch64(b *testing.B) {
	p := trainedPredictor(b)
	sh, err := core.NewSharded(p, core.ShardOptions{Shards: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(sh, Config{BatchWindow: -1, DrainEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := s.ListenBinary("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ops := b.N/64 + 1
	b.ResetTimer()
	res, err := RunLoadgen(LoadgenConfig{
		Addr: addr, Conns: 1, Batch: 64, Ops: ops, Seed: 1, Pool: []int{1, 2, 3, 4, 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.PredictionsPerSec, "preds/s")
	_ = fmt.Sprintf("%v", res)
}
