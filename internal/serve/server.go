package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"contender/internal/core"
	"contender/internal/obs"
	"contender/internal/resilience"
)

// Server is the network-facing prediction service: one core.Sharded
// behind both wire protocols. Construction is cheap; the server starts
// work when ListenBinary accepts connections or Handler is mounted on
// an HTTP mux. Shutdown drains in-flight requests under a deadline.
//
// Concurrency model:
//
//   - Each accepted binary connection is owned by one reader goroutine
//     plus one writer goroutine flushing framed responses. The reader
//     borrows a shard from the free list only while complete frames are
//     buffered (per-burst affinity — the shard's scratch stays hot
//     across a pipelined burst) and returns it before any read that can
//     block, so idle connections never pin shards: a handful of
//     silent TCP connections cannot starve the HTTP front.
//   - HTTP handlers borrow shards from the same free list, sized to the
//     shard count; a borrowed shard is used single-threadedly. Borrows
//     wait at most Config.BorrowWait before answering overloaded.
//   - Single-prediction requests may be coalesced across connections
//     into vectorized PredictBatch calls by the deadline-bounded
//     batcher (Config.BatchWindow). Batch requests execute directly on
//     the owning connection's shard — they are already batches.
//   - Snapshot hot-swaps (Sharded.Swap, the lifecycle loop) never block
//     serving: every prediction reads the atomic snapshot pointer, so a
//     request straddling a swap simply completes on the old model.
type Server struct {
	cfg   Config
	sh    *core.Sharded
	bat   *batcher
	httpA *admitter // admission for the HTTP front
	free  chan *core.Shard

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool

	// connWg tracks serving work (accept loops, binary connections,
	// in-flight HTTP requests); drainWg tracks the feedback-drain loop.
	// Shutdown waits out connWg before stopping the batcher and drain
	// loop, so requests in flight during the drain window complete
	// normally instead of failing overloaded.
	connWg  sync.WaitGroup
	drainWg sync.WaitGroup
	drain   chan struct{} // closes to stop the feedback-drain loop

	met serveMetrics
}

// Config configures New. Zero values select the documented defaults.
type Config struct {
	// Observer receives serve.request spans and serve.* points (nil:
	// no observation; the wire layer stays clock-free).
	Observer obs.Observer
	// Metrics, when non-nil, registers the contender_serve_* families
	// on its registry and folds per-request counters into them.
	Metrics *obs.Metrics
	// Blame, when non-nil, receives the per-neighbor decomposition of
	// every explain-enabled prediction — the server's feed into the
	// pairwise blame matrix. Non-explain requests never touch it.
	Blame *obs.Blame
	// SlowLog, when non-nil, logs every request whose end-to-end
	// (admission → reply framing) latency meets the log's threshold. It
	// sees only the serve.request span, independent of Observer.
	SlowLog *obs.SlowLog
	// MaxBatch caps the mixes of one predict_batch request (default
	// 4096; CodeBatchTooLarge beyond it).
	MaxBatch int
	// BatchWindow is the coalescing deadline for single-prediction
	// requests: requests arriving within the window merge into one
	// vectorized PredictBatch. Zero disables the timer (bursts still
	// coalesce when they queue faster than the batcher drains);
	// negative disables coalescing entirely.
	BatchWindow time.Duration
	// MaxCoalesce caps one coalesced batch (default 256).
	MaxCoalesce int
	// BorrowWait bounds how long an HTTP request or a binary frame
	// waits for a free shard before answering overloaded (default 1s).
	BorrowWait time.Duration
	// Admission bounds each binary connection and the HTTP front as a
	// whole. The zero value admits everything.
	Admission AdmissionConfig
	// DrainEvery is the feedback-drain cadence: buffered Shard.Observe
	// samples fold into the quality aggregator this often (default
	// 100ms; negative disables the loop).
	DrainEvery time.Duration
	// Now is the admission clock (default time.Now; injectable for
	// deterministic tests).
	Now func() time.Time
}

// serveMetrics is the contender_serve_* family set, nil-safe when no
// registry is attached.
type serveMetrics struct {
	requests    *obs.CounterVec // by op
	errors      *obs.CounterVec // by code
	predictions *obs.Counter
	overloads   *obs.Counter
	connections *obs.Counter
	coalesced   *obs.Histogram
}

func newServeMetrics(m *obs.Metrics) serveMetrics {
	if m == nil {
		return serveMetrics{}
	}
	reg := m.Registry()
	return serveMetrics{
		requests:    reg.CounterVec("contender_serve_requests_total", "Wire requests by operation.", "op"),
		errors:      reg.CounterVec("contender_serve_errors_total", "Wire errors by stable v1 code.", "code"),
		predictions: reg.Counter("contender_serve_predictions_total", "Predictions served across both protocols."),
		overloads:   reg.Counter("contender_serve_overload_total", "Requests rejected by admission control."),
		connections: reg.Counter("contender_serve_connections_total", "Binary protocol connections accepted."),
		coalesced:   reg.Histogram("contender_serve_coalesced_batch", "Coalesced batch sizes executed by the request batcher.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

// New builds a server over a sharded serving set.
func New(sh *core.Sharded, cfg Config) (*Server, error) {
	if sh == nil {
		return nil, resilience.Permanent(errors.New("serve: New needs a sharded serving set"))
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.DrainEvery == 0 {
		cfg.DrainEvery = 100 * time.Millisecond
	}
	if cfg.BorrowWait <= 0 {
		cfg.BorrowWait = time.Second
	}
	s := &Server{
		cfg:   cfg,
		sh:    sh,
		conns: map[net.Conn]struct{}{},
		drain: make(chan struct{}),
		free:  make(chan *core.Shard, sh.NumShards()),
		met:   newServeMetrics(cfg.Metrics),
	}
	for i := 0; i < sh.NumShards(); i++ {
		s.free <- sh.Acquire()
	}
	if cfg.Admission.enabled() {
		s.httpA = newAdmitter(cfg.Admission, cfg.Now)
	}
	if cfg.BatchWindow >= 0 {
		// The batcher prices on its own PredictBuffer, never on a Shard:
		// every shard in the set is in the free list above, and Acquire
		// round-robins over that same set, so handing the batcher a
		// shard would alias one free-list entry and race its scratch.
		s.bat = newBatcher(sh, cfg.BatchWindow, cfg.MaxCoalesce)
		if s.met.coalesced != nil {
			s.bat.onBatch = func(n int) { s.met.coalesced.Observe(float64(n)) }
		}
	}
	if cfg.DrainEvery > 0 {
		s.drainWg.Add(1)
		go s.drainLoop()
	}
	return s, nil
}

// Sharded returns the serving set behind the server (for hot-swaps).
func (s *Server) Sharded() *core.Sharded { return s.sh }

// drainLoop periodically folds buffered feedback into the quality
// aggregator, emitting a serve.drain point per non-empty tick.
func (s *Server) drainLoop() {
	defer s.drainWg.Done()
	t := time.NewTicker(s.cfg.DrainEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.sh.DrainFeedback(); n > 0 {
				obs.Emit(s.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointServeDrain, Value: float64(n)})
			}
		case <-s.drain:
			s.sh.DrainFeedback()
			return
		}
	}
}

// borrow takes a shard from the free list. The list bounds shard users
// to the shard count; when every shard is busy the wait is bounded by
// BorrowWait, after which the request answers overloaded instead of
// parking a goroutine indefinitely.
func (s *Server) borrow() (*core.Shard, error) {
	select {
	case sh := <-s.free:
		return sh, nil
	default:
	}
	t := time.NewTimer(s.cfg.BorrowWait)
	defer t.Stop()
	select {
	case sh := <-s.free:
		return sh, nil
	case <-t.C:
		return nil, fmt.Errorf("%w: no shard free within %v", ErrOverloaded, s.cfg.BorrowWait)
	}
}

func (s *Server) giveBack(sh *core.Shard) { s.free <- sh }

// timed reports whether request handlers need wall-clock timing: either
// an observer wants the serve.request span or a slow log wants to judge
// the request's latency.
func (s *Server) timed() bool { return s.cfg.Observer != nil || s.cfg.SlowLog != nil }

// observeRequest emits the serve.request span and folds counters.
func (s *Server) observeRequest(op string, n int, dur time.Duration, err error) {
	if s.met.requests != nil {
		s.met.requests.With(op).Inc()
		if err == nil {
			s.met.predictions.Add(int64(n))
		} else {
			s.met.errors.With(CodeFor(err).String()).Inc()
		}
	}
	if s.cfg.Observer != nil {
		obs.Emit(s.cfg.Observer, obs.Event{
			Kind:  obs.SpanEnd,
			Span:  obs.SpanServeRequest,
			Key:   op,
			Value: float64(n),
			Dur:   dur,
			Err:   obs.ErrLabel(err),
		})
	}
	if s.cfg.SlowLog != nil {
		s.cfg.SlowLog.Event(obs.Event{
			Kind:  obs.SpanEnd,
			Span:  obs.SpanServeRequest,
			Key:   op,
			Value: float64(n),
			Dur:   dur,
			Err:   obs.ErrLabel(err),
		})
	}
}

// overloaded counts one admission rejection.
func (s *Server) overloaded(op string) {
	if s.met.overloads != nil {
		s.met.overloads.Inc()
		s.met.errors.With(CodeOverloaded.String()).Inc()
	}
	obs.Emit(s.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointServeOverload, Key: op})
}

// ---------------------------------------------------------------------------
// HTTP/JSON front (v1).

// Handler returns the HTTP front: POST /v1/predict, /v1/predict_batch,
// /v1/feedback. Mount it beside /metrics (cliutil.ServeMetrics does)
// or on any mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handleJSON(w, r, "predict", func(body []byte) (any, int, error) {
			var req PredictRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			if req.Explain {
				resp, err := s.predictExplain(req.Primary, req.Concurrent)
				if err != nil {
					return nil, 0, err
				}
				return resp, 1, nil
			}
			v, err := s.predictOne(req.Primary, req.Concurrent)
			if err != nil {
				return nil, 0, err
			}
			return PredictResponse{Prediction: v}, 1, nil
		})
	})
	mux.HandleFunc("/v1/predict_batch", func(w http.ResponseWriter, r *http.Request) {
		s.handleJSON(w, r, "predict_batch", func(body []byte) (any, int, error) {
			var req BatchRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			if len(req.Mixes) > s.cfg.MaxBatch {
				return nil, 0, fmt.Errorf("%w: %d mixes > max %d", ErrBatchTooLarge, len(req.Mixes), s.cfg.MaxBatch)
			}
			out, err := s.batchPredict(req.Primary, req.Mixes)
			if err != nil {
				return nil, 0, err
			}
			return BatchResponse{Predictions: out}, len(out), nil
		})
	})
	mux.HandleFunc("/v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		s.handleJSON(w, r, "feedback", func(body []byte) (any, int, error) {
			var req FeedbackRequest
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			res, err := s.observe(req.Primary, req.Concurrent, req.Observed)
			if err != nil {
				return nil, 0, err
			}
			return FeedbackResponse{Predicted: res.Predicted, SignedError: res.SignedError}, 0, nil
		})
	})
	return mux
}

// handleJSON is the shared HTTP plumbing: method check, admission,
// body read, dispatch, envelope rendering, observation.
func (s *Server) handleJSON(w http.ResponseWriter, r *http.Request, op string, fn func(body []byte) (any, int, error)) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, fmt.Errorf("%w: method %s", ErrBadRequest, r.Method))
		return
	}
	// Register with connWg so Shutdown's drain window waits for this
	// request before it stops the batcher; a request arriving after
	// Shutdown began is refused (transient — retry another replica).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.overloaded(op)
		writeJSONError(w, fmt.Errorf("%w: server shutting down", ErrOverloaded))
		return
	}
	s.connWg.Add(1)
	s.mu.Unlock()
	defer s.connWg.Done()
	if s.httpA != nil && !s.httpA.admit() {
		s.overloaded(op)
		writeJSONError(w, ErrOverloaded)
		return
	}
	if s.httpA != nil {
		defer s.httpA.release()
	}
	var start time.Time
	if s.timed() {
		start = time.Now()
	}
	// Read one byte past the cap so an over-limit body is detected and
	// refused explicitly instead of being silently truncated (a valid
	// JSON prefix of a truncated body must never parse as a request).
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrame+1))
	switch {
	case err != nil:
		err = fmt.Errorf("%w: %v", ErrBadRequest, err)
	case len(body) > MaxFrame:
		err = fmt.Errorf("%w: request body exceeds %d bytes", ErrBadRequest, MaxFrame)
	}
	var resp any
	var n int
	if err == nil {
		resp, n, err = fn(body)
	}
	var dur time.Duration
	if s.timed() {
		dur = time.Since(start)
	}
	s.observeRequest(op, n, dur, err)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(resp)
}

// writeJSONError renders the v1 error envelope under the code's HTTP
// status.
func writeJSONError(w http.ResponseWriter, err error) {
	code := CodeFor(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code.HTTPStatus())
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: WireError{Code: code.String(), Message: err.Error()}})
}

// predictOne routes a single prediction through the coalescing batcher
// when one is running, else prices it directly on a borrowed shard.
func (s *Server) predictOne(primary int, mix []int) (v float64, err error) {
	if err := s.validateMix(mix); err != nil {
		return 0, err
	}
	if s.bat != nil {
		return s.bat.predict(primary, mix)
	}
	sh, err := s.borrow()
	if err != nil {
		return 0, err
	}
	defer s.giveBack(sh)
	defer guardErr(&err)
	return sh.Predict(primary, mix)
}

// predictExplain prices one prediction with its per-neighbor blame
// breakdown. Explained predictions execute directly on a borrowed shard
// — the coalescing batcher's pending protocol carries a bare float64,
// and explain traffic is diagnostic, not throughput-bound, so it does
// not justify widening that protocol. The prediction itself is
// bit-identical to the non-explain path by construction
// (core.PredictExplain replays PredictKnown's summation verbatim). The
// breakdown slices are copied out of the shard's buffer before the
// shard returns to the free list.
func (s *Server) predictExplain(primary int, mix []int) (PredictResponse, error) {
	if err := s.validateMix(mix); err != nil {
		return PredictResponse{}, err
	}
	sh, err := s.borrow()
	if err != nil {
		return PredictResponse{}, err
	}
	defer s.giveBack(sh)
	eb, err := shardExplain(sh, primary, mix)
	if err != nil {
		return PredictResponse{}, err
	}
	s.cfg.Blame.Observe(primary, eb.Neighbors, eb.Seconds)
	return PredictResponse{
		Prediction: eb.Total,
		Explain: &ExplainBreakdown{
			Baseline:  eb.Baseline,
			CQI:       eb.CQI,
			Neighbors: append([]int(nil), eb.Neighbors...),
			Seconds:   append([]float64(nil), eb.Seconds...),
		},
	}, nil
}

// shardExplain runs Shard.Explain under guardErr. The returned buffer
// belongs to the shard: read it before the shard is given back or used
// again.
func shardExplain(sh *core.Shard, primary int, mix []int) (eb *core.ExplainBuffer, err error) {
	defer guardErr(&err)
	return sh.Explain(primary, mix)
}

// batchPredict validates and executes one predict_batch request on a
// borrowed shard, copying the results out of the shard's scratch. Both
// protocol fronts call it, which is what makes their payloads
// byte-identical for the same request.
func (s *Server) batchPredict(primary int, mixes [][]int) (out []float64, err error) {
	for i, mix := range mixes {
		if err := s.validateMix(mix); err != nil {
			return nil, fmt.Errorf("serve: batch mix %d: %w", i, err)
		}
	}
	sh, err := s.borrow()
	if err != nil {
		return nil, err
	}
	defer s.giveBack(sh)
	defer guardErr(&err)
	res, err := sh.BatchPredict(primary, mixes)
	if err != nil {
		return nil, err
	}
	out = make([]float64, len(res))
	copy(out, res)
	return out, nil
}

// observe validates and executes one feedback request on a borrowed
// shard.
func (s *Server) observe(primary int, mix []int, observed float64) (res core.FeedbackResult, err error) {
	if err := s.validateMix(mix); err != nil {
		return core.FeedbackResult{}, err
	}
	sh, err := s.borrow()
	if err != nil {
		return core.FeedbackResult{}, err
	}
	defer s.giveBack(sh)
	defer guardErr(&err)
	return sh.Observe(primary, mix, observed)
}

// validateMix rejects unknown concurrent template IDs before they
// reach the CQI kernel. The kernel treats an unknown ID as a
// programming error (panic) because in-process callers control their
// inputs; the wire layer does not, so it turns untrusted mixes into
// the same ErrUnknownTemplate a bad primary produces. The primary
// itself is validated by the core (cellFor), keeping its error text.
func (s *Server) validateMix(mix []int) error {
	know := s.sh.Snapshot().Know
	for _, id := range mix {
		if _, ok := know.Template(id); !ok {
			return fmt.Errorf("serve: concurrent template %d: %w", id, core.ErrUnknownTemplate)
		}
	}
	return nil
}

// guardErr converts a kernel panic into an error on the deferring
// call's named return. Validation makes kernel panics unreachable in
// steady state, but a hot-swap that shrank the template universe can
// land between validation and execution; losing that one request beats
// losing the serving goroutine (and, behind the batcher, every waiter
// queued after it).
func guardErr(err *error) {
	if r := recover(); r != nil {
		*err = resilience.Transient(fmt.Errorf("serve: prediction failed: %v", r))
	}
}

// ---------------------------------------------------------------------------
// Binary front (v1).

// ListenBinary starts accepting binary-protocol connections on addr
// and returns the bound address (useful with ":0"). The accept loop
// runs on its own goroutine until Shutdown.
func (s *Server) ListenBinary(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: binary listener: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", resilience.Permanent(errors.New("serve: server is shut down"))
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.connWg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.connWg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.met.connections != nil {
			s.met.connections.Inc()
		}
		obs.Emit(s.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointServeConn})
		s.connWg.Add(1)
		go s.serveConn(conn)
	}
}

// connState is one binary connection's working set: its (per-burst
// borrowed) shard, its admission bucket, and reusable request/response
// buffers. Everything is single-goroutine (the reader), except the
// response channel feeding the writer.
type connState struct {
	srv   *Server
	shard *core.Shard // nil when not borrowed; held only across buffered bursts
	adm   *admitter

	respCh chan *[]byte
	wErr   chan error

	mixes   [][]int // decoded batch mixes, reused across frames
	mixArea []int   // backing storage for mixes, reused across frames
}

var respBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func (s *Server) serveConn(conn net.Conn) {
	defer s.connWg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	st := &connState{
		srv:    s,
		respCh: make(chan *[]byte, 64),
		wErr:   make(chan error, 1),
	}
	defer st.releaseShard()
	if s.cfg.Admission.enabled() {
		st.adm = newAdmitter(s.cfg.Admission, s.cfg.Now)
	}

	// Writer goroutine: flush coalesces — one syscall per quiet moment,
	// not per response — which is what lets a pipelined client sustain
	// millions of predictions per second over one descriptor.
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		bw := bufio.NewWriterSize(conn, 64<<10)
		for bp := range st.respCh {
			_, err := bw.Write(*bp)
			*bp = (*bp)[:0]
			respBufPool.Put(bp)
			if err == nil && len(st.respCh) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				select {
				case st.wErr <- err:
				default:
				}
				for bp := range st.respCh {
					*bp = (*bp)[:0]
					respBufPool.Put(bp)
				} // drain until close so the reader never blocks
				return
			}
		}
		_ = bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	payload := make([]byte, 0, 512)
	var header [4]byte
	for {
		// Return the shard before any read that can block: a borrowed
		// shard may only be held while complete frames are buffered
		// (per-burst affinity), never across a wait on the client —
		// otherwise idle connections would pin the free list dry.
		if st.shard != nil && !frameBuffered(br) {
			st.releaseShard()
		}
		if _, err := io.ReadFull(br, header[:]); err != nil {
			break // EOF or connection torn down
		}
		n := int(binary.LittleEndian.Uint32(header[:]))
		if n < frameHeaderSize || n > MaxFrame {
			// Unframeable garbage: answer once, then hang up — resync is
			// impossible on a corrupted length prefix.
			st.reply(0, fmt.Errorf("%w: frame length %d", ErrBadRequest, n))
			break
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		version, op, reqID := payload[0], payload[1], binary.LittleEndian.Uint32(payload[2:6])
		if version != Version {
			st.reply(reqID, fmt.Errorf("%w: version %d, want %d", ErrBadRequest, version, Version))
			break
		}
		st.handleFrame(op, reqID, payload[frameHeaderSize:])
		select {
		case <-st.wErr:
			goto done
		default:
		}
	}
done:
	// Return any borrowed shard before waiting on the writer: the wait
	// can outlast a slow flush, and a shard parked here is invisible to
	// every other connection (found by contender-vet's borrowpair).
	st.releaseShard()
	close(st.respCh)
	wwg.Wait()
}

// handleFrame decodes and executes one request frame. Malformed
// payloads answer with CodeBadRequest; the connection stays up (the
// length prefix was intact, so framing is still in sync).
func (st *connState) handleFrame(op uint8, reqID uint32, payload []byte) {
	s := st.srv
	// The opcode byte's high bit is the explain flag (v1 defines it for
	// OpPredict only); mask it off before dispatch so op names, metrics,
	// and the opcode switch see the plain opcode.
	explain := op&FlagExplain != 0
	op &^= FlagExplain
	if st.adm != nil && !st.adm.admit() {
		s.overloaded(opName(op))
		st.reply(reqID, ErrOverloaded)
		return
	}
	if st.adm != nil {
		defer st.adm.release()
	}
	var start time.Time
	if s.timed() {
		start = time.Now()
	}
	var n int
	var err error
	r := frameReader{b: payload}
	if explain && op != OpPredict {
		err = fmt.Errorf("%w: explain flag on opcode %d", ErrBadRequest, op)
		s.observeRequest(opName(op), 0, 0, err)
		st.reply(reqID, err)
		return
	}
	switch op {
	case OpPredict:
		primary, mix := st.decodeMix(&r)
		if !r.done() {
			err = fmt.Errorf("%w: malformed predict payload", ErrBadRequest)
			break
		}
		if explain {
			// Explained predictions execute on the connection's burst
			// shard (never the batcher — see Server.predictExplain). The
			// shard's explain buffer stays valid while the shard is held,
			// and it is held across this whole frame, so the reply frames
			// straight out of the buffer with no copies.
			var eb *core.ExplainBuffer
			if err = s.validateMix(mix); err == nil {
				eb, err = st.shardExplain(primary, mix)
			}
			if err == nil {
				n = 1
				s.cfg.Blame.Observe(primary, eb.Neighbors, eb.Seconds)
				st.replyOK(reqID, func(b []byte) []byte {
					b = appendF64(b, eb.Total)
					b = appendF64(b, eb.Baseline)
					b = appendF64(b, eb.CQI)
					b = binary.LittleEndian.AppendUint16(b, uint16(len(eb.Neighbors)))
					for i, nb := range eb.Neighbors {
						b = binary.LittleEndian.AppendUint32(b, uint32(nb))
						b = appendF64(b, eb.Seconds[i])
					}
					return b
				})
			}
			break
		}
		var v float64
		if err = s.validateMix(mix); err == nil {
			if s.bat != nil {
				v, err = s.bat.predict(primary, mix)
			} else {
				v, err = st.shardPredict(primary, mix)
			}
		}
		if err == nil {
			n = 1
			st.replyOK(reqID, func(b []byte) []byte { return appendF64(b, v) })
		}
	case OpBatch:
		primary := int(r.u32())
		m := int(r.u16())
		if m > s.cfg.MaxBatch {
			err = fmt.Errorf("%w: %d mixes > max %d", ErrBatchTooLarge, m, s.cfg.MaxBatch)
			break
		}
		if !st.decodeMixes(&r, m) || !r.done() {
			err = fmt.Errorf("%w: malformed batch payload", ErrBadRequest)
			break
		}
		for j, mix := range st.mixes {
			if verr := s.validateMix(mix); verr != nil {
				err = fmt.Errorf("serve: batch mix %d: %w", j, verr)
				break
			}
		}
		if err != nil {
			break
		}
		var res []float64
		res, err = st.shardBatch(primary)
		if err == nil {
			n = len(res)
			st.replyOK(reqID, func(b []byte) []byte {
				b = binary.LittleEndian.AppendUint16(b, uint16(len(res)))
				for _, v := range res {
					b = appendF64(b, v)
				}
				return b
			})
		}
	case OpFeedback:
		primary, mix := st.decodeMix(&r)
		observed := r.f64()
		if !r.done() {
			err = fmt.Errorf("%w: malformed feedback payload", ErrBadRequest)
			break
		}
		var res core.FeedbackResult
		if err = s.validateMix(mix); err == nil {
			res, err = st.shardObserve(primary, mix, observed)
		}
		if err == nil {
			st.replyOK(reqID, func(b []byte) []byte {
				return appendF64(appendF64(b, res.Predicted), res.SignedError)
			})
		}
	default:
		err = fmt.Errorf("%w: opcode %d", ErrBadRequest, op)
	}
	var dur time.Duration
	if s.timed() {
		dur = time.Since(start)
	}
	s.observeRequest(opName(op), n, dur, err)
	if err != nil {
		st.reply(reqID, err)
	}
}

// ensureShard borrows a shard for the current burst if the connection
// does not already hold one. The borrow is bounded (BorrowWait), so a
// frame arriving while every shard is busy answers overloaded instead
// of parking the connection's reader.
func (st *connState) ensureShard() (*core.Shard, error) {
	if st.shard == nil {
		sh, err := st.srv.borrow()
		if err != nil {
			return nil, err
		}
		st.shard = sh
	}
	return st.shard, nil
}

// releaseShard returns the burst's shard to the free list, if held.
func (st *connState) releaseShard() {
	if st.shard != nil {
		st.srv.giveBack(st.shard)
		st.shard = nil
	}
}

// frameBuffered reports whether the reader already holds one complete
// frame — i.e. the next loop iteration will not block on the client.
// A bogus length prefix counts as buffered: the loop answers the error
// and hangs up without another read.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	h, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := int(binary.LittleEndian.Uint32(h))
	if n < frameHeaderSize || n > MaxFrame {
		return true
	}
	return br.Buffered() >= 4+n
}

// shardPredict / shardBatch / shardObserve run the connection's burst
// shard under guardErr (see its comment for why the guard exists).
func (st *connState) shardPredict(primary int, mix []int) (v float64, err error) {
	sh, err := st.ensureShard()
	if err != nil {
		return 0, err
	}
	defer guardErr(&err)
	return sh.Predict(primary, mix)
}

func (st *connState) shardExplain(primary int, mix []int) (eb *core.ExplainBuffer, err error) {
	sh, err := st.ensureShard()
	if err != nil {
		return nil, err
	}
	defer guardErr(&err)
	return sh.Explain(primary, mix)
}

func (st *connState) shardBatch(primary int) (res []float64, err error) {
	sh, err := st.ensureShard()
	if err != nil {
		return nil, err
	}
	defer guardErr(&err)
	return sh.BatchPredict(primary, st.mixes)
}

func (st *connState) shardObserve(primary int, mix []int, observed float64) (res core.FeedbackResult, err error) {
	sh, err := st.ensureShard()
	if err != nil {
		return core.FeedbackResult{}, err
	}
	defer guardErr(&err)
	return sh.Observe(primary, mix, observed)
}

// decodeMix reads (primary, mix) reusing the connection's arena.
func (st *connState) decodeMix(r *frameReader) (int, []int) {
	primary := int(r.u32())
	k := int(r.u16())
	if k > MaxMix {
		r.err = true
		return primary, nil
	}
	st.mixArea = st.mixArea[:0]
	for i := 0; i < k; i++ {
		st.mixArea = append(st.mixArea, int(r.u32()))
	}
	return primary, st.mixArea
}

// decodeMixes reads m mixes into the connection's arena.
func (st *connState) decodeMixes(r *frameReader, m int) bool {
	st.mixes = st.mixes[:0]
	st.mixArea = st.mixArea[:0]
	offs := make([]int, 0, m+1) // offsets into mixArea; small, amortized by conn reuse? kept simple
	offs = append(offs, 0)
	for i := 0; i < m; i++ {
		k := int(r.u16())
		if k > MaxMix || r.err {
			return false
		}
		for j := 0; j < k; j++ {
			st.mixArea = append(st.mixArea, int(r.u32()))
		}
		offs = append(offs, len(st.mixArea))
	}
	if r.err {
		return false
	}
	for i := 0; i < m; i++ {
		st.mixes = append(st.mixes, st.mixArea[offs[i]:offs[i+1]])
	}
	return true
}

// replyOK frames a success response; fill appends the payload.
func (st *connState) replyOK(reqID uint32, fill func([]byte) []byte) {
	bp := respBufPool.Get().(*[]byte)
	buf, lenOff := appendFrameHeader((*bp)[:0], byte(CodeOK), reqID)
	buf = fill(buf)
	patchFrameLen(buf, lenOff)
	*bp = buf
	st.respCh <- bp
}

// reply frames an error response carrying the stable code and message.
func (st *connState) reply(reqID uint32, err error) {
	code := CodeFor(err)
	bp := respBufPool.Get().(*[]byte)
	buf, lenOff := appendFrameHeader((*bp)[:0], byte(code), reqID)
	msg := err.Error()
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	patchFrameLen(buf, lenOff)
	*bp = buf
	st.respCh <- bp
}

func opName(op uint8) string {
	switch op {
	case OpPredict:
		return "predict"
	case OpBatch:
		return "predict_batch"
	case OpFeedback:
		return "feedback"
	default:
		return "unknown"
	}
}

// Shutdown stops accepting, waits for open connections and in-flight
// HTTP requests to finish (they keep the batcher and shards at their
// disposal, so requests caught in the drain window complete normally),
// and only then stops the batcher and feedback-drain loop. When ctx
// expires first, remaining connections are severed and Shutdown waits
// for their goroutines to notice. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline expired: sever what is left. The remaining
		// waits below stay bounded — severed readers exit on their next
		// read, and any request already executing finishes against a
		// still-live batcher and shard set.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}

	// No serving work remains: stop the coalescer and the drain loop.
	if s.bat != nil {
		s.bat.close()
	}
	close(s.drain)
	s.drainWg.Wait()
	return err
}
