package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"contender/internal/core"
	"contender/internal/lifecycle"
	"contender/internal/obs"
)

// TestSwapHammerUnderLoad drives pipelined binary traffic while two
// mutators fight over the serving snapshot: a direct Sharded.Swap
// ping-pong and lifecycle.ForceRetrain promotions going through the
// full retrain → promote → hot-swap sequence. The point is the -race
// run: every snapshot load on the serving path races a concurrent
// publication, so an unsynchronized read anywhere in the swap protocol
// surfaces here as a detector report rather than a production 500.
func TestSwapHammerUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("swap hammer: skipped in -short")
	}

	// The ping-pong pair is pre-primed via Swap's own Prime call, which
	// is idempotent and internally synchronized, so re-publishing a
	// retired predictor is safe.
	p1, p2 := trainedPredictor(t), trainedPredictor(t)
	sh, err := core.NewSharded(trainedPredictor(t), core.ShardOptions{Shards: 2, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.ListenBinary("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})

	// Each ForceRetrain promotes a fresh candidate: promotion calls
	// SetQuality on it, which must never hit a predictor that is
	// already serving. Pre-build them here so the collector goroutine
	// never touches testing.TB.
	const retrains = 4
	candidates := make(chan *core.Predictor, retrains)
	for i := 0; i < retrains; i++ {
		candidates <- trainedPredictor(t)
	}
	q := obs.NewQuality(obs.DriftConfig{MinSamples: 4, Delta: 0.05, Lambda: 1, StaleMRE: 0.3, RecoverMRE: 0.1, Window: 4})
	m, err := lifecycle.New(sh, lifecycle.Config{
		Quality: q,
		Collector: lifecycle.CollectorFunc(func(context.Context, []int) (*core.Predictor, error) {
			return <-candidates, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := p1
			if i%2 == 1 {
				p = p2
			}
			if _, err := sh.Swap(p); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for i := 0; i < retrains; i++ {
			rep, err := m.ForceRetrain(ctx, []int{1, 2})
			if err != nil {
				t.Errorf("ForceRetrain: %v", err)
				return
			}
			if rep.Action != lifecycle.ActionPromoted {
				t.Errorf("ForceRetrain action = %s (err %q), want promoted", rep.Action, rep.Err)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	res, lerr := RunLoadgen(LoadgenConfig{
		Addr: addr, Pool: []int{1, 2, 3, 4, 5},
		Conns: 4, Batch: 16, Ops: 300, Seed: 42,
	})
	close(stop)
	wg.Wait()
	if lerr != nil {
		t.Fatalf("loadgen under swap hammer: %v (result %+v)", lerr, res)
	}
}
