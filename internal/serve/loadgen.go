package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"contender/internal/resilience"
)

// Deterministic load generator. Each connection replays a seeded
// request stream (seed + connection index), so a run is reproducible:
// same seed, same pool, same op count → the same predictions in the
// same order, summarized by an FNV-1a checksum over the prediction
// float64 bit patterns. The checksum is the parity oracle between the
// two protocols: replaying the identical streams over HTTP/JSON must
// produce the identical checksum, byte for byte, or one protocol is
// lying about the core's answers.

// LoadgenConfig drives RunLoadgen. Zero values select the documented
// defaults.
type LoadgenConfig struct {
	// Addr is the binary-protocol address to drive (required).
	Addr string
	// HTTPBase, when non-empty (e.g. "http://127.0.0.1:8080"), replays
	// the same seeded streams over POST /v1/predict_batch and verifies
	// checksum parity with the binary run.
	HTTPBase string
	// Conns is the number of concurrent binary connections (default 2).
	Conns int
	// Batch is the number of mixes per predict_batch frame (default 64).
	Batch int
	// Ops is the number of batch frames per connection (default 500).
	Ops int
	// Seed seeds the per-connection streams (conn i uses Seed+i).
	Seed int64
	// Pool is the trained template ID pool mixes draw from (required).
	Pool []int
	// MixMax caps a generated mix's concurrent count (default 2, i.e.
	// MPL ≤ 3). Keep it within the predictor's trained MPL range or
	// every frame answers ErrUntrainedMPL.
	MixMax int
}

// LoadgenResult summarizes one load-generator run.
type LoadgenResult struct {
	Conns             int     `json:"conns"`
	Batch             int     `json:"batch"`
	Ops               int     `json:"ops_per_conn"`
	Seed              int64   `json:"seed"`
	Predictions       int64   `json:"predictions"`
	ElapsedSec        float64 `json:"elapsed_sec"`
	PredictionsPerSec float64 `json:"predictions_per_sec"`
	Checksum          string  `json:"checksum"`
	HTTPChecksum      string  `json:"http_checksum,omitempty"`
	Parity            bool    `json:"parity"`
}

func (c *LoadgenConfig) defaults() error {
	if c.Addr == "" {
		return resilience.Permanent(fmt.Errorf("serve: loadgen needs a binary address"))
	}
	if len(c.Pool) == 0 {
		return resilience.Permanent(fmt.Errorf("serve: loadgen needs a template pool"))
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Ops <= 0 {
		c.Ops = 500
	}
	if c.MixMax <= 0 {
		c.MixMax = 2
	}
	return nil
}

// stream regenerates connection i's request sequence. Both protocols
// replay through this one generator, which is what makes the parity
// check meaningful.
type stream struct {
	rng    *rand.Rand
	pool   []int
	batch  int
	mixMax int
}

func newStream(cfg LoadgenConfig, conn int) *stream {
	return &stream{
		rng:    rand.New(rand.NewSource(cfg.Seed + int64(conn))),
		pool:   cfg.Pool,
		batch:  cfg.Batch,
		mixMax: cfg.MixMax,
	}
}

// next returns the next (primary, mixes) batch request. The returned
// slices are valid until the following call.
func (s *stream) next() (int, [][]int) {
	primary := s.pool[s.rng.Intn(len(s.pool))]
	mixes := make([][]int, s.batch)
	for i := range mixes {
		k := 1 + s.rng.Intn(s.mixMax)
		mix := make([]int, k)
		for j := range mix {
			mix[j] = s.pool[s.rng.Intn(len(s.pool))]
		}
		mixes[i] = mix
	}
	return primary, mixes
}

// RunLoadgen drives the binary protocol with Conns seeded streams,
// then (when HTTPBase is set) replays the identical streams over
// HTTP/JSON and checks payload parity.
func RunLoadgen(cfg LoadgenConfig) (LoadgenResult, error) {
	if err := cfg.defaults(); err != nil {
		return LoadgenResult{}, err
	}
	res := LoadgenResult{Conns: cfg.Conns, Batch: cfg.Batch, Ops: cfg.Ops, Seed: cfg.Seed}

	sums := make([]uint64, cfg.Conns)
	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = driveBinaryConn(cfg, i)
		}(i)
	}
	wg.Wait()
	res.ElapsedSec = time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Predictions = int64(cfg.Conns) * int64(cfg.Ops) * int64(cfg.Batch)
	if res.ElapsedSec > 0 {
		res.PredictionsPerSec = float64(res.Predictions) / res.ElapsedSec
	}
	res.Checksum = foldChecksums(sums)
	res.Parity = true

	if cfg.HTTPBase != "" {
		httpSums := make([]uint64, cfg.Conns)
		for i := 0; i < cfg.Conns; i++ {
			var err error
			httpSums[i], err = driveHTTPConn(cfg, i)
			if err != nil {
				return res, err
			}
		}
		res.HTTPChecksum = foldChecksums(httpSums)
		res.Parity = res.HTTPChecksum == res.Checksum
		if !res.Parity {
			return res, resilience.Corruptf("serve: protocol parity violation: binary %s != http %s", res.Checksum, res.HTTPChecksum)
		}
	}
	return res, nil
}

// driveBinaryConn replays stream i over one pipelined binary
// connection: a writer goroutine keeps frames in flight while the
// reader folds predictions into the checksum in response order (the
// server answers one connection's frames in order, so response order
// is request order).
func driveBinaryConn(cfg LoadgenConfig, i int) (uint64, error) {
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return 0, fmt.Errorf("serve: loadgen dial: %w", err)
	}
	defer conn.Close()

	writeErr := make(chan error, 1)
	//contender:allow goroleak -- the writer always signals completion on the buffered writeErr channel; the reader receives from it before returning, and the deferred conn.Close unblocks a stuck write
	go func() {
		bw := bufio.NewWriterSize(conn, 64<<10)
		st := newStream(cfg, i)
		var buf []byte
		for op := 0; op < cfg.Ops; op++ {
			primary, mixes := st.next()
			buf = buf[:0]
			var lenOff int
			buf, lenOff = appendFrameHeader(buf, OpBatch, uint32(op))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(primary))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(mixes)))
			for _, mix := range mixes {
				buf = binary.LittleEndian.AppendUint16(buf, uint16(len(mix)))
				for _, t := range mix {
					buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
				}
			}
			patchFrameLen(buf, lenOff)
			if _, err := bw.Write(buf); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- bw.Flush()
	}()

	h := fnv.New64a()
	var scratch [8]byte
	br := bufio.NewReaderSize(conn, 64<<10)
	var header [4]byte
	payload := make([]byte, 0, 4096)
	for op := 0; op < cfg.Ops; op++ {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return 0, fmt.Errorf("serve: loadgen read: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(header[:]))
		if n < frameHeaderSize || n > MaxFrame {
			return 0, resilience.Corruptf("serve: loadgen: bad response frame length %d", n)
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return 0, fmt.Errorf("serve: loadgen read: %w", err)
		}
		if code := Code(payload[1]); code != CodeOK {
			return 0, resilience.Permanent(fmt.Errorf("serve: loadgen: response code %s on frame %d", code, op))
		}
		r := frameReader{b: payload[frameHeaderSize:]}
		m := int(r.u16())
		for j := 0; j < m; j++ {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(r.f64()))
			_, _ = h.Write(scratch[:])
		}
		if !r.done() || m != cfg.Batch {
			return 0, resilience.Corruptf("serve: loadgen: malformed batch response on frame %d", op)
		}
	}
	if err := <-writeErr; err != nil {
		return 0, fmt.Errorf("serve: loadgen write: %w", err)
	}
	return h.Sum64(), nil
}

// driveHTTPConn replays stream i over POST /v1/predict_batch.
func driveHTTPConn(cfg LoadgenConfig, i int) (uint64, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	st := newStream(cfg, i)
	h := fnv.New64a()
	var scratch [8]byte
	url := cfg.HTTPBase + "/v1/predict_batch"
	for op := 0; op < cfg.Ops; op++ {
		primary, mixes := st.next()
		body, err := json.Marshal(BatchRequest{Primary: primary, Mixes: mixes})
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("serve: loadgen http: %w", err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("serve: loadgen http: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, resilience.Permanent(fmt.Errorf("serve: loadgen http: status %d on frame %d: %s", resp.StatusCode, op, data))
		}
		var br BatchResponse
		if err := json.Unmarshal(data, &br); err != nil {
			return 0, fmt.Errorf("serve: loadgen http: %w", err)
		}
		if len(br.Predictions) != cfg.Batch {
			return 0, resilience.Corruptf("serve: loadgen http: %d predictions, want %d", len(br.Predictions), cfg.Batch)
		}
		for _, v := range br.Predictions {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			_, _ = h.Write(scratch[:])
		}
	}
	return h.Sum64(), nil
}

// foldChecksums combines per-connection checksums in connection order.
func foldChecksums(sums []uint64) string {
	h := fnv.New64a()
	var scratch [8]byte
	for _, s := range sums {
		binary.LittleEndian.PutUint64(scratch[:], s)
		_, _ = h.Write(scratch[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
