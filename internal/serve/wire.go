// Package serve is Contender's network serving layer: one prediction
// core (core.Sharded) exposed over two wire protocols that share a
// single explicitly versioned schema.
//
//   - HTTP/JSON, mounted beside /metrics: POST /v1/predict,
//     /v1/predict_batch, /v1/feedback. Convenient for dashboards,
//     schedulers written in other languages, and manual curl poking.
//   - A compact length-prefixed binary protocol for high-throughput
//     clients (the scheduler sitting in front of a database does not
//     want to pay JSON for a 60 ns prediction).
//
// Both protocols produce bit-identical prediction payloads for the
// same request stream: the wire layer never reorders or reassociates
// float math, it only frames the core's answers. The schema version is
// explicit — the URL prefix /v1 and the leading version byte of every
// binary frame — and error conditions map to stable wire codes so
// clients can branch without string matching, mirroring the in-process
// errors.Is taxonomy.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/http"

	"contender/internal/core"
	"contender/internal/resilience"
)

// Version is the wire-schema version both protocols speak. HTTP routes
// carry it as the /v1 path prefix; binary frames as their leading
// version byte. Within a version the schema only grows (new optional
// fields, new opcodes); breaking changes bump it and serve both
// versions side by side during migration.
const Version = 1

// Code is a stable wire error code. Codes are part of the v1 schema:
// their names (JSON) and byte values (binary) never change within a
// version, so clients can branch on them the way in-process callers
// branch with errors.Is.
type Code uint8

// v1 error codes. CodeOK is never carried in an error envelope; it is
// the binary status byte of a successful response.
const (
	CodeOK Code = iota
	// CodeBadRequest: the request could not be decoded (malformed JSON,
	// truncated or oversized frame, wrong version byte).
	CodeBadRequest
	// CodeUnknownTemplate maps core.ErrUnknownTemplate.
	CodeUnknownTemplate
	// CodeEmptyMix maps core.ErrEmptyMix.
	CodeEmptyMix
	// CodeUntrainedMPL maps core.ErrUntrainedMPL.
	CodeUntrainedMPL
	// CodeBadObservation maps core.ErrBadObservation (feedback only).
	CodeBadObservation
	// CodeBatchTooLarge: the batch exceeds the server's MaxBatch.
	CodeBatchTooLarge
	// CodeOverloaded: admission control rejected the request (token
	// bucket empty or in-flight cap reached). HTTP 429; retryable.
	CodeOverloaded
	// CodeInternal: anything the schema cannot name more precisely.
	CodeInternal
)

// String returns the stable JSON name of the code.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeBadRequest:
		return "bad_request"
	case CodeUnknownTemplate:
		return "unknown_template"
	case CodeEmptyMix:
		return "empty_mix"
	case CodeUntrainedMPL:
		return "untrained_mpl"
	case CodeBadObservation:
		return "bad_observation"
	case CodeBatchTooLarge:
		return "batch_too_large"
	case CodeOverloaded:
		return "overloaded"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// HTTPStatus returns the HTTP status the code travels under.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeOK:
		return http.StatusOK
	case CodeBadRequest, CodeEmptyMix, CodeBadObservation:
		return http.StatusBadRequest
	case CodeUnknownTemplate:
		return http.StatusNotFound
	case CodeUntrainedMPL:
		return http.StatusUnprocessableEntity
	case CodeBatchTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeOverloaded:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// Serving-layer sentinels, each classified into the resilience
// taxonomy. ErrOverloaded wraps the transient class: an overloaded
// server is a retry-later condition, exactly like a transient
// measurement failure, so clients holding a resilience.RetryPolicy can
// route it without new plumbing. Oversized batches and malformed
// requests are caller bugs — retrying the same payload can never
// succeed, so both wrap the permanent class. CodeFor keys on the
// sentinels themselves via errors.Is, which survives the extra wrap.
var (
	ErrOverloaded    = resilience.Transient(errors.New("serve: overloaded"))
	ErrBatchTooLarge = resilience.Permanent(errors.New("serve: batch too large"))
	ErrBadRequest    = resilience.Permanent(errors.New("serve: bad request"))
)

// CodeFor flattens any serving error into its stable wire code. The
// mapping is the schema's contract with clients: in-process sentinels
// (core.Err*) and serving-layer sentinels each own exactly one code.
func CodeFor(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, core.ErrUnknownTemplate):
		return CodeUnknownTemplate
	case errors.Is(err, core.ErrEmptyMix):
		return CodeEmptyMix
	case errors.Is(err, core.ErrUntrainedMPL):
		return CodeUntrainedMPL
	case errors.Is(err, core.ErrBadObservation):
		return CodeBadObservation
	case errors.Is(err, ErrBatchTooLarge):
		return CodeBatchTooLarge
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// HTTP/JSON request and response bodies of the v1 schema. Field names
// are frozen; new fields may be added but never removed or renamed
// within v1.

// PredictRequest is the body of POST /v1/predict. Explain is optional
// (added in-place within v1: absent means false, so old clients are
// unaffected): when set, the response carries the per-neighbor blame
// breakdown inline.
type PredictRequest struct {
	Primary    int   `json:"primary"`
	Concurrent []int `json:"concurrent"`
	Explain    bool  `json:"explain,omitempty"`
}

// PredictResponse is the success body of POST /v1/predict. Explain is
// present only when the request asked for it.
type PredictResponse struct {
	Prediction float64           `json:"prediction"`
	Explain    *ExplainBreakdown `json:"explain,omitempty"`
}

// ExplainBreakdown is the per-neighbor decomposition of a prediction's
// interaction cost: Seconds[i] is the predicted time Neighbors[i] adds
// to the primary's latency (exact per-term rescale of the CQI
// intensity decomposition — see core.PredictExplain). Baseline is the
// primary's predicted latency with zero contention; the prediction
// itself travels in PredictResponse.Prediction and always equals what
// a non-explain request would have answered, bit for bit.
type ExplainBreakdown struct {
	Baseline  float64   `json:"baseline"`
	CQI       float64   `json:"cqi"`
	Neighbors []int     `json:"neighbors"`
	Seconds   []float64 `json:"seconds"`
}

// BatchRequest is the body of POST /v1/predict_batch: one primary
// priced under every candidate mix.
type BatchRequest struct {
	Primary int     `json:"primary"`
	Mixes   [][]int `json:"mixes"`
}

// BatchResponse is the success body of POST /v1/predict_batch.
// Predictions align 1:1 with the request's mixes. A failed batch
// carries NO partial results — exactly like PredictBuffer.Results()
// after a failed PredictBatch — so a client can never mistake a
// truncated prefix for a complete answer.
type BatchResponse struct {
	Predictions []float64 `json:"predictions"`
}

// FeedbackRequest is the body of POST /v1/feedback: an observed
// latency paired with the mix it was observed under.
type FeedbackRequest struct {
	Primary    int     `json:"primary"`
	Concurrent []int   `json:"concurrent"`
	Observed   float64 `json:"observed"`
}

// FeedbackResponse is the success body of POST /v1/feedback.
type FeedbackResponse struct {
	Predicted   float64 `json:"predicted"`
	SignedError float64 `json:"signed_error"`
}

// WireError is the v1 error envelope, returned as {"error": {...}} on
// HTTP and as a message payload behind the status byte on the binary
// protocol.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope wraps WireError for JSON transport.
type ErrorEnvelope struct {
	Error WireError `json:"error"`
}

// Binary protocol v1. Every frame, both directions:
//
//	uint32  length of the remainder, little-endian
//	uint8   version (1)
//	uint8   opcode (request) / status code (response)
//	uint32  request id, echoed verbatim in the response
//	...     op-specific payload
//
// Request payloads:
//
//	OpPredict   u32 primary, u16 k, k × u32 concurrent
//	OpBatch     u32 primary, u16 m, m × (u16 k, k × u32 concurrent)
//	OpFeedback  u32 primary, u16 k, k × u32 concurrent, f64 observed
//
// The opcode byte's high bit is a flag field: OpPredict|FlagExplain
// requests the per-neighbor blame breakdown (added in-place within v1 —
// servers predating the flag reject it as an unknown opcode, exactly
// like any other unsupported request, and clients that never set it see
// byte-identical traffic). The flag is only defined for OpPredict.
//
// Response payloads (status CodeOK):
//
//	OpPredict   f64 prediction
//	  +explain  f64 baseline, f64 cqi, u16 k, k × (u32 neighbor, f64 seconds)
//	OpBatch     u16 m, m × f64 prediction
//	OpFeedback  f64 predicted, f64 signed error
//
// Error responses (any non-zero status byte) carry u16 length + UTF-8
// message. Integers are little-endian; floats are IEEE-754 bits in
// little-endian byte order — identical bit patterns to what the JSON
// protocol's float64 fields parse to, which is what makes the two
// protocols' prediction payloads byte-comparable.

// Binary opcodes.
const (
	OpPredict uint8 = iota + 1
	OpBatch
	OpFeedback
)

// FlagExplain, ORed into a request's opcode byte, asks for the
// per-neighbor blame breakdown in the response. v1 defines it for
// OpPredict only; on any other opcode the server answers
// CodeBadRequest.
const FlagExplain uint8 = 0x80

// Frame geometry limits. MaxFrame bounds a frame's payload so a
// corrupt or hostile length prefix cannot make the server allocate
// unboundedly; MaxMix bounds one mix's concurrent set (u16 on the
// wire, but no real MPL approaches it).
const (
	MaxFrame = 1 << 20
	MaxMix   = 1 << 10
)

// frameHeaderSize is version byte + op/status byte + request id.
const frameHeaderSize = 1 + 1 + 4

// appendFrameHeader appends the fixed frame prefix for a payload whose
// length is not yet known; the caller patches the length afterwards
// with patchFrameLen. Returns the offset of the length field.
func appendFrameHeader(b []byte, op uint8, reqID uint32) ([]byte, int) {
	lenOff := len(b)
	b = append(b, 0, 0, 0, 0) // length, patched later
	b = append(b, Version, op)
	b = binary.LittleEndian.AppendUint32(b, reqID)
	return b, lenOff
}

// patchFrameLen writes the frame length (everything after the length
// field) into the header appended at lenOff.
func patchFrameLen(b []byte, lenOff int) {
	binary.LittleEndian.PutUint32(b[lenOff:], uint32(len(b)-lenOff-4))
}

// u16r / u32r / f64r are cursor-style readers over a frame payload.
type frameReader struct {
	b   []byte
	off int
	err bool
}

func (r *frameReader) u16() uint16 {
	if r.err || r.off+2 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *frameReader) u32() uint32 {
	if r.err || r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *frameReader) f64() float64 {
	if r.err || r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// appendF64 appends a float64's IEEE-754 bits little-endian.
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// done reports whether the payload was consumed exactly, with no
// decode error and no trailing bytes.
func (r *frameReader) done() bool { return !r.err && r.off == len(r.b) }
