package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: every connection (binary) or protocol front (HTTP,
// whose connections are multiplexed by net/http) gets a token bucket
// plus an in-flight cap. The bucket bounds sustained request rate, the
// cap bounds queued work; a request that fails either check is rejected
// immediately with CodeOverloaded (HTTP 429 / an overload frame) so the
// client sheds load instead of queuing into a latency collapse.
// Overload is classified transient in the resilience taxonomy
// (ErrOverloaded wraps resilience.ErrTransient): back off and retry.

// AdmissionConfig bounds one connection. The zero value disables both
// checks (admit everything) — admission is opt-in per server.
type AdmissionConfig struct {
	// Rate is the sustained admission rate in requests/second. Zero or
	// negative disables the token bucket.
	Rate float64
	// Burst is the bucket capacity (instantaneous burst size). Defaults
	// to Rate (one second of burst) when zero and the bucket is enabled.
	Burst int
	// MaxInflight caps requests admitted but not yet answered. Zero or
	// negative disables the cap.
	MaxInflight int
}

// enabled reports whether any check is configured.
func (c AdmissionConfig) enabled() bool { return c.Rate > 0 || c.MaxInflight > 0 }

// admitter enforces AdmissionConfig for one connection. Methods are
// safe for concurrent use (the HTTP front shares one admitter across
// handler goroutines).
type admitter struct {
	cfg AdmissionConfig
	now func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time

	inflight atomic.Int64
}

// newAdmitter builds an admitter; now is injectable for deterministic
// tests and defaults to time.Now.
func newAdmitter(cfg AdmissionConfig, now func() time.Time) *admitter {
	if now == nil {
		now = time.Now
	}
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.Rate)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	a := &admitter{cfg: cfg, now: now}
	a.tokens = float64(cfg.Burst)
	a.last = now()
	return a
}

// admit consumes one token and one in-flight slot, reporting whether
// the request may proceed. An admitted request MUST be released.
func (a *admitter) admit() bool {
	if a == nil {
		return true
	}
	if a.cfg.MaxInflight > 0 {
		if a.inflight.Add(1) > int64(a.cfg.MaxInflight) {
			a.inflight.Add(-1)
			return false
		}
	}
	if a.cfg.Rate > 0 && !a.takeToken() {
		if a.cfg.MaxInflight > 0 {
			a.inflight.Add(-1)
		}
		return false
	}
	return true
}

// release returns the in-flight slot of an admitted request.
func (a *admitter) release() {
	if a != nil && a.cfg.MaxInflight > 0 {
		a.inflight.Add(-1)
	}
}

func (a *admitter) takeToken() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	if dt := now.Sub(a.last).Seconds(); dt > 0 {
		a.tokens += dt * a.cfg.Rate
		if ceil := float64(a.cfg.Burst); a.tokens > ceil {
			a.tokens = ceil
		}
		a.last = now
	}
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}
