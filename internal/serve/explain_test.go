package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"contender/internal/core"
	"contender/internal/obs"
)

// TestHTTPPredictExplain covers the opt-in explain flag on the JSON
// front: the prediction stays bit-identical to a non-explain request,
// the per-neighbor breakdown matches core.PredictExplain, and every
// explained prediction feeds the blame matrix.
func TestHTTPPredictExplain(t *testing.T) {
	blame := obs.NewBlame(obs.BlameConfig{})
	s, p, _ := testServer(t, Config{Blame: blame})
	h := s.Handler()

	mix := []int{2, 3}
	w, data := postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: mix, Explain: true})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, data)
	}
	var resp PredictResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	var buf core.ExplainBuffer
	want, err := p.PredictExplain(&buf, 1, mix)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prediction != want {
		t.Errorf("explained prediction %g, want %g", resp.Prediction, want)
	}
	if resp.Explain == nil {
		t.Fatal("explain requested but response carries no breakdown")
	}
	if resp.Explain.Baseline != buf.Baseline || resp.Explain.CQI != buf.CQI {
		t.Errorf("breakdown baseline/cqi = %g/%g, want %g/%g",
			resp.Explain.Baseline, resp.Explain.CQI, buf.Baseline, buf.CQI)
	}
	if len(resp.Explain.Neighbors) != len(mix) || len(resp.Explain.Seconds) != len(mix) {
		t.Fatalf("breakdown lengths = %d/%d, want %d", len(resp.Explain.Neighbors), len(resp.Explain.Seconds), len(mix))
	}
	for i := range mix {
		if resp.Explain.Neighbors[i] != buf.Neighbors[i] || resp.Explain.Seconds[i] != buf.Seconds[i] {
			t.Errorf("breakdown[%d] = (%d, %g), want (%d, %g)",
				i, resp.Explain.Neighbors[i], resp.Explain.Seconds[i], buf.Neighbors[i], buf.Seconds[i])
		}
	}

	// The explained prediction is bit-identical to the plain one.
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: mix})
	if w.Code != http.StatusOK {
		t.Fatalf("plain predict status %d: %s", w.Code, data)
	}
	var plain PredictResponse
	if err := json.Unmarshal(data, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Prediction != resp.Prediction {
		t.Errorf("plain prediction %g differs from explained %g", plain.Prediction, resp.Prediction)
	}
	if plain.Explain != nil {
		t.Error("non-explain response carries a breakdown")
	}
	if bytes.Contains(data, []byte("explain")) {
		t.Errorf("non-explain response body mentions explain: %s", data)
	}

	// Exactly the explained prediction fed the blame matrix.
	if n := blame.Samples(); n != 1 {
		t.Errorf("blame samples = %d, want 1", n)
	}
	rep := blame.Report()
	if len(rep.Pairs) != 2 {
		t.Fatalf("blame pairs = %+v, want (1,2) and (1,3)", rep.Pairs)
	}
	for i, nb := range mix {
		pair := rep.Pairs[i]
		if pair.Primary != 1 || pair.Neighbor != nb || pair.Seconds != buf.Seconds[i] {
			t.Errorf("blame pair[%d] = %+v, want primary 1 neighbor %d seconds %g", i, pair, nb, buf.Seconds[i])
		}
	}

	// Errors on the explain path keep their stable codes.
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{999}, Explain: true})
	wantCode(t, w, data, http.StatusNotFound, "unknown_template")
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Explain: true})
	wantCode(t, w, data, http.StatusBadRequest, "empty_mix")
}

// TestBinaryPredictExplain covers the FlagExplain bit on the binary
// front: extended success payload on OpPredict, bad-request on any
// other opcode, and plain predicts untouched on the same connection.
func TestBinaryPredictExplain(t *testing.T) {
	blame := obs.NewBlame(obs.BlameConfig{})
	_, p, addr := testServer(t, Config{Blame: blame})
	c := dialBinary(t, addr)

	mix := []int{2, 3}
	var buf core.ExplainBuffer
	want, err := p.PredictExplain(&buf, 1, mix)
	if err != nil {
		t.Fatal(err)
	}

	c.send(OpPredict|FlagExplain, 21, func(b []byte) []byte { return appendMix(b, 1, mix) })
	code, reqID, payload := c.recv()
	if code != CodeOK || reqID != 21 {
		t.Fatalf("explain predict: code %s reqID %d", code, reqID)
	}
	r := frameReader{b: payload}
	if got := r.f64(); got != want {
		t.Errorf("explained prediction %g, want %g", got, want)
	}
	if got := r.f64(); got != buf.Baseline {
		t.Errorf("baseline %g, want %g", got, buf.Baseline)
	}
	if got := r.f64(); got != buf.CQI {
		t.Errorf("cqi %g, want %g", got, buf.CQI)
	}
	if k := int(r.u16()); k != len(mix) {
		t.Fatalf("breakdown k = %d, want %d", k, len(mix))
	}
	for i := range mix {
		if nb := int(r.u32()); nb != buf.Neighbors[i] {
			t.Errorf("neighbor[%d] = %d, want %d", i, nb, buf.Neighbors[i])
		}
		if sec := r.f64(); sec != buf.Seconds[i] {
			t.Errorf("seconds[%d] = %g, want %g", i, sec, buf.Seconds[i])
		}
	}
	if !r.done() {
		t.Error("trailing bytes in explain response")
	}
	if n := blame.Samples(); n != 1 {
		t.Errorf("blame samples = %d, want 1", n)
	}

	// A plain predict on the same connection answers the classic
	// payload, bit-identical to the explained prediction.
	c.send(OpPredict, 22, func(b []byte) []byte { return appendMix(b, 1, mix) })
	code, reqID, payload = c.recv()
	if code != CodeOK || reqID != 22 {
		t.Fatalf("plain predict: code %s reqID %d", code, reqID)
	}
	r = frameReader{b: payload}
	if got := r.f64(); got != want || !r.done() {
		t.Errorf("plain predict %g (done %v), want %g", got, r.done(), want)
	}

	// The flag is only defined for OpPredict.
	c.send(OpBatch|FlagExplain, 23, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, 1)
		b = binary.LittleEndian.AppendUint16(b, 1)
		b = binary.LittleEndian.AppendUint16(b, 1)
		return binary.LittleEndian.AppendUint32(b, 2)
	})
	code, reqID, _ = c.recv()
	if code != CodeBadRequest || reqID != 23 {
		t.Fatalf("explain flag on batch: code %s reqID %d", code, reqID)
	}

	// Connection survives the rejected flag.
	c.send(OpPredict, 24, func(b []byte) []byte { return appendMix(b, 1, mix) })
	if code, _, _ = c.recv(); code != CodeOK {
		t.Fatalf("post-error predict: code %s", code)
	}
}

// TestServeSlowLog pins the SlowLog wiring: requests slower than the
// threshold produce a serve.request line; a generous threshold keeps
// the log silent.
func TestServeSlowLog(t *testing.T) {
	var logged bytes.Buffer
	s, _, _ := testServer(t, Config{SlowLog: obs.NewSlowLog(&logged, 0)}) // threshold 0: log everything
	h := s.Handler()

	w, data := postJSON(t, h, "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, data)
	}
	out := logged.String()
	if !strings.Contains(out, "SLOW serve.request") || !strings.Contains(out, "key=predict") {
		t.Errorf("slow log missing serve.request line:\n%s", out)
	}
	// Errors travel on the same line, labeled.
	logged.Reset()
	w, data = postJSON(t, h, "/v1/predict", PredictRequest{Primary: 999, Concurrent: []int{2}})
	wantCode(t, w, data, http.StatusNotFound, "unknown_template")
	if out := logged.String(); !strings.Contains(out, "err=") {
		t.Errorf("slow log line for a failed request carries no err label:\n%s", out)
	}

	var quiet bytes.Buffer
	s2, _, addr := testServer(t, Config{SlowLog: obs.NewSlowLog(&quiet, time.Hour)})
	w, data = postJSON(t, s2.Handler(), "/v1/predict", PredictRequest{Primary: 1, Concurrent: []int{2}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, data)
	}
	// The binary front reports through the same log.
	c := dialBinary(t, addr)
	c.send(OpPredict, 1, func(b []byte) []byte { return appendMix(b, 1, []int{2}) })
	if code, _, _ := c.recv(); code != CodeOK {
		t.Fatal("binary predict failed")
	}
	if quiet.Len() != 0 {
		t.Errorf("sub-threshold requests were logged:\n%s", quiet.String())
	}
}
