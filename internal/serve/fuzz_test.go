package serve

import "testing"

// FuzzDecodeFrame drives the binary frame decoders with arbitrary
// bytes. data[0] selects the opcode shape; the rest is the frame
// payload after the 10-byte header — exactly what handleFrame hands
// the decoders once the length prefix and version checks pass. The
// properties under test are the decoder's safety contract:
//
//   - no input panics;
//   - the cursor never leaves the payload (no out-of-bounds reads);
//   - every accepted decode respects the wire limits (MaxMix, batch
//     shape consistency between st.mixes and the backing arena).
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeFrame seeds one
// well-formed frame per opcode plus truncated and limit-probing
// shapes; CI runs a short -fuzztime smoke on top of the corpus.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed predict: primary=1, k=2, mix {2, 3}.
	f.Add([]byte("\x01\x01\x00\x00\x00\x02\x00\x02\x00\x00\x00\x03\x00\x00\x00"))
	// Well-formed batch: primary=1, m=2, mixes {5} and {}.
	f.Add([]byte("\x02\x01\x00\x00\x00\x02\x00\x01\x00\x05\x00\x00\x00\x00\x00"))
	// Well-formed feedback: primary=1, k=1, mix {2}, observed=1.5.
	f.Add([]byte("\x03\x01\x00\x00\x00\x01\x00\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\xf8\x3f"))
	// Truncated predict: cut mid-primary.
	f.Add([]byte("\x01\x01"))
	// Oversized mix count: k=0xffff > MaxMix must be rejected.
	f.Add([]byte("\x01\x01\x00\x00\x00\xff\xff"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		op, payload := data[0], data[1:]
		st := &connState{}
		switch op {
		case OpPredict:
			r := frameReader{b: payload}
			_, mix := st.decodeMix(&r)
			if r.off > len(r.b) {
				t.Fatalf("predict cursor left the payload: off %d > len %d", r.off, len(r.b))
			}
			if r.done() && len(mix) > MaxMix {
				t.Fatalf("accepted predict mix of %d concurrent templates > MaxMix %d", len(mix), MaxMix)
			}
		case OpBatch:
			r := frameReader{b: payload}
			_ = r.u32() // primary
			m := int(r.u16())
			if m > 4096 {
				return // handleFrame rejects m > cfg.MaxBatch before decoding
			}
			ok := st.decodeMixes(&r, m)
			if r.off > len(r.b) {
				t.Fatalf("batch cursor left the payload: off %d > len %d", r.off, len(r.b))
			}
			if !ok || !r.done() {
				return
			}
			if len(st.mixes) != m {
				t.Fatalf("accepted batch decoded %d mixes, header said %d", len(st.mixes), m)
			}
			total := 0
			for _, mix := range st.mixes {
				if len(mix) > MaxMix {
					t.Fatalf("accepted batch mix of %d concurrent templates > MaxMix %d", len(mix), MaxMix)
				}
				total += len(mix)
			}
			if total != len(st.mixArea) {
				t.Fatalf("mix views cover %d ints but arena holds %d", total, len(st.mixArea))
			}
		case OpFeedback:
			r := frameReader{b: payload}
			st.decodeMix(&r)
			_ = r.f64()
			if r.off > len(r.b) {
				t.Fatalf("feedback cursor left the payload: off %d > len %d", r.off, len(r.b))
			}
		}
	})
}
