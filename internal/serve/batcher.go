package serve

import (
	"sort"
	"sync"
	"time"

	"contender/internal/core"
)

// Deadline-bounded request coalescing. Single-prediction requests
// arriving from many connections within one batch window are merged
// into PredictBatch calls — the vectorized kernel amortizes CQI
// recomputation across mixes, so coalescing N concurrent singles costs
// far less than N PredictKnown round trips through a shard. Because the
// batch kernel is bit-identical to per-mix PredictKnown, coalescing is
// invisible in the results: only latency and throughput change.
//
// The batcher owns a private PredictBuffer (batch scratch) and prices
// against the Sharded set's current snapshot directly — it deliberately
// does NOT hold a Shard, because shards are single-goroutine handles
// and every Shard in the set belongs to the server's free list; an
// aliased shard would race its scratch between the batcher goroutine
// and whichever front borrowed it. The batcher drains its queue in
// arrival order. A batch closes when (a) maxCoalesce requests are
// pending, (b) the window deadline since the batch's first request
// expires, or (c) the queue goes momentarily idle — an idle queue means
// waiting longer buys nothing. Window zero keeps (a) and (c): pure
// burst coalescing with no timer.

// pending is one coalesced prediction request.
type pending struct {
	primary int
	mix     []int
	result  float64
	err     error
	done    chan *pending
}

var pendingPool = sync.Pool{New: func() any { return &pending{done: make(chan *pending, 1)} }}

// batcher coalesces predict requests onto one private PredictBuffer.
type batcher struct {
	sh          *core.Sharded
	buf         core.PredictBuffer
	window      time.Duration
	maxCoalesce int

	queue chan *pending
	stop  chan struct{}
	wg    sync.WaitGroup

	// closeMu gates enqueues against close: predict enqueues under the
	// read lock, close flips closed under the write lock. Because the
	// write lock waits out every in-flight read section, once close
	// holds it no further request can ever reach the queue — which is
	// what lets close's final flushQueue guarantee nobody is left
	// waiting on a done channel.
	closeMu sync.RWMutex
	closed  bool

	// onBatch, when set, observes each executed batch's size (metrics).
	onBatch func(n int)
}

func newBatcher(sh *core.Sharded, window time.Duration, maxCoalesce int) *batcher {
	if maxCoalesce <= 0 {
		maxCoalesce = 256
	}
	b := &batcher{
		sh:          sh,
		window:      window,
		maxCoalesce: maxCoalesce,
		queue:       make(chan *pending, 4*maxCoalesce),
		stop:        make(chan struct{}),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// predict routes one prediction through the coalescer and blocks until
// its batch executes. mix must not be mutated until predict returns.
func (b *batcher) predict(primary int, mix []int) (float64, error) {
	p := pendingPool.Get().(*pending)
	p.primary, p.mix = primary, mix
	b.closeMu.RLock()
	if b.closed {
		b.closeMu.RUnlock()
		pendingPool.Put(p)
		return 0, ErrOverloaded
	}
	// Inside the read section with closed unset, stop cannot close and
	// the run loop is still draining, so a plain send always completes
	// (close waits for this section before it may proceed).
	b.queue <- p
	b.closeMu.RUnlock()
	<-p.done
	res, err := p.result, p.err
	p.mix = nil
	pendingPool.Put(p)
	return res, err
}

// close stops the batcher after flushing queued requests. The closed
// flag (write lock) fences out new enqueues, the run loop exits on
// stop, and the final flushQueue answers anything that raced in between
// the run loop's own flush and its exit — no waiter is ever stranded.
func (b *batcher) close() {
	b.closeMu.Lock()
	if b.closed {
		b.closeMu.Unlock()
		return
	}
	b.closed = true
	b.closeMu.Unlock()
	close(b.stop)
	b.wg.Wait()
	b.flushQueue()
}

func (b *batcher) run() {
	defer b.wg.Done()
	batch := make([]*pending, 0, b.maxCoalesce)
	var timer *time.Timer
	var timeout <-chan time.Time
	for {
		batch = batch[:0]
		// Block for the batch's first request.
		select {
		case p := <-b.queue:
			batch = append(batch, p)
		case <-b.stop:
			b.flushQueue()
			return
		}
		if b.window > 0 {
			if timer == nil {
				timer = time.NewTimer(b.window)
			} else {
				timer.Reset(b.window)
			}
			timeout = timer.C
		}
	fill:
		for len(batch) < b.maxCoalesce {
			select {
			case p := <-b.queue:
				batch = append(batch, p)
			case <-timeout:
				timeout = nil
				break fill
			default:
				if b.window == 0 || timeout == nil {
					break fill
				}
				// Window open and queue idle: wait for more work or the
				// deadline, whichever first.
				select {
				case p := <-b.queue:
					batch = append(batch, p)
				case <-timeout:
					timeout = nil
					break fill
				case <-b.stop:
					break fill
				}
			}
		}
		if timer != nil && timeout != nil && !timer.Stop() {
			<-timer.C
		}
		timeout = nil
		b.execute(batch)
	}
}

// guardedBatch / guardedPredict price against the current snapshot
// using the batcher's own scratch, under guardErr: a kernel panic must
// not kill the run loop — every later caller would block forever on a
// dead coalescer.
func (b *batcher) guardedBatch(primary int, mixes [][]int) (res []float64, err error) {
	defer guardErr(&err)
	return b.sh.Snapshot().PredictBatch(&b.buf, primary, mixes)
}

func (b *batcher) guardedPredict(primary int, mix []int) (v float64, err error) {
	defer guardErr(&err)
	return b.sh.Snapshot().PredictKnown(primary, mix)
}

// flushQueue answers everything still queued at shutdown.
func (b *batcher) flushQueue() {
	for {
		select {
		case p := <-b.queue:
			p.result, p.err = 0, ErrOverloaded
			p.done <- p
		default:
			return
		}
	}
}

// execute groups the batch by primary (PredictBatch prices one primary
// against many mixes) and answers every request. The grouping sort is
// stable on arrival order, so two requests for the same primary keep
// their relative order — and results are bit-identical to per-request
// PredictKnown regardless of grouping.
func (b *batcher) execute(batch []*pending) {
	if len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].primary < batch[j].primary })
	if b.onBatch != nil {
		b.onBatch(len(batch))
	}
	mixes := make([][]int, 0, len(batch))
	for start := 0; start < len(batch); {
		end := start + 1
		for end < len(batch) && batch[end].primary == batch[start].primary {
			end++
		}
		mixes = mixes[:0]
		for _, p := range batch[start:end] {
			mixes = append(mixes, p.mix)
		}
		res, err := b.guardedBatch(batch[start].primary, mixes)
		if err != nil {
			// A grouped failure must not smear one request's bad mix
			// across its groupmates: fall back to per-request pricing so
			// each caller gets exactly the error (or result) its own mix
			// deserves.
			for _, p := range batch[start:end] {
				p.result, p.err = b.guardedPredict(p.primary, p.mix)
				p.done <- p
			}
		} else {
			for i, p := range batch[start:end] {
				p.result, p.err = res[i], nil
				p.done <- p
			}
		}
		start = end
	}
}
