package sim

import (
	"testing"
)

func TestOpenSystemSerialArrivals(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// Arrivals far apart: each query runs alone at isolated speed.
	arrivals := []Arrival{
		{Time: 0, Spec: ioSpec(1, "a", cfg.SeqBandwidth*5)},
		{Time: 100, Spec: ioSpec(2, "b", cfg.SeqBandwidth*5)},
	}
	out, err := e.RunOpenSystem(arrivals, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if !almostEq(o.Latency, 5, 0.01) {
			t.Fatalf("query %d latency %g, want 5", i, o.Latency)
		}
		if o.QueueTime != 0 {
			t.Fatalf("query %d queued %g, want 0", i, o.QueueTime)
		}
	}
	if out[1].Start < 100 {
		t.Fatal("second query must not start before it arrives")
	}
}

func TestOpenSystemContention(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// Simultaneous arrivals on disjoint tables share the disk.
	arrivals := []Arrival{
		{Time: 0, Spec: ioSpec(1, "a", cfg.SeqBandwidth*10)},
		{Time: 0, Spec: ioSpec(2, "b", cfg.SeqBandwidth*10)},
	}
	out, err := e.RunOpenSystem(arrivals, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if !almostEq(o.Latency, 20, 0.5) {
			t.Fatalf("query %d latency %g, want ~20", i, o.Latency)
		}
	}
}

func TestOpenSystemMaxActive(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// Three simultaneous arrivals, max 1 active: strict serial execution
	// with queueing delay.
	spec := ioSpec(1, "a", cfg.SeqBandwidth*10)
	arrivals := []Arrival{{0, spec}, {0, spec}, {0, spec}}
	out, err := e.RunOpenSystem(arrivals, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out[0].QueueTime, 0, 0.01) ||
		!almostEq(out[1].QueueTime, 10, 0.2) ||
		!almostEq(out[2].QueueTime, 20, 0.4) {
		t.Fatalf("queue times %g %g %g, want 0/10/20",
			out[0].QueueTime, out[1].QueueTime, out[2].QueueTime)
	}
	if !almostEq(out[2].ResponseTime(), 30, 0.5) {
		t.Fatalf("response time %g, want ~30", out[2].ResponseTime())
	}
}

func TestOpenSystemAdmissionGate(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	spec := ioSpec(1, "a", cfg.SeqBandwidth*10)
	arrivals := []Arrival{{0, spec}, {0, spec}, {0, spec}}
	// Gate rejects any concurrency: behaves like maxActive 1 even though
	// the cap is higher.
	gate := func(now float64, cand QuerySpec, active []int) bool { return len(active) == 0 }
	out, err := e.RunOpenSystem(arrivals, 8, gate)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out[1].QueueTime, 10, 0.2) {
		t.Fatalf("gated query queued %g, want ~10", out[1].QueueTime)
	}
	// The gate is never consulted with an empty active set, so a gate
	// that always refuses still cannot deadlock.
	e2 := NewEngine(cfg)
	never := func(float64, QuerySpec, []int) bool { return false }
	out2, err := e2.RunOpenSystem(arrivals, 8, never)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out2 {
		if o.Latency <= 0 {
			t.Fatal("all queries must eventually complete")
		}
	}
}

func TestOpenSystemErrors(t *testing.T) {
	e := NewEngine(quietConfig())
	if _, err := e.RunOpenSystem(nil, 0, nil); err == nil {
		t.Fatal("no arrivals must error")
	}
	if _, err := e.RunOpenSystem([]Arrival{{Time: -1, Spec: ioSpec(1, "a", 1)}}, 0, nil); err == nil {
		t.Fatal("negative arrival time must error")
	}
	if _, err := e.RunOpenSystem([]Arrival{{Time: 0, Spec: QuerySpec{}}}, 0, nil); err == nil {
		t.Fatal("invalid spec must error")
	}
}

func TestOpenSystemUnsortedArrivals(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	arrivals := []Arrival{
		{Time: 50, Spec: ioSpec(2, "b", cfg.SeqBandwidth)},
		{Time: 0, Spec: ioSpec(1, "a", cfg.SeqBandwidth)},
	}
	out, err := e.RunOpenSystem(arrivals, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Results come back in sorted arrival order.
	if out[0].ArrivalTime != 0 || out[1].ArrivalTime != 50 {
		t.Fatalf("arrival order wrong: %g, %g", out[0].ArrivalTime, out[1].ArrivalTime)
	}
}
