package sim

import "fmt"

// RunBatch executes a queue of jobs at a fixed multiprogramming level: the
// first mpl jobs start immediately and every completion admits the next
// queued job, until the queue drains. It returns the per-job results in
// queue order and the batch makespan.
//
// This is the substrate for the batch-scheduling application of Section 1
// ("better scheduling decisions for large query batches, reducing the
// completion time of individual queries and that of the entire batch").
func (e *Engine) RunBatch(queue []QuerySpec, mpl int) ([]Result, float64, error) {
	if len(queue) == 0 {
		return nil, 0, fmt.Errorf("sim: empty batch")
	}
	if mpl < 1 {
		mpl = 1
	}
	for _, q := range queue {
		if err := q.Validate(); err != nil {
			return nil, 0, err
		}
	}

	e.reset()
	results := make([]Result, len(queue))
	seen := make([]bool, len(queue))
	next := 0
	for next < len(queue) && next < mpl {
		e.addRun(queue[next], next)
		next++
	}

	remaining := len(queue)
	const maxEvents = 10_000_000
	for ev := 0; ev < maxEvents; ev++ {
		completed, ok := e.step()
		if !ok {
			return nil, 0, ErrStalled
		}
		for _, r := range completed {
			if r.stream < 0 || r.stream >= len(queue) || seen[r.stream] {
				return nil, 0, fmt.Errorf("sim: batch bookkeeping corrupted for stream %d", r.stream)
			}
			seen[r.stream] = true
			results[r.stream] = r.result
			remaining--
			if next < len(queue) {
				e.addRun(queue[next], next)
				next++
			}
		}
		if remaining == 0 {
			return results, e.clock, nil
		}
	}
	return nil, 0, fmt.Errorf("sim: batch did not complete within %d events", maxEvents)
}
