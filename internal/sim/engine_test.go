package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// quietConfig returns a deterministic, noise-free host for exact-value
// assertions.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.SeqNoise, cfg.RandNoise, cfg.CPUNoise, cfg.InstanceNoise = 0, 0, 0, 0
	return cfg
}

func ioSpec(id int, table string, bytes float64) QuerySpec {
	return QuerySpec{
		TemplateID: id,
		Stages:     []Stage{{Kind: StageSeqIO, Table: table, Amount: bytes}},
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.RAMBytes = 0 },
		func(c *Config) { c.BaselineRAMBytes = -1 },
		func(c *Config) { c.BaselineRAMBytes = c.RAMBytes },
		func(c *Config) { c.SeqBandwidth = 0 },
		func(c *Config) { c.RandIOPS = 0 },
		func(c *Config) { c.PageBytes = 0 },
		func(c *Config) { c.CachedBandwidth = 0 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.SwapCPUWeight = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := QuerySpec{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []QuerySpec{
		{TemplateID: 1},
		{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: -1}}},
		{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: math.NaN()}}},
		{TemplateID: 1, Stages: []Stage{{Kind: StageSeqIO, Amount: 1}}}, // no table
		{TemplateID: 1, Stages: []Stage{{Kind: StageKind(9), Amount: 1}}},
		{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: 1}}, WorkingSetBytes: -1},
		{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: 1}}, WorkingSetReuse: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestIsolatedLatencyIsSumOfStages(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	spec := QuerySpec{
		TemplateID: 1,
		Stages: []Stage{
			{Kind: StageSeqIO, Table: "t", Amount: cfg.SeqBandwidth * 10}, // 10 s
			{Kind: StageCPU, Amount: 5},                                   // 5 s
			{Kind: StageRandIO, Table: "t", Amount: cfg.RandIOPS * 4},     // 4 s
			{Kind: StageCachedIO, Amount: cfg.CachedBandwidth * 2},        // 2 s
		},
	}
	res, err := e.RunIsolated(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Latency, 21, 1e-6) {
		t.Fatalf("latency = %g, want 21", res.Latency)
	}
	// procfs-style accounting: disk I/O time = 10 (seq) + 4 (rand);
	// buffer-pool (cached) reads do not count as I/O wait.
	if !almostEq(res.IOTime, 14, 1e-6) {
		t.Fatalf("IOTime = %g, want 14", res.IOTime)
	}
	if !almostEq(res.CPUTime, 5, 1e-6) {
		t.Fatalf("CPUTime = %g, want 5", res.CPUTime)
	}
	if !almostEq(res.IOFraction(), 14.0/21, 1e-9) {
		t.Fatalf("IOFraction = %g", res.IOFraction())
	}
}

func TestDisjointIOQueriesShareBandwidth(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// Two queries scanning different tables, each 10 s alone, must take
	// ~20 s together (fair sharing, no reuse).
	a := ioSpec(1, "ta", cfg.SeqBandwidth*10)
	b := ioSpec(2, "tb", cfg.SeqBandwidth*10)
	res, err := e.RunSteadyState([]QuerySpec{a, b}, SteadyStateOptions{Samples: 3, WarmupSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if m := res.MeanLatency(i); !almostEq(m, 20, 0.5) {
			t.Fatalf("stream %d latency %g, want ~20", i, m)
		}
	}
}

func TestSharedScansArePositiveInteractions(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// Two queries scanning the SAME table form a shared-scan group and run
	// at nearly isolated speed.
	a := ioSpec(1, "t", cfg.SeqBandwidth*10)
	res, err := e.RunSteadyState([]QuerySpec{a, a}, SteadyStateOptions{Samples: 3, WarmupSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if m := res.MeanLatency(i); !almostEq(m, 10, 0.5) {
			t.Fatalf("shared-scan stream %d latency %g, want ~10", i, m)
		}
	}

	// Ablation: with shared scans disabled the same mix degrades to fair
	// sharing (~20 s each).
	cfg2 := quietConfig()
	cfg2.SharedScans = false
	e2 := NewEngine(cfg2)
	res2, err := e2.RunSteadyState([]QuerySpec{a, a}, SteadyStateOptions{Samples: 3, WarmupSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if m := res2.MeanLatency(i); !almostEq(m, 20, 0.5) {
			t.Fatalf("no-sharing stream %d latency %g, want ~20", i, m)
		}
	}
}

func TestCPUNotContendedBelowCoreCount(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	spec := QuerySpec{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: 10}}}
	mix := []QuerySpec{spec, spec, spec, spec} // 4 CPU queries, 8 cores
	res, err := e.RunSteadyState(mix, SteadyStateOptions{Samples: 2, WarmupSkip: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mix {
		if m := res.MeanLatency(i); !almostEq(m, 10, 1e-6) {
			t.Fatalf("CPU query %d latency %g, want 10 (no contention)", i, m)
		}
	}
}

func TestCPUSharedAboveCoreCount(t *testing.T) {
	cfg := quietConfig()
	cfg.Cores = 2
	e := NewEngine(cfg)
	spec := QuerySpec{TemplateID: 1, Stages: []Stage{{Kind: StageCPU, Amount: 10}}}
	mix := []QuerySpec{spec, spec, spec, spec} // 4 CPU queries, 2 cores
	res, err := e.RunSteadyState(mix, SteadyStateOptions{Samples: 2, WarmupSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MeanLatency(0); !almostEq(m, 20, 0.5) {
		t.Fatalf("latency %g, want ~20 (2x sharing)", m)
	}
}

func TestMemoryOvercommitInflatesIO(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// A query whose working set fits alone but spills under the spoiler.
	spec := QuerySpec{
		TemplateID:      1,
		Stages:          []Stage{{Kind: StageSeqIO, Table: "t", Amount: cfg.SeqBandwidth * 10}},
		WorkingSetBytes: 4 << 30,
		WorkingSetReuse: 10,
	}
	iso, err := e.RunIsolated(spec)
	if err != nil {
		t.Fatal(err)
	}
	if iso.SwapBytes != 0 {
		t.Fatalf("no swap expected in isolation, got %g bytes", iso.SwapBytes)
	}
	// Same query with zero working set, under the same spoiler, shows the
	// memory-pressure delta.
	light := spec
	light.WorkingSetBytes = 0
	heavy, err := e.RunWithSpoiler(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	lightRes, err := e.RunWithSpoiler(light, 4)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Latency <= lightRes.Latency*1.2 {
		t.Fatalf("memory pressure must slow the spiller: heavy %g vs light %g", heavy.Latency, lightRes.Latency)
	}
	if heavy.SwapBytes == 0 {
		t.Fatal("spilling query must record swap traffic")
	}
}

func TestSpoilerMonotonicInMPL(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	spec := QuerySpec{
		TemplateID: 1,
		Stages: []Stage{
			{Kind: StageSeqIO, Table: "t", Amount: cfg.SeqBandwidth * 10},
			{Kind: StageCPU, Amount: 2},
		},
	}
	prev := 0.0
	for mpl := 1; mpl <= 5; mpl++ {
		res, err := e.RunWithSpoiler(spec, mpl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency <= prev {
			t.Fatalf("spoiler latency not increasing at MPL %d: %g <= %g", mpl, res.Latency, prev)
		}
		prev = res.Latency
	}
	// At MPL n the I/O share is 1/n: latency ≈ n·10 + 2.
	res, _ := e.RunWithSpoiler(spec, 5)
	if !almostEq(res.Latency, 52, 1) {
		t.Fatalf("MPL-5 spoiler latency %g, want ~52", res.Latency)
	}
}

func TestSpoilerMPL1IsIsolated(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	spec := ioSpec(1, "t", cfg.SeqBandwidth*10)
	iso, _ := e.RunIsolated(spec)
	sp, _ := e.RunWithSpoiler(spec, 1)
	if !almostEq(iso.Latency, sp.Latency, 1e-9) {
		t.Fatalf("MPL-1 spoiler %g != isolated %g", sp.Latency, iso.Latency)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	spec := ioSpec(1, "t", 1<<30)
	cfg := DefaultConfig() // with noise
	a, _ := NewEngine(cfg).RunIsolated(spec)
	b, _ := NewEngine(cfg).RunIsolated(spec)
	if a.Latency != b.Latency {
		t.Fatal("same seed must reproduce identical results")
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c, _ := NewEngine(cfg2).RunIsolated(spec)
	if a.Latency == c.Latency {
		t.Fatal("different seeds should produce different jitter")
	}
}

func TestNoiseMagnitude(t *testing.T) {
	// Isolated latency std should be in the single-digit percent range
	// (the paper observed ~6%).
	cfg := DefaultConfig()
	e := NewEngine(cfg)
	spec := QuerySpec{TemplateID: 1, Stages: []Stage{
		{Kind: StageSeqIO, Table: "t", Amount: cfg.SeqBandwidth * 300},
		{Kind: StageCPU, Amount: 50},
	}}
	var lats []float64
	for i := 0; i < 40; i++ {
		res, err := e.RunIsolated(spec)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, res.Latency)
	}
	mean, sd := meanStd(lats)
	cv := sd / mean
	if cv < 0.01 || cv > 0.15 {
		t.Fatalf("isolated latency CV = %.3f, want single-digit percents", cv)
	}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}

func TestRunIsolatedInvalidSpec(t *testing.T) {
	e := NewEngine(quietConfig())
	if _, err := e.RunIsolated(QuerySpec{}); err == nil {
		t.Fatal("expected error for empty spec")
	}
	if _, err := e.RunWithSpoiler(QuerySpec{}, 3); err == nil {
		t.Fatal("expected error for empty spec")
	}
}

func TestNewEnginePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Cores = 0
	NewEngine(cfg)
}

// Property: isolated latency is never below the sum of CPU demands and
// never below the I/O service demand, for arbitrary well-formed specs.
func TestIsolatedLowerBoundProperty(t *testing.T) {
	cfg := quietConfig()
	f := func(seqMB, cpuS, randPages uint16) bool {
		e := NewEngine(cfg)
		spec := QuerySpec{TemplateID: 1}
		var cpu, io float64
		if seqMB > 0 {
			bytes := float64(seqMB) * (1 << 20)
			spec.Stages = append(spec.Stages, Stage{Kind: StageSeqIO, Table: "t", Amount: bytes})
			io += bytes / cfg.SeqBandwidth
		}
		if cpuS > 0 {
			secs := float64(cpuS) / 100
			spec.Stages = append(spec.Stages, Stage{Kind: StageCPU, Amount: secs})
			cpu += secs
		}
		if randPages > 0 {
			spec.Stages = append(spec.Stages, Stage{Kind: StageRandIO, Table: "t", Amount: float64(randPages)})
			io += float64(randPages) / cfg.RandIOPS
		}
		if len(spec.Stages) == 0 {
			return true
		}
		res, err := e.RunIsolated(spec)
		if err != nil {
			return false
		}
		return res.Latency >= cpu-1e-6 && res.Latency >= io-1e-6 &&
			almostEq(res.Latency, cpu+io, 1e-6*(1+cpu+io))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a competitor never speeds up an I/O-bound query on a
// disjoint table (contention monotonicity).
func TestContentionMonotonicityProperty(t *testing.T) {
	cfg := quietConfig()
	f := func(aMB, bMB uint16) bool {
		a := ioSpec(1, "ta", float64(aMB+1)*(1<<22))
		b := ioSpec(2, "tb", float64(bMB+1)*(1<<22))
		e := NewEngine(cfg)
		iso, err := e.RunIsolated(a)
		if err != nil {
			return false
		}
		res, err := e.RunSteadyState([]QuerySpec{a, b}, SteadyStateOptions{Samples: 2, WarmupSkip: 1})
		if err != nil {
			return false
		}
		return res.MeanLatency(0) >= iso.Latency-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: shared scans never make a self-mix slower than the
// no-sharing ablation.
func TestSharedScanNeverHurtsProperty(t *testing.T) {
	f := func(mb uint16) bool {
		spec := ioSpec(1, "t", float64(mb+1)*(1<<22))
		shared := quietConfig()
		shared.SharedScans = true
		noShare := quietConfig()
		noShare.SharedScans = false
		rs, err := NewEngine(shared).RunSteadyState([]QuerySpec{spec, spec}, SteadyStateOptions{Samples: 2, WarmupSkip: 1})
		if err != nil {
			return false
		}
		rn, err := NewEngine(noShare).RunSteadyState([]QuerySpec{spec, spec}, SteadyStateOptions{Samples: 2, WarmupSkip: 1})
		if err != nil {
			return false
		}
		return rs.MeanLatency(0) <= rn.MeanLatency(0)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: spoiler latency is monotone non-decreasing in the MPL for any
// well-formed spec.
func TestSpoilerMonotonicityProperty(t *testing.T) {
	cfg := quietConfig()
	f := func(seqMB, cpuDs uint16, wsMB uint16) bool {
		e := NewEngine(cfg)
		spec := QuerySpec{
			TemplateID: 1,
			Stages: []Stage{
				{Kind: StageSeqIO, Table: "t", Amount: float64(seqMB+1) * (1 << 20)},
				{Kind: StageCPU, Amount: float64(cpuDs) / 10},
			},
			WorkingSetBytes: float64(wsMB) * (1 << 20),
			WorkingSetReuse: 4,
		}
		prev := 0.0
		for mpl := 1; mpl <= 5; mpl++ {
			res, err := e.RunWithSpoiler(spec, mpl)
			if err != nil {
				return false
			}
			if res.Latency < prev-1e-6 {
				return false
			}
			prev = res.Latency
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
