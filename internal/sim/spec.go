package sim

import (
	"fmt"
	"math"
)

// StageKind classifies the resource a query stage consumes.
type StageKind int

// Stage kinds.
const (
	// StageSeqIO reads Amount bytes sequentially from a disk-resident
	// table. Eligible for shared-scan groups when Table is non-empty.
	StageSeqIO StageKind = iota
	// StageCachedIO reads Amount bytes from the buffer pool (dimension
	// tables); it never touches the disk.
	StageCachedIO
	// StageRandIO performs Amount random page reads against Table.
	StageRandIO
	// StageCPU consumes Amount seconds of one core.
	StageCPU
)

// String returns the stage kind name.
func (k StageKind) String() string {
	switch k {
	case StageSeqIO:
		return "SeqIO"
	case StageCachedIO:
		return "CachedIO"
	case StageRandIO:
		return "RandIO"
	case StageCPU:
		return "CPU"
	default:
		return fmt.Sprintf("StageKind(%d)", int(k))
	}
}

// IsIO reports whether the stage kind consumes disk time.
func (k StageKind) IsIO() bool { return k == StageSeqIO || k == StageRandIO }

// Stage is one unit of work in a query's execution. Amount is bytes for
// sequential/cached I/O, pages for random I/O, and seconds for CPU.
type Stage struct {
	Kind   StageKind
	Table  string
	Amount float64
}

// QuerySpec is the resource profile of one query template, the simulator's
// analogue of "a query plan handed to the executor". Package tpcds derives
// these from QEP plan trees via its cost model.
type QuerySpec struct {
	// TemplateID identifies the template (e.g. 71 for TPC-DS Q71).
	TemplateID int
	// Stages execute in order.
	Stages []Stage
	// WorkingSetBytes is pinned in RAM for the query's duration
	// (intermediate results: hash tables, sort runs).
	WorkingSetBytes float64
	// WorkingSetReuse is how many times the working set is traversed;
	// spilled bytes cost WorkingSetReuse passes of swap I/O. Derived from
	// the plan (sorts and multi-pass hash operations drive it up).
	WorkingSetReuse float64
}

// Validate reports structural problems with the spec.
func (q QuerySpec) Validate() error {
	if len(q.Stages) == 0 {
		return fmt.Errorf("sim: spec %d has no stages", q.TemplateID)
	}
	for i, s := range q.Stages {
		if s.Amount < 0 || math.IsNaN(s.Amount) || math.IsInf(s.Amount, 0) {
			return fmt.Errorf("sim: spec %d stage %d has invalid amount %g", q.TemplateID, i, s.Amount)
		}
		if s.Kind == StageSeqIO && s.Table == "" {
			return fmt.Errorf("sim: spec %d stage %d: sequential I/O requires a table", q.TemplateID, i)
		}
		if s.Kind < StageSeqIO || s.Kind > StageCPU {
			return fmt.Errorf("sim: spec %d stage %d has unknown kind %d", q.TemplateID, i, int(s.Kind))
		}
	}
	if q.WorkingSetBytes < 0 {
		return fmt.Errorf("sim: spec %d has negative working set", q.TemplateID)
	}
	if q.WorkingSetReuse < 0 {
		return fmt.Errorf("sim: spec %d has negative working-set reuse", q.TemplateID)
	}
	return nil
}

// TotalIOBytes returns the spec's disk demand in bytes (sequential bytes
// plus random pages converted at pageBytes). Swap inflation is normalized
// against this quantity.
func (q QuerySpec) TotalIOBytes(pageBytes float64) float64 {
	var b float64
	for _, s := range q.Stages {
		switch s.Kind {
		case StageSeqIO:
			b += s.Amount
		case StageRandIO:
			b += s.Amount * pageBytes
		}
	}
	return b
}

// ScannedTables returns the distinct tables read by sequential I/O stages.
func (q QuerySpec) ScannedTables() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range q.Stages {
		if s.Kind == StageSeqIO && !seen[s.Table] {
			seen[s.Table] = true
			out = append(out, s.Table)
		}
	}
	return out
}

// Result summarizes one completed query instance.
type Result struct {
	TemplateID int
	// Latency is wall-clock (virtual) seconds from start to completion.
	Latency float64
	// IOTime is wall-clock seconds spent in disk I/O stages — the
	// simulator's analogue of the procfs I/O accounting used to compute
	// p_t (fraction of isolated execution time spent on I/O).
	IOTime float64
	// CPUTime is wall-clock seconds spent in CPU stages.
	CPUTime float64
	// SwapBytes is the swap traffic the instance generated.
	SwapBytes float64
	// Start and End are virtual timestamps.
	Start, End float64
}

// IOFraction returns IOTime / Latency, the paper's p_t.
func (r Result) IOFraction() float64 {
	if r.Latency <= 0 {
		return 0
	}
	return r.IOTime / r.Latency
}
