package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Execution tracing: an optional observer receives every lifecycle event
// of the simulated executor (query admission, stage transitions,
// completions), enabling timeline inspection and debugging — the
// simulator's analogue of an executor's instrumentation hooks.

// TraceKind classifies a trace event.
type TraceKind int

// Trace event kinds.
const (
	// TraceStart marks a query instance's admission.
	TraceStart TraceKind = iota
	// TraceStage marks a stage transition within a query.
	TraceStage
	// TraceComplete marks a query instance's completion.
	TraceComplete
)

// String returns the kind name.
func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceStage:
		return "stage"
	case TraceComplete:
		return "complete"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one executor lifecycle event.
type TraceEvent struct {
	Time       float64
	Kind       TraceKind
	TemplateID int
	Stream     int
	// Stage is the stage being entered (TraceStage) or the first stage
	// (TraceStart); meaningless for TraceComplete.
	Stage StageKind
	// Table is the stage's table, when applicable.
	Table string
}

// Tracer receives executor events. Implementations must be cheap: the
// engine calls them inline.
type Tracer interface {
	Event(TraceEvent)
}

// SetTracer installs (or, with nil, removes) the engine's tracer.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

func (e *Engine) trace(ev TraceEvent) {
	if e.tracer != nil {
		ev.Time = e.clock
		e.tracer.Event(ev)
	}
}

// RecordingTracer retains every event in order.
type RecordingTracer struct {
	Events []TraceEvent
}

// Event implements Tracer.
func (r *RecordingTracer) Event(ev TraceEvent) { r.Events = append(r.Events, ev) }

// Reset clears the recording.
func (r *RecordingTracer) Reset() { r.Events = r.Events[:0] }

// Timeline renders the recorded events as a per-stream execution timeline
// ("Gantt as text"): one line per query instance with its stage
// transitions.
func (r *RecordingTracer) Timeline() string {
	type span struct {
		stream, template int
		start, end       float64
		stages           []string
		open             bool
	}
	var spans []*span
	active := make(map[int]*span)
	for _, ev := range r.Events {
		switch ev.Kind {
		case TraceStart:
			s := &span{stream: ev.Stream, template: ev.TemplateID, start: ev.Time, open: true}
			s.stages = append(s.stages, stageLabel(ev))
			active[ev.Stream] = s
			spans = append(spans, s)
		case TraceStage:
			if s := active[ev.Stream]; s != nil {
				s.stages = append(s.stages, stageLabel(ev))
			}
		case TraceComplete:
			if s := active[ev.Stream]; s != nil {
				s.end = ev.Time
				s.open = false
				delete(active, ev.Stream)
			}
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].stream < spans[j].stream
	})
	var b strings.Builder
	for _, s := range spans {
		end := "…"
		if !s.open {
			end = fmt.Sprintf("%.1fs", s.end)
		}
		fmt.Fprintf(&b, "stream %d T%-4d %10.1fs → %-10s %s\n",
			s.stream, s.template, s.start, end, strings.Join(s.stages, " "))
	}
	return b.String()
}

func stageLabel(ev TraceEvent) string {
	if ev.Table != "" {
		return fmt.Sprintf("%s(%s)", ev.Stage, ev.Table)
	}
	return ev.Stage.String()
}
