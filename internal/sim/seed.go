package sim

// Deterministic parallelism support: the experiments layer fans its
// training-data collection out over a pool of workers, and every unit of
// work (one template's profile, one steady-state mix) owns a private Engine.
// Each task engine is seeded from (base seed, task key), so its noise stream
// depends only on the task identity — never on worker count or scheduling
// order — and a parallel build reproduces the single-threaded one exactly.

// DeriveSeed maps a base seed and a stable task key to an independent engine
// seed. The key is hashed with FNV-1a and the result is mixed with the base
// seed through a SplitMix64 finalizer, so related keys ("template/2",
// "template/3") land on uncorrelated seeds.
func DeriveSeed(seed int64, key string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	z := h + uint64(seed)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// WithSeed returns a copy of the config carrying the given seed — the
// per-task clone handed to each sampling worker's private engine.
func (c Config) WithSeed(seed int64) Config {
	c.Seed = seed
	return c
}
