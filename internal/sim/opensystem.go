package sim

import (
	"fmt"
	"sort"
)

// Open-system execution: queries arrive over time and an admission gate
// decides when queued queries may start. This is the mechanism under the
// cloud-provisioning application of Section 1 — a predictive gate can hold
// back queries whose admission would blow the latency SLO of the queries
// already running.

// Arrival is one query submission at a point in virtual time.
type Arrival struct {
	Time float64
	Spec QuerySpec
}

// AdmitFunc decides whether the queue's head may start now, given the
// template IDs currently executing. It is consulted at every arrival and
// completion. An empty active set always admits regardless of the gate
// (no starvation).
type AdmitFunc func(now float64, candidate QuerySpec, active []int) bool

// OpenResult is one completed query of an open-system run.
type OpenResult struct {
	Result
	// ArrivalTime is when the query was submitted.
	ArrivalTime float64
	// QueueTime is how long it waited for admission.
	QueueTime float64
}

// ResponseTime is queueing delay plus execution latency.
func (o OpenResult) ResponseTime() float64 { return o.QueueTime + o.Latency }

// RunOpenSystem executes an arrival sequence under an admission gate and
// returns the per-query outcomes in arrival order. The gate is consulted
// for the queue head only (FIFO order is preserved); admission also stops
// at maxActive regardless of the gate. maxActive <= 0 means unbounded.
func (e *Engine) RunOpenSystem(arrivals []Arrival, maxActive int, admit AdmitFunc) ([]OpenResult, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("sim: no arrivals")
	}
	for _, a := range arrivals {
		if err := a.Spec.Validate(); err != nil {
			return nil, err
		}
		if a.Time < 0 {
			return nil, fmt.Errorf("sim: negative arrival time %g", a.Time)
		}
	}
	sorted := append([]Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	e.reset()
	out := make([]OpenResult, len(sorted))
	type queued struct {
		idx     int
		arrival Arrival
	}
	var queue []queued
	nextArrival := 0
	completedCount := 0

	activeIDs := func() []int {
		var ids []int
		for _, r := range e.runs {
			if !r.done {
				ids = append(ids, r.spec.TemplateID)
			}
		}
		return ids
	}

	tryAdmit := func() {
		for len(queue) > 0 {
			if maxActive > 0 && len(e.runs) >= maxActive {
				return
			}
			head := queue[0]
			active := activeIDs()
			if len(active) > 0 && admit != nil && !admit(e.clock, head.arrival.Spec, active) {
				return
			}
			out[head.idx].ArrivalTime = head.arrival.Time
			out[head.idx].QueueTime = e.clock - head.arrival.Time
			e.addRun(head.arrival.Spec, head.idx)
			queue = queue[1:]
		}
	}

	admitArrivalsUpTo := func(now float64) {
		for nextArrival < len(sorted) && sorted[nextArrival].Time <= now+1e-12 {
			queue = append(queue, queued{idx: nextArrival, arrival: sorted[nextArrival]})
			nextArrival++
		}
	}

	const maxEvents = 10_000_000
	for ev := 0; ev < maxEvents; ev++ {
		admitArrivalsUpTo(e.clock)
		tryAdmit()

		if completedCount == len(sorted) {
			return out, nil
		}

		// If nothing is running, jump to the next arrival.
		if len(e.runs) == 0 {
			if nextArrival >= len(sorted) && len(queue) == 0 {
				return out, nil
			}
			if len(queue) == 0 {
				e.clock = sorted[nextArrival].Time
				continue
			}
			// Queue non-empty with nothing active: admission is forced.
			tryAdmit()
			if len(e.runs) == 0 {
				return nil, fmt.Errorf("sim: admission gate deadlocked with empty active set")
			}
		}

		// Advance to the next completion, but never past the next arrival.
		before := e.clock
		completed, ok := e.stepUntil(nextArrivalTime(sorted, nextArrival))
		if !ok {
			return nil, ErrStalled
		}
		_ = before
		for _, r := range completed {
			out[r.stream].Result = r.result
			completedCount++
		}
	}
	return nil, fmt.Errorf("sim: open system did not drain within %d events", maxEvents)
}

func nextArrivalTime(arrivals []Arrival, next int) float64 {
	if next < len(arrivals) {
		return arrivals[next].Time
	}
	return -1 // no more arrivals
}

// stepUntil advances like step but caps the time step at `deadline` (a
// virtual timestamp; negative = no cap) so arrivals are processed on time.
func (e *Engine) stepUntil(deadline float64) (completed []*run, ok bool) {
	progress, swap := e.rates()

	dt := -1.0
	active := false
	for i, r := range e.runs {
		if r.done {
			continue
		}
		active = true
		if progress[i] <= 0 {
			continue
		}
		if t := r.remaining / progress[i]; dt < 0 || t < dt {
			dt = t
		}
	}
	if !active || dt < 0 {
		return nil, false
	}
	if deadline >= 0 && e.clock+dt > deadline {
		dt = deadline - e.clock
		if dt < 0 {
			dt = 0
		}
	}
	e.clock += dt

	for i, r := range e.runs {
		if r.done || progress[i] <= 0 {
			continue
		}
		r.remaining -= progress[i] * dt
		st := r.spec.Stages[r.stageIdx]
		switch {
		case st.Kind.IsIO():
			r.ioTime += dt
		case st.Kind == StageCPU:
			r.cpuTime += dt
		}
		r.swapBytes += swap[i] * dt

		if r.remaining <= 1e-9*maxf(st.Amount, 1) {
			r.stageIdx++
			if r.stageIdx >= len(r.spec.Stages) {
				r.done = true
				r.result = Result{
					TemplateID: r.spec.TemplateID,
					Latency:    e.clock - r.start,
					IOTime:     r.ioTime,
					CPUTime:    r.cpuTime,
					SwapBytes:  r.swapBytes,
					Start:      r.start,
					End:        e.clock,
				}
				completed = append(completed, r)
				e.trace(TraceEvent{Kind: TraceComplete,
					TemplateID: r.spec.TemplateID, Stream: r.stream})
			} else {
				next := r.spec.Stages[r.stageIdx]
				r.remaining = next.Amount
				e.trace(TraceEvent{Kind: TraceStage,
					TemplateID: r.spec.TemplateID, Stream: r.stream,
					Stage: next.Kind, Table: next.Table})
			}
		}
	}
	e.compact()
	return completed, true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
