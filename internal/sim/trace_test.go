package sim

import (
	"strings"
	"testing"
)

func TestTracerEventSequence(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	rec := &RecordingTracer{}
	e.SetTracer(rec)

	spec := QuerySpec{
		TemplateID: 7,
		Stages: []Stage{
			{Kind: StageSeqIO, Table: "f", Amount: cfg.SeqBandwidth * 2},
			{Kind: StageCPU, Amount: 1},
		},
	}
	if _, err := e.RunIsolated(spec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 3 {
		t.Fatalf("got %d events, want start/stage/complete", len(rec.Events))
	}
	if rec.Events[0].Kind != TraceStart || rec.Events[0].Stage != StageSeqIO || rec.Events[0].Table != "f" {
		t.Fatalf("first event %+v", rec.Events[0])
	}
	if rec.Events[1].Kind != TraceStage || rec.Events[1].Stage != StageCPU {
		t.Fatalf("second event %+v", rec.Events[1])
	}
	if rec.Events[2].Kind != TraceComplete || rec.Events[2].TemplateID != 7 {
		t.Fatalf("third event %+v", rec.Events[2])
	}
	// Timestamps are monotone.
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Time < rec.Events[i-1].Time {
			t.Fatal("timestamps must be monotone")
		}
	}
}

func TestTracerTimeline(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	rec := &RecordingTracer{}
	e.SetTracer(rec)

	mix := []QuerySpec{
		ioSpec(1, "a", cfg.SeqBandwidth*2),
		ioSpec(2, "b", cfg.SeqBandwidth*4),
	}
	if _, err := e.RunSteadyState(mix, SteadyStateOptions{Samples: 2, WarmupSkip: 0}); err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline()
	if !strings.Contains(tl, "T1") || !strings.Contains(tl, "T2") {
		t.Fatalf("timeline missing templates:\n%s", tl)
	}
	if !strings.Contains(tl, "SeqIO(a)") {
		t.Fatalf("timeline missing stage labels:\n%s", tl)
	}
	rec.Reset()
	if len(rec.Events) != 0 {
		t.Fatal("Reset must clear events")
	}
}

func TestTracerDetachable(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	rec := &RecordingTracer{}
	e.SetTracer(rec)
	e.SetTracer(nil) // detached: no panic, no events
	if _, err := e.RunIsolated(ioSpec(1, "a", cfg.SeqBandwidth)); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 0 {
		t.Fatal("detached tracer must receive nothing")
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceStart.String() != "start" || TraceStage.String() != "stage" || TraceComplete.String() != "complete" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(TraceKind(9).String(), "9") {
		t.Fatal("unknown kind must render its number")
	}
}
