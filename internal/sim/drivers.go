package sim

import (
	"errors"
	"fmt"
)

// ErrStalled is returned when the simulation cannot make progress (which
// indicates an internal invariant violation, e.g. a stage with zero rate
// forever).
var ErrStalled = errors.New("sim: simulation stalled")

// RunIsolated executes spec alone on an idle host and returns its result.
// This is the paper's l_min measurement and also the source of the isolated
// statistics (I/O fraction p_t, working set) Contender trains on.
func (e *Engine) RunIsolated(spec QuerySpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	e.reset()
	e.addRun(spec, -1)
	return e.drainOne()
}

// RunWithSpoiler executes spec against the spoiler configured for the given
// MPL: (1-1/mpl) of RAM pinned and mpl-1 competing sequential I/O streams.
// The returned latency is the paper's l_max (spoiler latency) for that MPL.
// mpl <= 1 degenerates to an isolated run.
func (e *Engine) RunWithSpoiler(spec QuerySpec, mpl int) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	e.reset()
	e.setSpoiler(mpl)
	e.addRun(spec, -1)
	return e.drainOne()
}

func (e *Engine) drainOne() (Result, error) {
	for {
		completed, ok := e.step()
		if !ok {
			return Result{}, ErrStalled
		}
		if len(completed) > 0 {
			return completed[0].result, nil
		}
	}
}

// MeasureScanTime returns the time to sequentially scan `bytes` of a table
// in isolation — the paper's s_f, measured "by executing a query consisting
// of only the sequential scan".
func (e *Engine) MeasureScanTime(table string, bytes float64) (float64, error) {
	res, err := e.RunIsolated(QuerySpec{
		TemplateID: -1,
		Stages:     []Stage{{Kind: StageSeqIO, Table: table, Amount: bytes}},
	})
	if err != nil {
		return 0, err
	}
	return res.Latency, nil
}

// SteadyStateOptions controls a steady-state mix experiment (Figure 2 of
// the paper): one stream per mix slot, each starting a fresh instance of
// its template when the prior one ends.
type SteadyStateOptions struct {
	// Samples is the number of measured completions per stream (the paper
	// uses 5). Defaults to 5.
	Samples int
	// WarmupSkip discards this many leading completions per stream so all
	// measurements happen at the full multiprogramming level. Defaults to 1.
	WarmupSkip int
	// RestartCost, if non-nil, is prepended to every instance after the
	// first of each stream (plan generation and dimension re-caching).
	RestartCost []Stage
	// MaxEvents bounds the event count as a safety valve. Defaults to 10M.
	MaxEvents int
}

// SteadyStateResult holds per-stream measurements of a steady-state run.
type SteadyStateResult struct {
	// Mix is the executed template specs, one per stream.
	Mix []QuerySpec
	// Samples[i] are the measured latencies of stream i (post-warmup).
	Samples [][]float64
	// Results[i] are the full per-instance results of stream i.
	Results [][]Result
	// Duration is the virtual time the experiment spanned.
	Duration float64
}

// MeanLatency returns the average measured latency of stream i.
func (r SteadyStateResult) MeanLatency(i int) float64 {
	s := r.Samples[i]
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// RunSteadyState executes the mix at a constant multiprogramming level until
// every stream has collected the requested number of post-warmup samples.
// Streams keep restarting even after they finish collecting, so conditions
// stay consistent for the laggards (the paper's "steady state" technique).
func (e *Engine) RunSteadyState(mix []QuerySpec, opts SteadyStateOptions) (SteadyStateResult, error) {
	if len(mix) == 0 {
		return SteadyStateResult{}, fmt.Errorf("sim: empty mix")
	}
	for _, q := range mix {
		if err := q.Validate(); err != nil {
			return SteadyStateResult{}, err
		}
	}
	if opts.Samples <= 0 {
		opts.Samples = 5
	}
	if opts.WarmupSkip < 0 {
		opts.WarmupSkip = 1
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 10_000_000
	}

	e.reset()
	res := SteadyStateResult{
		Mix:     mix,
		Samples: make([][]float64, len(mix)),
		Results: make([][]Result, len(mix)),
	}
	completions := make([]int, len(mix))
	for i, q := range mix {
		e.addRun(q, i)
	}

	withRestart := func(q QuerySpec) QuerySpec {
		if len(opts.RestartCost) == 0 {
			return q
		}
		out := q
		out.Stages = make([]Stage, 0, len(opts.RestartCost)+len(q.Stages))
		out.Stages = append(out.Stages, opts.RestartCost...)
		out.Stages = append(out.Stages, q.Stages...)
		return out
	}

	collected := func() bool {
		for i := range mix {
			if len(res.Samples[i]) < opts.Samples {
				return false
			}
		}
		return true
	}

	for ev := 0; ev < opts.MaxEvents; ev++ {
		completed, ok := e.step()
		if !ok {
			return res, ErrStalled
		}
		for _, r := range completed {
			s := r.stream
			completions[s]++
			if completions[s] > opts.WarmupSkip && len(res.Samples[s]) < opts.Samples {
				res.Samples[s] = append(res.Samples[s], r.result.Latency)
				res.Results[s] = append(res.Results[s], r.result)
			}
			// Keep the mix constant: immediately start the next instance.
			e.addRun(withRestart(mix[s]), s)
		}
		if collected() {
			res.Duration = e.clock
			return res, nil
		}
	}
	return res, fmt.Errorf("sim: steady state did not converge within %d events", opts.MaxEvents)
}
