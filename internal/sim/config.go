// Package sim is a fluid discrete-event simulator of a single database host
// executing analytical queries under concurrency. It stands in for the
// paper's PostgreSQL 8.4 / TPC-DS 100 GB testbed (8 cores, 8 GB RAM) and
// reproduces the contention mechanisms Contender models:
//
//   - I/O-bus sharing: the disk is a processor-sharing server; every active
//     I/O stream receives an equal share of its capacity.
//   - Positive interactions: queries concurrently scanning the same fact
//     table form a shared-scan group that consumes a single disk share
//     while advancing all members (buffer-pool reuse).
//   - Memory scarcity: working sets are pinned in RAM; overcommit spills a
//     proportional part of each working set, which inflates the spiller's
//     I/O demand (swap traffic on the same bus).
//   - The spoiler: a synthetic antagonist that pins (1-1/n) of RAM and runs
//     n-1 infinite sequential I/O streams, providing the worst-case upper
//     bound of the performance continuum.
//
// Time is virtual: experiments that take days of wall-clock time on the
// paper's testbed complete in milliseconds here, while preserving the
// relative behaviour (who slows whom down, and by how much).
package sim

// Config describes the simulated host.
type Config struct {
	// RAMBytes is total physical memory. The paper's host has 8 GB.
	RAMBytes float64
	// BaselineRAMBytes is memory unavailable to query working sets
	// (OS, shared buffers metadata, connection overhead).
	BaselineRAMBytes float64
	// SeqBandwidth is sequential disk throughput in bytes/second.
	SeqBandwidth float64
	// RandIOPS is random-read operations per second.
	RandIOPS float64
	// PageBytes is the size of one random I/O request.
	PageBytes float64
	// CachedBandwidth is the effective scan rate for buffer-pool-resident
	// (dimension) tables, in bytes/second.
	CachedBandwidth float64
	// Cores is the number of CPU cores. Per the paper's assumption, cores
	// usually exceed the concurrency level, so CPU is rarely contended.
	Cores int
	// SwapCPUWeight scales how strongly swap inflation slows CPU stages
	// relative to I/O stages (external sorts and spilled hash tables do
	// I/O during "CPU" phases). 0 disables, 1 applies the full factor.
	SwapCPUWeight float64
	// SharedScans toggles shared-scan groups. Disabling it is the ablation
	// that shows positive interactions are what CQI's ω/τ terms capture.
	SharedScans bool
	// Seed drives all stochastic jitter in the engine.
	Seed int64

	// Noise levels (log-normal sigma) per stage kind. Random I/O carries
	// much higher variance, per Section 6.2 ("random I/O can vary by up to
	// an order of magnitude per page fetched").
	SeqNoise, RandNoise, CPUNoise float64
	// InstanceNoise jitters each template instance as a whole (predicate
	// variation), yielding the ~6% isolated-latency std of Section 4.
	InstanceNoise float64
}

// DefaultConfig returns a host comparable to the paper's testbed: 8 GB RAM,
// 8 cores, a ~100 MB/s sequential disk with 250 random IOPS.
func DefaultConfig() Config {
	return Config{
		RAMBytes:         8 << 30,
		BaselineRAMBytes: 1 << 30,
		SeqBandwidth:     100 << 20,
		RandIOPS:         250,
		PageBytes:        8 << 10,
		CachedBandwidth:  2 << 30,
		Cores:            8,
		SwapCPUWeight:    0.5,
		SharedScans:      true,
		Seed:             1,
		SeqNoise:         0.06,
		RandNoise:        0.30,
		CPUNoise:         0.05,
		InstanceNoise:    0.05,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.RAMBytes <= 0:
		return errConfig("RAMBytes must be positive")
	case c.BaselineRAMBytes < 0 || c.BaselineRAMBytes >= c.RAMBytes:
		return errConfig("BaselineRAMBytes must be in [0, RAMBytes)")
	case c.SeqBandwidth <= 0:
		return errConfig("SeqBandwidth must be positive")
	case c.RandIOPS <= 0:
		return errConfig("RandIOPS must be positive")
	case c.PageBytes <= 0:
		return errConfig("PageBytes must be positive")
	case c.CachedBandwidth <= 0:
		return errConfig("CachedBandwidth must be positive")
	case c.Cores <= 0:
		return errConfig("Cores must be positive")
	case c.SwapCPUWeight < 0 || c.SwapCPUWeight > 1:
		return errConfig("SwapCPUWeight must be in [0,1]")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "sim: invalid config: " + string(e) }
