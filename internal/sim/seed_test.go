package sim

import (
	"fmt"
	"testing"
)

func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(42, "template/7") != DeriveSeed(42, "template/7") {
		t.Fatal("DeriveSeed must be deterministic")
	}
}

func TestDeriveSeedSeparates(t *testing.T) {
	seen := make(map[int64]string)
	keys := []string{"template/1", "template/2", "mix/2/0", "mix/2/1", "scan/store_sales", ""}
	for _, seed := range []int64{0, 1, 42, -7} {
		for _, k := range keys {
			s := DeriveSeed(seed, k)
			id := fmt.Sprintf("%d|%s", seed, k)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %q and %q", prev, id)
			}
			seen[s] = id
		}
	}
}

func TestDeriveSeedEnginesIndependent(t *testing.T) {
	// Two engines for the same task must produce identical results; engines
	// for different tasks must see different noise.
	cfg := DefaultConfig()
	spec := QuerySpec{TemplateID: 1, Stages: []Stage{{Kind: StageSeqIO, Table: "f", Amount: 1 << 30}}}
	run := func(key string) float64 {
		e := NewEngine(cfg.WithSeed(DeriveSeed(42, key)))
		res, err := e.RunIsolated(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	if run("a") != run("a") {
		t.Fatal("same task key must reproduce the same measurement")
	}
	if run("a") == run("b") {
		t.Fatal("different task keys should see different jitter")
	}
}

func TestWithSeedLeavesOriginal(t *testing.T) {
	cfg := DefaultConfig()
	cp := cfg.WithSeed(999)
	if cp.Seed != 999 || cfg.Seed == 999 {
		t.Fatalf("WithSeed must copy: got %d / %d", cp.Seed, cfg.Seed)
	}
	if cp.RAMBytes != cfg.RAMBytes {
		t.Fatal("WithSeed must preserve the rest of the config")
	}
}
