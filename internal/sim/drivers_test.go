package sim

import (
	"testing"
)

func TestMeasureScanTime(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	s, err := e.MeasureScanTime("t", cfg.SeqBandwidth*7)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s, 7, 1e-9) {
		t.Fatalf("scan time %g, want 7", s)
	}
}

func TestSteadyStateCollectsRequestedSamples(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	mix := []QuerySpec{
		ioSpec(1, "a", cfg.SeqBandwidth*5),
		ioSpec(2, "b", cfg.SeqBandwidth*15),
	}
	res, err := e.RunSteadyState(mix, SteadyStateOptions{Samples: 4, WarmupSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mix {
		if len(res.Samples[i]) != 4 {
			t.Fatalf("stream %d has %d samples, want 4", i, len(res.Samples[i]))
		}
		if len(res.Results[i]) != 4 {
			t.Fatalf("stream %d has %d results", i, len(res.Results[i]))
		}
		if res.MeanLatency(i) <= 0 {
			t.Fatalf("stream %d mean not positive", i)
		}
	}
	if res.Duration <= 0 {
		t.Fatal("duration must be positive")
	}
}

func TestSteadyStateKeepsMixConstant(t *testing.T) {
	// The short query must observe contention from the long one for ALL
	// its samples: every short-query latency should be ~2x its isolated
	// time (fair sharing with the long scanner on a disjoint table).
	cfg := quietConfig()
	e := NewEngine(cfg)
	short := ioSpec(1, "a", cfg.SeqBandwidth*2)
	long := ioSpec(2, "b", cfg.SeqBandwidth*200)
	res, err := e.RunSteadyState([]QuerySpec{short, long}, SteadyStateOptions{Samples: 5, WarmupSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Samples[0] {
		if !almostEq(l, 4, 0.2) {
			t.Fatalf("short query latency %g, want ~4 under constant contention", l)
		}
	}
}

func TestSteadyStateRestartCost(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	spec := ioSpec(1, "a", cfg.SeqBandwidth*5)
	restart := []Stage{{Kind: StageCPU, Amount: 3}}
	res, err := e.RunSteadyState([]QuerySpec{spec}, SteadyStateOptions{
		Samples: 3, WarmupSkip: 1, RestartCost: restart,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every measured instance (post-warmup) carries the restart cost:
	// 5 s of I/O + 3 s of CPU.
	for _, l := range res.Samples[0] {
		if !almostEq(l, 8, 1e-6) {
			t.Fatalf("latency %g, want 8 with restart cost", l)
		}
	}
}

func TestSteadyStateErrors(t *testing.T) {
	e := NewEngine(quietConfig())
	if _, err := e.RunSteadyState(nil, SteadyStateOptions{}); err == nil {
		t.Fatal("expected error for empty mix")
	}
	if _, err := e.RunSteadyState([]QuerySpec{{}}, SteadyStateOptions{}); err == nil {
		t.Fatal("expected error for invalid spec")
	}
}

func TestSteadyStateDefaults(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	res, err := e.RunSteadyState([]QuerySpec{ioSpec(1, "a", cfg.SeqBandwidth)}, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples[0]) != 5 {
		t.Fatalf("default sample count %d, want 5", len(res.Samples[0]))
	}
}

func TestStageKindString(t *testing.T) {
	names := map[StageKind]string{
		StageSeqIO:    "SeqIO",
		StageCachedIO: "CachedIO",
		StageRandIO:   "RandIO",
		StageCPU:      "CPU",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if StageKind(42).String() == "" {
		t.Fatal("unknown kind must render something")
	}
}

func TestTotalIOBytes(t *testing.T) {
	cfg := quietConfig()
	spec := QuerySpec{Stages: []Stage{
		{Kind: StageSeqIO, Table: "t", Amount: 1000},
		{Kind: StageRandIO, Table: "t", Amount: 10},
		{Kind: StageCachedIO, Amount: 5000}, // cached reads are not disk I/O
		{Kind: StageCPU, Amount: 3},
	}}
	want := 1000 + 10*cfg.PageBytes
	if got := spec.TotalIOBytes(cfg.PageBytes); got != want {
		t.Fatalf("TotalIOBytes = %g, want %g", got, want)
	}
}

func TestScannedTablesDedup(t *testing.T) {
	spec := QuerySpec{Stages: []Stage{
		{Kind: StageSeqIO, Table: "a", Amount: 1},
		{Kind: StageSeqIO, Table: "b", Amount: 1},
		{Kind: StageSeqIO, Table: "a", Amount: 1},
	}}
	tables := spec.ScannedTables()
	if len(tables) != 2 || tables[0] != "a" || tables[1] != "b" {
		t.Fatalf("ScannedTables = %v", tables)
	}
}

func TestRunBatchSerial(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	queue := []QuerySpec{
		ioSpec(1, "a", cfg.SeqBandwidth*5),
		ioSpec(2, "b", cfg.SeqBandwidth*10),
		ioSpec(3, "c", cfg.SeqBandwidth*15),
	}
	results, span, err := e.RunBatch(queue, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(span, 30, 1e-6) {
		t.Fatalf("serial makespan %g, want 30", span)
	}
	// Results are in queue order, back to back.
	if !almostEq(results[0].End, 5, 1e-6) || !almostEq(results[1].Start, 5, 1e-6) ||
		!almostEq(results[2].Start, 15, 1e-6) {
		t.Fatalf("windows wrong: %+v", results)
	}
}

func TestRunBatchConcurrent(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	// Two disjoint 10-s scans at MPL 2 share the disk: makespan ~20 s,
	// clearly below the serial 20... equal; use three: at MPL 2 the third
	// starts at the first completion.
	queue := []QuerySpec{
		ioSpec(1, "a", cfg.SeqBandwidth*10),
		ioSpec(2, "b", cfg.SeqBandwidth*10),
		ioSpec(3, "c", cfg.SeqBandwidth*10),
	}
	results, span, err := e.RunBatch(queue, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First two finish together at ~20; third runs alone afterwards: ~30.
	if !almostEq(span, 30, 0.5) {
		t.Fatalf("makespan %g, want ~30", span)
	}
	if results[2].Start < 19 {
		t.Fatalf("third job started at %g, must wait for a slot", results[2].Start)
	}
	for i := range queue {
		if results[i].TemplateID != i+1 {
			t.Fatal("results must be in queue order")
		}
	}
}

func TestRunBatchMPLCap(t *testing.T) {
	cfg := quietConfig()
	e := NewEngine(cfg)
	queue := []QuerySpec{
		ioSpec(1, "a", cfg.SeqBandwidth),
		ioSpec(2, "b", cfg.SeqBandwidth),
		ioSpec(3, "c", cfg.SeqBandwidth),
		ioSpec(4, "d", cfg.SeqBandwidth),
	}
	results, _, err := e.RunBatch(queue, 10) // cap above batch size
	if err != nil {
		t.Fatal(err)
	}
	// All start at once.
	for _, r := range results {
		if r.Start != 0 {
			t.Fatalf("job started at %g, want 0", r.Start)
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	e := NewEngine(quietConfig())
	if _, _, err := e.RunBatch(nil, 2); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, _, err := e.RunBatch([]QuerySpec{{}}, 2); err == nil {
		t.Fatal("invalid spec must error")
	}
}
