package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Engine executes query specs on the simulated host. It is single-threaded
// and deterministic for a fixed Config.Seed. An Engine may be reused across
// runs; each driver call resets the active-run state but keeps advancing the
// same noise stream, so repeated measurements see fresh jitter.
type Engine struct {
	cfg   Config
	rng   *rand.Rand
	clock float64
	runs  []*run

	// Spoiler state: pinned RAM plus a number of infinite sequential
	// I/O streams, each counting as one disk consumer.
	spoilerPinBytes float64
	spoilerStreams  int

	// tracer, when non-nil, observes executor lifecycle events.
	tracer Tracer
}

// run is one in-flight query instance.
type run struct {
	spec      QuerySpec
	stageIdx  int
	remaining float64
	start     float64
	ioTime    float64
	cpuTime   float64
	swapBytes float64
	stream    int // steady-state slot, -1 otherwise
	done      bool
	result    Result
}

// NewEngine builds an engine; it panics on an invalid config (a programming
// error, not a runtime condition).
func NewEngine(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the engine's host configuration.
func (e *Engine) Config() Config { return e.cfg }

// Clock returns the current virtual time in seconds.
func (e *Engine) Clock() float64 { return e.clock }

// reset clears all run state (but not the RNG, so instance noise differs
// between consecutive measurements, as it would on real hardware).
func (e *Engine) reset() {
	e.clock = 0
	e.runs = e.runs[:0]
	e.spoilerPinBytes = 0
	e.spoilerStreams = 0
}

// setSpoiler installs the paper's spoiler for MPL n: (1-1/n) of RAM pinned
// and n-1 infinite sequential I/O streams. n <= 1 clears it.
func (e *Engine) setSpoiler(mpl int) {
	if mpl <= 1 {
		e.spoilerPinBytes, e.spoilerStreams = 0, 0
		return
	}
	e.spoilerPinBytes = (1 - 1/float64(mpl)) * e.cfg.RAMBytes
	e.spoilerStreams = mpl - 1
}

// jitter returns spec with per-instance and per-stage log-normal noise
// applied, modeling predicate variation and I/O-timing variance.
func (e *Engine) jitter(spec QuerySpec) QuerySpec {
	inst := lognormal(e.rng, e.cfg.InstanceNoise)
	out := spec
	out.Stages = make([]Stage, len(spec.Stages))
	for i, s := range spec.Stages {
		var sigma float64
		switch s.Kind {
		case StageSeqIO, StageCachedIO:
			sigma = e.cfg.SeqNoise
		case StageRandIO:
			sigma = e.cfg.RandNoise
		case StageCPU:
			sigma = e.cfg.CPUNoise
		}
		s.Amount *= inst * lognormal(e.rng, sigma)
		out.Stages[i] = s
	}
	return out
}

func lognormal(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
}

// addRun starts a (jittered) instance of spec at the current clock.
func (e *Engine) addRun(spec QuerySpec, stream int) *run {
	r := &run{spec: e.jitter(spec), start: e.clock, stream: stream}
	r.remaining = r.spec.Stages[0].Amount
	e.runs = append(e.runs, r)
	first := r.spec.Stages[0]
	e.trace(TraceEvent{Kind: TraceStart, TemplateID: r.spec.TemplateID,
		Stream: stream, Stage: first.Kind, Table: first.Table})
	return r
}

// rates computes, for every active run, the progress rate in the native
// units of its current stage (bytes/s, pages/s, or cpu-seconds/s), along
// with the swap-traffic rate in bytes/s used for accounting.
func (e *Engine) rates() (progress, swap []float64) {
	n := len(e.runs)
	progress = make([]float64, n)
	swap = make([]float64, n)

	// Memory pressure: proportional spill of each pinned working set.
	var totalWS float64
	for _, r := range e.runs {
		if !r.done {
			totalWS += r.spec.WorkingSetBytes
		}
	}
	avail := e.cfg.RAMBytes - e.cfg.BaselineRAMBytes - e.spoilerPinBytes
	deficit := totalWS - avail
	if deficit < 0 {
		deficit = 0
	}

	// inflation[i] multiplies the disk cost of run i's I/O: spilled
	// working-set bytes are rewritten/reread WorkingSetReuse times over the
	// course of the query, normalized by its useful I/O volume.
	inflation := make([]float64, n)
	for i, r := range e.runs {
		inflation[i] = 1
		if r.done || deficit <= 0 || totalWS <= 0 || r.spec.WorkingSetBytes <= 0 {
			continue
		}
		spill := deficit * r.spec.WorkingSetBytes / totalWS
		useful := r.spec.TotalIOBytes(e.cfg.PageBytes)
		if useful < e.cfg.PageBytes {
			useful = e.cfg.PageBytes
		}
		inflation[i] = 1 + r.spec.WorkingSetReuse*spill/useful
	}

	// Disk consumers: one per shared-scan group (or per scanner when
	// sharing is disabled), one per random-I/O run, plus spoiler streams.
	type groupKey struct{ table string }
	groups := make(map[groupKey][]int)
	consumers := e.spoilerStreams
	var randRuns []int
	for i, r := range e.runs {
		if r.done {
			continue
		}
		switch st := r.spec.Stages[r.stageIdx]; st.Kind {
		case StageSeqIO:
			if e.cfg.SharedScans {
				k := groupKey{st.Table}
				if len(groups[k]) == 0 {
					consumers++
				}
				groups[k] = append(groups[k], i)
			} else {
				groups[groupKey{fmt.Sprintf("!%d", i)}] = []int{i}
				consumers++
			}
		case StageRandIO:
			randRuns = append(randRuns, i)
			consumers++
		}
	}

	share := 1.0
	if consumers > 0 {
		share = 1 / float64(consumers)
	}

	// CPU sharing (usually uncontended: cores >= MPL).
	cpuRuns := 0
	for _, r := range e.runs {
		if !r.done && r.spec.Stages[r.stageIdx].Kind == StageCPU {
			cpuRuns++
		}
	}
	cpuShare := 1.0
	if cpuRuns > e.cfg.Cores {
		cpuShare = float64(e.cfg.Cores) / float64(cpuRuns)
	}

	for _, members := range groups {
		// The whole group consumes one disk share; every member advances at
		// the group's stream rate, divided by its own swap inflation.
		for _, i := range members {
			rate := share * e.cfg.SeqBandwidth / inflation[i]
			progress[i] = rate
			swap[i] = rate * (inflation[i] - 1)
		}
	}
	for _, i := range randRuns {
		rate := share * e.cfg.RandIOPS / inflation[i]
		progress[i] = rate
		swap[i] = rate * e.cfg.PageBytes * (inflation[i] - 1)
	}
	for i, r := range e.runs {
		if r.done {
			continue
		}
		switch r.spec.Stages[r.stageIdx].Kind {
		case StageCachedIO:
			progress[i] = e.cfg.CachedBandwidth
		case StageCPU:
			// Spilled intermediate state also slows CPU phases (external
			// sort / spilled hash probes), scaled by SwapCPUWeight.
			infl := 1 + e.cfg.SwapCPUWeight*(inflation[i]-1)
			progress[i] = cpuShare / infl
			swap[i] = 0
		}
	}
	return progress, swap
}

// step advances the simulation to the next stage-completion event and
// returns the runs that finished entirely during the step. It returns
// ok=false when no active runs remain or no run can make progress.
func (e *Engine) step() (completed []*run, ok bool) {
	return e.stepUntil(-1)
}

// compact drops completed runs from the active list to keep rate
// computation proportional to the live population.
func (e *Engine) compact() {
	live := e.runs[:0]
	for _, r := range e.runs {
		if !r.done {
			live = append(live, r)
		}
	}
	// Zero the tail so finished runs can be collected.
	for i := len(live); i < len(e.runs); i++ {
		e.runs[i] = nil
	}
	e.runs = live
}
