// Package lifecycle closes Contender's drift loop: a deterministic
// control loop that watches the obs.Quality drift detector, schedules
// targeted re-collection for exactly the templates whose models went
// stale, refits, gates the candidate through a canary validation replay,
// and hot-swaps it into the sharded serving layer only when the holdout
// error actually improved — otherwise it rolls back and keeps serving
// the old model.
//
// The loop is built from pieces earlier PRs already hardened: staleness
// comes from the Page-Hinkley state machine (PR 5), re-collection runs
// under the retry/checkpoint campaign machinery (PR 2), promotion uses
// core.Sharded's atomic snapshot swap (PR 6), and every accepted version
// persists through the versioned store. Failure is a first-class
// outcome: a retrain that errors, or a candidate that loses the canary,
// degrades gracefully — the current model keeps serving, a degraded-mode
// gauge flips, and the loop tries again after a cooldown. Serving is
// never interrupted by the control plane.
//
// Everything observable is deterministic: given the same feedback stream
// and the same collector, the loop takes the same transitions, emits the
// same lifecycle.* events, and publishes the same store fingerprints —
// which is how the ext-selfheal golden experiment replays the whole
// detect → recollect → validate → promote cycle byte-identically.
package lifecycle

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync"
	"time"

	"contender/internal/core"
	"contender/internal/obs"
	"contender/internal/resilience"
	"contender/internal/store"
)

func configErr(msg string) error {
	return resilience.Permanent(errors.New("lifecycle: " + msg))
}

// Collector produces a retrained candidate predictor covering (at least)
// the stale templates. Implementations run the targeted re-collection
// campaign; the facade wires experiments.Env.Recollect in here.
type Collector interface {
	Recollect(ctx context.Context, stale []int) (*core.Predictor, error)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(ctx context.Context, stale []int) (*core.Predictor, error)

// Recollect implements Collector.
func (f CollectorFunc) Recollect(ctx context.Context, stale []int) (*core.Predictor, error) {
	return f(ctx, stale)
}

// Sample is one canary holdout observation: a mix and the latency the
// live substrate actually produced for its primary.
type Sample struct {
	Primary    int
	Concurrent []int
	Observed   float64
}

// HoldoutFunc supplies the canary validation set for a retrain touching
// the given stale templates. The same stale set must yield the same
// samples for the loop to be deterministic.
type HoldoutFunc func(stale []int) []Sample

// Config wires a Manager. Quality and Collector are required.
type Config struct {
	// Quality is the drift-state source the loop watches (the same
	// aggregator the serving layer's feedback drains into).
	Quality *obs.Quality
	// Blame, when non-nil, is the contention blame aggregator the
	// serving layer feeds; a promotion resets the promoted templates'
	// blame rows so the new models' decompositions are judged on their
	// own, exactly like the quality reset below.
	Blame *obs.Blame
	// Collector runs targeted re-collection and refit for stale
	// templates.
	Collector Collector
	// Holdout supplies the canary replay set. When nil the canary is
	// skipped and candidates promote unconditionally (useful in tests;
	// production wiring should always gate).
	Holdout HoldoutFunc
	// Store, when set, persists every promoted candidate as a new
	// version before the hot-swap.
	Store *store.Store
	// Observer receives lifecycle.* events.
	Observer obs.Observer
	// Retry wraps the re-collection attempt in bounded backoff
	// (resilience.Default() semantics when nil: no retries here — the
	// campaign machinery below the Collector usually retries already).
	Retry *resilience.RetryPolicy
	// MinImprove is the relative holdout-MRE improvement a candidate
	// must deliver to promote: newMRE <= oldMRE*(1-MinImprove). Zero
	// means "not worse".
	MinImprove float64
	// Cooldown is how many Step calls to idle after any retrain attempt
	// (promoted, rolled back, or failed) before acting again, giving the
	// post-promotion feedback stream time to re-establish state
	// (default 1).
	Cooldown int
	// DisableDrain stops Step from draining the sharded feedback rings
	// before reading drift states (for callers that run their own drain
	// cadence).
	DisableDrain bool
}

// Action is the decision a Step took.
type Action string

const (
	// ActionIdle: no template is stale; nothing to do.
	ActionIdle Action = "idle"
	// ActionCooldown: stale templates exist but a recent retrain attempt
	// is still cooling down.
	ActionCooldown Action = "cooldown"
	// ActionPromoted: the candidate won the canary and was hot-swapped
	// in (and published to the store when one is configured).
	ActionPromoted Action = "promoted"
	// ActionRolledBack: the candidate lost the canary; the old model
	// keeps serving.
	ActionRolledBack Action = "rolled-back"
	// ActionFailed: re-collection or refit errored; the old model keeps
	// serving and the loop will retry after the cooldown.
	ActionFailed Action = "retrain-failed"
)

// StepReport describes one control-loop step.
type StepReport struct {
	Action  Action
	Stale   []int // templates that triggered (or would trigger) a retrain
	Drained int   // feedback samples folded in before reading drift state
	OldMRE  float64
	NewMRE  float64
	Samples int           // canary holdout samples replayed
	Version store.Version // version published on promotion
	Err     string        // failure detail for ActionFailed
}

// Manager is the lifecycle control loop. Steps serialize on an internal
// mutex; serving through the Sharded set is never blocked by a step.
type Manager struct {
	sharded *core.Sharded
	cfg     Config

	reg        *obs.Registry
	steps      *obs.Counter
	retrains   *obs.Counter
	promotions *obs.Counter
	rollbacks  *obs.Counter
	failures   *obs.Counter
	degraded   *obs.Gauge
	staleG     *obs.Gauge
	currentSeq *obs.Gauge

	mu       sync.Mutex
	cooldown int
}

// New wires a lifecycle manager over a sharded serving set. When a store
// is configured and empty, the currently serving predictor is published
// as the baseline version, so rollback always has somewhere to land.
func New(s *core.Sharded, cfg Config) (*Manager, error) {
	if s == nil {
		return nil, configErr("nil sharded serving set")
	}
	if cfg.Quality == nil {
		return nil, configErr("config needs a Quality aggregator")
	}
	if cfg.Collector == nil {
		return nil, configErr("config needs a Collector")
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 1
	}
	reg := obs.NewRegistry()
	m := &Manager{
		sharded:    s,
		cfg:        cfg,
		reg:        reg,
		steps:      reg.Counter("contender_lifecycle_steps_total", "Control-loop steps executed."),
		retrains:   reg.Counter("contender_lifecycle_retrains_total", "Targeted re-collection attempts."),
		promotions: reg.Counter("contender_lifecycle_promotions_total", "Candidates promoted after winning the canary."),
		rollbacks:  reg.Counter("contender_lifecycle_rollbacks_total", "Candidates rejected by the canary."),
		failures:   reg.Counter("contender_lifecycle_failures_total", "Retrain attempts that errored."),
		degraded:   reg.Gauge("contender_lifecycle_degraded", "1 while the loop is serving a model it tried and failed to replace."),
		staleG:     reg.Gauge("contender_lifecycle_stale_templates", "Templates currently in the stale drift state."),
		currentSeq: reg.Gauge("contender_lifecycle_current_seq", "Store sequence number of the serving version (0 without a store)."),
	}
	if cfg.Store != nil {
		if _, ok := cfg.Store.Current(); !ok {
			v, err := cfg.Store.Publish(s.Snapshot().Snapshot(), "baseline")
			if err != nil {
				return nil, err
			}
			m.currentSeq.Set(float64(v.Seq))
			obs.Emit(cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointStorePublish, Key: v.Fingerprint, Value: float64(v.Seq)})
		} else if v, ok := cfg.Store.Current(); ok {
			m.currentSeq.Set(float64(v.Seq))
		}
	}
	return m, nil
}

// Registry exposes the lifecycle metric families (contender_lifecycle_*)
// for exposition beside the quality families.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Degraded reports whether the loop is in degraded mode: serving a model
// it has tried and failed to replace (rollback or retrain failure) since
// the last successful promotion.
func (m *Manager) Degraded() bool { return m.degraded.Value() != 0 }

// Step runs one control-loop iteration: drain feedback, read drift
// states, and — when templates are stale and the loop is not cooling
// down — retrain, canary, and promote or roll back. The returned error
// is non-nil only for context cancellation; every other failure is a
// graceful degradation recorded in the report (serving is never
// interrupted by a failed retrain).
//
//contender:allow lockblock -- m.mu is the control-plane mutex: it serializes whole retrain steps by design and is never taken on a serving path, so holding it across emission and retrain is intended
func (m *Manager) Step(ctx context.Context) (StepReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps.Inc()
	rep := StepReport{Action: ActionIdle}
	if !m.cfg.DisableDrain {
		rep.Drained = m.sharded.DrainFeedback()
	}
	qrep := m.cfg.Quality.Report()
	for _, t := range qrep.Templates {
		if t.State == obs.DriftStale.String() {
			rep.Stale = append(rep.Stale, t.Template)
		}
	}
	m.staleG.Set(float64(len(rep.Stale)))
	if len(rep.Stale) == 0 {
		return rep, ctx.Err()
	}
	if m.cooldown > 0 {
		m.cooldown--
		rep.Action = ActionCooldown
		return rep, ctx.Err()
	}
	for _, id := range rep.Stale {
		obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointLifecycleStale, Template: id})
	}
	return m.retrainLocked(ctx, rep)
}

// ForceRetrain runs the retrain → canary → promote/rollback sequence for
// an explicit template set, bypassing drift detection and cooldown — the
// operator's (and the golden experiment's) manual lever.
//
//contender:allow lockblock -- m.mu is the control-plane mutex: it serializes whole retrain steps by design and is never taken on a serving path, so holding it across the retrain is intended
func (m *Manager) ForceRetrain(ctx context.Context, templates []int) (StepReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(templates) == 0 {
		return StepReport{Action: ActionIdle}, configErr("ForceRetrain needs at least one template")
	}
	rep := StepReport{Stale: append([]int(nil), templates...)}
	return m.retrainLocked(ctx, rep)
}

// retrainLocked runs re-collection, canary gating, and the promotion
// decision. The caller holds m.mu.
func (m *Manager) retrainLocked(ctx context.Context, rep StepReport) (StepReport, error) {
	m.retrains.Inc()
	m.cooldown = m.cfg.Cooldown
	obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.SpanBegin, Span: obs.SpanLifecycleRetrain, Value: float64(len(rep.Stale))})

	var candidate *core.Predictor
	collect := func() error {
		p, err := m.cfg.Collector.Recollect(ctx, rep.Stale)
		if err != nil {
			return err
		}
		if p == nil {
			return configErr("collector returned a nil predictor")
		}
		candidate = p
		return nil
	}
	var err error
	if m.cfg.Retry != nil {
		_, err = m.cfg.Retry.Do(ctx, "lifecycle/recollect", collect)
	} else {
		err = collect()
	}
	if err != nil {
		return m.failLocked(rep, err), ctx.Err()
	}

	old := m.sharded.Snapshot()
	if m.cfg.Holdout != nil {
		samples := m.cfg.Holdout(rep.Stale)
		rep.Samples = len(samples)
		rep.OldMRE, err = holdoutMRE(old, samples)
		if err == nil {
			rep.NewMRE, err = holdoutMRE(candidate, samples)
		}
		obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.SpanEnd, Span: obs.SpanLifecycleCanary, Value: rep.NewMRE, Err: errString(err)})
		if err != nil {
			return m.failLocked(rep, err), ctx.Err()
		}
		if rep.NewMRE > rep.OldMRE*(1-m.cfg.MinImprove) {
			// Canary lost: keep serving the old model.
			m.rollbacks.Inc()
			m.degraded.Set(1)
			rep.Action = ActionRolledBack
			obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointLifecycleRollback, Value: rep.NewMRE})
			obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.SpanEnd, Span: obs.SpanLifecycleRetrain, Err: "canary regression"})
			return rep, ctx.Err()
		}
	}

	// Candidate accepted: persist first, then hot-swap. The candidate
	// inherits the quality aggregator and observer so post-swap drains
	// keep flowing into the same telemetry. Both writes are skipped when
	// already correct: a collector may hand back a predictor that served
	// before (A/B alternation), and a predictor must not be mutated
	// while lock-free readers can still hold it.
	if candidate.Quality() != m.cfg.Quality {
		candidate.SetQuality(m.cfg.Quality)
	}
	if candidate.Observer() == nil {
		if o := old.Observer(); o != nil {
			candidate.SetObserver(o)
		}
	}
	if m.cfg.Store != nil {
		v, perr := m.cfg.Store.Publish(candidate.Snapshot(), retrainNote(rep.Stale))
		if perr != nil {
			// Durability failed but the candidate is validated: promote
			// in memory, flag degraded, and report the publish error.
			m.failures.Inc()
			m.degraded.Set(1)
			rep.Err = perr.Error()
		} else {
			rep.Version = v
			m.currentSeq.Set(float64(v.Seq))
			obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointStorePublish, Key: v.Fingerprint, Value: float64(v.Seq)})
		}
	}
	if _, err := m.sharded.Swap(candidate); err != nil {
		return m.failLocked(rep, err), ctx.Err()
	}
	for _, id := range rep.Stale {
		m.cfg.Quality.ResetTemplate(id)
		m.cfg.Blame.ResetTemplate(id)
	}
	m.promotions.Inc()
	if rep.Err == "" {
		m.degraded.Set(0)
	}
	rep.Action = ActionPromoted
	obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointLifecyclePromote, Value: rep.NewMRE})
	obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.SpanEnd, Span: obs.SpanLifecycleRetrain})
	return rep, ctx.Err()
}

// failLocked records a graceful retrain failure: the old model keeps
// serving and the loop re-arms after the cooldown.
func (m *Manager) failLocked(rep StepReport, err error) StepReport {
	m.failures.Inc()
	m.degraded.Set(1)
	rep.Action = ActionFailed
	rep.Err = err.Error()
	obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.Point, Span: obs.PointLifecycleDegraded, Err: rep.Err})
	obs.Emit(m.cfg.Observer, obs.Event{Kind: obs.SpanEnd, Span: obs.SpanLifecycleRetrain, Err: rep.Err})
	return rep
}

// Run steps the loop every interval until ctx is cancelled — the
// -autoretrain serving mode. Step errors (context cancellation only) end
// the loop.
func (m *Manager) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return configErr("Run needs a positive interval")
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := m.Step(ctx); err != nil {
				return err
			}
		}
	}
}

// holdoutMRE replays the holdout set against a predictor and returns the
// mean |relative error|. Samples the predictor cannot price (unknown
// template, untrained MPL) are skipped; a holdout with no usable sample
// is an error — the canary cannot certify anything from it.
func holdoutMRE(p *core.Predictor, samples []Sample) (float64, error) {
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.Observed <= 0 || math.IsNaN(s.Observed) || math.IsInf(s.Observed, 0) {
			continue
		}
		pred, err := p.PredictKnown(s.Primary, s.Concurrent)
		if err != nil {
			continue
		}
		rel := (s.Observed - pred) / s.Observed
		if rel < 0 {
			rel = -rel
		}
		sum += rel
		n++
	}
	if n == 0 {
		return 0, configErr("canary holdout has no usable samples")
	}
	return sum / float64(n), nil
}

func retrainNote(stale []int) string {
	note := "retrain"
	for i, id := range stale {
		if i == 0 {
			note += " T" + strconv.Itoa(id)
		} else {
			note += ",T" + strconv.Itoa(id)
		}
	}
	return note
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
