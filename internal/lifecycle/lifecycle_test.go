package lifecycle

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"contender/internal/core"
	"contender/internal/obs"
	"contender/internal/store"
)

// makePredictor builds a small trained predictor whose victim template
// (ID 2) latencies scale with knob, so different knobs predict
// differently while template 22 stays put.
func makePredictor(t *testing.T, knob float64) *core.Predictor {
	t.Helper()
	doc := map[string]any{
		"version": 1,
		"templates": []map[string]any{
			{"id": 2, "isolated_latency": 10 * knob, "io_fraction": 0.5, "working_set_bytes": 1024,
				"plan_steps": 3, "records_accessed": 100, "scans": []string{"store_sales"},
				"spoilers": []map[string]any{{"mpl": 2, "latency": 14 * knob}}},
			{"id": 22, "isolated_latency": 20, "io_fraction": 0.4, "working_set_bytes": 2048,
				"plan_steps": 4, "records_accessed": 200, "scans": []string{"inventory"},
				"spoilers": []map[string]any{{"mpl": 2, "latency": 26}}},
		},
		"scan_times": map[string]float64{"inventory": 2, "store_sales": 1},
		"models": []map[string]any{
			{"mpl": 2, "template": 2, "mu": 0.5, "b": 0.2},
			{"mpl": 2, "template": 22, "mu": 0.6, "b": 0.1},
		},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap core.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	p, err := core.PredictorFromSnapshot(&snap)
	if err != nil {
		t.Fatalf("predictor: %v", err)
	}
	return p
}

// holdoutFor builds a holdout whose observations are exactly what the
// given predictor would answer — that predictor scores MRE 0 on it.
func holdoutFor(t *testing.T, p *core.Predictor) HoldoutFunc {
	t.Helper()
	obsLat, err := p.PredictKnown(2, []int{22})
	if err != nil {
		t.Fatalf("holdout prediction: %v", err)
	}
	return func([]int) []Sample {
		return []Sample{{Primary: 2, Concurrent: []int{22}, Observed: obsLat}}
	}
}

// driveStale pushes template 2 of q into the stale state with a stream
// of large one-sided errors.
func driveStale(t *testing.T, q *obs.Quality) {
	t.Helper()
	for i := 0; i < 10; i++ {
		q.Observe(2, 0.02) // healthy baseline regime
	}
	for i := 0; i < 40; i++ {
		q.Observe(2, 0.6) // sustained shift: degraded, then stale
	}
	if got := q.State(2); got != obs.DriftStale {
		t.Fatalf("template 2 state = %v, want stale", got)
	}
}

func qcfg() obs.DriftConfig {
	return obs.DriftConfig{MinSamples: 4, Delta: 0.05, Lambda: 1, StaleMRE: 0.3, RecoverMRE: 0.1, Window: 4}
}

func TestStepPromotesOnImprovedCanary(t *testing.T) {
	old := makePredictor(t, 1.0)
	better := makePredictor(t, 1.8)
	q := obs.NewQuality(qcfg())
	old.SetQuality(q)
	sh, err := core.NewSharded(old, core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	st, err := store.New(store.NewMemRepository())
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	rec := obs.NewRecording()
	m, err := New(sh, Config{
		Quality:   q,
		Collector: CollectorFunc(func(context.Context, []int) (*core.Predictor, error) { return better, nil }),
		Holdout:   holdoutFor(t, better), // the drifted world matches `better`
		Store:     st,
		Observer:  rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok := st.Current(); !ok {
		t.Fatal("baseline version not published")
	}

	// Healthy world: the loop idles.
	rep, err := m.Step(context.Background())
	if err != nil || rep.Action != ActionIdle {
		t.Fatalf("healthy step = %+v, %v; want idle", rep, err)
	}

	driveStale(t, q)
	rep, err = m.Step(context.Background())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if rep.Action != ActionPromoted {
		t.Fatalf("action = %s (err %q), want promoted", rep.Action, rep.Err)
	}
	if rep.NewMRE >= rep.OldMRE {
		t.Fatalf("canary did not improve: old %g new %g", rep.OldMRE, rep.NewMRE)
	}
	if sh.Snapshot() != better {
		t.Fatal("promotion did not hot-swap the candidate")
	}
	if sh.Snapshot().Quality() != q {
		t.Fatal("candidate lost the quality aggregator")
	}
	if q.State(2) != obs.DriftHealthy {
		t.Fatal("stale template not reset after promotion")
	}
	if rep.Version.Seq != 2 {
		t.Fatalf("published version = %+v, want seq 2", rep.Version)
	}
	if cur, _ := st.Current(); cur != rep.Version {
		t.Fatalf("store current = %+v, want %+v", cur, rep.Version)
	}
	if m.Degraded() {
		t.Fatal("degraded after a successful promotion")
	}
	var promoted bool
	for _, ev := range rec.Events() {
		if ev.Span == obs.PointLifecyclePromote {
			promoted = true
		}
	}
	if !promoted {
		t.Fatal("no lifecycle.promote event emitted")
	}
}

// TestPromotionResetsBlame pins that promoting a retrained template
// rearms its blame matrix rows — the new model's decompositions are
// judged on their own — while rows where the template is only a
// neighbor keep their history.
func TestPromotionResetsBlame(t *testing.T) {
	old := makePredictor(t, 1.0)
	better := makePredictor(t, 1.8)
	q := obs.NewQuality(qcfg())
	old.SetQuality(q)
	b := obs.NewBlame(obs.BlameConfig{})
	b.Observe(2, []int{22}, []float64{3.5})  // primary 2: reset on its promotion
	b.Observe(22, []int{2}, []float64{1.25}) // primary 22: untouched
	sh, err := core.NewSharded(old, core.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	m, err := New(sh, Config{
		Quality:   q,
		Blame:     b,
		Collector: CollectorFunc(func(context.Context, []int) (*core.Predictor, error) { return better, nil }),
		Holdout:   holdoutFor(t, better),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	driveStale(t, q)
	rep, err := m.Step(context.Background())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if rep.Action != ActionPromoted {
		t.Fatalf("action = %s (err %q), want promoted", rep.Action, rep.Err)
	}
	brep := b.Report()
	if len(brep.Pairs) != 1 {
		t.Fatalf("blame pairs after promotion = %+v, want only 22/2", brep.Pairs)
	}
	p := brep.Pairs[0]
	if p.Primary != 22 || p.Neighbor != 2 || p.Seconds != 1.25 {
		t.Fatalf("surviving blame pair = %+v, want primary 22 neighbor 2 seconds 1.25", p)
	}
}

func TestStepRollsBackOnCanaryRegression(t *testing.T) {
	old := makePredictor(t, 1.0)
	worse := makePredictor(t, 5.0)
	q := obs.NewQuality(qcfg())
	old.SetQuality(q)
	sh, _ := core.NewSharded(old, core.ShardOptions{Shards: 1})
	rec := obs.NewRecording()
	m, err := New(sh, Config{
		Quality:   q,
		Collector: CollectorFunc(func(context.Context, []int) (*core.Predictor, error) { return worse, nil }),
		Holdout:   holdoutFor(t, old), // the world still matches `old`
		Observer:  rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	driveStale(t, q)
	rep, err := m.Step(context.Background())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if rep.Action != ActionRolledBack {
		t.Fatalf("action = %s, want rolled-back", rep.Action)
	}
	if sh.Snapshot() != old {
		t.Fatal("rollback swapped the serving model")
	}
	if !m.Degraded() {
		t.Fatal("rollback did not flip the degraded gauge")
	}
	var rolledBack bool
	for _, ev := range rec.Events() {
		if ev.Span == obs.PointLifecycleRollback {
			rolledBack = true
		}
	}
	if !rolledBack {
		t.Fatal("no lifecycle.rollback event emitted")
	}
	// Serving must still answer on the old model.
	if _, err := sh.Acquire().Predict(2, []int{22}); err != nil {
		t.Fatalf("serving interrupted after rollback: %v", err)
	}
}

func TestRetrainFailureDegradesGracefully(t *testing.T) {
	old := makePredictor(t, 1.0)
	q := obs.NewQuality(qcfg())
	old.SetQuality(q)
	sh, _ := core.NewSharded(old, core.ShardOptions{Shards: 1})
	boom := errors.New("substrate unreachable")
	m, err := New(sh, Config{
		Quality:   q,
		Collector: CollectorFunc(func(context.Context, []int) (*core.Predictor, error) { return nil, boom }),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	driveStale(t, q)
	rep, err := m.Step(context.Background())
	if err != nil {
		t.Fatalf("Step returned an error for a retrain failure: %v", err)
	}
	if rep.Action != ActionFailed || rep.Err == "" {
		t.Fatalf("report = %+v, want retrain-failed with detail", rep)
	}
	if sh.Snapshot() != old || !m.Degraded() {
		t.Fatal("failure must keep the old model serving in degraded mode")
	}
	// Cooldown: the immediate next step waits instead of hammering the
	// broken substrate.
	rep, _ = m.Step(context.Background())
	if rep.Action != ActionCooldown {
		t.Fatalf("post-failure action = %s, want cooldown", rep.Action)
	}
}

func TestForceRetrainNeedsTemplates(t *testing.T) {
	old := makePredictor(t, 1.0)
	q := obs.NewQuality(qcfg())
	sh, _ := core.NewSharded(old, core.ShardOptions{Shards: 1})
	m, err := New(sh, Config{
		Quality:   q,
		Collector: CollectorFunc(func(context.Context, []int) (*core.Predictor, error) { return old, nil }),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.ForceRetrain(context.Background(), nil); err == nil {
		t.Fatal("ForceRetrain accepted an empty template set")
	}
}

// TestHotSwapUnderFire hammers the serving data plane (Predict, Observe,
// DrainFeedback via Step) while the control plane promotes repeatedly —
// run under -race this is the hot-swap safety proof.
func TestHotSwapUnderFire(t *testing.T) {
	pa := makePredictor(t, 1.0)
	pb := makePredictor(t, 1.8)
	q := obs.NewQuality(qcfg())
	pa.SetQuality(q)
	pb.SetQuality(q)
	sh, err := core.NewSharded(pa, core.ShardOptions{Shards: 4, RingSize: 64})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	st, err := store.New(store.NewMemRepository())
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	flip := false
	m, err := New(sh, Config{
		Quality: q,
		Collector: CollectorFunc(func(context.Context, []int) (*core.Predictor, error) {
			flip = !flip // guarded by the manager's step mutex
			if flip {
				return pb, nil
			}
			return pa, nil
		}),
		Store: st,
		// No holdout: promote unconditionally so every ForceRetrain
		// exercises publish+swap.
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := sh.Acquire()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lat, err := shard.Predict(2, []int{22})
				if err != nil || lat <= 0 {
					t.Errorf("Predict under swap: %g, %v", lat, err)
					return
				}
				if _, err := shard.Observe(2, []int{22}, lat*1.1); err != nil {
					t.Errorf("Observe under swap: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		if _, err := m.ForceRetrain(context.Background(), []int{2}); err != nil {
			t.Fatalf("ForceRetrain %d: %v", i, err)
		}
		sh.DrainFeedback()
	}
	close(stop)
	wg.Wait()
	if got := sh.Snapshot(); got != pa && got != pb {
		t.Fatal("serving snapshot is neither candidate")
	}
	// Content-addressed store: 100 promotions of two predictors are two
	// distinct versions plus re-publications.
	if st.Len() < 2 {
		t.Fatalf("store history = %d, want >= 2", st.Len())
	}
}
