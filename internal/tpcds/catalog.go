// Package tpcds provides the synthetic analytical workload the experiments
// run on: a TPC-DS-like schema at scale factor 100 and 25 query templates of
// moderate running time (130–1000 s in isolation on the default simulated
// host), mirroring the workload selection of Section 2 of the paper.
//
// Templates are defined as query execution plan (QEP) trees; a cost model
// derives each template's simulator resource profile (sequential/random
// I/O, CPU work, working-set size) from its plan, the same way the paper's
// observables derive from real PostgreSQL plans. The template mix follows
// the paper's Section 6.1 taxonomy: extremely I/O-bound templates (26, 33,
// 61, 71 spend ≥97% of isolated execution on I/O), random-I/O templates
// (17, 25, 32), CPU-heavy templates (62, 65), and memory-intensive
// templates (2, 22) with multi-gigabyte working sets.
package tpcds

import (
	"fmt"
	"sort"
)

// Table describes one relation of the schema.
type Table struct {
	Name     string
	RowCount float64
	RowBytes int
	// Fact marks the large, disk-resident tables whose scans drive I/O
	// contention (and shared-scan savings). Non-fact (dimension) tables
	// are buffer-pool resident.
	Fact bool
}

// Bytes returns the table's on-disk size.
func (t Table) Bytes() float64 { return t.RowCount * float64(t.RowBytes) }

// Catalog is the schema: a fixed set of tables at scale factor 100.
type Catalog struct {
	tables map[string]Table
}

// NewCatalog returns the TPC-DS SF=100 catalog used throughout the
// repository. Sizes approximate the published TPC-DS table volumes at
// 100 GB.
func NewCatalog() *Catalog {
	c := &Catalog{tables: make(map[string]Table)}
	add := func(name string, rows float64, width int, fact bool) {
		c.tables[name] = Table{Name: name, RowCount: rows, RowBytes: width, Fact: fact}
	}
	// Fact tables.
	add("store_sales", 288e6, 132, true)
	add("catalog_sales", 144e6, 158, true)
	add("web_sales", 72e6, 158, true)
	add("inventory", 399e6, 20, true)
	add("store_returns", 28.8e6, 134, true)
	add("catalog_returns", 14.4e6, 166, true)
	add("web_returns", 7.2e6, 162, true)
	// Dimension tables (buffer-pool resident).
	add("date_dim", 73049, 141, false)
	add("time_dim", 86400, 59, false)
	add("item", 204000, 294, false)
	add("customer", 2e6, 280, false)
	add("customer_address", 1e6, 110, false)
	add("customer_demographics", 1.92e6, 42, false)
	add("household_demographics", 7200, 21, false)
	add("store", 402, 263, false)
	add("warehouse", 15, 117, false)
	add("promotion", 1000, 124, false)
	add("web_site", 24, 292, false)
	add("web_page", 2040, 96, false)
	add("call_center", 24, 305, false)
	add("catalog_page", 20400, 139, false)
	add("ship_mode", 20, 56, false)
	add("reason", 55, 38, false)
	add("income_band", 20, 16, false)
	return c
}

// Table returns the named table; ok is false if it does not exist.
func (c *Catalog) Table(name string) (Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// MustTable returns the named table or panics — used by the template
// catalog, where a missing table is a programming error.
func (c *Catalog) MustTable(name string) Table {
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("tpcds: unknown table %q", name))
	}
	return t
}

// FactTables returns all fact tables sorted by name.
func (c *Catalog) FactTables() []Table {
	var out []Table
	for _, t := range c.tables {
		if t.Fact {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tables returns every table sorted by name.
func (c *Catalog) Tables() []Table {
	out := make([]Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalFactBytes returns the combined size of all fact tables.
func (c *Catalog) TotalFactBytes() float64 {
	var s float64
	for _, t := range c.FactTables() {
		s += t.Bytes()
	}
	return s
}

// Scaled returns a copy of the catalog with every fact table's row count
// multiplied by factor, modeling an expanding database (accumulated
// writes). Dimension tables, which are near-static in TPC-DS, keep their
// size.
func (c *Catalog) Scaled(factor float64) *Catalog {
	if factor <= 0 {
		factor = 1
	}
	out := &Catalog{tables: make(map[string]Table, len(c.tables))}
	for name, t := range c.tables {
		if t.Fact {
			t.RowCount *= factor
		}
		out.tables[name] = t
	}
	return out
}
