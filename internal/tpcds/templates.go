package tpcds

import (
	"fmt"
	"sort"

	"contender/internal/qep"
)

// Template is one parameterized query class of the workload. Examples of a
// template share plan structure and differ only in predicate constants
// (which the simulator models as per-instance jitter).
type Template struct {
	ID   int
	Name string
	// Description summarizes the query's intent and its Section 6.1
	// category (I/O-bound, random I/O, CPU-heavy, memory-intensive).
	Description string
	Plan        *qep.Plan
}

// Templates returns the paper's 25-template workload of moderate running
// time, sorted by ID. The mix reproduces the taxonomy of Section 6.1:
//
//   - templates 26, 33, 61, 71 are extremely I/O-bound (≥97% of isolated
//     execution time on I/O);
//   - templates 17, 25, 32 execute substantial random I/O (index scans);
//   - templates 62 and 65 are CPU-limited;
//   - templates 2 and 22 are memory-intensive with multi-GB working sets;
//   - templates 56 and 60 share plan structure (near-twins);
//   - templates 22 and 82 share an inventory fact scan.
func Templates() []Template {
	ts := []Template{
		{2, "Q2", "week-over-week sales ratio across catalog and web channels; large sort makes it the workload's most memory-intensive template", q2()},
		{7, "Q7", "promotional store sales with inventory correlation; the longest template, touching four fact tables plus index lookups", q7()},
		{15, "Q15", "catalog sales rolled up by customer zip; hash aggregation over a catalog_sales scan", q15()},
		{17, "Q17", "store/catalog return ratios fetched partly through index scans (random I/O)", q17()},
		{18, "Q18", "catalog sales demographics averages with a wide group-by", q18()},
		{20, "Q20", "catalog sales by item class over a date window", q20()},
		{22, "Q22", "inventory quantity-on-hand rollup; memory-intensive hash aggregation, shares the inventory scan with Q82", q22()},
		{25, "Q25", "store-to-web return chains located via index scans (random I/O)", q25()},
		{26, "Q26", "catalog/web promotion averages; extremely I/O-bound", q26()},
		{27, "Q27", "store sales averages by state with rollup aggregation", q27()},
		{32, "Q32", "excess catalog discount detection via index-driven correlated lookups (random I/O)", q32()},
		{33, "Q33", "manufacturer sales across store and web channels; extremely I/O-bound", q33()},
		{40, "Q40", "catalog sales/returns before-and-after comparison with index lookups", q40()},
		{46, "Q46", "store sales by household demographic with a large sort", q46()},
		{56, "Q56", "item sales across web and catalog channels (structural twin of Q60)", q56()},
		{60, "Q60", "item sales across web and catalog channels (structural twin of Q56)", q60()},
		{61, "Q61", "promotional vs total store sales; extremely I/O-bound", q61()},
		{62, "Q62", "web sales shipping-delay buckets; the workload's lightest template", q62()},
		{65, "Q65", "store sales min/max margins; CPU-limited by a very large sort", q65()},
		{66, "Q66", "web sales by warehouse and shipping mode with window aggregation", q66()},
		{70, "Q70", "store sales ranking by state with window aggregation", q70()},
		{71, "Q71", "brand revenue across all three sales channels; extremely I/O-bound", q71()},
		{79, "Q79", "store sales by customer with demographic filters", q79()},
		{82, "Q82", "items with excess inventory and store sales; shares the inventory scan with Q22", q82()},
		{90, "Q90", "morning-to-evening web sales ratio with index-backed time lookups", q90()},
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	for _, t := range ts {
		if err := t.Plan.Validate(); err != nil {
			panic(fmt.Sprintf("tpcds: template %d: %v", t.ID, err))
		}
	}
	return ts
}

// Plan-building shorthand. Cardinalities are post-filter optimizer
// estimates; scan CPU is charged on full table row counts by the cost
// model.

func q2() *qep.Plan {
	inner := qep.Op(qep.HashJoin, 7.2e6, 110,
		qep.Scan("date_dim", 400, 141),
		qep.Scan("web_sales", 60e6, 158),
	)
	join := qep.Op(qep.HashJoin, 30e6, 140,
		inner,
		qep.Scan("catalog_sales", 120e6, 158),
	)
	return &qep.Plan{Root: qep.Op(qep.Sort, 30e6, 140, join)}
}

func q7() *qep.Plan {
	dims := qep.Op(qep.HashJoin, 12e6, 100,
		qep.Scan("promotion", 300, 124),
		qep.Scan("store_sales", 60e6, 132),
	)
	inv := qep.Op(qep.HashJoin, 20e6, 90,
		qep.Scan("item", 5e4, 294),
		qep.Scan("inventory", 80e6, 20),
	)
	big := qep.Op(qep.HashJoin, 25e6, 120, dims,
		qep.Op(qep.HashJoin, 30e6, 110, inv,
			qep.Scan("catalog_sales", 50e6, 158)))
	withReturns := qep.Op(qep.HashJoin, 8e6, 130,
		qep.Scan("store_returns", 3e6, 134), big)
	idx := qep.Op(qep.NestedLoop, 2e6, 140, withReturns,
		qep.Index("catalog_returns", 20000, 166))
	agg := qep.Op(qep.HashAggregate, 1e6, 100, idx)
	return &qep.Plan{Root: qep.Op(qep.Sort, 1e6, 100, agg)}
}

func q15() *qep.Plan {
	j := qep.Op(qep.HashJoin, 20e6, 90,
		qep.Scan("customer_address", 2e5, 110),
		qep.Op(qep.HashJoin, 40e6, 100,
			qep.Scan("date_dim", 90, 141),
			qep.Scan("catalog_sales", 100e6, 158)))
	agg := qep.Op(qep.HashAggregate, 5e6, 100, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 5e6, 100, agg)}
}

func q17() *qep.Plan {
	base := qep.Op(qep.HashJoin, 30e6, 110,
		qep.Scan("date_dim", 90, 141),
		qep.Scan("catalog_sales", 80e6, 158))
	sr := qep.Op(qep.HashJoin, 8e6, 130,
		qep.Scan("store_returns", 6e6, 134), base)
	idx := qep.Op(qep.NestedLoop, 4e6, 140, sr,
		qep.Index("store_sales", 30000, 132))
	agg := qep.Op(qep.HashAggregate, 3e6, 120, idx)
	return &qep.Plan{Root: qep.Op(qep.Sort, 3e6, 120, agg)}
}

func q18() *qep.Plan {
	j1 := qep.Op(qep.HashJoin, 25e6, 100,
		qep.Scan("customer_demographics", 3e5, 42),
		qep.Op(qep.HashJoin, 60e6, 110,
			qep.Scan("date_dim", 365, 141),
			qep.Scan("catalog_sales", 90e6, 158)))
	j2 := qep.Op(qep.HashJoin, 10e6, 50,
		qep.Scan("catalog_returns", 3e6, 166), j1)
	sorted := qep.Op(qep.Sort, 10e6, 50, j2)
	return &qep.Plan{Root: qep.Op(qep.GroupAggregate, 3e6, 110, sorted)}
}

func q20() *qep.Plan {
	j := qep.Op(qep.HashJoin, 30e6, 100,
		qep.Scan("item", 1e4, 294),
		qep.Op(qep.HashJoin, 50e6, 110,
			qep.Scan("date_dim", 30, 141),
			qep.Scan("catalog_sales", 80e6, 158)))
	agg := qep.Op(qep.HashAggregate, 4e6, 100, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 4e6, 100, agg)}
}

func q22() *qep.Plan {
	inv := qep.Op(qep.HashJoin, 10e6, 80,
		qep.Scan("item", 2e5, 294),
		qep.Scan("inventory", 200e6, 20))
	j := qep.Op(qep.MergeJoin, 80e6, 100, inv,
		qep.Scan("catalog_sales", 100e6, 158))
	agg := qep.Op(qep.HashAggregate, 16e6, 130, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 16e6, 130, agg)}
}

func q25() *qep.Plan {
	base := qep.Op(qep.HashJoin, 20e6, 110,
		qep.Scan("date_dim", 30, 141),
		qep.Scan("web_sales", 40e6, 158))
	sr := qep.Op(qep.HashJoin, 5e6, 130,
		qep.Scan("store_returns", 4e6, 134), base)
	idx := qep.Op(qep.NestedLoop, 2e6, 140, sr,
		qep.Index("catalog_sales", 35000, 158))
	agg := qep.Op(qep.HashAggregate, 2e6, 110, idx)
	return &qep.Plan{Root: qep.Op(qep.Sort, 2e6, 110, agg)}
}

func q26() *qep.Plan {
	j := qep.Op(qep.HashJoin, 2e6, 100,
		qep.Scan("promotion", 200, 124),
		qep.Op(qep.HashJoin, 2.5e6, 110,
			qep.Scan("date_dim", 365, 141),
			qep.Op(qep.HashJoin, 2.5e6, 60,
				qep.Scan("catalog_sales", 1.5e6, 60),
				qep.Scan("web_sales", 1e6, 60))))
	agg := qep.Op(qep.HashAggregate, 8e6, 120, j)
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 120, agg)}
}

func q27() *qep.Plan {
	j := qep.Op(qep.HashJoin, 40e6, 100,
		qep.Scan("store", 120, 263),
		qep.Op(qep.HashJoin, 70e6, 110,
			qep.Scan("date_dim", 365, 141),
			qep.Scan("store_sales", 100e6, 132)))
	agg := qep.Op(qep.HashAggregate, 8e6, 110, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 8e6, 110, agg)}
}

func q32() *qep.Plan {
	base := qep.Op(qep.HashJoin, 25e6, 110,
		qep.Scan("item", 5e3, 294),
		qep.Scan("catalog_sales", 60e6, 158))
	idx := qep.Op(qep.NestedLoop, 5e6, 130, base,
		qep.Index("catalog_sales", 50000, 158))
	return &qep.Plan{Root: qep.Op(qep.HashAggregate, 12e6, 120, idx)}
}

func q33() *qep.Plan {
	j := qep.Op(qep.HashJoin, 2e6, 100,
		qep.Scan("item", 1e4, 294),
		qep.Op(qep.HashJoin, 2.5e6, 60,
			qep.Scan("store_sales", 1.5e6, 60),
			qep.Scan("web_sales", 1e6, 60)))
	agg := qep.Op(qep.HashAggregate, 7e6, 130, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 7e6, 130, agg)}
}

func q40() *qep.Plan {
	j1 := qep.Op(qep.HashJoin, 30e6, 110,
		qep.Scan("warehouse", 15, 117),
		qep.Op(qep.HashJoin, 50e6, 120,
			qep.Scan("date_dim", 60, 141),
			qep.Scan("catalog_sales", 70e6, 158)))
	j2 := qep.Op(qep.HashJoin, 12e6, 130,
		qep.Scan("catalog_returns", 3e6, 166), j1)
	idx := qep.Op(qep.NestedLoop, 3e6, 140, j2,
		qep.Index("catalog_sales", 15000, 158))
	agg := qep.Op(qep.HashAggregate, 2e6, 110, idx)
	return &qep.Plan{Root: qep.Op(qep.Sort, 2e6, 110, agg)}
}

func q46() *qep.Plan {
	j1 := qep.Op(qep.HashJoin, 50e6, 110,
		qep.Scan("household_demographics", 1800, 21),
		qep.Op(qep.HashJoin, 80e6, 120,
			qep.Scan("date_dim", 300, 141),
			qep.Scan("store_sales", 120e6, 132)))
	j2 := qep.Op(qep.HashJoin, 15e6, 130,
		qep.Scan("store_returns", 4e6, 134), j1)
	sorted := qep.Op(qep.Sort, 25e6, 40, j2)
	return &qep.Plan{Root: qep.Op(qep.GroupAggregate, 5e6, 120, sorted)}
}

func q56() *qep.Plan {
	j := qep.Op(qep.HashJoin, 12e6, 100,
		qep.Scan("item", 8e3, 294),
		qep.Op(qep.HashJoin, 25e6, 110,
			qep.Scan("web_sales", 2e6, 60),
			qep.Scan("catalog_sales", 3e6, 60)))
	agg := qep.Op(qep.HashAggregate, 5e6, 100, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 5e6, 100, agg)}
}

func q60() *qep.Plan {
	j := qep.Op(qep.HashJoin, 14e6, 100,
		qep.Scan("item", 9e3, 294),
		qep.Op(qep.HashJoin, 28e6, 110,
			qep.Scan("web_sales", 2.2e6, 60),
			qep.Scan("catalog_sales", 3.3e6, 60)))
	agg := qep.Op(qep.HashAggregate, 5.5e6, 100, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 5.5e6, 100, agg)}
}

func q61() *qep.Plan {
	j := qep.Op(qep.HashJoin, 8e6, 100,
		qep.Scan("promotion", 150, 124),
		qep.Op(qep.HashJoin, 2e6, 60,
			qep.Scan("store_sales", 1.2e6, 60),
			qep.Scan("store_returns", 0.8e6, 60)))
	agg := qep.Op(qep.HashAggregate, 12e6, 110, j)
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 110, agg)}
}

func q62() *qep.Plan {
	j := qep.Op(qep.HashJoin, 7.2e6, 30,
		qep.Scan("ship_mode", 20, 56),
		qep.Scan("web_sales", 65e6, 158))
	g := qep.Op(qep.GroupAggregate, 1e6, 90,
		qep.Op(qep.Sort, 7.2e6, 30, j))
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 90, g)}
}

func q65() *qep.Plan {
	j := qep.Op(qep.HashJoin, 250e6, 8,
		qep.Scan("store", 402, 263),
		qep.Scan("store_sales", 250e6, 132))
	sorted := qep.Op(qep.Sort, 250e6, 8, j)
	win := qep.Op(qep.WindowAgg, 100e6, 60, sorted)
	agg := qep.Op(qep.HashAggregate, 50e6, 16, win)
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 60, agg)}
}

func q66() *qep.Plan {
	j1 := qep.Op(qep.HashJoin, 20e6, 110,
		qep.Scan("warehouse", 15, 117),
		qep.Op(qep.HashJoin, 40e6, 120,
			qep.Scan("ship_mode", 4, 56),
			qep.Scan("web_sales", 55e6, 158)))
	j2 := qep.Op(qep.HashJoin, 5e6, 130,
		qep.Scan("web_returns", 2e6, 162), j1)
	win := qep.Op(qep.WindowAgg, 20e6, 60, j2)
	agg := qep.Op(qep.HashAggregate, 2e6, 110, win)
	return &qep.Plan{Root: qep.Op(qep.Sort, 6e6, 110, agg)}
}

func q70() *qep.Plan {
	j := qep.Op(qep.HashJoin, 60e6, 25,
		qep.Scan("store", 402, 263),
		qep.Op(qep.HashJoin, 90e6, 110,
			qep.Scan("date_dim", 365, 141),
			qep.Scan("store_sales", 130e6, 132)))
	sorted := qep.Op(qep.Sort, 60e6, 25, j)
	win := qep.Op(qep.WindowAgg, 50e6, 60, sorted)
	agg := qep.Op(qep.HashAggregate, 4e6, 90, win)
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 90, agg)}
}

func q71() *qep.Plan {
	channels := qep.Op(qep.HashJoin, 8e6, 80,
		qep.Scan("web_sales", 8e6, 60),
		qep.Op(qep.HashJoin, 8e6, 80,
			qep.Scan("catalog_sales", 6e6, 60),
			qep.Scan("store_sales", 2.5e6, 40)))
	j := qep.Op(qep.HashJoin, 5e6, 60,
		qep.Scan("date_dim", 30, 141),
		qep.Op(qep.HashJoin, 5e6, 70,
			qep.Scan("item", 2000, 294),
			channels))
	agg := qep.Op(qep.HashAggregate, 10e6, 100, j)
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 100, agg)}
}

func q79() *qep.Plan {
	j := qep.Op(qep.HashJoin, 45e6, 100,
		qep.Scan("household_demographics", 1500, 21),
		qep.Op(qep.HashJoin, 75e6, 110,
			qep.Scan("date_dim", 300, 141),
			qep.Scan("store_sales", 110e6, 132)))
	agg := qep.Op(qep.HashAggregate, 9e6, 110, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 9e6, 110, agg)}
}

func q82() *qep.Plan {
	inv := qep.Op(qep.HashJoin, 12e6, 80,
		qep.Scan("item", 1e5, 294),
		qep.Scan("inventory", 150e6, 20))
	j := qep.Op(qep.HashJoin, 30e6, 100, inv,
		qep.Scan("store_sales", 60e6, 132))
	agg := qep.Op(qep.HashAggregate, 5e6, 100, j)
	return &qep.Plan{Root: qep.Op(qep.Sort, 5e6, 100, agg)}
}

func q90() *qep.Plan {
	j := qep.Op(qep.HashJoin, 10e6, 110,
		qep.Scan("web_page", 500, 96),
		qep.Scan("web_sales", 30e6, 158))
	idx := qep.Op(qep.NestedLoop, 2e6, 120, j,
		qep.Index("web_returns", 8000, 162))
	agg := qep.Op(qep.HashAggregate, 1.5e6, 120, idx)
	return &qep.Plan{Root: qep.Op(qep.Limit, 100, 120, agg)}
}
