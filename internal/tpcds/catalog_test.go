package tpcds

import (
	"testing"
)

func TestCatalogTables(t *testing.T) {
	c := NewCatalog()
	ss, ok := c.Table("store_sales")
	if !ok || !ss.Fact {
		t.Fatal("store_sales must exist and be a fact table")
	}
	if ss.Bytes() < 30e9 || ss.Bytes() > 45e9 {
		t.Fatalf("store_sales size %g bytes, want ~38 GB at SF 100", ss.Bytes())
	}
	dd, ok := c.Table("date_dim")
	if !ok || dd.Fact {
		t.Fatal("date_dim must exist and be a dimension")
	}
	if _, ok := c.Table("nonexistent"); ok {
		t.Fatal("unknown table must not resolve")
	}
}

func TestCatalogFactTables(t *testing.T) {
	c := NewCatalog()
	facts := c.FactTables()
	if len(facts) != 7 {
		t.Fatalf("got %d fact tables, want 7", len(facts))
	}
	for i := 1; i < len(facts); i++ {
		if facts[i-1].Name >= facts[i].Name {
			t.Fatal("fact tables must be sorted by name")
		}
	}
	// Total fact volume approximates the benchmark's 100 GB configuration
	// (dimensions account for the remainder).
	total := c.TotalFactBytes()
	if total < 70e9 || total > 110e9 {
		t.Fatalf("total fact bytes %g, want roughly 100 GB", total)
	}
}

func TestCatalogMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCatalog().MustTable("nope")
}

func TestCatalogTablesSorted(t *testing.T) {
	c := NewCatalog()
	all := c.Tables()
	if len(all) < 20 {
		t.Fatalf("only %d tables", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("tables must be sorted")
		}
	}
}
