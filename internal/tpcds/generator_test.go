package tpcds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"contender/internal/qep"
)

func TestGenerateTemplateValid(t *testing.T) {
	cat := NewCatalog()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tpl := GenerateTemplate(cat, 1000+i, DefaultGeneratorOptions(), rng)
		if err := tpl.Plan.Validate(); err != nil {
			t.Fatalf("template %d invalid: %v", tpl.ID, err)
		}
		if len(tpl.Plan.ScannedTables()) == 0 {
			t.Fatal("generated template must scan at least one table")
		}
		spec := DefaultCostModel().Spec(cat, tpl.ID, tpl.Plan)
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}
	}
}

func TestGenerateTemplatesDeterministic(t *testing.T) {
	cat := NewCatalog()
	a := GenerateTemplates(cat, 1000, 5, DefaultGeneratorOptions(), 7)
	b := GenerateTemplates(cat, 1000, 5, DefaultGeneratorOptions(), 7)
	for i := range a {
		if a[i].Plan.String() != b[i].Plan.String() {
			t.Fatal("generation must be deterministic for a fixed seed")
		}
	}
	c := GenerateTemplates(cat, 1000, 5, DefaultGeneratorOptions(), 8)
	same := true
	for i := range a {
		if a[i].Plan.String() != c[i].Plan.String() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must generate different templates")
	}
}

func TestGenerateTemplatesIDs(t *testing.T) {
	cat := NewCatalog()
	ts := GenerateTemplates(cat, 2000, 4, DefaultGeneratorOptions(), 3)
	for i, tpl := range ts {
		if tpl.ID != 2000+i {
			t.Fatalf("id %d, want %d", tpl.ID, 2000+i)
		}
	}
}

func TestGenerateFactTableBound(t *testing.T) {
	cat := NewCatalog()
	rng := rand.New(rand.NewSource(2))
	opts := GeneratorOptions{FactTables: 2}
	tpl := GenerateTemplate(cat, 1, opts, rng)
	facts := 0
	for table := range tpl.Plan.ScannedTables() {
		if tb, ok := cat.Table(table); ok && tb.Fact {
			facts++
		}
	}
	if facts != 2 {
		t.Fatalf("scanned %d fact tables, want 2", facts)
	}
	// Requesting more fact tables than exist clamps.
	opts.FactTables = 100
	tpl = GenerateTemplate(cat, 2, opts, rng)
	if err := tpl.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated template simulates to a positive, finite
// latency with sensible accounting.
func TestGeneratedTemplatesSimulateProperty(t *testing.T) {
	cat := NewCatalog()
	cm := DefaultCostModel()
	e := quietEngine()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tpl := GenerateTemplate(cat, 1000, DefaultGeneratorOptions(), rng)
		spec := cm.Spec(cat, tpl.ID, tpl.Plan)
		res, err := e.RunIsolated(spec)
		if err != nil {
			return false
		}
		return res.Latency > 0 && res.IOFraction() > 0 && res.IOFraction() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated plans only reference catalog tables.
func TestGeneratedTablesExistProperty(t *testing.T) {
	cat := NewCatalog()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tpl := GenerateTemplate(cat, 1, DefaultGeneratorOptions(), rng)
		ok := true
		tpl.Plan.Walk(func(n *qep.Node) {
			if n.Kind.IsScan() {
				if _, exists := cat.Table(n.Table); !exists {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
