package tpcds

import (
	"testing"

	"contender/internal/sim"
)

// quietEngine returns a noise-free engine for calibration assertions.
func quietEngine() *sim.Engine {
	cfg := sim.DefaultConfig()
	cfg.SeqNoise, cfg.RandNoise, cfg.CPUNoise, cfg.InstanceNoise = 0, 0, 0, 0
	return sim.NewEngine(cfg)
}

func TestWorkloadHas25ValidTemplates(t *testing.T) {
	w := NewWorkload()
	if w.Size() != 25 {
		t.Fatalf("workload has %d templates, want 25", w.Size())
	}
	for _, tpl := range w.Templates() {
		if err := tpl.Plan.Validate(); err != nil {
			t.Errorf("template %d: %v", tpl.ID, err)
		}
		spec := w.MustSpec(tpl.ID)
		if err := spec.Validate(); err != nil {
			t.Errorf("template %d spec: %v", tpl.ID, err)
		}
		if tpl.Description == "" || tpl.Name == "" {
			t.Errorf("template %d missing metadata", tpl.ID)
		}
	}
}

func TestWorkloadLookups(t *testing.T) {
	w := NewWorkload()
	if _, ok := w.Template(71); !ok {
		t.Fatal("template 71 must exist")
	}
	if _, ok := w.Template(999); ok {
		t.Fatal("template 999 must not exist")
	}
	if w.Plan(71) == nil || w.Plan(999) != nil {
		t.Fatal("Plan lookup wrong")
	}
	if len(w.IDs()) != 25 || len(w.Plans()) != 25 {
		t.Fatal("IDs/Plans size wrong")
	}
	ids := w.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs must be ascending")
		}
	}
}

func TestWorkloadSubsetWithout(t *testing.T) {
	w := NewWorkload()
	sub := w.Subset([]int{2, 71})
	if sub.Size() != 2 {
		t.Fatalf("subset size %d", sub.Size())
	}
	rest := w.Without(2, 71)
	if rest.Size() != 23 {
		t.Fatalf("without size %d", rest.Size())
	}
	if _, ok := rest.Template(2); ok {
		t.Fatal("excluded template still present")
	}
}

func TestWorkloadMustSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorkload().MustSpec(12345)
}

// TestWorkloadCalibration pins the Section 6.1 taxonomy the experiments
// rely on: latency range, I/O-bound templates, random-I/O templates,
// CPU-heavy templates, and the memory hogs.
func TestWorkloadCalibration(t *testing.T) {
	w := NewWorkload()
	e := quietEngine()

	lat := make(map[int]float64)
	iofrac := make(map[int]float64)
	for _, id := range w.IDs() {
		res, err := e.RunIsolated(w.MustSpec(id))
		if err != nil {
			t.Fatalf("T%d: %v", id, err)
		}
		lat[id] = res.Latency
		iofrac[id] = res.IOFraction()
	}

	// Latency range: "moderate running time with a latency range of
	// 130-1000 seconds" (±10% tolerance for the simulated host).
	for id, l := range lat {
		if l < 115 || l > 1000 {
			t.Errorf("T%d isolated latency %.0f s outside the workload's range", id, l)
		}
	}

	// Extremely I/O-bound templates: ≥97% of isolated time on I/O.
	for _, id := range []int{26, 33, 61, 71} {
		if iofrac[id] < 0.97 {
			t.Errorf("T%d I/O fraction %.3f, want ≥0.97", id, iofrac[id])
		}
	}

	// CPU-heavy templates spend a substantially smaller share on I/O.
	if iofrac[65] > 0.75 {
		t.Errorf("T65 I/O fraction %.3f, want <0.75 (CPU-limited)", iofrac[65])
	}

	// Random-I/O templates perform index scans.
	for _, id := range []int{17, 25, 32} {
		var rand float64
		for _, st := range w.MustSpec(id).Stages {
			if st.Kind == sim.StageRandIO {
				rand += st.Amount
			}
		}
		if rand < 10000 {
			t.Errorf("T%d has %0.f random pages, want substantial random I/O", id, rand)
		}
	}

	// Memory-intensive templates have multi-GB working sets, with T2 the
	// largest ("the most memory-intensive query").
	ws2 := w.MustSpec(2).WorkingSetBytes
	ws22 := w.MustSpec(22).WorkingSetBytes
	if ws2 < 3e9 || ws22 < 2e9 {
		t.Errorf("memory templates too small: T2 %g, T22 %g", ws2, ws22)
	}
	for _, id := range w.IDs() {
		if id != 2 && w.MustSpec(id).WorkingSetBytes > ws2 {
			t.Errorf("T%d working set exceeds T2's", id)
		}
	}

	// Templates 22 and 82 share the inventory fact scan.
	if !w.Plan(22).ScannedTables()["inventory"] || !w.Plan(82).ScannedTables()["inventory"] {
		t.Error("templates 22 and 82 must both scan inventory")
	}

	// Templates 56 and 60 are structural twins: same plan-step multiset.
	if w.Plan(56).Steps() != w.Plan(60).Steps() {
		t.Error("templates 56 and 60 must have the same number of plan steps")
	}
}

func TestSpoilerGrowthCategories(t *testing.T) {
	w := NewWorkload()
	e := quietEngine()
	growth := func(id int) float64 {
		spec := w.MustSpec(id)
		iso, err := e.RunIsolated(spec)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := e.RunWithSpoiler(spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		return sp.Latency / iso.Latency
	}
	light, io, mem := growth(62), growth(71), growth(22)
	if !(light < io && io < mem) {
		t.Fatalf("spoiler growth ordering wrong: light %.1fx, I/O %.1fx, memory %.1fx", light, io, mem)
	}
}

func TestDuplicateTemplateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tpl := Templates()[:2]
	dup := []Template{tpl[0], tpl[0]}
	NewWorkloadWith(NewCatalog(), DefaultCostModel(), dup)
}

func TestCatalogScaled(t *testing.T) {
	c := NewCatalog()
	s := c.Scaled(2)
	ss, _ := s.Table("store_sales")
	orig, _ := c.Table("store_sales")
	if ss.RowCount != 2*orig.RowCount {
		t.Fatal("fact rows must scale")
	}
	dd, _ := s.Table("date_dim")
	origDD, _ := c.Table("date_dim")
	if dd.RowCount != origDD.RowCount {
		t.Fatal("dimension rows must not scale")
	}
	// Degenerate factor behaves as identity.
	id := c.Scaled(0)
	ss0, _ := id.Table("store_sales")
	if ss0.RowCount != orig.RowCount {
		t.Fatal("factor 0 must behave as identity")
	}
}

func TestWorkloadScaled(t *testing.T) {
	w := NewWorkload()
	g := w.Scaled(1.5)
	if g.Size() != w.Size() {
		t.Fatal("template count changed")
	}
	e := quietEngine()
	for _, id := range []int{71, 62, 22} {
		iso, err := e.RunIsolated(w.MustSpec(id))
		if err != nil {
			t.Fatal(err)
		}
		grown, err := e.RunIsolated(g.MustSpec(id))
		if err != nil {
			t.Fatal(err)
		}
		ratio := grown.Latency / iso.Latency
		if ratio < 1.35 || ratio > 1.6 {
			t.Errorf("T%d grew by %.2fx, want ~1.5x", id, ratio)
		}
	}
	// Working sets scale with the data.
	if g.MustSpec(2).WorkingSetBytes <= w.MustSpec(2).WorkingSetBytes {
		t.Error("working set must grow")
	}
	// The original workload is untouched.
	if w.Catalog.MustTable("store_sales").RowCount != 288e6 {
		t.Error("Scaled must not mutate the original catalog")
	}
}
