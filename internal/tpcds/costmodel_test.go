package tpcds

import (
	"testing"

	"contender/internal/qep"
	"contender/internal/sim"
)

func TestCostSimpleScanPlan(t *testing.T) {
	cat := NewCatalog()
	cm := DefaultCostModel()
	plan := &qep.Plan{Root: qep.Scan("store_sales", 1e6, 132)}
	prof := cm.Cost(cat, plan)

	if len(prof.SeqScans) != 1 || prof.SeqScans[0].Table != "store_sales" {
		t.Fatalf("SeqScans = %+v", prof.SeqScans)
	}
	if prof.SeqScans[0].Bytes != cat.MustTable("store_sales").Bytes() {
		t.Fatal("scan bytes must equal the full table size")
	}
	// Scan CPU charged on full row count, not the post-filter estimate.
	wantCPU := cat.MustTable("store_sales").RowCount * cm.ScanCPUPerRow * 1e-6
	if prof.CPUSeconds != wantCPU {
		t.Fatalf("CPU = %g, want %g", prof.CPUSeconds, wantCPU)
	}
	if prof.WorkingSetReuse != cm.WorkingSetReuseBase {
		t.Fatal("plain scan must have the base reuse only")
	}
}

func TestCostDimensionScansAreCached(t *testing.T) {
	cat := NewCatalog()
	cm := DefaultCostModel()
	plan := &qep.Plan{Root: qep.Scan("date_dim", 100, 141)}
	prof := cm.Cost(cat, plan)
	if len(prof.SeqScans) != 0 {
		t.Fatal("dimension scans must not hit the disk")
	}
	if prof.CachedBytes != cat.MustTable("date_dim").Bytes() {
		t.Fatal("dimension bytes must be cached reads")
	}
}

func TestCostOperators(t *testing.T) {
	cat := NewCatalog()
	cm := DefaultCostModel()
	build := qep.Scan("date_dim", 1000, 141)
	probe := qep.Scan("store_sales", 5e6, 132)
	join := qep.Op(qep.HashJoin, 5e6, 100, build, probe)
	sortN := qep.Op(qep.Sort, 5e6, 100, join)
	plan := &qep.Plan{Root: sortN}
	prof := cm.Cost(cat, plan)

	// Hash join pins its build side.
	if prof.WorkingSetBytes < 1000*141 {
		t.Fatal("hash join build must contribute to the working set")
	}
	// Sort pins its input (5e6 rows × 100 B).
	if prof.WorkingSetBytes < 5e6*100 {
		t.Fatalf("sort input missing from working set: %g", prof.WorkingSetBytes)
	}
	wantReuse := cm.WorkingSetReuseBase + cm.ReusePerSort + cm.ReusePerHashJoin
	if prof.WorkingSetReuse != wantReuse {
		t.Fatalf("reuse = %g, want %g", prof.WorkingSetReuse, wantReuse)
	}
}

func TestCostIndexScan(t *testing.T) {
	cat := NewCatalog()
	cm := DefaultCostModel()
	plan := &qep.Plan{Root: qep.Index("catalog_sales", 5000, 158)}
	prof := cm.Cost(cat, plan)
	if prof.RandomPages != 5000 {
		t.Fatalf("random pages = %g, want 5000", prof.RandomPages)
	}
	if len(prof.SeqScans) != 0 {
		t.Fatal("index scan must not add sequential demand")
	}
}

func TestSpecAssembly(t *testing.T) {
	cat := NewCatalog()
	cm := DefaultCostModel()
	plan := &qep.Plan{Root: qep.Op(qep.HashJoin, 1e6, 100,
		qep.Scan("date_dim", 100, 141),
		qep.Op(qep.NestedLoop, 1e6, 120,
			qep.Scan("store_sales", 2e6, 132),
			qep.Index("catalog_sales", 3000, 158)))}
	spec := cm.Spec(cat, 42, plan)
	if spec.TemplateID != 42 {
		t.Fatal("template id not propagated")
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	var kinds []sim.StageKind
	for _, s := range spec.Stages {
		kinds = append(kinds, s.Kind)
	}
	// Expected order: cached dims, (seq scan, cpu)×1, (rand, cpu), final cpu.
	want := []sim.StageKind{
		sim.StageCachedIO,
		sim.StageSeqIO, sim.StageCPU,
		sim.StageRandIO, sim.StageCPU,
		sim.StageCPU,
	}
	if len(kinds) != len(want) {
		t.Fatalf("stage kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("stage %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// CPU total is split evenly across the chunks.
	prof := cm.Cost(cat, plan)
	var cpu float64
	for _, s := range spec.Stages {
		if s.Kind == sim.StageCPU {
			cpu += s.Amount
		}
	}
	if d := cpu - prof.CPUSeconds; d > 1e-9 || d < -1e-9 {
		t.Fatalf("CPU split %g != total %g", cpu, prof.CPUSeconds)
	}
}

func TestRestartCost(t *testing.T) {
	stages := RestartCost()
	if len(stages) == 0 {
		t.Fatal("restart cost must not be empty")
	}
	var hasCPU, hasIO bool
	for _, s := range stages {
		switch s.Kind {
		case sim.StageCPU:
			hasCPU = true
		case sim.StageSeqIO:
			hasIO = true
			if s.Table == "" {
				t.Fatal("restart I/O needs a table for disk accounting")
			}
		}
	}
	if !hasCPU || !hasIO {
		t.Fatal("restart cost must include plan generation (CPU) and dimension re-caching (I/O)")
	}
}
