package tpcds

import (
	"math"

	"contender/internal/qep"
	"contender/internal/sim"
)

// CostModel converts a query execution plan into a simulator resource
// profile, playing the role the executor's cost accounting plays on a real
// system. Coefficients are CPU microseconds per row unless noted.
type CostModel struct {
	ScanCPUPerRow        float64 // predicate evaluation during scans
	IndexCPUPerRow       float64 // per row fetched via an index
	HashJoinCPUPerRow    float64 // per build+probe row
	MergeJoinCPUPerRow   float64
	NestedLoopCPUPerRow  float64 // per outer row
	SortCPUPerCmp        float64 // per n·log2(n) comparison
	HashAggCPUPerRow     float64 // per input row
	GroupAggCPUPerRow    float64
	WindowAggCPUPerRow   float64
	MaterializeCPUPerRow float64

	// WorkingSetReuseBase is the minimum number of passes over spilled
	// working-set bytes (write + read). Sort and hash operators add passes.
	WorkingSetReuseBase float64
	ReusePerSort        float64
	ReusePerHashAgg     float64
	ReusePerHashJoin    float64
	ReusePerMaterialize float64
}

// DefaultCostModel returns the coefficients used by the default workload.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanCPUPerRow:        0.02,
		IndexCPUPerRow:       2.0,
		HashJoinCPUPerRow:    0.2,
		MergeJoinCPUPerRow:   0.1,
		NestedLoopCPUPerRow:  0.5,
		SortCPUPerCmp:        0.02,
		HashAggCPUPerRow:     0.15,
		GroupAggCPUPerRow:    0.05,
		WindowAggCPUPerRow:   0.2,
		MaterializeCPUPerRow: 0.02,

		WorkingSetReuseBase: 2,
		ReusePerSort:        5,
		ReusePerHashAgg:     3,
		ReusePerHashJoin:    1,
		ReusePerMaterialize: 1,
	}
}

const usec = 1e-6

// Profile is the intermediate costing result for a plan.
type Profile struct {
	CPUSeconds      float64
	WorkingSetBytes float64
	WorkingSetReuse float64
	// SeqScans lists sequential fact-table scans (table, bytes) in plan
	// (left-to-right leaf) order.
	SeqScans []ScanDemand
	// CachedBytes is dimension-table volume read from the buffer pool.
	CachedBytes float64
	// RandomPages counts random I/O page fetches.
	RandomPages float64
}

// ScanDemand is one sequential fact-table scan.
type ScanDemand struct {
	Table string
	Bytes float64
}

// Cost derives the resource profile of a plan against a catalog.
func (cm CostModel) Cost(cat *Catalog, p *qep.Plan) Profile {
	var prof Profile
	var walk func(n *qep.Node)
	walk = func(n *qep.Node) {
		if n == nil {
			return
		}
		// Children first: leaf order matches execution order.
		for _, c := range n.Children {
			walk(c)
		}
		switch n.Kind {
		case qep.SeqScan:
			t := cat.MustTable(n.Table)
			if t.Fact {
				prof.SeqScans = append(prof.SeqScans, ScanDemand{Table: t.Name, Bytes: t.Bytes()})
			} else {
				prof.CachedBytes += t.Bytes()
			}
			// Predicate evaluation touches every stored row; n.Rows is the
			// post-filter estimate consumed by parent operators.
			prof.CPUSeconds += t.RowCount * cm.ScanCPUPerRow * usec
		case qep.IndexScan:
			prof.RandomPages += n.Rows
			prof.CPUSeconds += n.Rows * cm.IndexCPUPerRow * usec
		case qep.HashJoin:
			build, probe := childRows(n, 0), childRows(n, 1)
			prof.CPUSeconds += (build + probe) * cm.HashJoinCPUPerRow * usec
			prof.WorkingSetBytes += build * childWidth(n, 0)
			prof.WorkingSetReuse += cm.ReusePerHashJoin
		case qep.MergeJoin:
			prof.CPUSeconds += (childRows(n, 0) + childRows(n, 1)) * cm.MergeJoinCPUPerRow * usec
		case qep.NestedLoop:
			prof.CPUSeconds += childRows(n, 0) * cm.NestedLoopCPUPerRow * usec
		case qep.Sort:
			in := childRows(n, 0)
			if in > 1 {
				prof.CPUSeconds += in * math.Log2(in) * cm.SortCPUPerCmp * usec
			}
			prof.WorkingSetBytes += in * childWidth(n, 0)
			prof.WorkingSetReuse += cm.ReusePerSort
		case qep.HashAggregate:
			prof.CPUSeconds += childRows(n, 0) * cm.HashAggCPUPerRow * usec
			prof.WorkingSetBytes += n.Rows * float64(n.Width)
			prof.WorkingSetReuse += cm.ReusePerHashAgg
		case qep.GroupAggregate:
			prof.CPUSeconds += childRows(n, 0) * cm.GroupAggCPUPerRow * usec
		case qep.WindowAgg:
			prof.CPUSeconds += childRows(n, 0) * cm.WindowAggCPUPerRow * usec
		case qep.Materialize:
			prof.CPUSeconds += childRows(n, 0) * cm.MaterializeCPUPerRow * usec
			prof.WorkingSetBytes += childRows(n, 0) * childWidth(n, 0)
			prof.WorkingSetReuse += cm.ReusePerMaterialize
		case qep.Limit:
			// Free.
		}
	}
	walk(p.Root)
	prof.WorkingSetReuse += cm.WorkingSetReuseBase
	return prof
}

// Spec assembles a simulator QuerySpec from a costed plan. CPU work is
// interleaved between the scan stages (a chunk after each leaf plus a final
// chunk), approximating pipelined execution.
func (cm CostModel) Spec(cat *Catalog, templateID int, p *qep.Plan) sim.QuerySpec {
	prof := cm.Cost(cat, p)
	spec := sim.QuerySpec{
		TemplateID:      templateID,
		WorkingSetBytes: prof.WorkingSetBytes,
		WorkingSetReuse: prof.WorkingSetReuse,
	}
	// Leaf I/O stages: cached dimension reads first (they warm the plan),
	// then fact scans in plan order, then random I/O.
	nChunks := len(prof.SeqScans) + 1
	if prof.RandomPages > 0 {
		nChunks++
	}
	cpuChunk := prof.CPUSeconds / float64(nChunks)

	if prof.CachedBytes > 0 {
		spec.Stages = append(spec.Stages, sim.Stage{Kind: sim.StageCachedIO, Amount: prof.CachedBytes})
	}
	for _, s := range prof.SeqScans {
		spec.Stages = append(spec.Stages,
			sim.Stage{Kind: sim.StageSeqIO, Table: s.Table, Amount: s.Bytes},
			sim.Stage{Kind: sim.StageCPU, Amount: cpuChunk},
		)
	}
	if prof.RandomPages > 0 {
		spec.Stages = append(spec.Stages,
			sim.Stage{Kind: sim.StageRandIO, Table: "index", Amount: prof.RandomPages},
			sim.Stage{Kind: sim.StageCPU, Amount: cpuChunk},
		)
	}
	spec.Stages = append(spec.Stages, sim.Stage{Kind: sim.StageCPU, Amount: cpuChunk})
	return spec
}

func childRows(n *qep.Node, i int) float64 {
	if i >= len(n.Children) {
		return 0
	}
	return n.Children[i].Rows
}

func childWidth(n *qep.Node, i int) float64 {
	if i >= len(n.Children) {
		return 0
	}
	return float64(n.Children[i].Width)
}

// RestartCost returns the per-instance restart overhead of a steady-state
// stream: query-plan generation (CPU) plus re-caching dimension tables
// (disk reads that contend with everyone else). Section 6.1 of the paper
// identifies this cost as the source of the rare observed-above-spoiler
// outliers for short queries paired with long ones.
func RestartCost() []sim.Stage {
	return []sim.Stage{
		{Kind: sim.StageCPU, Amount: 1.5},
		{Kind: sim.StageSeqIO, Table: "dim_cache", Amount: 150 << 20},
	}
}
