package tpcds

import (
	"fmt"
	"math/rand"

	"contender/internal/qep"
)

// Template generation: synthesize plausible ad-hoc analytical templates —
// random join trees over the catalog with realistic cardinalities — for
// stress-testing the new-template prediction pipeline. Contender's whole
// point is handling queries it has never seen; the generator provides an
// unbounded supply of them.

// GeneratorOptions bounds the shape of generated templates.
type GeneratorOptions struct {
	// FactTables is the number of fact tables scanned (1–3 typical).
	// Zero picks randomly in [1,3].
	FactTables int
	// AllowIndexScan permits a random-I/O stage.
	AllowIndexScan bool
	// AllowSort permits a top-level sort (working-set pressure).
	AllowSort bool
}

// DefaultGeneratorOptions allows the full shape space.
func DefaultGeneratorOptions() GeneratorOptions {
	return GeneratorOptions{AllowIndexScan: true, AllowSort: true}
}

// GenerateTemplate synthesizes one random template against the catalog.
// The ID is caller-chosen (use values ≥ 1000 to avoid the bundled set).
// Generation is deterministic for a fixed rng state.
func GenerateTemplate(cat *Catalog, id int, opts GeneratorOptions, rng *rand.Rand) Template {
	facts := cat.FactTables()
	nFacts := opts.FactTables
	if nFacts <= 0 {
		nFacts = 1 + rng.Intn(3)
	}
	if nFacts > len(facts) {
		nFacts = len(facts)
	}
	// Pick distinct fact tables.
	perm := rng.Perm(len(facts))[:nFacts]

	dims := []string{"date_dim", "item", "store", "promotion", "household_demographics", "customer_address"}

	// Build a left-deep join tree: each fact scan joins against a dim
	// build side; fact-fact joins keep the smaller estimate as the build.
	var tree *qep.Node
	for i, fi := range perm {
		ft := facts[fi]
		sel := 0.005 + rng.Float64()*0.05 // post-filter selectivity
		scan := qep.Scan(ft.Name, ft.RowCount*sel, widthFor(rng))
		dim := dims[rng.Intn(len(dims))]
		dt := cat.MustTable(dim)
		dimSel := 0.001 + rng.Float64()*0.1
		join := qep.Op(qep.HashJoin, scan.Rows*0.8, widthFor(rng),
			qep.Scan(dim, dt.RowCount*dimSel, dt.RowBytes),
			scan)
		if i == 0 {
			tree = join
		} else {
			build, probe := join, tree
			if build.Rows > probe.Rows {
				build, probe = probe, build
			}
			tree = qep.Op(qep.HashJoin, probe.Rows*0.6, widthFor(rng), build, probe)
		}
	}

	if opts.AllowIndexScan && rng.Float64() < 0.35 {
		ft := facts[rng.Intn(len(facts))]
		pages := float64(5000 + rng.Intn(45000))
		tree = qep.Op(qep.NestedLoop, tree.Rows*0.5, widthFor(rng),
			tree, qep.Index(ft.Name, pages, ft.RowBytes))
	}

	groups := tree.Rows * (0.05 + rng.Float64()*0.4)
	tree = qep.Op(qep.HashAggregate, groups, widthFor(rng), tree)
	if opts.AllowSort && rng.Float64() < 0.6 {
		tree = qep.Op(qep.Sort, tree.Rows, tree.Width, tree)
	}
	if rng.Float64() < 0.3 {
		tree = qep.Op(qep.Limit, 100, tree.Width, tree)
	}

	t := Template{
		ID:          id,
		Name:        fmt.Sprintf("G%d", id),
		Description: fmt.Sprintf("generated ad-hoc template over %d fact table(s)", nFacts),
		Plan:        &qep.Plan{Root: tree},
	}
	if err := t.Plan.Validate(); err != nil {
		panic(fmt.Sprintf("tpcds: generated invalid plan: %v", err))
	}
	return t
}

// GenerateTemplates synthesizes n templates with IDs base..base+n-1.
func GenerateTemplates(cat *Catalog, base, n int, opts GeneratorOptions, seed int64) []Template {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Template, n)
	for i := range out {
		out[i] = GenerateTemplate(cat, base+i, opts, rng)
	}
	return out
}

func widthFor(rng *rand.Rand) int { return 40 + rng.Intn(120) }
