package tpcds

import (
	"fmt"
	"sort"

	"contender/internal/qep"
	"contender/internal/sim"
)

// Workload bundles the catalog, the template set, and the cost model, and
// memoizes each template's simulator spec. It is the single source of truth
// the experiments draw queries from.
type Workload struct {
	Catalog   *Catalog
	CostModel CostModel

	templates []Template
	byID      map[int]Template
	specs     map[int]sim.QuerySpec
}

// NewWorkload builds the default 25-template workload.
func NewWorkload() *Workload {
	return NewWorkloadWith(NewCatalog(), DefaultCostModel(), Templates())
}

// NewWorkloadWith builds a workload from explicit parts (used by tests and
// by callers that define their own ad-hoc templates).
func NewWorkloadWith(cat *Catalog, cm CostModel, templates []Template) *Workload {
	w := &Workload{
		Catalog:   cat,
		CostModel: cm,
		templates: append([]Template(nil), templates...),
		byID:      make(map[int]Template, len(templates)),
		specs:     make(map[int]sim.QuerySpec, len(templates)),
	}
	sort.Slice(w.templates, func(i, j int) bool { return w.templates[i].ID < w.templates[j].ID })
	for _, t := range w.templates {
		if _, dup := w.byID[t.ID]; dup {
			panic(fmt.Sprintf("tpcds: duplicate template id %d", t.ID))
		}
		w.byID[t.ID] = t
		w.specs[t.ID] = cm.Spec(cat, t.ID, t.Plan)
	}
	return w
}

// Templates returns the workload templates sorted by ID.
func (w *Workload) Templates() []Template { return w.templates }

// IDs returns the template IDs in ascending order.
func (w *Workload) IDs() []int {
	ids := make([]int, len(w.templates))
	for i, t := range w.templates {
		ids[i] = t.ID
	}
	return ids
}

// Size returns the number of templates.
func (w *Workload) Size() int { return len(w.templates) }

// Template returns the template with the given ID.
func (w *Workload) Template(id int) (Template, bool) {
	t, ok := w.byID[id]
	return t, ok
}

// Plan returns the QEP of template id, or nil if unknown.
func (w *Workload) Plan(id int) *qep.Plan {
	if t, ok := w.byID[id]; ok {
		return t.Plan
	}
	return nil
}

// Spec returns the simulator resource profile of template id.
func (w *Workload) Spec(id int) (sim.QuerySpec, bool) {
	s, ok := w.specs[id]
	return s, ok
}

// MustSpec returns the spec of template id or panics (programming error).
func (w *Workload) MustSpec(id int) sim.QuerySpec {
	s, ok := w.specs[id]
	if !ok {
		panic(fmt.Sprintf("tpcds: unknown template %d", id))
	}
	return s
}

// Plans returns all template plans in ID order (input for the ML feature
// space).
func (w *Workload) Plans() []*qep.Plan {
	out := make([]*qep.Plan, len(w.templates))
	for i, t := range w.templates {
		out[i] = t.Plan
	}
	return out
}

// Subset returns a new workload restricted to the given template IDs.
// Unknown IDs panic (programming error in experiment setup).
func (w *Workload) Subset(ids []int) *Workload {
	ts := make([]Template, 0, len(ids))
	for _, id := range ids {
		t, ok := w.byID[id]
		if !ok {
			panic(fmt.Sprintf("tpcds: unknown template %d", id))
		}
		ts = append(ts, t)
	}
	return NewWorkloadWith(w.Catalog, w.CostModel, ts)
}

// Scaled returns the same templates costed against a catalog whose fact
// tables have grown by the given factor — the substrate for the paper's
// expanding-database extension. Plan shapes are unchanged; fact-scan
// volumes and cardinality estimates (and with them join traffic and
// intermediate-result sizes) grow with the data, while dimension-side
// cardinalities stay fixed.
func (w *Workload) Scaled(factor float64) *Workload {
	if factor <= 0 {
		factor = 1
	}
	cat := w.Catalog.Scaled(factor)
	ts := make([]Template, len(w.templates))
	for i, t := range w.templates {
		t.Plan = scalePlan(cat, t.Plan, factor)
		ts[i] = t
	}
	return NewWorkloadWith(cat, w.CostModel, ts)
}

// scalePlan deep-copies a plan, growing the cardinality estimates of fact
// scans and of every interior operator (whose outputs are driven by the
// fact-side inputs) by factor. Dimension scans keep their estimates.
func scalePlan(cat *Catalog, p *qep.Plan, factor float64) *qep.Plan {
	var clone func(n *qep.Node) *qep.Node
	clone = func(n *qep.Node) *qep.Node {
		if n == nil {
			return nil
		}
		out := &qep.Node{Kind: n.Kind, Table: n.Table, Rows: n.Rows, Width: n.Width}
		switch {
		case n.Kind.IsScan():
			if t, ok := cat.Table(n.Table); ok && t.Fact {
				out.Rows *= factor
			}
		default:
			out.Rows *= factor
		}
		for _, c := range n.Children {
			out.Children = append(out.Children, clone(c))
		}
		return out
	}
	return &qep.Plan{Root: clone(p.Root)}
}

// Without returns a new workload excluding the given template IDs.
func (w *Workload) Without(ids ...int) *Workload {
	excl := make(map[int]bool, len(ids))
	for _, id := range ids {
		excl[id] = true
	}
	var keep []int
	for _, t := range w.templates {
		if !excl[t.ID] {
			keep = append(keep, t.ID)
		}
	}
	return w.Subset(keep)
}
