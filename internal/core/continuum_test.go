package core

import (
	"testing"
	"testing/quick"
)

func TestContinuumPointAndLatency(t *testing.T) {
	c := Continuum{Min: 100, Max: 300}
	if !c.Valid() {
		t.Fatal("continuum must be valid")
	}
	if c.Point(100) != 0 {
		t.Fatal("isolated latency maps to 0")
	}
	if c.Point(300) != 1 {
		t.Fatal("spoiler latency maps to 1")
	}
	if c.Point(200) != 0.5 {
		t.Fatal("midpoint maps to 0.5")
	}
	// Out-of-range values are preserved, not clamped.
	if c.Point(400) != 1.5 {
		t.Fatal("overflow must not clamp")
	}
	if c.Point(50) != -0.25 {
		t.Fatal("negative points must be possible (positive interactions)")
	}
	if c.Latency(0.5) != 200 {
		t.Fatal("Latency must invert Point")
	}
}

func TestContinuumInvalid(t *testing.T) {
	bad := []Continuum{
		{Min: 100, Max: 100},
		{Min: 100, Max: 50},
		{Min: 0, Max: 100},
	}
	for i, c := range bad {
		if c.Valid() {
			t.Errorf("case %d: continuum %+v should be invalid", i, c)
		}
		if c.Point(123) != 0 {
			t.Errorf("case %d: invalid continuum must map to 0", i)
		}
	}
}

func TestContinuumOutlier(t *testing.T) {
	c := Continuum{Min: 100, Max: 200}
	if c.IsOutlier(205) {
		t.Fatal("205 is within 105% of the spoiler")
	}
	if !c.IsOutlier(211) {
		t.Fatal("211 exceeds 105% of the spoiler")
	}
}

func TestContinuumForFromKnowledge(t *testing.T) {
	k := NewKnowledge()
	k.AddTemplate(TemplateStats{
		ID: 1, IsolatedLatency: 100,
		SpoilerLatency: map[int]float64{3: 400},
	})
	c, ok := k.ContinuumFor(1, 3)
	if !ok || c.Min != 100 || c.Max != 400 {
		t.Fatalf("continuum %+v ok=%v", c, ok)
	}
	if _, ok := k.ContinuumFor(1, 5); ok {
		t.Fatal("missing MPL must report !ok")
	}
	if _, ok := k.ContinuumFor(99, 3); ok {
		t.Fatal("missing template must report !ok")
	}
}

// Property: Latency(Point(l)) == l for valid continuums.
func TestContinuumRoundTrip(t *testing.T) {
	f := func(minRaw, widthRaw, latRaw uint16) bool {
		min := 1 + float64(minRaw)
		max := min + 1 + float64(widthRaw)
		c := Continuum{Min: min, Max: max}
		l := float64(latRaw)
		back := c.Latency(c.Point(l))
		return almostEq(back, l, 1e-9*(1+l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
