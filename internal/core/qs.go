package core

import (
	"fmt"
	"sort"

	"contender/internal/stats"
)

// This file implements Sections 5.2–5.3: Query Sensitivity models for known
// templates (fit by regression on sampled mixes) and for previously unseen
// templates (estimated from the reference models without any concurrent
// sampling).

// QSModel is the per-template linear model c = µ·r + b (Eq. 7) mapping a
// mix's CQI to the template's continuum point. µ captures how quickly the
// template responds to resource scarcity; b is its minimum slowdown under
// concurrency (possibly negative for templates that benefit from sharing).
type QSModel struct {
	Mu float64 // slope µ_t
	B  float64 // y-intercept b_t
}

// Point evaluates the model at CQI r.
func (m QSModel) Point(r float64) float64 { return m.Mu*r + m.B }

// FitQS fits a QS model from paired (CQI, continuum point) training
// samples.
func FitQS(cqis, points []float64) (QSModel, error) {
	lin, err := stats.FitLinear(cqis, points)
	if err != nil {
		return QSModel{}, fmt.Errorf("core: fitting QS model: %w", err)
	}
	return QSModel{Mu: lin.Slope, B: lin.Intercept}, nil
}

// ReferenceModels is the set of QS models Contender has learned for known
// templates at one MPL, together with the isolated latencies it needs to
// transfer them to new templates.
type ReferenceModels struct {
	MPL    int
	models map[int]QSModel
	know   *Knowledge
}

// NewReferenceModels creates an empty reference set bound to a knowledge
// base.
func NewReferenceModels(know *Knowledge, mpl int) *ReferenceModels {
	return &ReferenceModels{MPL: mpl, models: make(map[int]QSModel), know: know}
}

// Add registers a fitted QS model for a known template.
func (r *ReferenceModels) Add(id int, m QSModel) { r.models[id] = m }

// Model returns the QS model of template id.
func (r *ReferenceModels) Model(id int) (QSModel, bool) {
	m, ok := r.models[id]
	return m, ok
}

// IDs returns the template IDs with reference models, ascending.
func (r *ReferenceModels) IDs() []int {
	ids := make([]int, 0, len(r.models))
	for id := range r.models {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Len returns the number of reference models.
func (r *ReferenceModels) Len() int { return len(r.models) }

// Coefficients returns the (µ, b) pairs of all reference models in ID
// order — the data behind Figure 4's coefficient-relationship study.
func (r *ReferenceModels) Coefficients() (mus, bs []float64) {
	for _, id := range r.IDs() {
		m := r.models[id]
		mus = append(mus, m.Mu)
		bs = append(bs, m.B)
	}
	return mus, bs
}

// isolatedLatencies returns the isolated latency of each reference
// template in ID order.
func (r *ReferenceModels) isolatedLatencies() []float64 {
	out := make([]float64, 0, len(r.models))
	for _, id := range r.IDs() {
		out = append(out, r.know.MustTemplate(id).IsolatedLatency)
	}
	return out
}

// EstimateForNew predicts a full QS model for a never-sampled template from
// its isolated latency alone (the paper's Unknown-QS approach, Section
// 5.3): a first regression over the reference set estimates µ from l_min
// (Table 3 found isolated latency the best-correlated feature, inversely
// related to slope), and a second regression estimates b from µ using the
// strong linear relationship between the coefficients (Figure 4).
func (r *ReferenceModels) EstimateForNew(isolatedLatency float64) (QSModel, error) {
	if len(r.models) < 2 {
		return QSModel{}, fmt.Errorf("core: need at least 2 reference models, have %d", len(r.models))
	}
	mus, bs := r.Coefficients()
	lmins := r.isolatedLatencies()

	muFit, err := stats.FitLinear(lmins, mus)
	if err != nil {
		return QSModel{}, fmt.Errorf("core: µ regression: %w", err)
	}
	mu := muFit.Predict(isolatedLatency)

	bFit, err := stats.FitLinear(mus, bs)
	if err != nil {
		return QSModel{}, fmt.Errorf("core: b regression: %w", err)
	}
	return QSModel{Mu: mu, B: bFit.Predict(mu)}, nil
}

// EstimateInterceptFromMu predicts only the y-intercept from a known slope
// (the paper's Unknown-Y comparison point, where µ is taken from a model
// fitted on the new template itself and only b is transferred).
func (r *ReferenceModels) EstimateInterceptFromMu(mu float64) (QSModel, error) {
	if len(r.models) < 2 {
		return QSModel{}, fmt.Errorf("core: need at least 2 reference models, have %d", len(r.models))
	}
	mus, bs := r.Coefficients()
	bFit, err := stats.FitLinear(mus, bs)
	if err != nil {
		return QSModel{}, fmt.Errorf("core: b regression: %w", err)
	}
	return QSModel{Mu: mu, B: bFit.Predict(mu)}, nil
}

// CoefficientRelation fits the Figure 4 regression b = f(µ) over the
// reference set and returns the fit plus its R².
func (r *ReferenceModels) CoefficientRelation() (stats.Linear, float64, error) {
	mus, bs := r.Coefficients()
	fit, err := stats.FitLinear(mus, bs)
	if err != nil {
		return stats.Linear{}, 0, err
	}
	return fit, stats.LinearR2(mus, bs), nil
}
