package core

import "fmt"

// The serving index flattens the per-prediction model lookups the same way
// cqiIndex flattens the knowledge base: predictKnown used to chase three
// maps per call (refs[mpl] → refs.Model(primary) → ContinuumFor), each a
// hash + pointer hop. servIndex precomputes one servCell per
// (template slot, trained MPL) pair — QS slope/intercept and continuum
// endpoints side by side in a contiguous slab — so a prediction is slot
// arithmetic, one cell load, and the CQI kernel.
//
// The index is keyed by the cqiIndex snapshot it was built against:
// mutating the knowledge base invalidates the cqiIndex, which makes the
// identity check in serving() fail and triggers a rebuild. Reference
// models are add-only after Train, so no separate invalidation hook is
// needed.

const (
	cellHasQS uint8 = 1 << iota
	cellHasCont
)

// servCell is one (template, MPL) serving entry: the fitted QS model and
// the performance continuum, pre-resolved. flags record which halves
// exist so missing-model errors stay cheap and precise.
type servCell struct {
	mu, b      float64 // QS model c = µ·r + b
	cmin, cmax float64 // continuum [l_min, l_max]
	flags      uint8
}

// servIndex is an immutable serving snapshot for one cqiIndex.
type servIndex struct {
	idx     *cqiIndex // the knowledge snapshot this was built against
	nm      int       // number of trained MPLs
	minMPL  int
	mplSlot []int32    // mpl-minMPL → column, -1 untrained
	cells   []servCell // n×nm slab: cells[slot*nm+col]
}

// mplIdx maps an MPL to its column in the cell slab, or -1 when no
// reference models were trained at that MPL.
//
//contender:hotpath
func (s *servIndex) mplIdx(mpl int) int {
	d := mpl - s.minMPL
	if uint(d) < uint(len(s.mplSlot)) {
		return int(s.mplSlot[d])
	}
	return -1
}

// serving returns the serving index for the given knowledge snapshot,
// rebuilding it the first time the snapshot is seen. The fast path is a
// single atomic load plus a pointer compare; rebuilds serialize on the
// predictor's build mutex.
func (p *Predictor) serving(idx *cqiIndex) *servIndex {
	if s := p.serv.Load(); s != nil && s.idx == idx {
		return s
	}
	p.smu.Lock()
	defer p.smu.Unlock()
	if s := p.serv.Load(); s != nil && s.idx == idx {
		return s
	}
	s := p.buildServing(idx)
	p.serv.Store(s)
	return s
}

func (p *Predictor) buildServing(idx *cqiIndex) *servIndex {
	mpls := p.MPLs()
	s := &servIndex{idx: idx, nm: len(mpls)}
	if len(mpls) == 0 {
		return s
	}
	s.minMPL = mpls[0]
	s.mplSlot = make([]int32, mpls[len(mpls)-1]-s.minMPL+1)
	for i := range s.mplSlot {
		s.mplSlot[i] = -1
	}
	for col, mpl := range mpls {
		s.mplSlot[mpl-s.minMPL] = int32(col)
	}
	s.cells = make([]servCell, idx.n*s.nm)
	for id, slot := range idx.pos {
		for col, mpl := range mpls {
			cell := &s.cells[slot*s.nm+col]
			if qs, ok := p.refs[mpl].Model(id); ok {
				cell.mu, cell.b = qs.Mu, qs.B
				cell.flags |= cellHasQS
			}
			if cont, ok := p.Know.ContinuumFor(id, mpl); ok {
				cell.cmin, cell.cmax = cont.Min, cont.Max
				cell.flags |= cellHasCont
			}
		}
	}
	return s
}

// cellFor validates a (primary, mix-size) pair against the serving index
// and returns the matching cell plus the primary's slot. The error cases
// and messages mirror the historical predictKnown checks exactly, in the
// same precedence order: empty mix, untrained MPL, unknown template,
// missing QS model, missing continuum.
//
//contender:hotpath
func (p *Predictor) cellFor(s *servIndex, idx *cqiIndex, primary, nconc int) (*servCell, int, error) {
	if nconc == 0 {
		return nil, 0, fmt.Errorf("core: %w: predicting template %d at MPL 1 (use the isolated latency)", ErrEmptyMix, primary)
	}
	mpl := nconc + 1
	col := s.mplIdx(mpl)
	if col < 0 {
		return nil, 0, fmt.Errorf("core: %w: no reference models at MPL %d", ErrUntrainedMPL, mpl)
	}
	si := idx.posOf(primary)
	if si < 0 {
		// Match the historical lookup order: a template that still has a
		// QS model but was removed from the knowledge base fails on the
		// continuum, not on template resolution.
		if _, ok := p.refs[mpl].Model(primary); ok {
			return nil, 0, fmt.Errorf("core: %w: no continuum for template %d at MPL %d", ErrUntrainedMPL, primary, mpl)
		}
		return nil, 0, fmt.Errorf("core: %w: template %d", ErrUnknownTemplate, primary)
	}
	cell := &s.cells[si*s.nm+col]
	if cell.flags&cellHasQS == 0 {
		return nil, 0, fmt.Errorf("core: %w: no QS model for template %d at MPL %d", ErrUntrainedMPL, primary, mpl)
	}
	if cell.flags&cellHasCont == 0 {
		return nil, 0, fmt.Errorf("core: %w: no continuum for template %d at MPL %d", ErrUntrainedMPL, primary, mpl)
	}
	return cell, si, nil
}

// latency evaluates the full QS → continuum pipeline at CQI r:
// l_min + (µ·r + b)·(l_max − l_min), associated exactly like
// Continuum.Latency(QSModel.Point(r)).
//
//contender:hotpath
func (c *servCell) latency(r float64) float64 {
	return c.cmin + (c.mu*r+c.b)*(c.cmax-c.cmin)
}
