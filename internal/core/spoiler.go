package core

import (
	"fmt"

	"contender/internal/stats"
)

// This file implements Sections 5.4–5.5: modeling spoiler latency as a
// linear function of the MPL, and predicting spoiler latencies for new
// templates from isolated statistics alone — the step that reduces
// Contender's sampling cost from linear to constant.

// SpoilerGrowth is the per-template linear model l_max = µ·n + b (Eq. 8)
// over the MPL n.
type SpoilerGrowth struct {
	Mu float64
	B  float64
}

// Latency evaluates the model at MPL n.
func (g SpoilerGrowth) Latency(mpl int) float64 { return g.Mu*float64(mpl) + g.B }

// FitSpoilerGrowth fits Eq. 8 from (MPL, spoiler latency) samples.
func FitSpoilerGrowth(mpls []int, latencies []float64) (SpoilerGrowth, error) {
	xs := make([]float64, len(mpls))
	for i, m := range mpls {
		xs[i] = float64(m)
	}
	fit, err := stats.FitLinear(xs, latencies)
	if err != nil {
		return SpoilerGrowth{}, fmt.Errorf("core: fitting spoiler growth: %w", err)
	}
	return SpoilerGrowth{Mu: fit.Slope, B: fit.Intercept}, nil
}

// GrowthFromStats fits the template's spoiler-growth model from the
// spoiler latencies recorded in its stats, restricted to the given MPLs
// (pass nil for all). MPL 1 uses the isolated latency as l_max(1).
func GrowthFromStats(t TemplateStats, mpls []int) (SpoilerGrowth, error) {
	var xs []int
	var ys []float64
	use := func(m int) bool {
		if mpls == nil {
			return true
		}
		for _, v := range mpls {
			if v == m {
				return true
			}
		}
		return false
	}
	if use(1) && t.IsolatedLatency > 0 {
		xs = append(xs, 1)
		ys = append(ys, t.IsolatedLatency)
	}
	for m, l := range t.SpoilerLatency {
		if use(m) {
			xs = append(xs, m)
			ys = append(ys, l)
		}
	}
	return FitSpoilerGrowth(xs, ys)
}

// SpoilerPredictor estimates a new template's spoiler latencies without
// running the spoiler at all, using only its isolated-execution statistics.
type SpoilerPredictor interface {
	// PredictGrowth returns the scale-independent growth model of the
	// template: coefficients of l_max(n)/l_min = µ·n + b. Multiply by
	// l_min to obtain latencies.
	PredictGrowth(t TemplateStats) (SpoilerGrowth, error)
	// Name identifies the predictor in experiment output.
	Name() string
}

// KNNSpoilerPredictor is Contender's approach (Section 5.5): project known
// templates into (working-set size, I/O fraction) space, find the k nearest
// to the new template, and average their normalized growth-model
// coefficients.
type KNNSpoilerPredictor struct {
	K   int
	knn *stats.KNN
}

// NewKNNSpoilerPredictor trains the predictor on the knowledge base's
// templates (those with at least two spoiler samples). k=3 matches the
// paper.
func NewKNNSpoilerPredictor(know *Knowledge, k int) (*KNNSpoilerPredictor, error) {
	if k <= 0 {
		k = 3
	}
	var feats, targets [][]float64
	for _, id := range know.IDs() {
		t := know.MustTemplate(id)
		g, err := normalizedGrowth(t)
		if err != nil {
			continue
		}
		feats = append(feats, []float64{t.WorkingSetBytes, t.IOFraction})
		targets = append(targets, []float64{g.Mu, g.B})
	}
	if len(feats) < k {
		return nil, fmt.Errorf("core: KNN spoiler predictor needs ≥%d trained templates, have %d", k, len(feats))
	}
	return &KNNSpoilerPredictor{K: k, knn: stats.NewKNN(k, feats, targets)}, nil
}

// PredictGrowth implements SpoilerPredictor.
func (p *KNNSpoilerPredictor) PredictGrowth(t TemplateStats) (SpoilerGrowth, error) {
	c := p.knn.Predict([]float64{t.WorkingSetBytes, t.IOFraction})
	return SpoilerGrowth{Mu: c[0], B: c[1]}, nil
}

// Name implements SpoilerPredictor.
func (p *KNNSpoilerPredictor) Name() string { return "KNN" }

// IOTimeSpoilerPredictor is the Figure 9 baseline: two univariate
// regressions predicting the growth coefficients from the I/O fraction p_t
// alone.
type IOTimeSpoilerPredictor struct {
	muFit stats.Linear
	bFit  stats.Linear
}

// NewIOTimeSpoilerPredictor trains the baseline on the knowledge base.
func NewIOTimeSpoilerPredictor(know *Knowledge) (*IOTimeSpoilerPredictor, error) {
	var ps, mus, bs []float64
	for _, id := range know.IDs() {
		t := know.MustTemplate(id)
		g, err := normalizedGrowth(t)
		if err != nil {
			continue
		}
		ps = append(ps, t.IOFraction)
		mus = append(mus, g.Mu)
		bs = append(bs, g.B)
	}
	muFit, err := stats.FitLinear(ps, mus)
	if err != nil {
		return nil, fmt.Errorf("core: I/O-time spoiler µ regression: %w", err)
	}
	bFit, err := stats.FitLinear(ps, bs)
	if err != nil {
		return nil, fmt.Errorf("core: I/O-time spoiler b regression: %w", err)
	}
	return &IOTimeSpoilerPredictor{muFit: muFit, bFit: bFit}, nil
}

// PredictGrowth implements SpoilerPredictor.
func (p *IOTimeSpoilerPredictor) PredictGrowth(t TemplateStats) (SpoilerGrowth, error) {
	return SpoilerGrowth{Mu: p.muFit.Predict(t.IOFraction), B: p.bFit.Predict(t.IOFraction)}, nil
}

// Name implements SpoilerPredictor.
func (p *IOTimeSpoilerPredictor) Name() string { return "I/O Time" }

// normalizedGrowth fits the scale-independent growth model of a template:
// spoiler latency divided by isolated latency, regressed on the MPL. The
// paper predicts growth rates rather than raw latencies so templates of
// different weights become comparable.
func normalizedGrowth(t TemplateStats) (SpoilerGrowth, error) {
	if t.IsolatedLatency <= 0 {
		return SpoilerGrowth{}, fmt.Errorf("core: template %d has no isolated latency", t.ID)
	}
	var xs []int
	var ys []float64
	xs = append(xs, 1)
	ys = append(ys, 1) // l_max(1)/l_min ≡ 1
	for m, l := range t.SpoilerLatency {
		xs = append(xs, m)
		ys = append(ys, l/t.IsolatedLatency)
	}
	if len(xs) < 2 {
		return SpoilerGrowth{}, fmt.Errorf("core: template %d has no spoiler samples", t.ID)
	}
	return FitSpoilerGrowth(xs, ys)
}

// PredictSpoilerLatency returns the predicted l_max of template t at the
// given MPL using a trained predictor: growth(n)·l_min.
func PredictSpoilerLatency(p SpoilerPredictor, t TemplateStats, mpl int) (float64, error) {
	g, err := p.PredictGrowth(t)
	if err != nil {
		return 0, err
	}
	l := g.Latency(mpl) * t.IsolatedLatency
	if l < t.IsolatedLatency {
		// The spoiler can never beat isolation; clamp degenerate fits.
		l = t.IsolatedLatency
	}
	return l, nil
}
