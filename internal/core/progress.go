package core

import (
	"errors"
	"fmt"
)

// This file implements one of the paper's motivating applications (Section
// 1): concurrency-aware query progress indication. "High quality
// predictions would also pave the way for more refined query progress
// indicators by analyzing in real time how resource availability affects a
// query's estimated completion time."
//
// The model: at any instant the running query makes progress at rate
// 1/L(m), where L(m) is its predicted end-to-end latency under the current
// mix m. Integrating that rate over the observed timeline yields the
// fraction of work completed; the remaining fraction, divided by the
// current rate, is the time to completion. When the mix changes (queries
// arrive or finish), the rate — and therefore the ETA — changes with it.

// ErrTrackerDone is returned when a tracker is advanced past completion.
var ErrTrackerDone = errors.New("core: query already complete")

// LatencyFunc predicts the tracked query's end-to-end latency when it runs
// with the given concurrent templates (empty = isolation).
type LatencyFunc func(concurrent []int) (float64, error)

// ProgressTracker estimates a running query's completion fraction and ETA
// from concurrency-aware latency predictions.
type ProgressTracker struct {
	predict  LatencyFunc
	elapsed  float64
	fraction float64
}

// NewProgressTracker builds a tracker for one query execution.
func NewProgressTracker(predict LatencyFunc) *ProgressTracker {
	return &ProgressTracker{predict: predict}
}

// Advance records that the query executed for dt seconds while the given
// templates ran concurrently. It returns the updated completion fraction.
// Fractions above 1 are clamped; advancing a completed query returns
// ErrTrackerDone.
func (t *ProgressTracker) Advance(dt float64, concurrent []int) (float64, error) {
	if dt < 0 {
		return t.fraction, fmt.Errorf("core: negative interval %g", dt)
	}
	if t.Done() {
		return t.fraction, ErrTrackerDone
	}
	l, err := t.predict(concurrent)
	if err != nil {
		return t.fraction, err
	}
	if l <= 0 {
		return t.fraction, fmt.Errorf("core: non-positive predicted latency %g", l)
	}
	t.elapsed += dt
	t.fraction += dt / l
	if t.fraction > 1 {
		t.fraction = 1
	}
	return t.fraction, nil
}

// Fraction returns the estimated completed fraction of the query's work.
func (t *ProgressTracker) Fraction() float64 { return t.fraction }

// Elapsed returns the wall-clock seconds observed so far.
func (t *ProgressTracker) Elapsed() float64 { return t.elapsed }

// Done reports whether the tracked query is estimated complete.
func (t *ProgressTracker) Done() bool { return t.fraction >= 1 }

// Remaining estimates the seconds to completion if the given mix persists
// from now on.
func (t *ProgressTracker) Remaining(concurrent []int) (float64, error) {
	if t.Done() {
		return 0, nil
	}
	l, err := t.predict(concurrent)
	if err != nil {
		return 0, err
	}
	return (1 - t.fraction) * l, nil
}
