package core

import "fmt"

// This file implements the paper's second future-work direction (Section
// 8): CQPP "at the granularity of individual query execution plan nodes".
// The paper notes this would make the models finer-grained but requires
// reasoning about which operators compete with which; the CQI machinery
// supplies exactly that reasoning.
//
// The operator-level model decomposes a template into stage profiles (the
// per-operator isolated time split that EXPLAIN ANALYZE-style
// instrumentation provides on a real system) and predicts each stage's
// concurrent duration analytically:
//
//   - CPU and buffer-resident stages are unaffected by I/O contention;
//   - a sequential scan of table f is slowed by the expected number of
//     competing I/O streams — the summed CQI intensities of the concurrent
//     queries, except those that scan f themselves, since they ride the
//     same shared stream (a positive interaction CQI's template-level
//     average cannot credit to a specific operator);
//   - random I/O is slowed by all competing streams.
//
// Unlike the QS path, this model needs NO concurrent training samples at
// all — but it also has no way to learn memory effects, which is where the
// learned QS models earn their keep (experiment ext-opmodel quantifies the
// trade on both axes).

// StageClass classifies a stage profile.
type StageClass int

// Stage classes.
const (
	// StageClassSeqIO is a sequential scan of a (fact) table.
	StageClassSeqIO StageClass = iota
	// StageClassRandIO is random-access I/O (index scans).
	StageClassRandIO
	// StageClassCPU is computation.
	StageClassCPU
	// StageClassCached reads buffer-resident data.
	StageClassCached
)

// String returns the class name.
func (c StageClass) String() string {
	switch c {
	case StageClassSeqIO:
		return "SeqIO"
	case StageClassRandIO:
		return "RandIO"
	case StageClassCPU:
		return "CPU"
	case StageClassCached:
		return "Cached"
	default:
		return fmt.Sprintf("StageClass(%d)", int(c))
	}
}

// StageProfile is one operator's isolated-execution footprint: what kind of
// work it does, on which table (for sequential scans), and how long it
// takes with no contention.
type StageProfile struct {
	Class           StageClass
	Table           string
	IsolatedSeconds float64
}

// Validate reports structural problems.
func (s StageProfile) Validate() error {
	if s.IsolatedSeconds < 0 {
		return fmt.Errorf("core: stage has negative isolated time %g", s.IsolatedSeconds)
	}
	if s.Class == StageClassSeqIO && s.Table == "" {
		return fmt.Errorf("core: sequential stage has no table")
	}
	return nil
}

// OperatorModel predicts concurrent latency from per-operator stage
// profiles, with zero training samples.
type OperatorModel struct {
	know *Knowledge
}

// NewOperatorModel binds the model to a knowledge base (it needs the
// concurrent templates' isolated statistics and scan sets to compute
// per-stage intensities).
func NewOperatorModel(know *Knowledge) *OperatorModel {
	return &OperatorModel{know: know}
}

// Predict estimates the end-to-end latency of a query described by stages
// when it runs with the given concurrent templates.
func (m *OperatorModel) Predict(primary TemplateStats, stages []StageProfile, concurrent []int) (float64, error) {
	if len(stages) == 0 {
		return 0, fmt.Errorf("core: no stage profiles for template %d", primary.ID)
	}
	idx := m.know.index()
	cs := make([]*resolvedTemplate, len(concurrent))
	for i, id := range concurrent {
		cs[i] = &idx.tmpl[idx.mustPos(id)]
	}
	// Per-competitor intensity, as in Eq. 4.
	intensities := make([]float64, len(cs))
	for i, c := range cs {
		var omega float64
		for _, sc := range c.scans {
			if primary.Scans[sc.table] {
				omega += sc.seconds
			}
		}
		tau := idx.tau(primary.Scans, c, concurrent)
		intensities[i] = concurrentIntensity(&c.stats, omega, tau)
	}

	var total float64
	for _, st := range stages {
		if err := st.Validate(); err != nil {
			return 0, err
		}
		switch st.Class {
		case StageClassCPU, StageClassCached:
			total += st.IsolatedSeconds
		case StageClassSeqIO:
			load := 0.0
			for i, c := range cs {
				if c.stats.Scans[st.Table] {
					// Shares this scan's stream: no extra disk load for
					// this stage.
					continue
				}
				load += intensities[i]
			}
			total += st.IsolatedSeconds * (1 + load)
		case StageClassRandIO:
			load := 0.0
			for i := range cs {
				load += intensities[i]
			}
			total += st.IsolatedSeconds * (1 + load)
		default:
			return 0, fmt.Errorf("core: unknown stage class %v", st.Class)
		}
	}
	return total, nil
}
