package core

import (
	"testing"

	obspkg "contender/internal/obs"
)

func TestPredictBatchMatchesPredictKnown(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mixes := [][]int{{1}, {2}, {1, 3}, {4, 5}}
	var buf PredictBuffer
	got, err := p.PredictBatch(&buf, 2, mixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(mixes) {
		t.Fatalf("got %d predictions for %d mixes", len(got), len(mixes))
	}
	for i, mix := range mixes {
		want, err := p.PredictKnown(2, mix)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("mix %v: batch %g != single %g", mix, got[i], want)
		}
	}

	// Reuse must overwrite, not append.
	again, err := p.PredictBatch(&buf, 2, mixes[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 {
		t.Fatalf("reused buffer returned %d predictions, want 2", len(again))
	}
	if res := buf.Results(); len(res) != 2 {
		t.Fatalf("Results() has %d entries after reuse, want 2", len(res))
	}
}

func TestPredictBatchErrors(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictBatch(nil, 1, [][]int{{2}}); err == nil {
		t.Error("nil buffer accepted")
	}
	var buf PredictBuffer
	if _, err := p.PredictBatch(&buf, 999, [][]int{{2}}); err == nil {
		t.Error("unknown primary accepted")
	}
	if _, err := p.PredictBatch(&buf, 1, [][]int{{2}, {}}); err == nil {
		t.Error("empty mix accepted (MPL 1 has no model)")
	}
}

// The serving hot path must not allocate: a scheduler probing thousands of
// candidate mixes per decision would otherwise spend its time in GC.
func TestServingPathDoesNotAllocate(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Prime()
	mix := []int{2, 3}
	mixes := [][]int{{1}, {2}, {1, 3}}
	var buf PredictBuffer
	if _, err := p.PredictBatch(&buf, 2, mixes); err != nil { // warm the buffer
		t.Fatal(err)
	}
	p.SetQuality(obspkg.NewQuality(obspkg.DriftConfig{}))
	if _, err := p.Feedback(2, mix, 1.5); err != nil { // warm the template tracker
		t.Fatal(err)
	}

	cases := []struct {
		name string
		fn   func()
	}{
		{"CQI", func() { k.CQI(1, mix) }},
		{"PositiveIO", func() { k.PositiveIO(1, mix) }},
		{"BaselineIO", func() { k.BaselineIO(mix) }},
		{"PredictKnown", func() {
			if _, err := p.PredictKnown(2, mix); err != nil {
				t.Fatal(err)
			}
		}},
		{"PredictBatch", func() {
			if _, err := p.PredictBatch(&buf, 2, mixes); err != nil {
				t.Fatal(err)
			}
		}},
		{"Feedback", func() {
			if _, err := p.Feedback(2, mix, 1.5); err != nil {
				t.Fatal(err)
			}
		}},
	}
	// Keep the case list in lockstep with servingGuardSet, which the
	// hotpath marker test (hotpath_test.go) checks against the
	// //contender:hotpath annotations.
	if len(cases) != len(servingGuardSet) {
		t.Fatalf("bench guard covers %d functions, servingGuardSet names %d; keep them in sync", len(cases), len(servingGuardSet))
	}
	for _, tc := range cases {
		if !servingGuardSet[tc.name] {
			t.Fatalf("bench guard case %q is missing from servingGuardSet; keep them in sync", tc.name)
		}
	}

	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", tc.name, allocs)
		}
	}
}
