package core

import (
	"errors"
	"testing"

	obspkg "contender/internal/obs"
)

func TestPredictBatchMatchesPredictKnown(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mixes := [][]int{{1}, {2}, {1, 3}, {4, 5}}
	var buf PredictBuffer
	got, err := p.PredictBatch(&buf, 2, mixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(mixes) {
		t.Fatalf("got %d predictions for %d mixes", len(got), len(mixes))
	}
	for i, mix := range mixes {
		want, err := p.PredictKnown(2, mix)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("mix %v: batch %g != single %g", mix, got[i], want)
		}
	}

	// Reuse must overwrite, not append.
	again, err := p.PredictBatch(&buf, 2, mixes[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 {
		t.Fatalf("reused buffer returned %d predictions, want 2", len(again))
	}
	if res := buf.Results(); len(res) != 2 {
		t.Fatalf("Results() has %d entries after reuse, want 2", len(res))
	}
}

// TestPredictBufferReuseAcrossPrimaries reuses one buffer for different
// primaries and after knowledge mutations: the slack cache is keyed by
// (index snapshot, primary), so stale entries surviving either switch
// would skew results. Every batch must stay bit-identical to per-mix
// PredictKnown.
func TestPredictBufferReuseAcrossPrimaries(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mixes := [][]int{{2}, {1, 3}, {4, 5}, {1, 3}, {3, 1}}
	var buf PredictBuffer
	check := func(primary int) {
		t.Helper()
		got, err := p.PredictBatch(&buf, primary, mixes)
		if err != nil {
			t.Fatal(err)
		}
		for i, mix := range mixes {
			want, err := p.PredictKnown(primary, mix)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Errorf("primary %d mix %v: batch %g != single %g", primary, mix, got[i], want)
			}
		}
	}
	check(2)
	check(5) // different primary, same buffer: slack cache must reset
	check(2) // and back
	// A knowledge mutation invalidates the index; the buffer must detect
	// the new snapshot and rebuild its scratch.
	k.SetScanTime("F", 140)
	check(2)
	check(5)
}

// TestPredictBatchErrorRecovery drives every mid-batch error class
// through a shared buffer and verifies the next successful batch is
// uncorrupted and Results() never exposes partial output.
func TestPredictBatchErrorRecovery(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := [][]int{{2}, {1, 3}, {4, 5}}
	var buf PredictBuffer
	fail := []struct {
		name    string
		primary int
		mixes   [][]int
		sent    error
	}{
		{"empty mix mid-batch", 1, [][]int{{2}, {}, {3}}, ErrEmptyMix},
		{"untrained MPL mid-batch", 1, [][]int{{2}, {2, 3, 4}, {3}}, ErrUntrainedMPL},
		{"unknown primary", 999, [][]int{{2}, {3}}, ErrUnknownTemplate},
	}
	for _, tc := range fail {
		if _, err := p.PredictBatch(&buf, 1, good); err != nil {
			t.Fatal(err)
		}
		_, err := p.PredictBatch(&buf, tc.primary, tc.mixes)
		if !errors.Is(err, tc.sent) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.sent)
		}
		if res := buf.Results(); len(res) != 0 {
			t.Errorf("%s: Results() holds %d entries after a failed batch, want 0", tc.name, len(res))
		}
		got, err := p.PredictBatch(&buf, 1, good)
		if err != nil {
			t.Fatalf("%s: batch after failure: %v", tc.name, err)
		}
		for i, mix := range good {
			want, err := p.PredictKnown(1, mix)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Errorf("%s: post-failure mix %v: batch %g != single %g", tc.name, mix, got[i], want)
			}
		}
	}
}

// TestPredictBatchDuplicates checks the dedup stage: identical mixes get
// identical (shared) results in input order, while permutations of one
// set are computed independently — CQI sums in mix order, so they are
// only equal if the float sums happen to agree.
func TestPredictBatchDuplicates(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mixes := [][]int{{1, 3}, {4, 5}, {1, 3}, {3, 1}, {1, 3}, {2}}
	var buf PredictBuffer
	got, err := p.PredictBatch(&buf, 2, mixes)
	if err != nil {
		t.Fatal(err)
	}
	for i, mix := range mixes {
		want, err := p.PredictKnown(2, mix)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("mix %d %v: batch %g != single %g", i, mix, got[i], want)
		}
	}
	if got[0] != got[2] || got[0] != got[4] {
		t.Errorf("identical mixes disagree: %g %g %g", got[0], got[2], got[4])
	}
}

func TestPredictBatchErrors(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictBatch(nil, 1, [][]int{{2}}); err == nil {
		t.Error("nil buffer accepted")
	}
	var buf PredictBuffer
	if _, err := p.PredictBatch(&buf, 999, [][]int{{2}}); err == nil {
		t.Error("unknown primary accepted")
	}
	if _, err := p.PredictBatch(&buf, 1, [][]int{{2}, {}}); err == nil {
		t.Error("empty mix accepted (MPL 1 has no model)")
	}
}

// The serving hot path must not allocate: a scheduler probing thousands of
// candidate mixes per decision would otherwise spend its time in GC.
func TestServingPathDoesNotAllocate(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Prime()
	mix := []int{2, 3}
	mixes := [][]int{{1}, {2}, {1, 3}}
	var buf PredictBuffer
	if _, err := p.PredictBatch(&buf, 2, mixes); err != nil { // warm the buffer
		t.Fatal(err)
	}
	p.SetQuality(obspkg.NewQuality(obspkg.DriftConfig{}))
	if _, err := p.Feedback(2, mix, 1.5); err != nil { // warm the template tracker
		t.Fatal(err)
	}
	sharded, err := NewSharded(p, ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := sharded.Acquire()
	if _, err := sh.BatchPredict(2, mixes); err != nil { // warm the shard buffer
		t.Fatal(err)
	}
	if _, err := sh.Observe(2, mix, 1.5); err != nil {
		t.Fatal(err)
	}
	var ebuf ExplainBuffer
	if _, err := p.PredictExplain(&ebuf, 2, mix); err != nil { // warm the explain buffer
		t.Fatal(err)
	}
	if _, err := sh.Explain(2, mix); err != nil { // warm the shard's explain buffer
		t.Fatal(err)
	}

	cases := []struct {
		name string
		fn   func()
	}{
		{"CQI", func() { k.CQI(1, mix) }},
		{"PositiveIO", func() { k.PositiveIO(1, mix) }},
		{"BaselineIO", func() { k.BaselineIO(mix) }},
		{"PredictKnown", func() {
			if _, err := p.PredictKnown(2, mix); err != nil {
				t.Fatal(err)
			}
		}},
		{"PredictBatch", func() {
			if _, err := p.PredictBatch(&buf, 2, mixes); err != nil {
				t.Fatal(err)
			}
		}},
		{"PredictExplain", func() {
			if _, err := p.PredictExplain(&ebuf, 2, mix); err != nil {
				t.Fatal(err)
			}
		}},
		{"Feedback", func() {
			if _, err := p.Feedback(2, mix, 1.5); err != nil {
				t.Fatal(err)
			}
		}},
		{"Predict", func() {
			if _, err := sh.Predict(2, mix); err != nil {
				t.Fatal(err)
			}
		}},
		{"BatchPredict", func() {
			if _, err := sh.BatchPredict(2, mixes); err != nil {
				t.Fatal(err)
			}
		}},
		{"Observe", func() {
			// The ring eventually fills without a drain; the drop path
			// must be allocation-free too, so no drain here on purpose.
			if _, err := sh.Observe(2, mix, 1.5); err != nil {
				t.Fatal(err)
			}
		}},
		{"Explain", func() {
			if _, err := sh.Explain(2, mix); err != nil {
				t.Fatal(err)
			}
		}},
	}
	// Keep the case list in lockstep with servingGuardSet, which the
	// hotpath marker test (hotpath_test.go) checks against the
	// //contender:hotpath annotations.
	if len(cases) != len(servingGuardSet) {
		t.Fatalf("bench guard covers %d functions, servingGuardSet names %d; keep them in sync", len(cases), len(servingGuardSet))
	}
	for _, tc := range cases {
		if !servingGuardSet[tc.name] {
			t.Fatalf("bench guard case %q is missing from servingGuardSet; keep them in sync", tc.name)
		}
	}

	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %g allocs/op, want 0", tc.name, allocs)
		}
	}
}
