package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"contender/internal/obs"
)

// Sharded serving: one immutable predictor snapshot shared by every core,
// per-shard scratch so cores never contend, and feedback ingestion that
// stays off every lock.
//
//   - The snapshot is published through an atomic.Pointer. Swap installs a
//     freshly trained (and pre-primed) predictor without ever blocking a
//     serving goroutine; readers at worst finish their current call on the
//     old snapshot.
//   - Each Shard owns a PredictBuffer (batch scratch) and a fixed-size
//     SPSC feedback ring. A shard is handed to exactly one serving
//     goroutine at a time (Acquire round-robins), which makes the ring
//     single-producer by construction; the drain side is serialized by
//     the aggregator's mutex.
//   - Shards are per-P, not per-goroutine: serving systems run a bounded
//     worker pool sized to GOMAXPROCS, and scratch sized to the pool is
//     both bounded (a goroutine-keyed table would grow with churn and
//     need eviction) and contention-free (a worker keeps its shard for
//     its lifetime, so the ring needs no MPSC coordination).
//
// Feedback samples are buffered as (template, MPL, signed error) triples
// and folded into the obs.Quality aggregator only when DrainFeedback runs
// — the serving goroutine never touches the aggregator's tracker mutexes.
// When a ring fills before the next drain, new samples are dropped and
// counted (FeedbackDropped): quality telemetry is lossy-by-design under
// overload, predictions never are.

// defaultRingSize is the per-shard feedback ring capacity when
// ShardOptions.RingSize is zero.
const defaultRingSize = 1024

// ShardOptions configures NewSharded. The zero value selects the
// documented defaults.
type ShardOptions struct {
	// Shards is the number of serving shards (default GOMAXPROCS at
	// construction time).
	Shards int
	// RingSize is the per-shard feedback ring capacity, rounded up to a
	// power of two (default 1024).
	RingSize int
}

// feedbackSample is one buffered Observe result.
type feedbackSample struct {
	template int32
	mpl      int32
	signed   float64
}

// feedbackRing is a fixed-size single-producer single-consumer ring.
// The owning shard's goroutine pushes; DrainFeedback (serialized by the
// Sharded drain mutex) pops. Cache-line padding keeps the producer- and
// consumer-owned counters off each other's lines.
type feedbackRing struct {
	buf     []feedbackSample
	mask    uint64
	_       [32]byte
	tail    atomic.Uint64 // producer-owned: next write position
	_       [56]byte
	head    atomic.Uint64 // consumer-owned: next read position
	_       [56]byte
	dropped atomic.Uint64
}

// push appends a sample, dropping it (and counting the drop) when the
// ring is full.
//
//contender:hotpath
func (r *feedbackRing) push(s feedbackSample) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		r.dropped.Add(1)
		return false
	}
	r.buf[t&r.mask] = s
	r.tail.Store(t + 1)
	return true
}

// pop moves the oldest sample into out, reporting whether one existed.
//
//contender:hotpath
func (r *feedbackRing) pop(out *feedbackSample) bool {
	h := r.head.Load()
	if h == r.tail.Load() {
		return false
	}
	*out = r.buf[h&r.mask]
	r.head.Store(h + 1)
	return true
}

// Shard is one serving replica's handle: private batch scratch plus a
// private feedback ring, all backed by the shared snapshot. A shard must
// be used by one goroutine at a time (like a PredictBuffer); different
// shards are fully independent.
type Shard struct {
	parent *Sharded
	id     int
	buf    PredictBuffer
	ebuf   ExplainBuffer
	ring   feedbackRing

	// drainedDropped is the ring drop count already folded into the
	// quality aggregator. Consumer-owned: only DrainFeedback (serialized
	// by the parent's drainMu) touches it.
	drainedDropped uint64
}

// ID returns the shard's index within its Sharded set.
func (h *Shard) ID() int { return h.id }

// Predict serves PredictKnown from the current snapshot.
//
//contender:hotpath
func (h *Shard) Predict(primary int, concurrent []int) (float64, error) {
	return h.parent.snap.Load().PredictKnown(primary, concurrent)
}

// Explain serves PredictExplain from the current snapshot using the
// shard's own explain buffer. The returned buffer is valid until the
// shard's next Explain — exactly the lifetime rule of BatchPredict's
// result slice.
//
//contender:hotpath
func (h *Shard) Explain(primary int, concurrent []int) (*ExplainBuffer, error) {
	if _, err := h.parent.snap.Load().PredictExplain(&h.ebuf, primary, concurrent); err != nil {
		return nil, err
	}
	return &h.ebuf, nil
}

// BatchPredict serves PredictBatch from the current snapshot using the
// shard's own buffer. The returned slice is valid until the shard's next
// batch.
//
//contender:hotpath
func (h *Shard) BatchPredict(primary int, mixes [][]int) ([]float64, error) {
	return h.parent.snap.Load().PredictBatch(&h.buf, primary, mixes)
}

// Observe is the contention-free Feedback: it prices the mix on the
// current snapshot, computes the signed relative error, and buffers the
// sample in the shard's ring for the next DrainFeedback. Unlike
// Predictor.Feedback it never touches the quality aggregator, so the
// returned FeedbackResult carries no drift state — drift is resolved at
// drain time. When the ring is full the sample is dropped and counted.
//
//contender:hotpath
func (h *Shard) Observe(primary int, concurrent []int, observed float64) (FeedbackResult, error) {
	if observed <= 0 || math.IsNaN(observed) || math.IsInf(observed, 0) {
		return FeedbackResult{}, fmt.Errorf("core: %w: observed latency %g", ErrBadObservation, observed)
	}
	p := h.parent.snap.Load()
	predicted, err := p.predictKnown(primary, concurrent)
	if err != nil {
		return FeedbackResult{}, err
	}
	signed := (observed - predicted) / observed
	h.ring.push(feedbackSample{template: int32(primary), mpl: int32(len(concurrent) + 1), signed: signed})
	return FeedbackResult{Predicted: predicted, Observed: observed, SignedError: signed}, nil
}

// Sharded fans one predictor snapshot out to per-core serving shards.
// Construction, Swap, and DrainFeedback are control-plane operations;
// everything reachable from a Shard is the data plane.
type Sharded struct {
	snap   atomic.Pointer[Predictor]
	shards []*Shard
	next   atomic.Uint64

	drainMu  sync.Mutex
	drainRun []float64 // scratch for batched ObserveRun folding
}

// NewSharded wraps a trained predictor for sharded serving. The predictor
// is primed so no shard pays the index construction cost.
func NewSharded(p *Predictor, opts ShardOptions) (*Sharded, error) {
	if p == nil {
		return nil, fmt.Errorf("core: NewSharded needs a trained predictor")
	}
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	ring := opts.RingSize
	if ring <= 0 {
		ring = defaultRingSize
	}
	ring = ceilPow2(ring)
	p.Prime()
	s := &Sharded{}
	s.snap.Store(p)
	s.shards = make([]*Shard, n)
	for i := range s.shards {
		sh := &Shard{parent: s, id: i}
		sh.ring.buf = make([]feedbackSample, ring)
		sh.ring.mask = uint64(ring - 1)
		s.shards[i] = sh
	}
	return s, nil
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NumShards returns the number of serving shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Snapshot returns the current predictor snapshot. The snapshot is
// immutable from the serving side; use it for read-only queries (MPLs,
// knowledge inspection) that need a consistent view.
func (s *Sharded) Snapshot() *Predictor { return s.snap.Load() }

// Acquire hands out a shard round-robin. A serving worker acquires one
// shard at startup and keeps it for its lifetime; two workers sharing one
// shard must externally serialize, exactly like sharing a PredictBuffer.
func (s *Sharded) Acquire() *Shard {
	n := s.next.Add(1) - 1
	return s.shards[n%uint64(len(s.shards))]
}

// Swap atomically installs a new (freshly trained or snapshot-loaded)
// predictor and returns the previous one. The new predictor is primed
// before publication, so no serving call ever pays its index build.
// In-flight calls complete on the old snapshot; the caller owns its
// retirement (it is safe to keep using).
func (s *Sharded) Swap(p *Predictor) (*Predictor, error) {
	if p == nil {
		return nil, fmt.Errorf("core: Swap needs a non-nil predictor")
	}
	p.Prime()
	return s.snap.Swap(p), nil
}

// DrainFeedback pops every buffered feedback sample and folds it into the
// current snapshot's quality aggregator, emitting the same quality.*
// points Predictor.Feedback would (drift transitions first, then the
// feedback sample) when an observer is installed. Without an observer,
// consecutive same-template samples fold under one tracker lock
// (obs.Quality.ObserveRun). It returns the number of samples drained.
// Drains serialize on an internal mutex; call it from the quality
// aggregator's maintenance loop, not from serving workers.
//
//contender:allow snapshotsafe -- the quality aggregator is a shared mutable sink by contract: it synchronizes internally, deliberately survives snapshot swaps, and is never part of the immutable prediction state
func (s *Sharded) DrainFeedback() int {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	p := s.snap.Load()
	q, o := p.Quality(), p.Observer()
	total := 0
	var smp feedbackSample
	for _, sh := range s.shards {
		switch {
		case q != nil && o != nil:
			for sh.ring.pop(&smp) {
				total++
				d := q.Observe(int(smp.template), smp.signed)
				if d.Transitioned {
					obs.Emit(o, obs.Event{
						Kind:     obs.Point,
						Span:     obs.PointQualityDrift,
						Key:      obs.TransitionLabel(d.Previous, d.State),
						Template: int(smp.template),
						MPL:      int(smp.mpl),
						Value:    d.WindowMRE,
					})
				}
				obs.Emit(o, obs.Event{
					Kind:     obs.Point,
					Span:     obs.PointQualityFeedback,
					Template: int(smp.template),
					MPL:      int(smp.mpl),
					Value:    smp.signed,
				})
			}
		case q != nil:
			run := s.drainRun[:0]
			runTmpl := int32(0)
			for sh.ring.pop(&smp) {
				total++
				if len(run) > 0 && smp.template != runTmpl {
					q.ObserveRun(int(runTmpl), run)
					run = run[:0]
				}
				runTmpl = smp.template
				run = append(run, smp.signed)
			}
			if len(run) > 0 {
				q.ObserveRun(int(runTmpl), run)
			}
			s.drainRun = run[:0]
		case o != nil:
			for sh.ring.pop(&smp) {
				total++
				obs.Emit(o, obs.Event{
					Kind:     obs.Point,
					Span:     obs.PointQualityFeedback,
					Template: int(smp.template),
					MPL:      int(smp.mpl),
					Value:    smp.signed,
				})
			}
		default:
			for sh.ring.pop(&smp) {
				total++
			}
		}
		// Fold the ring-overflow drops accumulated since the last drain
		// into the aggregator, so lossy telemetry is visible (the
		// quality.dropped family and the /quality payload).
		if q != nil {
			if d := sh.ring.dropped.Load(); d > sh.drainedDropped {
				q.AddDropped(int64(d - sh.drainedDropped))
				sh.drainedDropped = d
			}
		}
	}
	return total
}

// FeedbackDropped returns the total number of feedback samples dropped
// across all shards because a ring was full at Observe time.
func (s *Sharded) FeedbackDropped() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.ring.dropped.Load()
	}
	return n
}
