package core

import "errors"

// Serving-path error taxonomy. Schedulers and admission controllers branch
// on WHY a prediction failed — an unknown template is a caller bug, an
// untrained MPL wants the nearest-MPL fallback, an empty mix means "use the
// isolated latency" — so the prediction entry points wrap these
// errors.Is-able sentinels instead of bare strings.
var (
	// ErrUnknownTemplate: the primary (or a required concurrent template)
	// is not in the knowledge base / has no trained model.
	ErrUnknownTemplate = errors.New("unknown template")
	// ErrEmptyMix: the concurrent mix is empty; concurrency prediction is
	// undefined at MPL 1 — the isolated latency is the answer.
	ErrEmptyMix = errors.New("empty concurrent mix")
	// ErrUntrainedMPL: the mix's multiprogramming level has no trained
	// reference models (or the template has none at that MPL).
	ErrUntrainedMPL = errors.New("untrained MPL")
	// ErrBadObservation: an observed latency handed to Feedback is
	// non-positive or non-finite — a relative error cannot be formed, so
	// nothing is recorded.
	ErrBadObservation = errors.New("bad observed latency")
)
