package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"contender/internal/obs"
)

// This file assembles the full prediction pipeline of Figure 5: training
// reference QS models from steady-state observations, then producing
// latency predictions for known templates (CQI → QS → continuum → seconds)
// and for ad-hoc templates (estimated QS + predicted spoiler).

// Predictor is a trained Contender instance for a set of MPLs.
type Predictor struct {
	Know *Knowledge
	refs map[int]*ReferenceModels

	// observer, when non-nil, receives a serve.* span for every
	// prediction. The nil check happens before any clock read, so an
	// uninstrumented predictor keeps its allocation-free hot path.
	observer obs.Observer

	// quality, when non-nil, aggregates Feedback samples into
	// per-template accuracy statistics and drift states. Only Feedback
	// consults it — the PredictKnown/PredictBatch hot path never does.
	quality *obs.Quality

	// serv caches the flat (template × MPL) serving index, keyed by the
	// knowledge snapshot it was built from so knowledge mutations
	// invalidate it transitively (serveindex.go). The zero value is
	// ready: snapshot-loaded predictors build it on first use or Prime.
	serv atomic.Pointer[servIndex]
	smu  sync.Mutex
}

// SetObserver installs (or, with nil, removes) the serving observer.
func (p *Predictor) SetObserver(o obs.Observer) { p.observer = o }

// Observer returns the installed serving observer (nil when none).
func (p *Predictor) Observer() obs.Observer { return p.observer }

// TrainOptions tunes reference-model training.
type TrainOptions struct {
	// DropOutliers discards observations whose latency exceeds 105% of the
	// spoiler latency (Section 6.1). Enabled in the paper's evaluation.
	DropOutliers bool
}

// Train builds reference QS models from steady-state observations of known
// templates. Observations are grouped by (primary, MPL); each group needs
// at least two samples to fit a line. Templates must already be registered
// in the knowledge base with isolated and spoiler latencies.
func Train(know *Knowledge, observations []Observation, opts TrainOptions) (*Predictor, error) {
	type key struct{ id, mpl int }
	groups := make(map[key][]Observation)
	for _, o := range observations {
		groups[key{o.Primary, o.MPL()}] = append(groups[key{o.Primary, o.MPL()}], o)
	}
	p := &Predictor{Know: know, refs: make(map[int]*ReferenceModels)}
	for k, obs := range groups {
		cont, ok := know.ContinuumFor(k.id, k.mpl)
		if !ok {
			return nil, fmt.Errorf("core: no spoiler latency for template %d at MPL %d", k.id, k.mpl)
		}
		var rs, cs []float64
		for _, o := range obs {
			if opts.DropOutliers && cont.IsOutlier(o.Latency) {
				continue
			}
			rs = append(rs, know.CQI(o.Primary, o.Concurrent))
			cs = append(cs, cont.Point(o.Latency))
		}
		if len(rs) < 2 {
			continue
		}
		m, err := FitQS(rs, cs)
		if err != nil {
			return nil, fmt.Errorf("core: template %d MPL %d: %w", k.id, k.mpl, err)
		}
		if p.refs[k.mpl] == nil {
			p.refs[k.mpl] = NewReferenceModels(know, k.mpl)
		}
		p.refs[k.mpl].Add(k.id, m)
	}
	if len(p.refs) == 0 {
		return nil, fmt.Errorf("core: no reference models could be trained from %d observations", len(observations))
	}
	return p, nil
}

// References returns the reference models at the given MPL.
func (p *Predictor) References(mpl int) (*ReferenceModels, bool) {
	r, ok := p.refs[mpl]
	return r, ok
}

// MPLs returns the multiprogramming levels with trained reference models.
func (p *Predictor) MPLs() []int {
	var out []int
	for m := range p.refs {
		out = append(out, m)
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// PredictKnown estimates the latency of a known (sampled) template in a
// given mix: evaluate the mix's CQI, apply the template's QS model, and
// scale the continuum point by the measured [l_min, l_max] range.
//
//contender:hotpath
func (p *Predictor) PredictKnown(primary int, concurrent []int) (float64, error) {
	if p.observer == nil {
		return p.predictKnown(primary, concurrent)
	}
	start := time.Now() //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
	v, err := p.predictKnown(primary, concurrent)
	obs.Emit(p.observer, obs.Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanServePredictKnown,
		Template: primary,
		MPL:      len(concurrent) + 1,
		Value:    v,
		Dur:      time.Since(start), //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
		Err:      obs.ErrLabel(err),
	})
	return v, err
}

//contender:hotpath
func (p *Predictor) predictKnown(primary int, concurrent []int) (float64, error) {
	idx := p.Know.index()
	s := p.serving(idx)
	cell, si, err := p.cellFor(s, idx, primary, len(concurrent))
	if err != nil {
		return 0, err
	}
	r := idx.cqiSlot(si, concurrent)
	return cell.latency(r), nil
}

// NewTemplateOptions selects how the pipeline fills in the two unknowns of
// an ad-hoc template: its QS model and its spoiler latency.
type NewTemplateOptions struct {
	// QS, if non-nil, overrides QS estimation (the Unknown-Y experiment
	// passes a µ obtained from the template's own fitted model here).
	QS *QSModel
	// Spoiler, if non-nil, predicts l_max instead of reading measured
	// spoiler latencies from the template stats (constant-time sampling).
	Spoiler SpoilerPredictor
}

// PredictNew estimates the latency of a template that was never sampled
// under concurrency. The template's isolated statistics arrive in t; its QS
// model is estimated from the reference models (Unknown-QS) unless
// opts.QS is set, and its spoiler latency is measured (t.SpoilerLatency)
// unless opts.Spoiler is set.
func (p *Predictor) PredictNew(t TemplateStats, concurrent []int, opts NewTemplateOptions) (float64, error) {
	if p.observer == nil {
		return p.predictNew(t, concurrent, opts)
	}
	start := time.Now() //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
	v, err := p.predictNew(t, concurrent, opts)
	obs.Emit(p.observer, obs.Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanServePredictNew,
		Template: t.ID,
		MPL:      len(concurrent) + 1,
		Value:    v,
		Dur:      time.Since(start), //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
		Err:      obs.ErrLabel(err),
	})
	return v, err
}

func (p *Predictor) predictNew(t TemplateStats, concurrent []int, opts NewTemplateOptions) (float64, error) {
	if len(concurrent) == 0 {
		return 0, fmt.Errorf("core: %w: predicting template %d at MPL 1 (use the isolated latency)", ErrEmptyMix, t.ID)
	}
	mpl := len(concurrent) + 1
	refs, ok := p.refs[mpl]
	if !ok {
		return 0, fmt.Errorf("core: %w: no reference models at MPL %d", ErrUntrainedMPL, mpl)
	}

	var qs QSModel
	if opts.QS != nil {
		qs = *opts.QS
	} else {
		var err error
		qs, err = refs.EstimateForNew(t.IsolatedLatency)
		if err != nil {
			return 0, err
		}
	}

	var lmax float64
	if opts.Spoiler != nil {
		var err error
		lmax, err = PredictSpoilerLatency(opts.Spoiler, t, mpl)
		if err != nil {
			return 0, err
		}
	} else {
		var ok bool
		lmax, ok = t.SpoilerLatency[mpl]
		if !ok {
			return 0, fmt.Errorf("core: template %d has no spoiler latency at MPL %d and no spoiler predictor was given", t.ID, mpl)
		}
	}

	cont := Continuum{Min: t.IsolatedLatency, Max: lmax}
	if !cont.Valid() {
		return 0, fmt.Errorf("core: degenerate continuum [%g, %g] for template %d", cont.Min, cont.Max, t.ID)
	}
	r := p.Know.CQIForStats(t, concurrent)
	return cont.Latency(qs.Point(r)), nil
}

// PerturbStats returns a copy of t with isolated latency, I/O fraction, and
// working set independently perturbed by a uniform relative error in
// [-frac, +frac]. The Figure 10 "Isolated Prediction" baseline feeds the
// pipeline statistics perturbed by ±25%, matching the error rate of the
// isolated-latency predictors of Akdere et al. — i.e. zero sample
// executions of the new template.
func PerturbStats(t TemplateStats, frac float64, rng *rand.Rand) TemplateStats {
	perturb := func(v float64) float64 {
		return v * (1 + frac*(2*rng.Float64()-1))
	}
	out := t
	out.IsolatedLatency = perturb(t.IsolatedLatency)
	out.IOFraction = perturb(t.IOFraction)
	if out.IOFraction > 1 {
		out.IOFraction = 1
	}
	out.WorkingSetBytes = perturb(t.WorkingSetBytes)
	return out
}
