package core

import (
	"testing"
)

func TestFitQSRecoversLine(t *testing.T) {
	// c = 0.8r + 0.1 exactly.
	rs := []float64{0, 0.25, 0.5, 0.75, 1}
	cs := make([]float64, len(rs))
	for i, r := range rs {
		cs[i] = 0.8*r + 0.1
	}
	m, err := FitQS(rs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Mu, 0.8, 1e-12) || !almostEq(m.B, 0.1, 1e-12) {
		t.Fatalf("fit %+v", m)
	}
	if !almostEq(m.Point(0.5), 0.5, 1e-12) {
		t.Fatal("Point wrong")
	}
}

func TestFitQSInsufficient(t *testing.T) {
	if _, err := FitQS([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for one sample")
	}
}

// syntheticRefs builds reference models where µ is exactly linear in the
// isolated latency and b is exactly linear in µ, so the transfer
// regressions must recover new templates' models perfectly.
func syntheticRefs(t *testing.T) (*Knowledge, *ReferenceModels) {
	t.Helper()
	k := NewKnowledge()
	refs := NewReferenceModels(k, 2)
	// µ = 1.2 − 0.001·l_min; b = 0.5 − 0.4·µ.
	for i, lmin := range []float64{100, 200, 300, 400, 500, 700} {
		id := i + 1
		k.AddTemplate(TemplateStats{
			ID: id, IsolatedLatency: lmin, IOFraction: 0.9,
			SpoilerLatency: map[int]float64{2: lmin * 2},
		})
		mu := 1.2 - 0.001*lmin
		refs.Add(id, QSModel{Mu: mu, B: 0.5 - 0.4*mu})
	}
	return k, refs
}

func TestEstimateForNew(t *testing.T) {
	_, refs := syntheticRefs(t)
	got, err := refs.EstimateForNew(600)
	if err != nil {
		t.Fatal(err)
	}
	wantMu := 1.2 - 0.001*600
	wantB := 0.5 - 0.4*wantMu
	if !almostEq(got.Mu, wantMu, 1e-9) || !almostEq(got.B, wantB, 1e-9) {
		t.Fatalf("estimated %+v, want µ=%g b=%g", got, wantMu, wantB)
	}
}

func TestEstimateInterceptFromMu(t *testing.T) {
	_, refs := syntheticRefs(t)
	got, err := refs.EstimateInterceptFromMu(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mu != 0.7 {
		t.Fatal("µ must be passed through")
	}
	if !almostEq(got.B, 0.5-0.4*0.7, 1e-9) {
		t.Fatalf("b = %g", got.B)
	}
}

func TestEstimateNeedsReferences(t *testing.T) {
	k := NewKnowledge()
	refs := NewReferenceModels(k, 2)
	if _, err := refs.EstimateForNew(100); err == nil {
		t.Fatal("expected error with no references")
	}
	if _, err := refs.EstimateInterceptFromMu(1); err == nil {
		t.Fatal("expected error with no references")
	}
}

func TestCoefficientRelation(t *testing.T) {
	_, refs := syntheticRefs(t)
	fit, r2, err := refs.CoefficientRelation()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, -0.4, 1e-9) || !almostEq(fit.Intercept, 0.5, 1e-9) {
		t.Fatalf("relation %+v", fit)
	}
	if !almostEq(r2, 1, 1e-9) {
		t.Fatalf("R² = %g, want 1 for exact relation", r2)
	}
}

func TestReferenceModelAccessors(t *testing.T) {
	_, refs := syntheticRefs(t)
	if refs.Len() != 6 {
		t.Fatalf("Len = %d", refs.Len())
	}
	ids := refs.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not ascending")
		}
	}
	if _, ok := refs.Model(1); !ok {
		t.Fatal("model 1 missing")
	}
	if _, ok := refs.Model(99); ok {
		t.Fatal("model 99 must be absent")
	}
	mus, bs := refs.Coefficients()
	if len(mus) != 6 || len(bs) != 6 {
		t.Fatal("coefficient vectors wrong length")
	}
}
