package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"

	"contender/internal/analysis/hotpathalloc"
)

// servingGuardSet names the exported serving entry points whose 0
// allocs/op is asserted by TestServingPathDoesNotAllocate. The
// //contender:hotpath markers (checked statically by contender-vet's
// hotpathalloc analyzer) and this bench guard must cover the same
// exported set: a function guarded but unmarked gets no static check,
// a function marked but unguarded gets no runtime proof.
var servingGuardSet = map[string]bool{
	"CQI":            true,
	"PositiveIO":     true,
	"BaselineIO":     true,
	"PredictKnown":   true,
	"PredictBatch":   true,
	"PredictExplain": true,
	"Feedback":       true,
	// Sharded serving handles (shard.go): per-shard prediction, blame
	// decomposition, and ring-buffered feedback ingestion.
	"Predict":      true,
	"BatchPredict": true,
	"Observe":      true,
	"Explain":      true,
}

func TestHotpathMarkersMatchAllocGuard(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		t.Fatal("no package files parsed")
	}

	exported := map[string]bool{}
	var unexported []string
	for _, name := range hotpathalloc.MarkedFuncs(files) {
		base := name[strings.LastIndex(name, ".")+1:]
		if ast.IsExported(base) {
			if exported[base] {
				t.Errorf("duplicate //contender:hotpath marker for %s", name)
			}
			exported[base] = true
		} else {
			unexported = append(unexported, name)
		}
	}

	for want := range servingGuardSet {
		if !exported[want] {
			t.Errorf("%s is covered by TestServingPathDoesNotAllocate but has no //contender:hotpath marker", want)
		}
	}
	for got := range exported {
		if !servingGuardSet[got] {
			t.Errorf("%s carries a //contender:hotpath marker but is not covered by TestServingPathDoesNotAllocate; add it to the bench guard", got)
		}
	}
	// Unexported helpers (prediction bodies, index lookups) may carry
	// markers for static coverage without their own bench-guard entry —
	// they run inside the guarded entry points. Just require there to be
	// some: the hot path's real work lives in them.
	if len(unexported) == 0 {
		t.Error("no unexported //contender:hotpath helpers found; the prediction bodies should be marked")
	}
}
