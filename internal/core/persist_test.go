package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestPredictorRoundTrip(t *testing.T) {
	k, obs := predictorFixture(t)
	orig, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Trained state survives byte-for-byte: identical MPLs, models, and
	// predictions for every observation.
	if len(loaded.MPLs()) != len(orig.MPLs()) {
		t.Fatalf("MPLs %v vs %v", loaded.MPLs(), orig.MPLs())
	}
	for _, o := range obs {
		want, err := orig.PredictKnown(o.Primary, o.Concurrent)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.PredictKnown(o.Primary, o.Concurrent)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prediction drifted after reload: %g vs %g", got, want)
		}
	}
	// Knowledge details survive too.
	if loaded.Know.ScanTime("F") != k.ScanTime("F") {
		t.Fatal("scan times lost")
	}
	lt := loaded.Know.MustTemplate(2)
	ot := k.MustTemplate(2)
	if !lt.Scans["F"] || lt.SpoilerLatency[2] != ot.SpoilerLatency[2] {
		t.Fatal("template details lost")
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON must error")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":99,"templates":[{"id":1}]}`)); err == nil {
		t.Fatal("wrong version must error")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("empty snapshot must error")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":1,"templates":[{"id":1}]}`)); err == nil {
		t.Fatal("snapshot without models must error")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := p.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	// Everything except Go's map-ordered scan_times object is emitted in
	// sorted slices; the JSON encoder also sorts map keys, so the files
	// must be identical.
	if a.String() != b.String() {
		t.Fatal("snapshot serialization must be deterministic")
	}
}
