package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPredictorRoundTrip(t *testing.T) {
	k, obs := predictorFixture(t)
	orig, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Trained state survives byte-for-byte: identical MPLs, models, and
	// predictions for every observation.
	if len(loaded.MPLs()) != len(orig.MPLs()) {
		t.Fatalf("MPLs %v vs %v", loaded.MPLs(), orig.MPLs())
	}
	for _, o := range obs {
		want, err := orig.PredictKnown(o.Primary, o.Concurrent)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.PredictKnown(o.Primary, o.Concurrent)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prediction drifted after reload: %g vs %g", got, want)
		}
	}
	// Knowledge details survive too.
	if loaded.Know.ScanTime("F") != k.ScanTime("F") {
		t.Fatal("scan times lost")
	}
	lt := loaded.Know.MustTemplate(2)
	ot := k.MustTemplate(2)
	if !lt.Scans["F"] || lt.SpoilerLatency[2] != ot.SpoilerLatency[2] {
		t.Fatal("template details lost")
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("{")); err == nil {
		t.Fatal("malformed JSON must error")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":99,"templates":[{"id":1}]}`)); err == nil {
		t.Fatal("wrong version must error")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("empty snapshot must error")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"version":1,"templates":[{"id":1}]}`)); err == nil {
		t.Fatal("snapshot without models must error")
	}
}

// TestSnapshotValidation covers the corruption classes Validate rejects:
// NaN/negative latencies, duplicate template IDs, and models referencing
// templates the snapshot does not carry. Each rejection must name the
// offending entry.
func TestSnapshotValidation(t *testing.T) {
	model := `"models":[{"mpl":2,"template":1,"mu":1,"b":0}]`
	cases := []struct {
		name, body, wantSub string
	}{
		{"NaN isolated latency",
			`{"version":1,"templates":[{"id":1,"isolated_latency":null}],` + model + `}`,
			""}, // JSON null decodes to 0 — covered by the explicit NaN case below via math
		{"negative isolated latency",
			`{"version":1,"templates":[{"id":1,"isolated_latency":-3}],` + model + `}`,
			"template 1"},
		{"negative spoiler latency",
			`{"version":1,"templates":[{"id":1,"isolated_latency":5,"spoilers":[{"mpl":2,"latency":-1}]}],` + model + `}`,
			"spoiler latency"},
		{"duplicate template ids",
			`{"version":1,"templates":[{"id":1,"isolated_latency":5},{"id":1,"isolated_latency":6}],` + model + `}`,
			"duplicate template id 1"},
		{"negative scan time",
			`{"version":1,"templates":[{"id":1,"isolated_latency":5}],"scan_times":{"F":-2},` + model + `}`,
			`scan time of "F"`},
		{"model references unknown template",
			`{"version":1,"templates":[{"id":1,"isolated_latency":5}],"models":[{"mpl":2,"template":9,"mu":1,"b":0}]}`,
			"unknown template 9"},
	}
	for _, c := range cases {
		if c.wantSub == "" {
			continue
		}
		_, err := LoadPredictor(strings.NewReader(c.body))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}

	// NaN cannot be written in JSON; build the snapshot in memory.
	s := &Snapshot{
		Version:   1,
		Templates: []TemplateSnapshot{{ID: 1, IsolatedLatency: math.NaN()}},
		Models:    []modelSnapshot{{MPL: 2, Template: 1, Mu: 1, B: 0}},
	}
	if _, err := PredictorFromSnapshot(s); err == nil || !strings.Contains(err.Error(), "isolated latency") {
		t.Errorf("NaN isolated latency: got %v", err)
	}
	s = &Snapshot{
		Version:   1,
		Templates: []TemplateSnapshot{{ID: 1, IsolatedLatency: 5}},
		Models:    []modelSnapshot{{MPL: 2, Template: 1, Mu: math.NaN(), B: 0}},
	}
	if _, err := PredictorFromSnapshot(s); err == nil || !strings.Contains(err.Error(), "NaN coefficients") {
		t.Errorf("NaN model coefficients: got %v", err)
	}
}

// TestTemplateSnapshotRoundTrip: TemplateStats → TemplateSnapshot → Stats
// is lossless, and the snapshot encoding is canonical (sorted scans and
// spoilers) — the property the training checkpoints rely on.
func TestTemplateSnapshotRoundTrip(t *testing.T) {
	orig := TemplateStats{
		ID:              7,
		IsolatedLatency: 123.456,
		IOFraction:      0.87,
		WorkingSetBytes: 2.5e9,
		PlanSteps:       9,
		RecordsAccessed: 4.2e7,
		Scans:           map[string]bool{"zeta": true, "alpha": true},
		SpoilerLatency:  map[int]float64{3: 400.25, 2: 250.5},
	}
	snap := NewTemplateSnapshot(orig)
	if snap.Scans[0] != "alpha" || snap.Spoilers[0].MPL != 2 {
		t.Fatalf("snapshot not canonical: %+v", snap)
	}
	back := snap.Stats()
	if back.ID != orig.ID || back.IsolatedLatency != orig.IsolatedLatency ||
		back.IOFraction != orig.IOFraction || back.WorkingSetBytes != orig.WorkingSetBytes ||
		back.PlanSteps != orig.PlanSteps || back.RecordsAccessed != orig.RecordsAccessed {
		t.Fatalf("scalar fields drifted: %+v vs %+v", back, orig)
	}
	if len(back.Scans) != 2 || !back.Scans["alpha"] || !back.Scans["zeta"] {
		t.Fatalf("scan set drifted: %+v", back.Scans)
	}
	if back.SpoilerLatency[2] != 250.5 || back.SpoilerLatency[3] != 400.25 {
		t.Fatalf("spoiler map drifted: %+v", back.SpoilerLatency)
	}
	// And the JSON bytes are deterministic.
	a, _ := json.Marshal(NewTemplateSnapshot(orig))
	b, _ := json.Marshal(NewTemplateSnapshot(orig))
	if string(a) != string(b) {
		t.Fatal("TemplateSnapshot must marshal deterministically")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := p.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	// Everything except Go's map-ordered scan_times object is emitted in
	// sorted slices; the JSON encoder also sorts map keys, so the files
	// must be identical.
	if a.String() != b.String() {
		t.Fatal("snapshot serialization must be deterministic")
	}
}
