package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Persistence: a trained predictor — the knowledge base plus its reference
// QS models — serializes to JSON, so the (simulated or real) sampling cost
// is paid once and reused across processes. This is what a deployed
// Contender would ship alongside the DBMS: a model file, re-trained only
// when the workload drifts.

// snapshotVersion guards against loading incompatible files.
const snapshotVersion = 1

// Snapshot is the serialized form of a trained predictor.
type Snapshot struct {
	Version   int                `json:"version"`
	Templates []TemplateSnapshot `json:"templates"`
	ScanTimes map[string]float64 `json:"scan_times"`
	Models    []modelSnapshot    `json:"models"`
}

// KnowledgeSnapshot is the serialized form of a knowledge base alone
// (templates and scan times, no trained models). Its encoding is canonical
// — templates ascending by ID, scans and spoiler samples sorted — so two
// equal knowledge bases marshal to identical bytes, which is how the
// parallel-sampling determinism tests compare worker counts and how the
// checkpoint/resume tests compare interrupted campaigns against
// uninterrupted ones.
type KnowledgeSnapshot struct {
	Templates []TemplateSnapshot `json:"templates"`
	ScanTimes map[string]float64 `json:"scan_times"`
}

// TemplateSnapshot is the canonical serialized form of one template's
// isolated statistics: scan sets and spoiler samples are sorted, so equal
// stats marshal to identical bytes. The training checkpoints reuse this
// encoding to persist partially collected campaigns.
type TemplateSnapshot struct {
	ID              int             `json:"id"`
	IsolatedLatency float64         `json:"isolated_latency"`
	IOFraction      float64         `json:"io_fraction"`
	WorkingSetBytes float64         `json:"working_set_bytes"`
	PlanSteps       int             `json:"plan_steps"`
	RecordsAccessed float64         `json:"records_accessed"`
	Scans           []string        `json:"scans"`
	Spoilers        []SpoilerSample `json:"spoilers"`
}

// SpoilerSample is one measured spoiler latency at an MPL.
type SpoilerSample struct {
	MPL     int     `json:"mpl"`
	Latency float64 `json:"latency"`
}

type modelSnapshot struct {
	MPL      int     `json:"mpl"`
	Template int     `json:"template"`
	Mu       float64 `json:"mu"`
	B        float64 `json:"b"`
}

// NewTemplateSnapshot converts template stats to their canonical snapshot
// form (sorted scan set and spoiler samples).
func NewTemplateSnapshot(t TemplateStats) TemplateSnapshot {
	ts := TemplateSnapshot{
		ID:              t.ID,
		IsolatedLatency: t.IsolatedLatency,
		IOFraction:      t.IOFraction,
		WorkingSetBytes: t.WorkingSetBytes,
		PlanSteps:       t.PlanSteps,
		RecordsAccessed: t.RecordsAccessed,
	}
	for f := range t.Scans {
		ts.Scans = append(ts.Scans, f)
	}
	sort.Strings(ts.Scans)
	for mpl, l := range t.SpoilerLatency {
		ts.Spoilers = append(ts.Spoilers, SpoilerSample{mpl, l})
	}
	sort.Slice(ts.Spoilers, func(i, j int) bool { return ts.Spoilers[i].MPL < ts.Spoilers[j].MPL })
	return ts
}

// Stats converts the snapshot back to template stats.
func (ts TemplateSnapshot) Stats() TemplateStats {
	t := TemplateStats{
		ID:              ts.ID,
		IsolatedLatency: ts.IsolatedLatency,
		IOFraction:      ts.IOFraction,
		WorkingSetBytes: ts.WorkingSetBytes,
		PlanSteps:       ts.PlanSteps,
		RecordsAccessed: ts.RecordsAccessed,
		Scans:           make(map[string]bool, len(ts.Scans)),
		SpoilerLatency:  make(map[int]float64, len(ts.Spoilers)),
	}
	for _, f := range ts.Scans {
		t.Scans[f] = true
	}
	for _, sp := range ts.Spoilers {
		t.SpoilerLatency[sp.MPL] = sp.Latency
	}
	return t
}

// Snapshot captures the knowledge base's full state in canonical order.
func (k *Knowledge) Snapshot() *KnowledgeSnapshot {
	s := &KnowledgeSnapshot{ScanTimes: make(map[string]float64)}
	for f, v := range k.scanSeconds {
		s.ScanTimes[f] = v
	}
	for _, id := range k.IDs() {
		s.Templates = append(s.Templates, NewTemplateSnapshot(k.MustTemplate(id)))
	}
	return s
}

// Snapshot captures the predictor's full trained state.
func (p *Predictor) Snapshot() *Snapshot {
	ks := p.Know.Snapshot()
	s := &Snapshot{Version: snapshotVersion, Templates: ks.Templates, ScanTimes: ks.ScanTimes}
	for _, mpl := range p.MPLs() {
		refs := p.refs[mpl]
		for _, id := range refs.IDs() {
			m, _ := refs.Model(id)
			s.Models = append(s.Models, modelSnapshot{MPL: mpl, Template: id, Mu: m.Mu, B: m.B})
		}
	}
	return s
}

// WriteSnapshot serializes the predictor as indented JSON.
func (p *Predictor) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.Snapshot()); err != nil {
		return fmt.Errorf("core: encoding predictor: %w", err)
	}
	return nil
}

// LoadPredictor reconstructs a trained predictor from a snapshot stream.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	return PredictorFromSnapshot(&s)
}

// badLatency reports values no measurement can produce (NaN, ±Inf, or
// negative).
func badLatency(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < 0
}

// Validate checks the snapshot for structural corruption before any state
// is built from it: version mismatch, NaN/negative latencies or scan
// times, duplicate template IDs, and models referencing templates the
// snapshot does not carry. Errors name the offending entry so a corrupted
// model file is diagnosable, not just rejected.
func (s *Snapshot) Validate() error {
	if s.Version != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d (want %d)", s.Version, snapshotVersion)
	}
	if len(s.Templates) == 0 {
		return fmt.Errorf("core: snapshot has no templates")
	}
	seen := make(map[int]bool, len(s.Templates))
	for _, ts := range s.Templates {
		if seen[ts.ID] {
			return fmt.Errorf("core: snapshot has duplicate template id %d", ts.ID)
		}
		seen[ts.ID] = true
		if badLatency(ts.IsolatedLatency) {
			return fmt.Errorf("core: template %d has invalid isolated latency %g", ts.ID, ts.IsolatedLatency)
		}
		for _, sp := range ts.Spoilers {
			if badLatency(sp.Latency) {
				return fmt.Errorf("core: template %d has invalid spoiler latency %g at MPL %d", ts.ID, sp.Latency, sp.MPL)
			}
		}
	}
	for table, v := range s.ScanTimes {
		if badLatency(v) {
			return fmt.Errorf("core: scan time of %q is invalid (%g)", table, v)
		}
	}
	for _, m := range s.Models {
		if !seen[m.Template] {
			return fmt.Errorf("core: model at MPL %d references unknown template %d", m.MPL, m.Template)
		}
		if math.IsNaN(m.Mu) || math.IsNaN(m.B) {
			return fmt.Errorf("core: model for template %d at MPL %d has NaN coefficients", m.Template, m.MPL)
		}
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("core: snapshot has no reference models")
	}
	return nil
}

// PredictorFromSnapshot validates the snapshot and rebuilds the predictor
// from it.
func PredictorFromSnapshot(s *Snapshot) (*Predictor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	know := NewKnowledge()
	for f, v := range s.ScanTimes {
		know.SetScanTime(f, v)
	}
	for _, ts := range s.Templates {
		know.AddTemplate(ts.Stats())
	}
	p := &Predictor{Know: know, refs: make(map[int]*ReferenceModels)}
	for _, m := range s.Models {
		if p.refs[m.MPL] == nil {
			p.refs[m.MPL] = NewReferenceModels(know, m.MPL)
		}
		p.refs[m.MPL].Add(m.Template, QSModel{Mu: m.Mu, B: m.B})
	}
	return p, nil
}
