package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Persistence: a trained predictor — the knowledge base plus its reference
// QS models — serializes to JSON, so the (simulated or real) sampling cost
// is paid once and reused across processes. This is what a deployed
// Contender would ship alongside the DBMS: a model file, re-trained only
// when the workload drifts.

// snapshotVersion guards against loading incompatible files.
const snapshotVersion = 1

// Snapshot is the serialized form of a trained predictor.
type Snapshot struct {
	Version   int                `json:"version"`
	Templates []templateSnapshot `json:"templates"`
	ScanTimes map[string]float64 `json:"scan_times"`
	Models    []modelSnapshot    `json:"models"`
}

// KnowledgeSnapshot is the serialized form of a knowledge base alone
// (templates and scan times, no trained models). Its encoding is canonical
// — templates ascending by ID, scans and spoiler samples sorted — so two
// equal knowledge bases marshal to identical bytes, which is how the
// parallel-sampling determinism tests compare worker counts.
type KnowledgeSnapshot struct {
	Templates []templateSnapshot `json:"templates"`
	ScanTimes map[string]float64 `json:"scan_times"`
}

type templateSnapshot struct {
	ID              int             `json:"id"`
	IsolatedLatency float64         `json:"isolated_latency"`
	IOFraction      float64         `json:"io_fraction"`
	WorkingSetBytes float64         `json:"working_set_bytes"`
	PlanSteps       int             `json:"plan_steps"`
	RecordsAccessed float64         `json:"records_accessed"`
	Scans           []string        `json:"scans"`
	Spoilers        []spoilerSample `json:"spoilers"`
}

type spoilerSample struct {
	MPL     int     `json:"mpl"`
	Latency float64 `json:"latency"`
}

type modelSnapshot struct {
	MPL      int     `json:"mpl"`
	Template int     `json:"template"`
	Mu       float64 `json:"mu"`
	B        float64 `json:"b"`
}

// Snapshot captures the knowledge base's full state in canonical order.
func (k *Knowledge) Snapshot() *KnowledgeSnapshot {
	s := &KnowledgeSnapshot{ScanTimes: make(map[string]float64)}
	for f, v := range k.scanSeconds {
		s.ScanTimes[f] = v
	}
	for _, id := range k.IDs() {
		t := k.MustTemplate(id)
		ts := templateSnapshot{
			ID:              t.ID,
			IsolatedLatency: t.IsolatedLatency,
			IOFraction:      t.IOFraction,
			WorkingSetBytes: t.WorkingSetBytes,
			PlanSteps:       t.PlanSteps,
			RecordsAccessed: t.RecordsAccessed,
		}
		for f := range t.Scans {
			ts.Scans = append(ts.Scans, f)
		}
		sort.Strings(ts.Scans)
		for mpl, l := range t.SpoilerLatency {
			ts.Spoilers = append(ts.Spoilers, spoilerSample{mpl, l})
		}
		sort.Slice(ts.Spoilers, func(i, j int) bool { return ts.Spoilers[i].MPL < ts.Spoilers[j].MPL })
		s.Templates = append(s.Templates, ts)
	}
	return s
}

// Snapshot captures the predictor's full trained state.
func (p *Predictor) Snapshot() *Snapshot {
	ks := p.Know.Snapshot()
	s := &Snapshot{Version: snapshotVersion, Templates: ks.Templates, ScanTimes: ks.ScanTimes}
	for _, mpl := range p.MPLs() {
		refs := p.refs[mpl]
		for _, id := range refs.IDs() {
			m, _ := refs.Model(id)
			s.Models = append(s.Models, modelSnapshot{MPL: mpl, Template: id, Mu: m.Mu, B: m.B})
		}
	}
	return s
}

// WriteSnapshot serializes the predictor as indented JSON.
func (p *Predictor) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.Snapshot()); err != nil {
		return fmt.Errorf("core: encoding predictor: %w", err)
	}
	return nil
}

// LoadPredictor reconstructs a trained predictor from a snapshot stream.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	return PredictorFromSnapshot(&s)
}

// PredictorFromSnapshot rebuilds the predictor from an in-memory snapshot.
func PredictorFromSnapshot(s *Snapshot) (*Predictor, error) {
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d (want %d)", s.Version, snapshotVersion)
	}
	if len(s.Templates) == 0 {
		return nil, fmt.Errorf("core: snapshot has no templates")
	}
	know := NewKnowledge()
	for f, v := range s.ScanTimes {
		know.SetScanTime(f, v)
	}
	for _, ts := range s.Templates {
		t := TemplateStats{
			ID:              ts.ID,
			IsolatedLatency: ts.IsolatedLatency,
			IOFraction:      ts.IOFraction,
			WorkingSetBytes: ts.WorkingSetBytes,
			PlanSteps:       ts.PlanSteps,
			RecordsAccessed: ts.RecordsAccessed,
			Scans:           make(map[string]bool, len(ts.Scans)),
			SpoilerLatency:  make(map[int]float64, len(ts.Spoilers)),
		}
		for _, f := range ts.Scans {
			t.Scans[f] = true
		}
		for _, sp := range ts.Spoilers {
			t.SpoilerLatency[sp.MPL] = sp.Latency
		}
		know.AddTemplate(t)
	}
	p := &Predictor{Know: know, refs: make(map[int]*ReferenceModels)}
	for _, m := range s.Models {
		if p.refs[m.MPL] == nil {
			p.refs[m.MPL] = NewReferenceModels(know, m.MPL)
		}
		p.refs[m.MPL].Add(m.Template, QSModel{Mu: m.Mu, B: m.B})
	}
	if len(p.refs) == 0 {
		return nil, fmt.Errorf("core: snapshot has no reference models")
	}
	return p, nil
}
