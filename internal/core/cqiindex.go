package core

import "sort"

// The CQI hot path — every PredictKnown call, every candidate mix a
// scheduler evaluates — used to materialize a []TemplateStats per call and
// iterate scan-set maps in randomized order. This file precomputes a
// read-only index over the knowledge base instead, and packs the hot data
// into flat, cache-line-friendly slabs:
//
//   - posByID: a dense template-ID → slot array (map fallback for sparse
//     IDs), so hot-path ID resolution is one bounds check + one load.
//   - hot: per-slot tmplHot records (isolated latency, its product with
//     the I/O fraction, and the slot's scan-slab window) — 32 bytes each,
//     two per cache line, walked sequentially by CQI.
//   - omega: the pairwise shared-scan seconds ω(i,j) of Eq. 2 as one
//     contiguous n×n float64 slab indexed by i*n+j.
//   - scanTID/scanSec: every template's fact scans concatenated into two
//     parallel slabs (table IDs interned to small ints, s_f resolved),
//     in canonical table order.
//   - masks: per-slot scan-set bitsets (maskW words per slot), so the
//     "does template t scan table f" membership tests of Eq. 2/3 are a
//     shift and an AND instead of a string-keyed map lookup.
//
// With it, CQI, PositiveIO, BaselineIO, and the prediction pipeline run
// allocation-free, touch memory sequentially, and sum floating-point
// terms in a deterministic order. The float arithmetic is kept
// bit-identical to the pre-flattening implementation (same association,
// same division), so every golden experiment artifact is unchanged.
//
// The resolvedTemplate view (stats + sorted scans) is retained for the
// cold paths that need ad-hoc primaries or full stats: CQIForStats and
// the operator-granularity model.

// resolvedScan is one fact-table scan with its measured scan time attached.
type resolvedScan struct {
	table   string
	seconds float64 // s_f
}

// resolvedTemplate is a template's stats plus its scan set in canonical
// (table-sorted) order. The stats' maps are shared with the knowledge base
// and must be treated as read-only.
type resolvedTemplate struct {
	stats TemplateStats
	scans []resolvedScan
}

// tmplHot is the per-slot record the serving path reads: everything CQI
// needs about one concurrent template, packed into 32 bytes.
type tmplHot struct {
	ioSecs  float64 // IsolatedLatency · IOFraction, precomputed (Eq. 4 numerator head)
	iso     float64 // IsolatedLatency (the Eq. 4 divisor; ≤ 0 short-circuits to 0)
	ioFrac  float64 // IOFraction (BaselineIO's term)
	scanOff int32   // window [scanOff, scanEnd) into scanTID/scanSec
	scanEnd int32
}

// cqiIndex is an immutable snapshot of the knowledge base, rebuilt lazily
// after any mutation.
type cqiIndex struct {
	n   int
	pos map[int]int // ID → slot (always present; cold paths + sparse fallback)
	// posByID is the dense ID → slot table (-1 = unknown); nil when the ID
	// space is sparse or negative and the map must be used instead.
	posByID []int32

	hot   []tmplHot
	omega []float64 // n×n slab: omega[i*n+j] = ω when j runs with primary i

	scanTID []int32
	scanSec []float64

	maskW int      // bitset words per slot
	masks []uint64 // n×maskW slab; bit t set ⇔ template truly scans table t

	tables  []string
	tableID map[string]int

	tmpl []resolvedTemplate // cold-path view (CQIForStats, OperatorModel)
}

// index returns the current index, building it on first use after a
// mutation. Reads are lock-free; concurrent builders serialize on the
// knowledge base's mutex. Mutating the knowledge base concurrently with
// reads is not supported (and never was).
func (k *Knowledge) index() *cqiIndex {
	if idx := k.cqi.Load(); idx != nil {
		return idx
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if idx := k.cqi.Load(); idx != nil {
		return idx
	}
	idx := k.buildIndex()
	k.cqi.Store(idx)
	return idx
}

// invalidate drops the index after a mutation.
func (k *Knowledge) invalidate() { k.cqi.Store(nil) }

// densePosLimit bounds how much larger than the template count the dense
// ID → slot array may grow before falling back to the map (avoids a huge
// slab for a knowledge base with a handful of far-flung IDs).
const densePosLimit = 1024

func (k *Knowledge) buildIndex() *cqiIndex {
	ids := k.IDs()
	n := len(ids)
	idx := &cqiIndex{
		n:       n,
		pos:     make(map[int]int, n),
		tmpl:    make([]resolvedTemplate, n),
		tableID: make(map[string]int),
	}

	maxID, dense := -1, n > 0
	for _, id := range ids {
		if id < 0 {
			dense = false
		}
		if id > maxID {
			maxID = id
		}
	}
	if dense && maxID < 4*n+densePosLimit {
		idx.posByID = make([]int32, maxID+1)
		for i := range idx.posByID {
			idx.posByID[i] = -1
		}
	}

	// Resolve templates, intern tables in first-seen canonical order
	// (slot order, then each slot's table-sorted scans).
	for i, id := range ids {
		ts := k.templates[id]
		rt := resolvedTemplate{stats: ts, scans: make([]resolvedScan, 0, len(ts.Scans))}
		for f := range ts.Scans {
			rt.scans = append(rt.scans, resolvedScan{table: f, seconds: k.scanSeconds[f]})
		}
		sort.Slice(rt.scans, func(a, b int) bool { return rt.scans[a].table < rt.scans[b].table })
		idx.tmpl[i] = rt
		idx.pos[id] = i
		if idx.posByID != nil {
			idx.posByID[id] = int32(i)
		}
		for _, sc := range rt.scans {
			if _, ok := idx.tableID[sc.table]; !ok {
				idx.tableID[sc.table] = len(idx.tables)
				idx.tables = append(idx.tables, sc.table)
			}
		}
	}

	// Scan slabs and membership bitsets. A template's scan *list* carries
	// every key of its Scans map (matching the historical behavior of
	// iterating the map), while its mask encodes only the keys mapped to
	// true — the two differ when a caller stored explicit false entries,
	// and ω/τ membership tests always meant "maps to true".
	idx.maskW = (len(idx.tables) + 63) / 64
	if idx.maskW == 0 {
		idx.maskW = 1
	}
	idx.masks = make([]uint64, n*idx.maskW)
	idx.hot = make([]tmplHot, n)
	for i := range idx.tmpl {
		ts := &idx.tmpl[i].stats
		off := int32(len(idx.scanTID))
		for _, sc := range idx.tmpl[i].scans {
			tid := idx.tableID[sc.table]
			idx.scanTID = append(idx.scanTID, int32(tid))
			idx.scanSec = append(idx.scanSec, sc.seconds)
			if ts.Scans[sc.table] {
				idx.masks[i*idx.maskW+tid>>6] |= 1 << (uint(tid) & 63)
			}
		}
		idx.hot[i] = tmplHot{
			ioSecs:  ts.IsolatedLatency * ts.IOFraction,
			iso:     ts.IsolatedLatency,
			ioFrac:  ts.IOFraction,
			scanOff: off,
			scanEnd: int32(len(idx.scanTID)),
		}
	}

	// Pairwise ω slab (Eq. 2): shared-scan seconds between every primary i
	// and concurrent j, in j's canonical scan order.
	idx.omega = make([]float64, n*n)
	for i := 0; i < n; i++ {
		row := idx.omega[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			h := &idx.hot[j]
			var w float64
			for s := h.scanOff; s < h.scanEnd; s++ {
				if idx.scanBit(i, int(idx.scanTID[s])) {
					w += idx.scanSec[s]
				}
			}
			row[j] = w
		}
	}
	return idx
}

// scanBit reports whether the template in the given slot truly scans the
// interned table tid.
//
//contender:hotpath
func (idx *cqiIndex) scanBit(slot, tid int) bool {
	return idx.masks[slot*idx.maskW+tid>>6]&(1<<(uint(tid)&63)) != 0
}

// posOf resolves a template ID to its slot, or -1 when unknown.
//
//contender:hotpath
func (idx *cqiIndex) posOf(id int) int {
	if idx.posByID != nil {
		if uint(id) < uint(len(idx.posByID)) {
			return int(idx.posByID[id])
		}
		return -1
	}
	if p, ok := idx.pos[id]; ok {
		return p
	}
	return -1
}

// mustPos resolves a template ID to its index slot, panicking like
// MustTemplate on unknown IDs (a programming error in experiment wiring).
//
//contender:hotpath
func (idx *cqiIndex) mustPos(id int) int {
	p := idx.posOf(id)
	if p < 0 {
		panicUnknownTemplate(id)
	}
	return p
}

// tauSlot computes Eq. 3 for the concurrent template in slot ci against
// the primary in slot pi: scan savings on tables the primary does not
// read, shared by h_f > 1 concurrent queries (each sharer saves
// (1 − 1/h_f)·s_f).
//
//contender:hotpath
func (idx *cqiIndex) tauSlot(pi, ci int, concurrent []int) float64 {
	h := &idx.hot[ci]
	var tau float64
	for s := h.scanOff; s < h.scanEnd; s++ {
		tid := int(idx.scanTID[s])
		if idx.scanBit(pi, tid) {
			continue
		}
		hf := 0
		for _, id := range concurrent {
			if idx.scanBit(idx.mustPos(id), tid) {
				hf++
			}
		}
		if hf > 1 {
			tau += (1 - 1/float64(hf)) * idx.scanSec[s]
		}
	}
	return tau
}

// tau computes Eq. 3 for concurrent query c against an explicit primary
// scan set — the cold-path variant for ad-hoc primaries whose scans are
// not in the index (CQIForStats, OperatorModel).
func (idx *cqiIndex) tau(primaryScans map[string]bool, c *resolvedTemplate, concurrent []int) float64 {
	var tau float64
	for _, sc := range c.scans {
		if primaryScans[sc.table] {
			continue
		}
		tid := idx.tableID[sc.table]
		hf := 0
		for _, id := range concurrent {
			if idx.scanBit(idx.mustPos(id), tid) {
				hf++
			}
		}
		if hf > 1 {
			tau += (1 - 1/float64(hf)) * sc.seconds
		}
	}
	return tau
}
