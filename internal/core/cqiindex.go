package core

import "sort"

// The CQI hot path — every PredictKnown call, every candidate mix a
// scheduler evaluates — used to materialize a []TemplateStats per call and
// iterate scan-set maps in randomized order. This file precomputes a
// read-only index over the knowledge base instead: per-template resolved
// stats, each template's fact scans as a sorted slice with s_f resolved,
// and the pairwise shared-scan seconds ω(i,j) of Eq. 2. With it, CQI,
// PositiveIO, and the prediction pipeline run allocation-free and sum
// floating-point terms in a deterministic order.

// resolvedScan is one fact-table scan with its measured scan time attached.
type resolvedScan struct {
	table   string
	seconds float64 // s_f
}

// resolvedTemplate is a template's stats plus its scan set in canonical
// (table-sorted) order. The stats' maps are shared with the knowledge base
// and must be treated as read-only.
type resolvedTemplate struct {
	stats TemplateStats
	scans []resolvedScan
}

// cqiIndex is an immutable snapshot of the knowledge base, rebuilt lazily
// after any mutation. omega[i][j] is the shared-scan seconds between
// templates i and j (Eq. 2's ω when j runs concurrently with primary i).
type cqiIndex struct {
	pos   map[int]int
	tmpl  []resolvedTemplate
	omega [][]float64
}

// index returns the current index, building it on first use after a
// mutation. Reads are lock-free; concurrent builders serialize on the
// knowledge base's mutex. Mutating the knowledge base concurrently with
// reads is not supported (and never was).
func (k *Knowledge) index() *cqiIndex {
	if idx := k.cqi.Load(); idx != nil {
		return idx
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if idx := k.cqi.Load(); idx != nil {
		return idx
	}
	idx := k.buildIndex()
	k.cqi.Store(idx)
	return idx
}

// invalidate drops the index after a mutation.
func (k *Knowledge) invalidate() { k.cqi.Store(nil) }

func (k *Knowledge) buildIndex() *cqiIndex {
	ids := k.IDs()
	idx := &cqiIndex{
		pos:   make(map[int]int, len(ids)),
		tmpl:  make([]resolvedTemplate, len(ids)),
		omega: make([][]float64, len(ids)),
	}
	for i, id := range ids {
		ts := k.templates[id]
		rt := resolvedTemplate{stats: ts, scans: make([]resolvedScan, 0, len(ts.Scans))}
		for f := range ts.Scans {
			rt.scans = append(rt.scans, resolvedScan{table: f, seconds: k.scanSeconds[f]})
		}
		sort.Slice(rt.scans, func(a, b int) bool { return rt.scans[a].table < rt.scans[b].table })
		idx.tmpl[i] = rt
		idx.pos[id] = i
	}
	for i := range idx.tmpl {
		row := make([]float64, len(ids))
		for j := range idx.tmpl {
			var w float64
			for _, sc := range idx.tmpl[j].scans {
				if idx.tmpl[i].stats.Scans[sc.table] {
					w += sc.seconds
				}
			}
			row[j] = w
		}
		idx.omega[i] = row
	}
	return idx
}

// mustPos resolves a template ID to its index slot, panicking like
// MustTemplate on unknown IDs (a programming error in experiment wiring).
//
//contender:hotpath
func (idx *cqiIndex) mustPos(id int) int {
	p, ok := idx.pos[id]
	if !ok {
		panicUnknownTemplate(id)
	}
	return p
}

// tau computes Eq. 3 for concurrent query c against the given primary scan
// set: scan savings on tables the primary does not read, shared by h_f > 1
// concurrent queries (each sharer saves (1 − 1/h_f)·s_f).
//
//contender:hotpath
func (idx *cqiIndex) tau(primaryScans map[string]bool, c *resolvedTemplate, concurrent []int) float64 {
	var tau float64
	for _, sc := range c.scans {
		if primaryScans[sc.table] {
			continue
		}
		hf := 0
		for _, id := range concurrent {
			if idx.tmpl[idx.mustPos(id)].stats.Scans[sc.table] {
				hf++
			}
		}
		if hf > 1 {
			tau += (1 - 1/float64(hf)) * sc.seconds
		}
	}
	return tau
}
