package core

import (
	"testing"
)

func TestFitSpoilerGrowth(t *testing.T) {
	// l_max = 150n + 50 exactly.
	mpls := []int{1, 2, 3, 4}
	lats := []float64{200, 350, 500, 650}
	g, err := FitSpoilerGrowth(mpls, lats)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g.Mu, 150, 1e-9) || !almostEq(g.B, 50, 1e-9) {
		t.Fatalf("growth %+v", g)
	}
	if !almostEq(g.Latency(5), 800, 1e-9) {
		t.Fatal("extrapolation wrong")
	}
}

func TestGrowthFromStats(t *testing.T) {
	ts := TemplateStats{
		ID: 1, IsolatedLatency: 100,
		SpoilerLatency: map[int]float64{2: 300, 3: 500, 4: 700, 5: 900},
	}
	// Including MPL 1 (isolated 100): l = 200n − 100.
	g, err := GrowthFromStats(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g.Mu, 200, 1e-9) || !almostEq(g.B, -100, 1e-9) {
		t.Fatalf("growth %+v", g)
	}

	// Restricted to MPLs 1–3, extrapolating to 5.
	g13, err := GrowthFromStats(ts, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g13.Latency(5), 900, 1e-9) {
		t.Fatalf("extrapolated %g, want 900", g13.Latency(5))
	}
}

func TestGrowthFromStatsErrors(t *testing.T) {
	if _, err := GrowthFromStats(TemplateStats{ID: 1}, nil); err == nil {
		t.Fatal("expected error without samples")
	}
}

// spoilerKnowledge builds templates whose normalized spoiler growth is an
// exact function of (working set, I/O fraction) clusters, so KNN can
// recover it.
func spoilerKnowledge() *Knowledge {
	k := NewKnowledge()
	add := func(id int, ws, p, rate float64) {
		lmin := 100.0
		sp := make(map[int]float64)
		for mpl := 2; mpl <= 5; mpl++ {
			sp[mpl] = lmin * (rate*float64(mpl-1) + 1) // normalized: rate·n − rate + 1
		}
		k.AddTemplate(TemplateStats{
			ID: id, IsolatedLatency: lmin, IOFraction: p,
			WorkingSetBytes: ws, SpoilerLatency: sp,
		})
	}
	// Cluster A: small ws, high I/O → growth rate 1.0.
	add(1, 1e8, 0.95, 1.0)
	add(2, 1.1e8, 0.96, 1.0)
	add(3, 0.9e8, 0.94, 1.0)
	// Cluster B: big ws, low I/O → growth rate 3.0.
	add(4, 5e9, 0.6, 3.0)
	add(5, 5.2e9, 0.58, 3.0)
	add(6, 4.8e9, 0.62, 3.0)
	return k
}

func TestKNNSpoilerPredictor(t *testing.T) {
	k := spoilerKnowledge()
	p, err := NewKNNSpoilerPredictor(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "KNN" {
		t.Fatal("name wrong")
	}
	// A new template in cluster A must inherit cluster A's growth.
	newT := TemplateStats{ID: 99, IsolatedLatency: 200, IOFraction: 0.95, WorkingSetBytes: 1e8}
	lmax, err := PredictSpoilerLatency(p, newT, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster A at MPL 4: normalized 1.0·4 − 1.0 + 1 = 4 → ... the cluster
	// fit yields growth(4) = 4; latency = 4·200 = 800.
	if !almostEq(lmax, 800, 1) {
		t.Fatalf("predicted %g, want ~800", lmax)
	}
	// And in cluster B: growth(4) = 3·4 − 2 = 10 → 2000.
	newB := TemplateStats{ID: 98, IsolatedLatency: 200, IOFraction: 0.6, WorkingSetBytes: 5e9}
	lmaxB, err := PredictSpoilerLatency(p, newB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lmaxB, 2000, 1) {
		t.Fatalf("predicted %g, want ~2000", lmaxB)
	}
}

func TestKNNSpoilerTooFewTemplates(t *testing.T) {
	k := NewKnowledge()
	k.AddTemplate(TemplateStats{ID: 1, IsolatedLatency: 100, SpoilerLatency: map[int]float64{2: 200}})
	if _, err := NewKNNSpoilerPredictor(k, 3); err == nil {
		t.Fatal("expected error with fewer templates than k")
	}
}

func TestIOTimeSpoilerPredictor(t *testing.T) {
	k := spoilerKnowledge()
	p, err := NewIOTimeSpoilerPredictor(k)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "I/O Time" {
		t.Fatal("name wrong")
	}
	// The univariate regression on p_t also separates the two clusters
	// (p=0.95 → rate 1, p=0.6 → rate 3), though less precisely in general.
	newT := TemplateStats{ID: 99, IsolatedLatency: 200, IOFraction: 0.95, WorkingSetBytes: 1e8}
	lmax, err := PredictSpoilerLatency(p, newT, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lmax < 600 || lmax > 1000 {
		t.Fatalf("predicted %g, want near 800", lmax)
	}
}

func TestPredictSpoilerClampsAboveIsolated(t *testing.T) {
	k := spoilerKnowledge()
	p, err := NewKNNSpoilerPredictor(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate input: predicting at MPL 0 would extrapolate below the
	// isolated latency; the result must clamp.
	newT := TemplateStats{ID: 99, IsolatedLatency: 200, IOFraction: 0.95, WorkingSetBytes: 1e8}
	lmax, err := PredictSpoilerLatency(p, newT, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lmax < newT.IsolatedLatency {
		t.Fatalf("spoiler %g below isolated %g", lmax, newT.IsolatedLatency)
	}
}
