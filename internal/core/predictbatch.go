package core

import (
	"fmt"
	"sort"
	"time"

	"contender/internal/obs"
)

// Batch prediction: schedulers and admission controllers evaluate many
// candidate mixes per decision (which queued query to dispatch next, which
// MPL keeps the SLO). PredictBatch runs the whole decision through a
// vectorized kernel behind a reusable buffer:
//
//   - Candidate mixes are sorted by a content signature and deduplicated,
//     so a mix the scheduler proposes repeatedly (common when candidate
//     sets are generated combinatorially) is priced once and its result
//     fanned out to every duplicate. Only byte-identical sequences merge:
//     CQI sums floats in mix order, so permutations of one set may differ
//     in the last bit and are deliberately not coalesced.
//   - The ω partial sum of Eq. 4's numerator (ioSecs − ω, the part that
//     depends only on the primary and one concurrent template) is cached
//     per template slot across the whole batch — and across successive
//     batches for the same primary.
//   - The h_f sharing counts of Eq. 3 are built once per mix in a scratch
//     table indexed by interned table ID, turning the τ computation from
//     O(|mix|²·scans) membership tests into O(|mix|·scans) array ops.
//
// Results are bit-identical to calling PredictKnown per mix; the batch
// kernel only reassociates work, never floats.

// PredictBuffer is reusable scratch for batch prediction. The zero value is
// ready to use; a buffer must not be shared between goroutines. Scratch is
// keyed by the knowledge snapshot and primary it last served, so reuse
// across different primaries or knowledge mutations is safe and detected
// automatically.
type PredictBuffer struct {
	out []float64

	// Scratch validity keys: the index snapshot sizes the slot/table
	// scratch; the primary keys the slack cache.
	idx     *cqiIndex
	primary int

	// slack[ci] caches ioSecs(ci) − ω(primary, ci) for the current
	// primary; slackStamp/slackEpoch version entries so switching
	// primaries is O(1).
	slack      []float64
	slackStamp []uint32
	slackEpoch uint32

	// hcnt[tid] counts the concurrent queries of the current mix truly
	// scanning interned table tid (the h_f of Eq. 3), epoch-versioned per
	// mix.
	hcnt   []int32
	hStamp []uint32
	hEpoch uint32

	sorter mixSorter
}

// Results returns the predictions of the most recent successful
// PredictBatch call. The slice is overwritten by the next call on the same
// buffer; after a failed call it is empty.
func (b *PredictBuffer) Results() []float64 { return b.out }

// mixSorter orders batch positions by mix signature, then lexicographic
// content, then original position — grouping identical mixes adjacently
// and deterministically. It lives inside PredictBuffer so sort.Sort sees a
// pre-boxed pointer and the hot path stays allocation-free.
type mixSorter struct {
	ord   []int32
	keys  []uint64
	mixes [][]int
}

func (s *mixSorter) Len() int      { return len(s.ord) }
func (s *mixSorter) Swap(i, j int) { s.ord[i], s.ord[j] = s.ord[j], s.ord[i] }
func (s *mixSorter) Less(i, j int) bool {
	a, b := s.ord[i], s.ord[j]
	if s.keys[a] != s.keys[b] {
		return s.keys[a] < s.keys[b]
	}
	ma, mb := s.mixes[a], s.mixes[b]
	if len(ma) != len(mb) {
		return len(ma) < len(mb)
	}
	for k := range ma {
		if ma[k] != mb[k] {
			return ma[k] < mb[k]
		}
	}
	return a < b
}

// mixKey is an FNV-1a fold of a mix's exact ID sequence — a grouping
// signature for the dedup sort, always confirmed by eqMix.
//
//contender:hotpath
func mixKey(mix []int) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range mix {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return h
}

// eqMix reports whether two mixes are the same ID sequence.
//
//contender:hotpath
func eqMix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PredictBatch is PredictKnown evaluated for each candidate mix of the
// same primary, writing into buf's storage. The returned slice aliases
// the buffer and is valid until the next call. Mixes may have different
// MPLs; each must have a trained reference model and continuum.
// A batch emits a single serve.predict_batch span (Value = number of
// mixes) rather than one serve.predict_known span per mix, so observer
// overhead stays O(1) per scheduling decision.
//
//contender:hotpath
func (p *Predictor) PredictBatch(buf *PredictBuffer, primary int, mixes [][]int) ([]float64, error) {
	if p.observer == nil {
		return p.predictBatch(buf, primary, mixes)
	}
	start := time.Now() //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
	out, err := p.predictBatch(buf, primary, mixes)
	obs.Emit(p.observer, obs.Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanServePredictBatch,
		Template: primary,
		Value:    float64(len(mixes)),
		Dur:      time.Since(start), //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
		Err:      obs.ErrLabel(err),
	})
	return out, err
}

//contender:hotpath
func (p *Predictor) predictBatch(buf *PredictBuffer, primary int, mixes [][]int) ([]float64, error) {
	if buf == nil {
		return nil, fmt.Errorf("core: PredictBatch needs a non-nil buffer")
	}
	idx := p.Know.index()
	s := p.serving(idx)
	buf.prepare(idx, primary, len(mixes))

	// Validate every mix in input order first, so errors surface with the
	// same index and message a per-mix PredictKnown loop would report, and
	// a mid-batch failure never leaves partial results behind.
	for i, mix := range mixes {
		if _, _, err := p.cellFor(s, idx, primary, len(mix)); err != nil {
			buf.out = buf.out[:0]
			return nil, fmt.Errorf("core: batch mix %d: %w", i, err)
		}
	}

	// Group identical mixes adjacently; compute each group once.
	st := &buf.sorter
	st.mixes = mixes
	for i := range mixes {
		st.ord[i] = int32(i)
		st.keys[i] = mixKey(mixes[i])
	}
	sort.Sort(st)

	out := buf.out
	rep := int32(-1) // representative position of the current equal-run
	for _, cur := range st.ord {
		if rep >= 0 && st.keys[cur] == st.keys[rep] && eqMix(mixes[cur], mixes[rep]) {
			out[cur] = out[rep]
			continue
		}
		cell, si, _ := p.cellFor(s, idx, primary, len(mixes[cur]))
		out[cur] = cell.latency(buf.cqiBatch(idx, si, mixes[cur]))
		rep = cur
	}
	st.mixes = nil
	return out, nil
}

// prepare sizes the buffer's scratch for an index snapshot, primary, and
// batch size, invalidating caches whose keys changed. It may allocate on
// growth; the steady state (same snapshot, warm capacity) does not.
func (b *PredictBuffer) prepare(idx *cqiIndex, primary, n int) {
	if b.idx != idx {
		b.idx = idx
		b.primary = primary
		b.slack = growSlice(b.slack, idx.n)
		b.slackStamp = growSlice(b.slackStamp, idx.n)
		clearSlice(b.slackStamp)
		b.slackEpoch = 1
		b.hcnt = growSlice(b.hcnt, len(idx.tables))
		b.hStamp = growSlice(b.hStamp, len(idx.tables))
		clearSlice(b.hStamp)
		b.hEpoch = 0
	} else if b.primary != primary {
		b.primary = primary
		b.slackEpoch++
		if b.slackEpoch == 0 {
			clearSlice(b.slackStamp)
			b.slackEpoch = 1
		}
	}
	b.out = growSlice(b.out, n)
	b.sorter.ord = growSlice(b.sorter.ord, n)
	b.sorter.keys = growSlice(b.sorter.keys, n)
}

func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func clearSlice[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}

// cqiBatch is cqiSlot with the batch caches applied: the per-slot slack
// term ioSecs − ω is reused across mixes, and the h_f counts of Eq. 3 are
// tabulated once per mix instead of rescanning the mix per concurrent
// query. The float operations and their order are exactly cqiSlot's, so
// the result is bit-identical.
//
//contender:hotpath
func (b *PredictBuffer) cqiBatch(idx *cqiIndex, pi int, concurrent []int) float64 {
	b.hEpoch++
	if b.hEpoch == 0 {
		clearSlice(b.hStamp)
		b.hEpoch = 1
	}
	for _, id := range concurrent {
		ci := idx.mustPos(id)
		h := &idx.hot[ci]
		for k := h.scanOff; k < h.scanEnd; k++ {
			tid := idx.scanTID[k]
			if !idx.scanBit(ci, int(tid)) {
				continue
			}
			if b.hStamp[tid] != b.hEpoch {
				b.hStamp[tid] = b.hEpoch
				b.hcnt[tid] = 0
			}
			b.hcnt[tid]++
		}
	}

	base := pi * idx.n
	var sum float64
	for _, id := range concurrent {
		ci := idx.mustPos(id)
		h := &idx.hot[ci]
		var tau float64
		for k := h.scanOff; k < h.scanEnd; k++ {
			tid := idx.scanTID[k]
			if idx.scanBit(pi, int(tid)) {
				continue
			}
			hf := int32(0)
			if b.hStamp[tid] == b.hEpoch {
				hf = b.hcnt[tid]
			}
			if hf > 1 {
				tau += (1 - 1/float64(hf)) * idx.scanSec[k]
			}
		}
		if h.iso <= 0 {
			continue
		}
		var slack float64
		if b.slackStamp[ci] == b.slackEpoch {
			slack = b.slack[ci]
		} else {
			slack = h.ioSecs - idx.omega[base+ci]
			b.slack[ci] = slack
			b.slackStamp[ci] = b.slackEpoch
		}
		r := (slack - tau) / h.iso
		if r < 0 {
			r = 0
		}
		sum += r
	}
	return sum / float64(len(concurrent))
}

// Prime forces the knowledge base's hot-path index and the serving index
// to be built now, so the first prediction served to a latency-sensitive
// caller does not pay the one-time construction cost.
func (p *Predictor) Prime() {
	p.serving(p.Know.index())
}
