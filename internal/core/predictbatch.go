package core

import (
	"fmt"
	"time"

	"contender/internal/obs"
)

// Batch prediction: schedulers and admission controllers evaluate many
// candidate mixes per decision (which queued query to dispatch next, which
// MPL keeps the SLO). PredictBatch amortizes that loop behind a reusable
// buffer so the whole decision runs without allocating.

// PredictBuffer is reusable scratch for batch prediction. The zero value is
// ready to use; a buffer must not be shared between goroutines.
type PredictBuffer struct {
	out []float64
}

// Results returns the predictions of the most recent PredictBatch call.
// The slice is overwritten by the next call on the same buffer.
func (b *PredictBuffer) Results() []float64 { return b.out }

// PredictBatch is PredictKnown evaluated for each candidate mix of the
// same primary, appending into buf's storage. The returned slice aliases
// the buffer and is valid until the next call. Mixes may have different
// MPLs; each must have a trained reference model and continuum.
// A batch emits a single serve.predict_batch span (Value = number of
// mixes) rather than one serve.predict_known span per mix, so observer
// overhead stays O(1) per scheduling decision.
//
//contender:hotpath
func (p *Predictor) PredictBatch(buf *PredictBuffer, primary int, mixes [][]int) ([]float64, error) {
	if p.observer == nil {
		return p.predictBatch(buf, primary, mixes)
	}
	start := time.Now() //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
	out, err := p.predictBatch(buf, primary, mixes)
	obs.Emit(p.observer, obs.Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanServePredictBatch,
		Template: primary,
		Value:    float64(len(mixes)),
		Dur:      time.Since(start), //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
		Err:      obs.ErrLabel(err),
	})
	return out, err
}

//contender:hotpath
func (p *Predictor) predictBatch(buf *PredictBuffer, primary int, mixes [][]int) ([]float64, error) {
	if buf == nil {
		return nil, fmt.Errorf("core: PredictBatch needs a non-nil buffer")
	}
	out := buf.out[:0]
	for i, mix := range mixes {
		v, err := p.predictKnown(primary, mix)
		if err != nil {
			return nil, fmt.Errorf("core: batch mix %d: %w", i, err)
		}
		out = append(out, v) //contender:allow hotpathalloc -- appends into buf's reusable storage; steady state is allocation-free once warm
	}
	buf.out = out
	return out, nil
}

// Prime forces the knowledge base's hot-path index to be built now, so the
// first prediction served to a latency-sensitive caller does not pay the
// one-time O(n²·scans) construction cost.
func (p *Predictor) Prime() {
	p.Know.index()
}
