package core

import (
	"fmt"
	"math"

	"contender/internal/obs"
)

// Online prediction-quality feedback (closing the loop the paper leaves
// open): Feedback pairs an observed latency with the prediction the
// pipeline would serve for the same mix, streams the signed relative
// error into an obs.Quality aggregator, and reports drift transitions.
//
// Feedback is opt-in and entirely off the uninstrumented serving path:
// PredictKnown/PredictBatch never consult the quality tracker, and a
// predictor without SetQuality/SetObserver pays nothing.

// SetQuality installs (or, with nil, removes) the prediction-quality
// aggregator that Feedback streams into.
func (p *Predictor) SetQuality(q *obs.Quality) { p.quality = q }

// Quality returns the installed quality aggregator (nil when none).
func (p *Predictor) Quality() *obs.Quality { return p.quality }

// QualityReport snapshots the installed quality aggregator. Without one
// it returns an empty report, so callers need not nil-check.
func (p *Predictor) QualityReport() obs.QualityReport { return p.quality.Report() }

// FeedbackResult reports one feedback observation: the prediction that
// was compared, the signed relative error, and the template's drift
// state after folding the sample in.
type FeedbackResult struct {
	// Predicted is the latency the pipeline predicts for the mix.
	Predicted float64
	// Observed is the caller-supplied observed latency.
	Observed float64
	// SignedError is (Observed-Predicted)/Observed: positive when the
	// predictor underestimates.
	SignedError float64
	// State/Previous are the template's drift states after/before the
	// sample; Transitioned is true when they differ.
	State        obs.DriftState
	Previous     obs.DriftState
	Transitioned bool
}

// Feedback pairs an observed latency for (primary, concurrent) with the
// prediction the pipeline serves for that mix and folds the signed
// relative error into the quality aggregator (when one is installed via
// SetQuality). Prediction errors (unknown template, untrained MPL,
// empty mix) and non-positive or non-finite observed latencies return
// an error without recording anything.
//
// With a quality aggregator and an observer installed, every sample
// emits a quality.feedback point and every drift transition a
// quality.drift point. With neither installed the call only computes
// the error. The warm path performs no heap allocations.
//
//contender:hotpath
func (p *Predictor) Feedback(primary int, concurrent []int, observed float64) (FeedbackResult, error) {
	if observed <= 0 || math.IsNaN(observed) || math.IsInf(observed, 0) {
		return FeedbackResult{}, fmt.Errorf("core: %w: observed latency %g", ErrBadObservation, observed)
	}
	predicted, err := p.predictKnown(primary, concurrent)
	if err != nil {
		return FeedbackResult{}, err
	}
	signed := (observed - predicted) / observed
	res := FeedbackResult{Predicted: predicted, Observed: observed, SignedError: signed}
	if p.quality != nil {
		d := p.quality.Observe(primary, signed)
		res.State, res.Previous, res.Transitioned = d.State, d.Previous, d.Transitioned
		if p.observer != nil && d.Transitioned {
			obs.Emit(p.observer, obs.Event{
				Kind:     obs.Point,
				Span:     obs.PointQualityDrift,
				Key:      obs.TransitionLabel(d.Previous, d.State),
				Template: primary,
				MPL:      len(concurrent) + 1,
				Value:    d.WindowMRE,
			})
		}
	}
	if p.observer != nil {
		obs.Emit(p.observer, obs.Event{
			Kind:     obs.Point,
			Span:     obs.PointQualityFeedback,
			Template: primary,
			MPL:      len(concurrent) + 1,
			Value:    signed,
		})
	}
	return res, nil
}
