package core

// This file implements the paper's first future-work direction (Section
// 8): "developing models for predicting query performance on an expanding
// database. As database writes accumulate, this would enable the predictor
// to continue to provide important information to database users."
//
// Contender's statistics-based design makes the extension analytic: with
// constant predicate selectivities, every row-driven cost grows linearly
// with the fact data, so scaling the knowledge base re-derives every input
// of the Figure-5 pipeline — scan times, isolated latencies, working sets
// — without a single new sample execution. The ordinary new-template path
// (estimated QS model + KNN-predicted spoiler) then produces predictions
// for the grown database.

// ScaleStats projects a template's isolated statistics onto a database
// grown by the given factor. With constant predicate selectivities, every
// row-driven cost — scan I/O, scan and join CPU, intermediate-result sizes
// — grows linearly with the fact data, so:
//
//   - the isolated latency scales by the factor (dimension-side fixed
//     costs are negligible for analytical templates);
//   - the I/O fraction is unchanged;
//   - the working set and records accessed scale with their inputs.
//
// Measured spoiler latencies are dropped — they were observed at the old
// scale — so downstream prediction must use a SpoilerPredictor, exactly as
// for an ad-hoc template.
func ScaleStats(t TemplateStats, factor float64) TemplateStats {
	if factor <= 0 {
		factor = 1
	}
	out := t
	out.IsolatedLatency = t.IsolatedLatency * factor
	out.WorkingSetBytes = t.WorkingSetBytes * factor
	out.RecordsAccessed = t.RecordsAccessed * factor
	out.SpoilerLatency = map[int]float64{}
	// The scan set and plan shape are unchanged by growth.
	out.Scans = make(map[string]bool, len(t.Scans))
	for f, v := range t.Scans {
		out.Scans[f] = v
	}
	return out
}

// ScaleKnowledge projects a whole knowledge base onto a grown database:
// every template's statistics are scaled and every fact-table scan time
// s_f grows linearly with the table. The result feeds CQI computation and
// QS-model transfer at the new scale.
func ScaleKnowledge(k *Knowledge, factor float64) *Knowledge {
	out := NewKnowledge()
	for _, id := range k.IDs() {
		out.AddTemplate(ScaleStats(k.MustTemplate(id), factor))
	}
	for f, s := range k.scanSeconds {
		out.SetScanTime(f, s*factor)
	}
	return out
}
