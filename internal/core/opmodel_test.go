package core

import (
	"strings"
	"testing"
)

func TestOperatorModelHandComputed(t *testing.T) {
	k := testKnowledge()
	om := NewOperatorModel(k)
	primary := k.MustTemplate(1) // scans F

	stages := []StageProfile{
		{Class: StageClassCached, IsolatedSeconds: 1},
		{Class: StageClassSeqIO, Table: "F", IsolatedSeconds: 100},
		{Class: StageClassCPU, IsolatedSeconds: 40},
		{Class: StageClassRandIO, IsolatedSeconds: 10},
	}

	// Concurrent T3 (scans G, r_3 = 1.0):
	// cached 1 + seq 100·(1+1.0) + cpu 40 + rand 10·(1+1.0) = 261.
	got, err := om.Predict(primary, stages, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 261, 1e-9) {
		t.Fatalf("predicted %g, want 261", got)
	}

	// Concurrent T2 (scans F and G): it shares the primary's F scan, so
	// the seq stage sees no extra load; its intensity r_2 = 0.65 hits only
	// the random stage: 1 + 100 + 40 + 10·1.65 = 157.5.
	got, err = om.Predict(primary, stages, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 157.5, 1e-9) {
		t.Fatalf("predicted %g, want 157.5", got)
	}
}

func TestOperatorModelIsolation(t *testing.T) {
	k := testKnowledge()
	om := NewOperatorModel(k)
	stages := []StageProfile{
		{Class: StageClassSeqIO, Table: "F", IsolatedSeconds: 100},
		{Class: StageClassCPU, IsolatedSeconds: 50},
	}
	got, err := om.Predict(k.MustTemplate(1), stages, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 150, 1e-9) {
		t.Fatalf("isolated prediction %g, want the stage sum 150", got)
	}
}

func TestOperatorModelErrors(t *testing.T) {
	k := testKnowledge()
	om := NewOperatorModel(k)
	p := k.MustTemplate(1)
	if _, err := om.Predict(p, nil, nil); err == nil {
		t.Fatal("no stages must error")
	}
	bad := []StageProfile{{Class: StageClassSeqIO, IsolatedSeconds: 1}} // no table
	if _, err := om.Predict(p, bad, nil); err == nil {
		t.Fatal("sequential stage without table must error")
	}
	neg := []StageProfile{{Class: StageClassCPU, IsolatedSeconds: -1}}
	if _, err := om.Predict(p, neg, nil); err == nil {
		t.Fatal("negative time must error")
	}
	unknown := []StageProfile{{Class: StageClass(99), IsolatedSeconds: 1}}
	if _, err := om.Predict(p, unknown, nil); err == nil {
		t.Fatal("unknown class must error")
	}
}

func TestStageClassString(t *testing.T) {
	for c, want := range map[StageClass]string{
		StageClassSeqIO:  "SeqIO",
		StageClassRandIO: "RandIO",
		StageClassCPU:    "CPU",
		StageClassCached: "Cached",
	} {
		if c.String() != want {
			t.Fatalf("%d → %q, want %q", int(c), c.String(), want)
		}
	}
	if !strings.Contains(StageClass(42).String(), "42") {
		t.Fatal("unknown class must render its number")
	}
}
