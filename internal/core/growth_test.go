package core

import (
	"testing"
	"testing/quick"
)

func TestScaleStats(t *testing.T) {
	base := TemplateStats{
		ID: 1, IsolatedLatency: 400, IOFraction: 0.8,
		WorkingSetBytes: 2e9, RecordsAccessed: 1e8,
		Scans:          map[string]bool{"F": true},
		SpoilerLatency: map[int]float64{2: 900},
	}
	s := ScaleStats(base, 1.5)
	if !almostEq(s.IsolatedLatency, 600, 1e-9) {
		t.Fatalf("latency %g, want 600", s.IsolatedLatency)
	}
	if s.IOFraction != base.IOFraction {
		t.Fatal("I/O fraction must be unchanged under uniform growth")
	}
	if s.WorkingSetBytes != 3e9 || s.RecordsAccessed != 1.5e8 {
		t.Fatal("row-driven sizes must scale")
	}
	if len(s.SpoilerLatency) != 0 {
		t.Fatal("old-scale spoiler latencies must be dropped")
	}
	if !s.Scans["F"] {
		t.Fatal("scan set must carry over")
	}
	// Deep copy: mutating the scaled scan set must not touch the original.
	s.Scans["G"] = true
	if base.Scans["G"] {
		t.Fatal("scan set must be copied")
	}
}

func TestScaleStatsDegenerateFactor(t *testing.T) {
	base := TemplateStats{ID: 1, IsolatedLatency: 100, IOFraction: 0.5}
	for _, f := range []float64{0, -2} {
		s := ScaleStats(base, f)
		if s.IsolatedLatency != 100 {
			t.Fatalf("factor %g must behave as identity", f)
		}
	}
}

func TestScaleKnowledge(t *testing.T) {
	k := testKnowledge()
	scaled := ScaleKnowledge(k, 2)
	if got := scaled.ScanTime("F"); got != 200 {
		t.Fatalf("scan time %g, want 200", got)
	}
	orig := k.MustTemplate(2)
	grown := scaled.MustTemplate(2)
	if !almostEq(grown.IsolatedLatency, orig.IsolatedLatency*2, 1e-9) {
		t.Fatalf("latency %g", grown.IsolatedLatency)
	}
	// The original knowledge base is untouched.
	if k.ScanTime("F") != 100 {
		t.Fatal("ScaleKnowledge must not mutate its input")
	}
	if len(scaled.IDs()) != len(k.IDs()) {
		t.Fatal("template count changed")
	}
}

// Property: CQI is invariant under uniform database growth — every term of
// Eq. 4 scales linearly, so the ratios cancel. This is why original-scale
// QS models transfer to the grown database.
func TestCQIScaleInvariance(t *testing.T) {
	k := testKnowledge()
	f := func(factorRaw uint8) bool {
		factor := 1 + float64(factorRaw)/64 // 1.0 .. ~5
		scaled := ScaleKnowledge(k, factor)
		for _, primary := range k.IDs() {
			before := k.CQI(primary, []int{2, 3})
			after := scaled.CQI(primary, []int{2, 3})
			if !almostEq(before, after, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
