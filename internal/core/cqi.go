package core

// This file implements Section 4: the Concurrent Query Intensity metric and
// its two ablations (Baseline I/O and Positive I/O), exactly following
// Equations 2–5 and Table 1's notation. All three run against the
// precomputed flat knowledge-base index (cqiindex.go) — slot arithmetic
// into contiguous slabs, no nested lookups — and allocate nothing on the
// steady path. The arithmetic is ordered identically to the reference
// implementation so results are bit-for-bit stable across refactors.

// concurrentIntensity computes r_c (Eq. 4) from full template stats — the
// cold-path variant used by CQIForStats and the operator model. Negative
// estimates are truncated to zero (queries whose I/O is entirely covered
// by shared scans).
//
//contender:hotpath
func concurrentIntensity(c *TemplateStats, omega, tau float64) float64 {
	if c.IsolatedLatency <= 0 {
		return 0
	}
	r := (c.IsolatedLatency*c.IOFraction - omega - tau) / c.IsolatedLatency
	if r < 0 {
		return 0
	}
	return r
}

// intensitySlot is r_c (Eq. 4) on the flat index: ioSecs is the
// precomputed IsolatedLatency·IOFraction product, so the expression
// (ioSecs − ω − τ) / iso associates exactly like the stats-based form.
//
//contender:hotpath
func (idx *cqiIndex) intensitySlot(ci int, omega, tau float64) float64 {
	h := &idx.hot[ci]
	if h.iso <= 0 {
		return 0
	}
	r := (h.ioSecs - omega - tau) / h.iso
	if r < 0 {
		return 0
	}
	return r
}

// cqiSlot is the shared CQI kernel: mean competing intensity of the
// concurrent templates against the primary in slot pi. ω comes from one
// row of the pairwise slab; τ is mix-dependent (Eq. 3) and computed per
// concurrent query without allocating.
//
//contender:hotpath
func (idx *cqiIndex) cqiSlot(pi int, concurrent []int) float64 {
	base := pi * idx.n
	var sum float64
	for _, id := range concurrent {
		ci := idx.mustPos(id)
		tau := idx.tauSlot(pi, ci, concurrent)
		sum += idx.intensitySlot(ci, idx.omega[base+ci], tau)
	}
	return sum / float64(len(concurrent))
}

// CQI returns r_{t,m} (Eq. 5): the mean competing-I/O intensity of the
// concurrent queries when `primary` executes with `concurrent` (template
// IDs). It is the independent variable of every QS model. The shared-scan
// savings ω_c (Eq. 2) come from the precomputed pairwise slab; the
// non-primary sharing term τ_c (Eq. 3) is mix-dependent and computed per
// call, still without allocating.
//
//contender:hotpath
func (k *Knowledge) CQI(primary int, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	return idx.cqiSlot(idx.mustPos(primary), concurrent)
}

// CQIForStats is CQI with an explicit primary — used when the primary is an
// ad-hoc template not present in the knowledge base (its ω terms cannot be
// precomputed and are resolved from its scan set per call).
func (k *Knowledge) CQIForStats(primary TemplateStats, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	var sum float64
	for _, id := range concurrent {
		c := &idx.tmpl[idx.mustPos(id)]
		var omega float64
		for _, sc := range c.scans {
			if primary.Scans[sc.table] {
				omega += sc.seconds
			}
		}
		tau := idx.tau(primary.Scans, c, concurrent)
		sum += concurrentIntensity(&c.stats, omega, tau)
	}
	return sum / float64(len(concurrent))
}

// BaselineIO is the first Table 2 ablation: the mean isolated I/O fraction
// of the concurrent queries, ignoring all interactions.
//
//contender:hotpath
func (k *Knowledge) BaselineIO(concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	var sum float64
	for _, id := range concurrent {
		sum += idx.hot[idx.mustPos(id)].ioFrac
	}
	return sum / float64(len(concurrent))
}

// PositiveIO is the second Table 2 ablation: baseline I/O minus the shared
// scans with the primary (ω) but ignoring sharing among non-primaries (τ).
//
//contender:hotpath
func (k *Knowledge) PositiveIO(primary int, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	pi := idx.mustPos(primary)
	base := pi * idx.n
	var sum float64
	for _, id := range concurrent {
		ci := idx.mustPos(id)
		sum += idx.intensitySlot(ci, idx.omega[base+ci], 0)
	}
	return sum / float64(len(concurrent))
}
