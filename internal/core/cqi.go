package core

// This file implements Section 4: the Concurrent Query Intensity metric and
// its two ablations (Baseline I/O and Positive I/O), exactly following
// Equations 2–5 and Table 1's notation. All three run against the
// precomputed knowledge-base index (cqiindex.go) and allocate nothing on
// the steady path.

// concurrentIntensity computes r_c (Eq. 4): the fraction of c's fair share
// of the I/O bus it will spend competing directly with the primary.
// Negative estimates are truncated to zero (queries whose I/O is entirely
// covered by shared scans).
//
//contender:hotpath
func concurrentIntensity(c *TemplateStats, omega, tau float64) float64 {
	if c.IsolatedLatency <= 0 {
		return 0
	}
	r := (c.IsolatedLatency*c.IOFraction - omega - tau) / c.IsolatedLatency
	if r < 0 {
		return 0
	}
	return r
}

// CQI returns r_{t,m} (Eq. 5): the mean competing-I/O intensity of the
// concurrent queries when `primary` executes with `concurrent` (template
// IDs). It is the independent variable of every QS model. The shared-scan
// savings ω_c (Eq. 2) come from the precomputed pairwise table; the
// non-primary sharing term τ_c (Eq. 3) is mix-dependent and computed per
// call, still without allocating.
//
//contender:hotpath
func (k *Knowledge) CQI(primary int, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	pi := idx.mustPos(primary)
	primaryScans := idx.tmpl[pi].stats.Scans
	var sum float64
	for _, id := range concurrent {
		ci := idx.mustPos(id)
		c := &idx.tmpl[ci]
		omega := idx.omega[pi][ci]
		tau := idx.tau(primaryScans, c, concurrent)
		sum += concurrentIntensity(&c.stats, omega, tau)
	}
	return sum / float64(len(concurrent))
}

// CQIForStats is CQI with an explicit primary — used when the primary is an
// ad-hoc template not present in the knowledge base (its ω terms cannot be
// precomputed and are resolved from its scan set per call).
func (k *Knowledge) CQIForStats(primary TemplateStats, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	var sum float64
	for _, id := range concurrent {
		c := &idx.tmpl[idx.mustPos(id)]
		var omega float64
		for _, sc := range c.scans {
			if primary.Scans[sc.table] {
				omega += sc.seconds
			}
		}
		tau := idx.tau(primary.Scans, c, concurrent)
		sum += concurrentIntensity(&c.stats, omega, tau)
	}
	return sum / float64(len(concurrent))
}

// BaselineIO is the first Table 2 ablation: the mean isolated I/O fraction
// of the concurrent queries, ignoring all interactions.
//
//contender:hotpath
func (k *Knowledge) BaselineIO(concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	var sum float64
	for _, id := range concurrent {
		sum += idx.tmpl[idx.mustPos(id)].stats.IOFraction
	}
	return sum / float64(len(concurrent))
}

// PositiveIO is the second Table 2 ablation: baseline I/O minus the shared
// scans with the primary (ω) but ignoring sharing among non-primaries (τ).
//
//contender:hotpath
func (k *Knowledge) PositiveIO(primary int, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	idx := k.index()
	pi := idx.mustPos(primary)
	var sum float64
	for _, id := range concurrent {
		ci := idx.mustPos(id)
		sum += concurrentIntensity(&idx.tmpl[ci].stats, idx.omega[pi][ci], 0)
	}
	return sum / float64(len(concurrent))
}
