package core

// This file implements Section 4: the Concurrent Query Intensity metric and
// its two ablations (Baseline I/O and Positive I/O), exactly following
// Equations 2–5 and Table 1's notation.

// cqiTerms computes, for one concurrent query c in a mix, the shared-I/O
// savings ω_c (scans shared with the primary, Eq. 2) and τ_c (scans shared
// among non-primaries, Eq. 3).
func (k *Knowledge) cqiTerms(primary TemplateStats, c TemplateStats, concurrent []TemplateStats) (omega, tau float64) {
	// ω_c: fact-table scans shared between c and the primary.
	for f := range c.Scans {
		if primary.Scans[f] {
			omega += k.scanSeconds[f]
		}
	}
	// τ_c: scans of tables the primary does NOT read, shared by h_f > 1
	// concurrent queries; the model assumes the h_f sharers split the scan,
	// saving (1 - 1/h_f)·s_f each.
	for f := range c.Scans {
		if primary.Scans[f] {
			continue
		}
		hf := 0
		for _, other := range concurrent {
			if other.Scans[f] {
				hf++
			}
		}
		if hf > 1 {
			tau += (1 - 1/float64(hf)) * k.scanSeconds[f]
		}
	}
	return omega, tau
}

// concurrentIntensity computes r_c (Eq. 4): the fraction of c's fair share
// of the I/O bus it will spend competing directly with the primary.
// Negative estimates are truncated to zero (queries whose I/O is entirely
// covered by shared scans).
func concurrentIntensity(c TemplateStats, omega, tau float64) float64 {
	if c.IsolatedLatency <= 0 {
		return 0
	}
	r := (c.IsolatedLatency*c.IOFraction - omega - tau) / c.IsolatedLatency
	if r < 0 {
		return 0
	}
	return r
}

// CQI returns r_{t,m} (Eq. 5): the mean competing-I/O intensity of the
// concurrent queries when `primary` executes with `concurrent` (template
// IDs). It is the independent variable of every QS model.
func (k *Knowledge) CQI(primary int, concurrent []int) float64 {
	p := k.MustTemplate(primary)
	return k.cqiFor(p, concurrent)
}

// CQIForStats is CQI with an explicit primary — used when the primary is an
// ad-hoc template not present in the knowledge base.
func (k *Knowledge) CQIForStats(primary TemplateStats, concurrent []int) float64 {
	return k.cqiFor(primary, concurrent)
}

func (k *Knowledge) cqiFor(primary TemplateStats, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	cs := make([]TemplateStats, len(concurrent))
	for i, id := range concurrent {
		cs[i] = k.MustTemplate(id)
	}
	var sum float64
	for _, c := range cs {
		omega, tau := k.cqiTerms(primary, c, cs)
		sum += concurrentIntensity(c, omega, tau)
	}
	return sum / float64(len(cs))
}

// BaselineIO is the first Table 2 ablation: the mean isolated I/O fraction
// of the concurrent queries, ignoring all interactions.
func (k *Knowledge) BaselineIO(concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	var sum float64
	for _, id := range concurrent {
		sum += k.MustTemplate(id).IOFraction
	}
	return sum / float64(len(concurrent))
}

// PositiveIO is the second Table 2 ablation: baseline I/O minus the shared
// scans with the primary (ω) but ignoring sharing among non-primaries (τ).
func (k *Knowledge) PositiveIO(primary int, concurrent []int) float64 {
	if len(concurrent) == 0 {
		return 0
	}
	p := k.MustTemplate(primary)
	var sum float64
	for _, id := range concurrent {
		c := k.MustTemplate(id)
		omega, _ := k.cqiTerms(p, c, nil)
		sum += concurrentIntensity(c, omega, 0)
	}
	return sum / float64(len(concurrent))
}
