package core

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// testKnowledge builds a small synthetic workload with hand-checkable CQI
// terms:
//
//	table F: scan time 100 s; table G: 50 s; table H: 20 s
//	T1 (primary): scans F;      l_min 200, p 0.8
//	T2: scans F, G;             l_min 400, p 0.9
//	T3: scans G;                l_min 100, p 1.0
//	T4: no fact scans;          l_min 300, p 0.5
func testKnowledge() *Knowledge {
	k := NewKnowledge()
	k.SetScanTime("F", 100)
	k.SetScanTime("G", 50)
	k.SetScanTime("H", 20)
	add := func(id int, lmin, p float64, scans ...string) {
		s := make(map[string]bool)
		for _, f := range scans {
			s[f] = true
		}
		k.AddTemplate(TemplateStats{
			ID: id, IsolatedLatency: lmin, IOFraction: p,
			Scans: s, SpoilerLatency: map[int]float64{},
		})
	}
	add(1, 200, 0.8, "F")
	add(2, 400, 0.9, "F", "G")
	add(3, 100, 1.0, "G")
	add(4, 300, 0.5)
	return k
}

func TestCQIHandComputed(t *testing.T) {
	k := testKnowledge()

	// Primary T1 with concurrent {T2}:
	// ω_2 = s_F = 100 (T2 shares F with the primary).
	// τ_2 = 0 (G is not shared with any other concurrent query).
	// r_2 = (400·0.9 − 100 − 0)/400 = 260/400 = 0.65.
	got := k.CQI(1, []int{2})
	if !almostEq(got, 0.65, 1e-12) {
		t.Fatalf("CQI = %g, want 0.65", got)
	}

	// Primary T1 with {T2, T3}:
	// r_2: ω=100 (F); τ: G scanned by T2 and T3 (h_G = 2, primary does
	// not scan G) → τ_2 = (1 − 1/2)·50 = 25 → r_2 = (360−100−25)/400 = 0.5875.
	// r_3: ω=0; τ_3 = 25 → r_3 = (100·1.0 − 25)/100 = 0.75.
	// CQI = (0.5875 + 0.75)/2 = 0.66875.
	got = k.CQI(1, []int{2, 3})
	if !almostEq(got, 0.66875, 1e-12) {
		t.Fatalf("CQI = %g, want 0.66875", got)
	}
}

// TestCQIFalseScanEntries pins the semantics of explicit false entries in
// a Scans map, which the flat index encodes as "in the scan list, not in
// the membership bitset": a false entry still contributes ω against a
// primary that truly scans the table (the membership test is on the
// primary's set), but never counts toward h_f and never marks the
// template as a sharer.
func TestCQIFalseScanEntries(t *testing.T) {
	k := testKnowledge()
	// T7 "scans" G only nominally (explicit false), T8 nominally reads F
	// (false) and truly scans G.
	k.AddTemplate(TemplateStats{
		ID: 7, IsolatedLatency: 300, IOFraction: 1.0,
		Scans: map[string]bool{"G": false}, SpoilerLatency: map[int]float64{},
	})
	k.AddTemplate(TemplateStats{
		ID: 8, IsolatedLatency: 200, IOFraction: 1.0,
		Scans: map[string]bool{"F": false, "G": true}, SpoilerLatency: map[int]float64{},
	})

	// Primary T1 (truly scans F) with {T3, T8}:
	// r_3: ω=0; h_G counts T3 and T8 (both truly scan G) → τ_3 = 25 →
	//      r_3 = (100·1.0 − 25)/100 = 0.75.
	// r_8: ω = s_F = 100 — T8's F entry is false, but ω membership tests
	//      the PRIMARY's set; τ_8 = 25 → r_8 = (200 − 100 − 25)/200 = 0.375.
	got := k.CQI(1, []int{3, 8})
	if !almostEq(got, (0.75+0.375)/2, 1e-12) {
		t.Fatalf("CQI = %g, want %g", got, (0.75+0.375)/2)
	}

	// Adding T7 must not raise h_G (its G entry is false):
	// r_7 = (300·1.0 − 0 − 25)/300 = 275/300; r_3 and r_8 unchanged.
	got = k.CQI(1, []int{3, 7, 8})
	want := (0.75 + 275.0/300.0 + 0.375) / 3
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("CQI = %g, want %g", got, want)
	}
}

func TestCQITruncatesNegative(t *testing.T) {
	k := testKnowledge()
	// A template whose shared scans exceed its total I/O time: T5 scans F
	// (100 s shared) but has only 60 s of I/O in isolation.
	k.AddTemplate(TemplateStats{
		ID: 5, IsolatedLatency: 100, IOFraction: 0.6,
		Scans: map[string]bool{"F": true}, SpoilerLatency: map[int]float64{},
	})
	got := k.CQI(1, []int{5})
	if got != 0 {
		t.Fatalf("CQI = %g, want 0 (negative estimates truncate)", got)
	}
}

func TestCQIEmptyMix(t *testing.T) {
	k := testKnowledge()
	if k.CQI(1, nil) != 0 {
		t.Fatal("empty mix must have zero intensity")
	}
}

func TestBaselineIO(t *testing.T) {
	k := testKnowledge()
	// Mean of p: (0.9 + 1.0)/2 = 0.95, no interaction terms.
	got := k.BaselineIO([]int{2, 3})
	if !almostEq(got, 0.95, 1e-12) {
		t.Fatalf("BaselineIO = %g, want 0.95", got)
	}
	if k.BaselineIO(nil) != 0 {
		t.Fatal("empty mix must be 0")
	}
}

func TestPositiveIO(t *testing.T) {
	k := testKnowledge()
	// Primary T1 with {T2, T3}: r_2 = (360−100)/400 = 0.65 (ω only),
	// r_3 = 1.0 (no shared scans with primary). Mean = 0.825.
	got := k.PositiveIO(1, []int{2, 3})
	if !almostEq(got, 0.825, 1e-12) {
		t.Fatalf("PositiveIO = %g, want 0.825", got)
	}
	if k.PositiveIO(1, nil) != 0 {
		t.Fatal("empty mix must be 0")
	}
}

func TestVariantOrderingUnderSharing(t *testing.T) {
	// With shared scans present, CQI ≤ PositiveIO ≤ BaselineIO — each
	// refinement subtracts more shared I/O.
	k := testKnowledge()
	c := k.CQI(1, []int{2, 3})
	p := k.PositiveIO(1, []int{2, 3})
	b := k.BaselineIO([]int{2, 3})
	if !(c <= p && p <= b) {
		t.Fatalf("ordering violated: CQI %g, Positive %g, Baseline %g", c, p, b)
	}
}

func TestCQIForStatsAdhocPrimary(t *testing.T) {
	k := testKnowledge()
	adhoc := TemplateStats{
		ID: 99, IsolatedLatency: 500, IOFraction: 0.9,
		Scans: map[string]bool{"G": true},
	}
	// T3 shares G with the ad-hoc primary: ω_3 = 50 → r_3 = (100−50)/100 = 0.5.
	got := k.CQIForStats(adhoc, []int{3})
	if !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("CQIForStats = %g, want 0.5", got)
	}
}

func TestKnowledgeHelpers(t *testing.T) {
	k := testKnowledge()
	ids := k.IDs()
	if len(ids) != 4 || ids[0] != 1 || ids[3] != 4 {
		t.Fatalf("IDs = %v", ids)
	}
	if _, ok := k.Template(99); ok {
		t.Fatal("unknown template must not resolve")
	}
	cl := k.Clone()
	cl.SetScanTime("F", 999)
	if k.ScanTime("F") != 100 {
		t.Fatal("Clone must not share scan times")
	}
	ts, _ := cl.Template(1)
	ts.Scans["Z"] = true
	orig := k.MustTemplate(1)
	if orig.Scans["Z"] {
		t.Fatal("Clone must deep-copy scan sets")
	}
	if _, ok := cl.Remove(1); !ok {
		t.Fatal("Remove must report presence")
	}
	if _, ok := cl.Template(1); ok {
		t.Fatal("Remove must delete")
	}
	if _, ok := cl.Remove(1); ok {
		t.Fatal("second Remove must report absence")
	}
}

func TestMustTemplatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testKnowledge().MustTemplate(12345)
}

func TestObservationMPL(t *testing.T) {
	o := Observation{Primary: 1, Concurrent: []int{2, 3}}
	if o.MPL() != 3 {
		t.Fatalf("MPL = %d, want 3", o.MPL())
	}
}

func TestSpoilerSlowdown(t *testing.T) {
	ts := TemplateStats{IsolatedLatency: 100, SpoilerLatency: map[int]float64{3: 400}}
	if ts.SpoilerSlowdown(3) != 4 {
		t.Fatal("slowdown wrong")
	}
	if ts.SpoilerSlowdown(5) != 0 {
		t.Fatal("missing MPL must yield 0")
	}
	if (TemplateStats{}).SpoilerSlowdown(3) != 0 {
		t.Fatal("zero isolated latency must yield 0")
	}
}
