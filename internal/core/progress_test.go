package core

import (
	"errors"
	"fmt"
	"testing"
)

// stubLatency predicts 100 s in isolation, 200 s with one concurrent
// query, 400 s with two.
func stubLatency(concurrent []int) (float64, error) {
	switch len(concurrent) {
	case 0:
		return 100, nil
	case 1:
		return 200, nil
	case 2:
		return 400, nil
	}
	return 0, fmt.Errorf("unsupported MPL")
}

func TestProgressTrackerIntegratesRates(t *testing.T) {
	tr := NewProgressTracker(stubLatency)
	// 50 s alone → half done.
	f, err := tr.Advance(50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f, 0.5, 1e-12) {
		t.Fatalf("fraction %g, want 0.5", f)
	}
	// 100 s with one concurrent query → another quarter... no: rate is
	// 1/200 per second → +0.5. Complete.
	f, err = tr.Advance(100, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f, 1, 1e-12) || !tr.Done() {
		t.Fatalf("fraction %g, want 1 (done)", f)
	}
	if tr.Elapsed() != 150 {
		t.Fatalf("elapsed %g", tr.Elapsed())
	}
}

func TestProgressTrackerRemaining(t *testing.T) {
	tr := NewProgressTracker(stubLatency)
	if _, err := tr.Advance(25, nil); err != nil { // 25% done
		t.Fatal(err)
	}
	// Remaining if the query stays alone: 75 s.
	r, err := tr.Remaining(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 75, 1e-12) {
		t.Fatalf("remaining %g, want 75", r)
	}
	// Remaining under a two-query mix: 0.75·400 = 300 s.
	r, err = tr.Remaining([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 300, 1e-12) {
		t.Fatalf("remaining %g, want 300", r)
	}
}

func TestProgressTrackerClampsAndStops(t *testing.T) {
	tr := NewProgressTracker(stubLatency)
	if _, err := tr.Advance(1000, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Fraction() != 1 {
		t.Fatal("fraction must clamp at 1")
	}
	if _, err := tr.Advance(10, nil); !errors.Is(err, ErrTrackerDone) {
		t.Fatalf("err = %v, want ErrTrackerDone", err)
	}
	if r, err := tr.Remaining(nil); err != nil || r != 0 {
		t.Fatalf("remaining after done = %g, %v", r, err)
	}
}

func TestProgressTrackerErrors(t *testing.T) {
	tr := NewProgressTracker(stubLatency)
	if _, err := tr.Advance(-1, nil); err == nil {
		t.Fatal("negative interval must error")
	}
	if _, err := tr.Advance(10, []int{1, 2, 3}); err == nil {
		t.Fatal("predictor errors must propagate")
	}
	bad := NewProgressTracker(func([]int) (float64, error) { return 0, nil })
	if _, err := bad.Advance(10, nil); err == nil {
		t.Fatal("non-positive latency must error")
	}
	// Failed advances must not corrupt state.
	if tr.Fraction() != 0 || tr.Elapsed() != 0 {
		t.Fatal("failed Advance must not change state")
	}
}
