package core

import (
	"math"
	"math/rand"
	"testing"
)

// predictorFixture builds a knowledge base and synthetic observations where
// the continuum point is exactly linear in the CQI, so training must
// produce perfect predictions.
func predictorFixture(t *testing.T) (*Knowledge, []Observation) {
	t.Helper()
	k := NewKnowledge()
	k.SetScanTime("F", 100)
	k.SetScanTime("G", 50)
	templates := []struct {
		id    int
		lmin  float64
		p     float64
		scans []string
	}{
		{1, 200, 0.8, []string{"F"}},
		{2, 400, 0.9, []string{"F", "G"}},
		{3, 100, 1.0, []string{"G"}},
		{4, 300, 0.5, nil},
		{5, 500, 0.95, []string{"F"}},
	}
	for _, tpl := range templates {
		scans := make(map[string]bool)
		for _, f := range tpl.scans {
			scans[f] = true
		}
		k.AddTemplate(TemplateStats{
			ID: tpl.id, IsolatedLatency: tpl.lmin, IOFraction: tpl.p,
			Scans: scans,
			SpoilerLatency: map[int]float64{
				2: tpl.lmin * 2.2,
				3: tpl.lmin * 3.4,
			},
		})
	}

	// For each template, generate observations with c = µ·r + b for a
	// per-template ground-truth QS model.
	qsFor := func(id int) QSModel {
		return QSModel{Mu: 0.5 + 0.05*float64(id), B: 0.1 + 0.01*float64(id)}
	}
	var obs []Observation
	ids := k.IDs()
	for _, primary := range ids {
		cont2, _ := k.ContinuumFor(primary, 2)
		cont3, _ := k.ContinuumFor(primary, 3)
		for _, c1 := range ids {
			// MPL 2 pair.
			r := k.CQI(primary, []int{c1})
			obs = append(obs, Observation{
				Primary: primary, Concurrent: []int{c1},
				Latency: cont2.Latency(qsFor(primary).Point(r)),
			})
			// MPL 3 triple.
			for _, c2 := range ids {
				if c2 < c1 {
					continue
				}
				r3 := k.CQI(primary, []int{c1, c2})
				obs = append(obs, Observation{
					Primary: primary, Concurrent: []int{c1, c2},
					Latency: cont3.Latency(qsFor(primary).Point(r3)),
				})
			}
		}
	}
	return k, obs
}

func TestTrainAndPredictKnown(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mpls := p.MPLs()
	if len(mpls) != 2 || mpls[0] != 2 || mpls[1] != 3 {
		t.Fatalf("MPLs = %v", mpls)
	}
	// Predictions must reproduce the generating model exactly.
	for _, o := range obs {
		got, err := p.PredictKnown(o.Primary, o.Concurrent)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, o.Latency, 1e-6*(1+o.Latency)) {
			t.Fatalf("T%d in %v: predicted %g, want %g", o.Primary, o.Concurrent, got, o.Latency)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	k, obs := predictorFixture(t)
	if _, err := Train(k, nil, TrainOptions{}); err == nil {
		t.Fatal("expected error with no observations")
	}
	// Observations at an MPL without spoiler latencies must error.
	bad := []Observation{{Primary: 1, Concurrent: []int{2, 3, 4}, Latency: 100}}
	if _, err := Train(k, bad, TrainOptions{}); err == nil {
		t.Fatal("expected error for missing spoiler latency")
	}
	_ = obs
}

func TestTrainDropsOutliers(t *testing.T) {
	k, obs := predictorFixture(t)
	// Inject wildly exceeding observations for template 1 at MPL 2; with
	// DropOutliers they must not destroy the fit.
	cont, _ := k.ContinuumFor(1, 2)
	polluted := append([]Observation(nil), obs...)
	for i := 0; i < 3; i++ {
		polluted = append(polluted, Observation{
			Primary: 1, Concurrent: []int{2}, Latency: cont.Max * 10,
		})
	}
	clean, err := Train(k, polluted, TrainOptions{DropOutliers: true})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Train(k, polluted, TrainOptions{DropOutliers: false})
	if err != nil {
		t.Fatal(err)
	}
	want := obs[0].Latency
	gotClean, _ := clean.PredictKnown(obs[0].Primary, obs[0].Concurrent)
	gotDirty, _ := dirty.PredictKnown(obs[0].Primary, obs[0].Concurrent)
	if math.Abs(gotClean-want) > math.Abs(gotDirty-want) {
		t.Fatalf("outlier filtering made predictions worse: clean %g dirty %g want %g", gotClean, gotDirty, want)
	}
	if !almostEq(gotClean, want, 1e-6*(1+want)) {
		t.Fatalf("clean prediction %g, want %g", gotClean, want)
	}
}

func TestPredictKnownErrors(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictKnown(1, []int{2, 3, 4, 5}); err == nil {
		t.Fatal("expected error for untrained MPL")
	}
	if _, err := p.PredictKnown(999, []int{2}); err == nil {
		t.Fatal("expected error for unknown template")
	}
}

func TestPredictNewWithMeasuredSpoiler(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newT := TemplateStats{
		ID: 99, IsolatedLatency: 350, IOFraction: 0.85,
		Scans:          map[string]bool{"F": true},
		SpoilerLatency: map[int]float64{2: 770},
	}
	got, err := p.PredictNew(newT, []int{3}, NewTemplateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got < newT.IsolatedLatency/2 || got > newT.SpoilerLatency[2]*1.5 {
		t.Fatalf("prediction %g wildly outside the continuum", got)
	}
}

func TestPredictNewRequiresSpoilerSource(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newT := TemplateStats{ID: 99, IsolatedLatency: 350, IOFraction: 0.85,
		SpoilerLatency: map[int]float64{}}
	if _, err := p.PredictNew(newT, []int{3}, NewTemplateOptions{}); err == nil {
		t.Fatal("expected error without spoiler latency or predictor")
	}
}

func TestPredictNewWithPredictor(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	knn, err := NewKNNSpoilerPredictor(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	newT := TemplateStats{
		ID: 99, IsolatedLatency: 350, IOFraction: 0.85,
		WorkingSetBytes: 1e8, SpoilerLatency: map[int]float64{},
	}
	got, err := p.PredictNew(newT, []int{3}, NewTemplateOptions{Spoiler: knn})
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("prediction %g", got)
	}
}

func TestPredictNewWithExplicitQS(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := QSModel{Mu: 0.6, B: 0.12}
	newT := TemplateStats{
		ID: 99, IsolatedLatency: 350, IOFraction: 0.85,
		Scans:          map[string]bool{"F": true},
		SpoilerLatency: map[int]float64{2: 770},
	}
	r := k.CQIForStats(newT, []int{3})
	want := Continuum{Min: 350, Max: 770}.Latency(qs.Point(r))
	got, err := p.PredictNew(newT, []int{3}, NewTemplateOptions{QS: &qs})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, want, 1e-9) {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestPerturbStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := TemplateStats{ID: 1, IsolatedLatency: 100, IOFraction: 0.9, WorkingSetBytes: 1e9}
	anyChanged := false
	for i := 0; i < 50; i++ {
		p := PerturbStats(base, 0.25, rng)
		if p.IsolatedLatency < 75 || p.IsolatedLatency > 125 {
			t.Fatalf("latency perturbed outside ±25%%: %g", p.IsolatedLatency)
		}
		if p.IOFraction > 1 {
			t.Fatalf("I/O fraction %g exceeds 1", p.IOFraction)
		}
		if p.WorkingSetBytes < 0.75e9 || p.WorkingSetBytes > 1.25e9 {
			t.Fatalf("working set outside bounds: %g", p.WorkingSetBytes)
		}
		if p.IsolatedLatency != base.IsolatedLatency {
			anyChanged = true
		}
	}
	if !anyChanged {
		t.Fatal("perturbation never changed anything")
	}
}
