package core

// This file implements Section 5.1: the performance continuum, the
// normalized [l_min, l_max] latency range each template's QS model predicts
// into.

// Continuum is a template's performance range at one MPL.
type Continuum struct {
	// Min is l_min, the isolated latency (best case).
	Min float64
	// Max is l_max, the spoiler latency (worst case).
	Max float64
}

// Valid reports whether the continuum is usable (a positive-width range).
func (c Continuum) Valid() bool { return c.Max > c.Min && c.Min > 0 }

// Point maps an observed latency to its continuum point c_{t,m} (Eq. 6):
// 0 at the isolated latency, 1 at the spoiler latency. Values outside
// [0, 1] are possible (the paper's >105%-of-spoiler outliers) and are
// returned untruncated so callers can detect them.
func (c Continuum) Point(latency float64) float64 {
	if !c.Valid() {
		return 0
	}
	return (latency - c.Min) / (c.Max - c.Min)
}

// Latency reverses Eq. 6, scaling a continuum point back to seconds.
func (c Continuum) Latency(point float64) float64 {
	return c.Min + point*(c.Max-c.Min)
}

// ContinuumFor assembles the continuum of template id at the given MPL from
// the knowledge base's measured isolated and spoiler latencies. ok is false
// when the spoiler latency for that MPL has not been sampled.
func (k *Knowledge) ContinuumFor(id int, mpl int) (Continuum, bool) {
	t, ok := k.Template(id)
	if !ok {
		return Continuum{}, false
	}
	lmax, ok := t.SpoilerLatency[mpl]
	if !ok {
		return Continuum{}, false
	}
	return Continuum{Min: t.IsolatedLatency, Max: lmax}, true
}

// OutlierThreshold is the fraction of the spoiler latency above which the
// paper discards an observation as an outlier (Section 6.1: latency greater
// than 105% of spoiler latency, occurring at ~4% frequency).
const OutlierThreshold = 1.05

// IsOutlier reports whether an observed latency measurably exceeds the
// continuum (observed > 105% of l_max).
func (c Continuum) IsOutlier(latency float64) bool {
	return c.Max > 0 && latency > OutlierThreshold*c.Max
}
