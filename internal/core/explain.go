package core

import (
	"fmt"
	"time"

	"contender/internal/obs"
)

// Blame attribution (ROADMAP: "per-mix contention blame attribution
// reports"). The CQI of Eq. 5 is literally a mean of per-concurrent
// intensity terms — cqiSlot sums one intensitySlot value per neighbor —
// so a prediction decomposes exactly: each neighbor owns one additive
// share of the interaction that separates the served latency from the
// zero-contention baseline. PredictExplain exposes that decomposition
// without changing a single float operation: it replays cqiSlot's loop
// term by term, recording each neighbor's intensity in the identical
// summation order, so the reconstructed CQI — and therefore the served
// latency — is bit-identical to PredictKnown by construction, not by
// tolerance.

// ExplainBuffer receives one PredictExplain decomposition. Like
// PredictBuffer it is caller-owned scratch: after the first call of a
// given mix size the slices are reused and the explain path allocates
// nothing. All fields are valid until the next PredictExplain into the
// same buffer. A buffer must be used by one goroutine at a time.
type ExplainBuffer struct {
	// Primary and MPL echo the request: the primary template ID and the
	// multiprogramming level (len(concurrent)+1).
	Primary int
	MPL     int

	// CQI is the mix's competing intensity r (Eq. 5). Summing Intensity
	// in slice order and dividing by len(Neighbors) reproduces it
	// bit-identically — the terms are recorded in cqiSlot's own
	// summation order.
	CQI float64
	// Baseline is the latency the QS → continuum pipeline serves at
	// r = 0: the primary's predicted latency with zero competing
	// intensity under the same cell (l_min + b·(l_max − l_min)).
	Baseline float64
	// Total is the served prediction, bit-identical to what
	// PredictKnown returns for the same (primary, concurrent).
	Total float64
	// Scale converts one unit of a neighbor's intensity into predicted
	// seconds of the primary's latency: µ·(l_max − l_min)/m, where m is
	// the number of concurrent queries. It is the exact per-term
	// linearization of the interaction Total − Baseline.
	Scale float64

	// Neighbors copies the request's concurrent template IDs in request
	// order; Intensity[i] is Neighbors[i]'s r_c term (Eq. 4) and
	// Seconds[i] = Intensity[i]·Scale is its blame share in predicted
	// seconds. The three slices always have equal length.
	Neighbors []int
	Intensity []float64
	Seconds   []float64
}

// Interaction returns the decomposed interaction cost in seconds:
// Total − Baseline, the part of the prediction the neighbors own.
func (b *ExplainBuffer) Interaction() float64 { return b.Total - b.Baseline }

// reset clears the result fields so a failed call can never be misread
// as the previous call's decomposition. Slice capacity is retained.
func (b *ExplainBuffer) reset() {
	b.Primary, b.MPL = 0, 0
	b.CQI, b.Baseline, b.Total, b.Scale = 0, 0, 0, 0
	b.Neighbors = b.Neighbors[:0]
	b.Intensity = b.Intensity[:0]
	b.Seconds = b.Seconds[:0]
}

// prepare sizes the decomposition slices for an m-neighbor mix. It may
// allocate on growth; the steady state (warm capacity) does not — the
// hot path below only writes by index.
func (b *ExplainBuffer) prepare(m int) {
	b.Neighbors = growSlice(b.Neighbors, m)
	b.Intensity = growSlice(b.Intensity, m)
	b.Seconds = growSlice(b.Seconds, m)
}

// PredictExplain is PredictKnown plus the per-neighbor decomposition of
// the interaction cost, written into buf. The returned latency — and
// buf.Total — is bit-identical to PredictKnown for the same arguments:
// the decomposition records the terms of the same summation rather than
// recomputing anything. The error cases and messages are exactly
// PredictKnown's; on error buf holds zero values and empty slices.
//
//contender:hotpath
func (p *Predictor) PredictExplain(buf *ExplainBuffer, primary int, concurrent []int) (float64, error) {
	if buf == nil {
		return 0, fmt.Errorf("core: PredictExplain needs a non-nil buffer")
	}
	if p.observer == nil {
		return p.predictExplain(buf, primary, concurrent)
	}
	start := time.Now() //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
	v, err := p.predictExplain(buf, primary, concurrent)
	obs.Emit(p.observer, obs.Event{
		Kind:     obs.SpanEnd,
		Span:     obs.SpanServePredictExplain,
		Template: primary,
		MPL:      len(concurrent) + 1,
		Value:    v,
		Dur:      time.Since(start), //contender:allow nodeterminism -- span duration feeds observability only, never a canonical artifact
		Err:      obs.ErrLabel(err),
	})
	return v, err
}

//contender:hotpath
func (p *Predictor) predictExplain(buf *ExplainBuffer, primary int, concurrent []int) (float64, error) {
	idx := p.Know.index()
	s := p.serving(idx)
	cell, si, err := p.cellFor(s, idx, primary, len(concurrent))
	if err != nil {
		buf.reset()
		return 0, err
	}
	// cqiSlot's loop, verbatim, with each term recorded before it joins
	// the running sum. Keeping the iteration order, the τ/ω resolution,
	// and the final division identical is what makes the aggregate
	// bit-identical to PredictKnown.
	buf.prepare(len(concurrent))
	base := si * idx.n
	var sum float64
	for i, id := range concurrent {
		ci := idx.mustPos(id)
		tau := idx.tauSlot(si, ci, concurrent)
		term := idx.intensitySlot(ci, idx.omega[base+ci], tau)
		buf.Neighbors[i] = id
		buf.Intensity[i] = term
		sum += term
	}
	m := float64(len(concurrent))
	r := sum / m

	buf.Primary = primary
	buf.MPL = len(concurrent) + 1
	buf.CQI = r
	buf.Baseline = cell.latency(0)
	buf.Total = cell.latency(r)
	buf.Scale = cell.mu * (cell.cmax - cell.cmin) / m
	for i, in := range buf.Intensity {
		buf.Seconds[i] = in * buf.Scale
	}
	return buf.Total, nil
}
