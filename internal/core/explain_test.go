package core

import (
	"errors"
	"testing"

	obspkg "contender/internal/obs"
)

// TestPredictExplainMatchesPredictKnown asserts the decomposition's
// exactness contract bit for bit: Total equals PredictKnown, CQI equals
// Knowledge.CQI, and summing the recorded intensities in slice order
// reconstructs the CQI exactly — no tolerances anywhere.
func TestPredictExplainMatchesPredictKnown(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mixes := [][]int{{1}, {2}, {5}, {1, 3}, {4, 5}, {3, 1}, {2, 2}}
	var buf ExplainBuffer
	for _, primary := range []int{1, 2, 5} {
		for _, mix := range mixes {
			got, err := p.PredictExplain(&buf, primary, mix)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.PredictKnown(primary, mix)
			if err != nil {
				t.Fatal(err)
			}
			if got != want || buf.Total != want {
				t.Errorf("primary %d mix %v: explain %g != known %g", primary, mix, got, want)
			}
			if r := k.CQI(primary, mix); buf.CQI != r {
				t.Errorf("primary %d mix %v: buf.CQI %g != CQI %g", primary, mix, buf.CQI, r)
			}
			if len(buf.Neighbors) != len(mix) || len(buf.Intensity) != len(mix) || len(buf.Seconds) != len(mix) {
				t.Fatalf("primary %d mix %v: slice lengths %d/%d/%d, want %d", primary, mix,
					len(buf.Neighbors), len(buf.Intensity), len(buf.Seconds), len(mix))
			}
			// Reconstruct the CQI from the per-neighbor terms in slice
			// order: bit-identical, because the terms were recorded in
			// the summation's own order.
			var sum float64
			for _, in := range buf.Intensity {
				sum += in
			}
			if r := sum / float64(len(mix)); r != buf.CQI {
				t.Errorf("primary %d mix %v: reconstructed CQI %g != %g", primary, mix, r, buf.CQI)
			}
			for i, in := range buf.Intensity {
				if buf.Seconds[i] != in*buf.Scale {
					t.Errorf("primary %d mix %v neighbor %d: Seconds %g != Intensity·Scale %g",
						primary, mix, i, buf.Seconds[i], in*buf.Scale)
				}
			}
			if buf.Interaction() != buf.Total-buf.Baseline {
				t.Errorf("Interaction() %g != Total-Baseline %g", buf.Interaction(), buf.Total-buf.Baseline)
			}
			if buf.Primary != primary || buf.MPL != len(mix)+1 {
				t.Errorf("primary %d mix %v: echoed primary/MPL %d/%d", primary, mix, buf.Primary, buf.MPL)
			}
		}
	}
}

// TestPredictExplainErrors drives every PredictKnown error class through
// PredictExplain and checks the buffer never retains a previous call's
// decomposition after a failure.
func TestPredictExplainErrors(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictExplain(nil, 1, []int{2}); err == nil {
		t.Error("nil buffer accepted")
	}
	var buf ExplainBuffer
	if _, err := p.PredictExplain(&buf, 1, []int{2, 3}); err != nil { // fill it
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		primary int
		mix     []int
		sent    error
	}{
		{"empty mix", 1, nil, ErrEmptyMix},
		{"untrained MPL", 1, []int{2, 3, 4}, ErrUntrainedMPL},
		{"unknown primary", 999, []int{2}, ErrUnknownTemplate},
	}
	for _, tc := range cases {
		if _, err := p.PredictExplain(&buf, 1, []int{2, 3}); err != nil {
			t.Fatal(err)
		}
		_, err := p.PredictExplain(&buf, tc.primary, tc.mix)
		if !errors.Is(err, tc.sent) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.sent)
		}
		if len(buf.Neighbors) != 0 || len(buf.Intensity) != 0 || len(buf.Seconds) != 0 ||
			buf.Total != 0 || buf.CQI != 0 || buf.Primary != 0 {
			t.Errorf("%s: buffer retains stale decomposition after failure: %+v", tc.name, buf)
		}
	}
}

// TestPredictExplainObserved checks the serve.predict_explain span fires
// with the prediction as its value.
func TestPredictExplainObserved(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obspkg.NewRecording()
	p.SetObserver(rec)
	var buf ExplainBuffer
	v, err := p.PredictExplain(&buf, 2, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Span != obspkg.SpanServePredictExplain || ev.Kind != obspkg.SpanEnd {
		t.Errorf("event %v/%v, want end %s", ev.Kind, ev.Span, obspkg.SpanServePredictExplain)
	}
	if ev.Value != v || ev.Template != 2 || ev.MPL != 3 {
		t.Errorf("event payload %+v, want value %g template 2 mpl 3", ev, v)
	}
}

// TestShardExplain checks the sharded handle produces the same
// decomposition as the snapshot's PredictExplain and reuses its buffer.
func TestShardExplain(t *testing.T) {
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(p, ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := sharded.Acquire()
	eb, err := sh.Explain(2, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	var want ExplainBuffer
	if _, err := p.PredictExplain(&want, 2, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	if eb.Total != want.Total || eb.CQI != want.CQI || eb.Scale != want.Scale {
		t.Errorf("shard explain %+v != predictor explain %+v", eb, want)
	}
	again, err := sh.Explain(2, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if again != eb {
		t.Error("shard explain did not reuse its buffer")
	}
	if _, err := sh.Explain(2, nil); !errors.Is(err, ErrEmptyMix) {
		t.Errorf("empty mix err = %v, want ErrEmptyMix", err)
	}
}
