package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	obspkg "contender/internal/obs"
)

func trainedFixture(t *testing.T) *Predictor {
	t.Helper()
	k, obs := predictorFixture(t)
	p, err := Train(k, obs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShardedBasics(t *testing.T) {
	if _, err := NewSharded(nil, ShardOptions{}); err == nil {
		t.Error("nil predictor accepted")
	}
	p := trainedFixture(t)
	s, err := NewSharded(p, ShardOptions{Shards: 3, RingSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", s.NumShards())
	}
	if s.Snapshot() != p {
		t.Error("Snapshot is not the wrapped predictor")
	}
	// Acquire round-robins deterministically across shards.
	ids := []int{s.Acquire().ID(), s.Acquire().ID(), s.Acquire().ID(), s.Acquire().ID()}
	if !reflect.DeepEqual(ids, []int{0, 1, 2, 0}) {
		t.Errorf("Acquire order %v, want round-robin 0 1 2 0", ids)
	}
	// RingSize rounds up to a power of two.
	if n := len(s.shards[0].ring.buf); n != 128 {
		t.Errorf("ring capacity %d, want 128 (100 rounded up)", n)
	}

	sh := s.shards[0]
	mix := []int{2, 3}
	got, err := sh.Predict(1, mix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.PredictKnown(1, mix)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("shard Predict %g != PredictKnown %g", got, want)
	}

	mixes := [][]int{{2}, {2, 3}, {4, 5}}
	batch, err := sh.BatchPredict(1, mixes)
	if err != nil {
		t.Fatal(err)
	}
	var buf PredictBuffer
	direct, err := p.PredictBatch(&buf, 1, mixes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, direct) {
		t.Errorf("shard BatchPredict %v != PredictBatch %v", batch, direct)
	}

	// Observe validates like Feedback and reports the same signed error.
	if _, err := sh.Observe(1, mix, -1); !errors.Is(err, ErrBadObservation) {
		t.Errorf("negative observation: err = %v, want ErrBadObservation", err)
	}
	if _, err := sh.Observe(999, mix, 1.5); !errors.Is(err, ErrUnknownTemplate) {
		t.Errorf("unknown template: err = %v, want ErrUnknownTemplate", err)
	}
	res, err := sh.Observe(1, mix, want*2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != want || res.SignedError != (want*2-want)/(want*2) {
		t.Errorf("Observe result %+v inconsistent with prediction %g", res, want)
	}
}

func TestShardedSwap(t *testing.T) {
	p1 := trainedFixture(t)
	p2 := trainedFixture(t)
	s, err := NewSharded(p1, ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap(nil); err == nil {
		t.Error("nil swap accepted")
	}
	old, err := s.Swap(p2)
	if err != nil {
		t.Fatal(err)
	}
	if old != p1 {
		t.Error("Swap did not return the previous predictor")
	}
	if s.Snapshot() != p2 {
		t.Error("Swap did not install the new predictor")
	}
	// The new snapshot serves immediately.
	if _, err := s.Acquire().Predict(1, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDrainMatchesFeedback streams the same samples through the
// mutex-protected Feedback path and through Observe+DrainFeedback, and
// requires identical quality reports and identical quality.* events: the
// ring buffer defers the aggregation but must not change it.
func TestShardedDrainMatchesFeedback(t *testing.T) {
	type sample struct {
		tmpl     int
		mix      []int
		observed float64
	}
	samples := []sample{}
	for i := 0; i < 40; i++ {
		samples = append(samples, sample{tmpl: 1 + i%3, mix: []int{4, 5}, observed: 500 + float64(i*37%211)})
	}

	direct := trainedFixture(t)
	qd := obspkg.NewQuality(obspkg.DriftConfig{})
	rd := obspkg.NewRecording()
	direct.SetQuality(qd)
	direct.SetObserver(rd)
	for _, sm := range samples {
		if _, err := direct.Feedback(sm.tmpl, sm.mix, sm.observed); err != nil {
			t.Fatal(err)
		}
	}

	sharded := trainedFixture(t)
	qs := obspkg.NewQuality(obspkg.DriftConfig{})
	rs := obspkg.NewRecording()
	sharded.SetQuality(qs)
	sharded.SetObserver(rs)
	s, err := NewSharded(sharded, ShardOptions{Shards: 1, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.Acquire()
	for _, sm := range samples {
		if _, err := sh.Observe(sm.tmpl, sm.mix, sm.observed); err != nil {
			t.Fatal(err)
		}
	}
	if drained := s.DrainFeedback(); drained != len(samples) {
		t.Fatalf("drained %d samples, want %d", drained, len(samples))
	}
	if dropped := s.FeedbackDropped(); dropped != 0 {
		t.Fatalf("dropped %d samples, want 0", dropped)
	}

	if got, want := qs.Report(), qd.Report(); !reflect.DeepEqual(got, want) {
		t.Errorf("drained quality report differs from direct feedback:\n got %+v\nwant %+v", got, want)
	}

	// Event parity: the drain emits the same quality.* points, in order.
	// Feedback also emits serve.* spans around the drain-side events on
	// the direct predictor — compare only the quality points.
	filter := func(evs []obspkg.Event) []obspkg.Event {
		var out []obspkg.Event
		for _, e := range evs {
			if e.Span == obspkg.PointQualityFeedback || e.Span == obspkg.PointQualityDrift {
				e.Dur = 0
				out = append(out, e)
			}
		}
		return out
	}
	got, want := filter(rs.Events()), filter(rd.Events())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drained quality events differ from direct feedback:\n got %+v\nwant %+v", got, want)
	}

	// Without an observer the drain folds runs via ObserveRun — the
	// report must still match sample-by-sample aggregation.
	runPred := trainedFixture(t)
	qr := obspkg.NewQuality(obspkg.DriftConfig{})
	runPred.SetQuality(qr)
	s2, err := NewSharded(runPred, ShardOptions{Shards: 1, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	sh2 := s2.Acquire()
	for _, sm := range samples {
		if _, err := sh2.Observe(sm.tmpl, sm.mix, sm.observed); err != nil {
			t.Fatal(err)
		}
	}
	s2.DrainFeedback()
	if got, want := qr.Report(), qd.Report(); !reflect.DeepEqual(got, want) {
		t.Errorf("ObserveRun-folded report differs from per-sample aggregation:\n got %+v\nwant %+v", got, want)
	}
}

func TestShardedRingOverflow(t *testing.T) {
	p := trainedFixture(t)
	q := obspkg.NewQuality(obspkg.DriftConfig{})
	p.SetQuality(q)
	s, err := NewSharded(p, ShardOptions{Shards: 1, RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.Acquire()
	for i := 0; i < 10; i++ {
		if _, err := sh.Observe(1, []int{2, 3}, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := s.FeedbackDropped(); dropped != 6 {
		t.Errorf("dropped %d samples, want 6 (ring capacity 4)", dropped)
	}
	if drained := s.DrainFeedback(); drained != 4 {
		t.Errorf("drained %d samples, want 4", drained)
	}
	// After a drain the ring accepts samples again.
	if _, err := sh.Observe(1, []int{2, 3}, 1000); err != nil {
		t.Fatal(err)
	}
	if drained := s.DrainFeedback(); drained != 1 {
		t.Errorf("post-overflow drain got %d samples, want 1", drained)
	}
}

// TestShardedConcurrentSwapFeedbackQuality hammers serving, feedback
// ingestion, draining, and quality reporting while the snapshot is
// hot-swapped — the -race CI job turns any unsynchronized access into a
// failure.
func TestShardedConcurrentSwapFeedbackQuality(t *testing.T) {
	p1 := trainedFixture(t)
	p2 := trainedFixture(t)
	q := obspkg.NewQuality(obspkg.DriftConfig{})
	p1.SetQuality(q)
	p2.SetQuality(q)
	const workers = 4
	s, err := NewSharded(p1, ShardOptions{Shards: workers, RingSize: 256})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := s.Acquire()
			mix := []int{2, 3}
			mixes := [][]int{{2}, {4, 5}, {2, 3}}
			for i := 0; i < 300; i++ {
				if _, err := sh.Predict(1, mix); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.BatchPredict(1, mixes); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.Observe(1+i%3, mix, 700); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	cur := p1
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		next := p1
		if cur == p1 {
			next = p2
		}
		if _, err := s.Swap(next); err != nil {
			t.Error(err)
			running = false
		}
		cur = next
		s.DrainFeedback()
		_ = q.Report()
		_ = s.FeedbackDropped()
	}
	s.DrainFeedback()
	if rep := q.Report(); rep.Samples == 0 {
		t.Error("no feedback samples reached the quality aggregator")
	}
}
