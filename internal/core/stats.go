// Package core implements the Contender framework itself: the Concurrent
// Query Intensity (CQI) metric, the performance continuum, Query
// Sensitivity (QS) models for known and unseen templates, spoiler-latency
// models, and the end-to-end prediction pipeline of Figure 5.
//
// The package is substrate-agnostic: it consumes only the observables the
// paper consumes — isolated latency, procfs-style I/O fraction, working-set
// size, fact-table scan sets from query plans, per-table scan times, spoiler
// latencies, and steady-state mix measurements. Whether those numbers come
// from the bundled simulator or a real DBMS is invisible to it.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TemplateStats holds the isolated-execution observables of one template —
// everything Contender is allowed to know about a query without running it
// concurrently.
type TemplateStats struct {
	ID int
	// IsolatedLatency is l_min: execution time alone on a cold cache.
	IsolatedLatency float64
	// IOFraction is p_t: the fraction of isolated execution time spent on
	// I/O (from procfs-style accounting).
	IOFraction float64
	// WorkingSetBytes is the size of the largest intermediate result.
	WorkingSetBytes float64
	// SpoilerLatency maps MPL → measured l_max. May be sparse or empty for
	// ad-hoc templates (then spoiler prediction kicks in).
	SpoilerLatency map[int]float64
	// Scans is the set of fact tables the template's plan scans
	// sequentially; CQI's shared-scan terms are computed over it.
	Scans map[string]bool
	// PlanSteps and RecordsAccessed are the query-complexity features
	// examined in Table 3.
	PlanSteps       int
	RecordsAccessed float64
}

// SpoilerSlowdown returns l_max(mpl)/l_min, the Table 3 "spoiler slowdown"
// feature, or 0 when the spoiler latency is unknown.
func (t TemplateStats) SpoilerSlowdown(mpl int) float64 {
	if t.IsolatedLatency <= 0 {
		return 0
	}
	l, ok := t.SpoilerLatency[mpl]
	if !ok {
		return 0
	}
	return l / t.IsolatedLatency
}

// Knowledge is Contender's training-time view of the workload: per-template
// isolated statistics plus the measured per-table scan times s_f.
//
// Reads (CQI, prediction) are safe to run concurrently; mutation
// (AddTemplate, SetScanTime, Remove) must not overlap with reads or other
// mutation. Always handle Knowledge by pointer — it embeds sync state.
type Knowledge struct {
	templates map[int]TemplateStats
	// scanSeconds[f] is s_f: time to sequentially scan fact table f in
	// isolation, measured by running a scan-only query.
	scanSeconds map[string]float64

	// cqi caches the resolved hot-path index (cqiindex.go); it is rebuilt
	// lazily after any mutation. mu serializes concurrent rebuilds.
	cqi atomic.Pointer[cqiIndex]
	mu  sync.Mutex
}

// NewKnowledge builds an empty knowledge base.
func NewKnowledge() *Knowledge {
	return &Knowledge{
		templates:   make(map[int]TemplateStats),
		scanSeconds: make(map[string]float64),
	}
}

// AddTemplate records (or replaces) a template's isolated statistics.
func (k *Knowledge) AddTemplate(ts TemplateStats) {
	if ts.SpoilerLatency == nil {
		ts.SpoilerLatency = make(map[int]float64)
	}
	if ts.Scans == nil {
		ts.Scans = make(map[string]bool)
	}
	k.templates[ts.ID] = ts
	k.invalidate()
}

// SetScanTime records s_f for a fact table.
func (k *Knowledge) SetScanTime(table string, seconds float64) {
	k.scanSeconds[table] = seconds
	k.invalidate()
}

// ScanTime returns s_f, or 0 if the table was never profiled.
func (k *Knowledge) ScanTime(table string) float64 { return k.scanSeconds[table] }

// Template returns the stats of template id.
func (k *Knowledge) Template(id int) (TemplateStats, bool) {
	t, ok := k.templates[id]
	return t, ok
}

// MustTemplate returns the stats of template id or panics (programming
// error in experiment wiring).
func (k *Knowledge) MustTemplate(id int) TemplateStats {
	t, ok := k.templates[id]
	if !ok {
		panicUnknownTemplate(id)
	}
	return t
}

func panicUnknownTemplate(id int) {
	panic(fmt.Sprintf("core: unknown template %d", id))
}

// IDs returns the known template IDs in ascending order.
func (k *Knowledge) IDs() []int {
	ids := make([]int, 0, len(k.templates))
	for id := range k.templates {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Clone returns a deep copy, letting experiments fork knowledge bases for
// leave-one-out protocols without cross-talk.
func (k *Knowledge) Clone() *Knowledge {
	out := NewKnowledge()
	for _, ts := range k.templates {
		cp := ts
		cp.SpoilerLatency = make(map[int]float64, len(ts.SpoilerLatency))
		for m, v := range ts.SpoilerLatency {
			cp.SpoilerLatency[m] = v
		}
		cp.Scans = make(map[string]bool, len(ts.Scans))
		for f, v := range ts.Scans {
			cp.Scans[f] = v
		}
		out.templates[cp.ID] = cp
	}
	for f, v := range k.scanSeconds {
		out.scanSeconds[f] = v
	}
	return out
}

// Remove deletes a template (used by leave-one-out experiments) and returns
// its stats if present.
func (k *Knowledge) Remove(id int) (TemplateStats, bool) {
	t, ok := k.templates[id]
	if ok {
		delete(k.templates, id)
		k.invalidate()
	}
	return t, ok
}

// Observation is one steady-state measurement: the primary's average
// latency in a specific concurrent mix.
type Observation struct {
	Primary    int
	Concurrent []int // the other MPL-1 members of the mix
	Latency    float64
}

// MPL returns the observation's multiprogramming level.
func (o Observation) MPL() int { return len(o.Concurrent) + 1 }
