// Package sched implements concurrency-aware batch scheduling, the first
// motivating application of the paper's introduction: given a batch of
// analytical queries and a CQPP predictor, choose an admission order that
// reduces the completion time of the batch and of its individual queries.
//
// The package contains two pieces:
//
//   - Forecast: a completion-time simulator driven entirely by latency
//     predictions (the approach of Ahmad et al., "Predicting completion
//     times of batch query workloads using interaction-aware models and
//     simulation", EDBT 2011, reimplemented on top of Contender's
//     predictions). Each active query progresses at rate 1/L(mix); every
//     completion re-evaluates the rates and admits the next queued query.
//   - Policies: orderings of the batch — FIFO, shortest-job-first, an
//     interaction-aware greedy that picks the next admission by predicted
//     slowdown against the currently active set, and a swap-based local
//     search over forecast makespans.
package sched

import (
	"errors"
	"fmt"
	"sort"
)

// LatencyFunc predicts the end-to-end latency of `primary` when it runs
// with the given concurrent templates. An empty mix means isolation.
type LatencyFunc func(primary int, concurrent []int) (float64, error)

// ErrEmptyBatch is returned for empty batches.
var ErrEmptyBatch = errors.New("sched: empty batch")

// JobForecast is the predicted execution window of one batch job.
type JobForecast struct {
	Template   int
	Start, End float64
}

// Latency returns the job's predicted residence time.
func (j JobForecast) Latency() float64 { return j.End - j.Start }

// Forecast predicts the completion timeline of executing `order` at the
// given MPL, using only latency predictions: at every instant each active
// query completes work at rate 1/L(current mix), and every completion
// admits the next queued query. Jobs are reported in order.
func Forecast(order []int, mpl int, predict LatencyFunc) ([]JobForecast, float64, error) {
	n := len(order)
	if n == 0 {
		return nil, 0, ErrEmptyBatch
	}
	if mpl < 1 {
		mpl = 1
	}

	type active struct {
		idx      int
		progress float64 // fraction of work completed
	}
	var running []active
	out := make([]JobForecast, n)
	next := 0
	now := 0.0

	admit := func() {
		for len(running) < mpl && next < n {
			out[next] = JobForecast{Template: order[next], Start: now}
			running = append(running, active{idx: next})
			next++
		}
	}
	admit()

	for len(running) > 0 {
		// Rates under the current mix.
		rates := make([]float64, len(running))
		for i, a := range running {
			concurrent := make([]int, 0, len(running)-1)
			for j, other := range running {
				if j != i {
					concurrent = append(concurrent, order[other.idx])
				}
			}
			l, err := predict(order[a.idx], concurrent)
			if err != nil {
				return nil, 0, fmt.Errorf("sched: forecasting T%d: %w", order[a.idx], err)
			}
			if l <= 0 {
				return nil, 0, fmt.Errorf("sched: non-positive predicted latency for T%d", order[a.idx])
			}
			rates[i] = 1 / l
		}
		// Advance to the next completion.
		dt := -1.0
		for i, a := range running {
			t := (1 - a.progress) / rates[i]
			if dt < 0 || t < dt {
				dt = t
			}
		}
		now += dt
		live := running[:0]
		for i := range running {
			running[i].progress += rates[i] * dt
			if running[i].progress >= 1-1e-12 {
				out[running[i].idx].End = now
			} else {
				live = append(live, running[i])
			}
		}
		running = live
		admit()
	}
	return out, now, nil
}

// Policy orders a batch for execution.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Order returns the admission order (a permutation of batch).
	Order(batch []int, mpl int, predict LatencyFunc) ([]int, error)
}

// FIFO admits jobs in submission order.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Order implements Policy.
func (FIFO) Order(batch []int, _ int, _ LatencyFunc) ([]int, error) {
	return append([]int(nil), batch...), nil
}

// SJF admits jobs shortest-predicted-isolated-latency first — the classic
// concurrency-blind heuristic.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "SJF" }

// Order implements Policy.
func (SJF) Order(batch []int, _ int, predict LatencyFunc) ([]int, error) {
	type job struct {
		id  int
		iso float64
	}
	jobs := make([]job, len(batch))
	for i, id := range batch {
		iso, err := predict(id, nil)
		if err != nil {
			return nil, err
		}
		jobs[i] = job{id, iso}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].iso < jobs[j].iso })
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.id
	}
	return out, nil
}

// InteractionAware greedily builds the order by forecast: starting from
// the SJF order, it improves it with pairwise-swap local search over the
// predicted makespan (hill climbing; predictions are cheap, simulation is
// not). MaxSweeps bounds the local search (default 3).
type InteractionAware struct {
	MaxSweeps int
}

// Name implements Policy.
func (InteractionAware) Name() string { return "Interaction-aware" }

// Order implements Policy.
func (p InteractionAware) Order(batch []int, mpl int, predict LatencyFunc) ([]int, error) {
	sweeps := p.MaxSweeps
	if sweeps <= 0 {
		sweeps = 3
	}
	order, err := (SJF{}).Order(batch, mpl, predict)
	if err != nil {
		return nil, err
	}
	_, best, err := Forecast(order, mpl, predict)
	if err != nil {
		return nil, err
	}
	for s := 0; s < sweeps; s++ {
		improved := false
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				order[i], order[j] = order[j], order[i]
				_, span, err := Forecast(order, mpl, predict)
				if err != nil {
					return nil, err
				}
				if span < best-1e-9 {
					best = span
					improved = true
				} else {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		if !improved {
			break
		}
	}
	return order, nil
}

// Objective scores a forecast; lower is better.
type Objective func(jobs []JobForecast, makespan float64) float64

// Makespan scores by batch completion time (the default objective).
func Makespan(_ []JobForecast, makespan float64) float64 { return makespan }

// MeanLatency scores by the average per-job residence time, favoring
// individual-query completion times over the batch's ("reducing the
// completion time of individual queries and that of the entire batch" —
// the two goals can conflict, and the objective picks the side).
func MeanLatency(jobs []JobForecast, _ float64) float64 {
	if len(jobs) == 0 {
		return 0
	}
	var s float64
	for _, j := range jobs {
		s += j.End // residence from batch start: queueing + execution
	}
	return s / float64(len(jobs))
}

// InteractionAwareFor returns an interaction-aware policy optimizing an
// arbitrary objective instead of the default makespan.
func InteractionAwareFor(obj Objective, maxSweeps int) Policy {
	return objectivePolicy{obj: obj, sweeps: maxSweeps}
}

type objectivePolicy struct {
	obj    Objective
	sweeps int
}

// Name implements Policy.
func (objectivePolicy) Name() string { return "Interaction-aware (custom objective)" }

// Order implements Policy.
func (p objectivePolicy) Order(batch []int, mpl int, predict LatencyFunc) ([]int, error) {
	sweeps := p.sweeps
	if sweeps <= 0 {
		sweeps = 3
	}
	order, err := (SJF{}).Order(batch, mpl, predict)
	if err != nil {
		return nil, err
	}
	jobs, span, err := Forecast(order, mpl, predict)
	if err != nil {
		return nil, err
	}
	best := p.obj(jobs, span)
	for s := 0; s < sweeps; s++ {
		improved := false
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				order[i], order[j] = order[j], order[i]
				jobs, span, err := Forecast(order, mpl, predict)
				if err != nil {
					return nil, err
				}
				if score := p.obj(jobs, span); score < best-1e-9 {
					best = score
					improved = true
				} else {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		if !improved {
			break
		}
	}
	return order, nil
}
