package sched

import (
	"time"

	"contender/internal/obs"
)

// Observed wraps a policy so every Order evaluation emits a
// sched.policy span (Key = policy name, MPL = level, Value = batch
// size). A nil observer returns p unchanged, keeping the
// uninstrumented path free of indirection.
func Observed(p Policy, o obs.Observer) Policy {
	if o == nil {
		return p
	}
	return observedPolicy{inner: p, o: o}
}

type observedPolicy struct {
	inner Policy
	o     obs.Observer
}

// Name implements Policy.
func (p observedPolicy) Name() string { return p.inner.Name() }

// Order implements Policy.
func (p observedPolicy) Order(batch []int, mpl int, predict LatencyFunc) ([]int, error) {
	start := time.Now()
	order, err := p.inner.Order(batch, mpl, predict)
	obs.Emit(p.o, obs.Event{
		Kind:  obs.SpanEnd,
		Span:  obs.SpanSchedPolicy,
		Key:   p.inner.Name(),
		MPL:   mpl,
		Value: float64(len(batch)),
		Dur:   time.Since(start),
		Err:   obs.ErrLabel(err),
	})
	return order, err
}

// ObservedForecast is Forecast instrumented with a sched.forecast span
// (MPL = level, Value = predicted makespan). A nil observer forwards
// straight to Forecast.
func ObservedForecast(o obs.Observer, order []int, mpl int, predict LatencyFunc) ([]JobForecast, float64, error) {
	if o == nil {
		return Forecast(order, mpl, predict)
	}
	start := time.Now()
	jobs, makespan, err := Forecast(order, mpl, predict)
	obs.Emit(o, obs.Event{
		Kind:  obs.SpanEnd,
		Span:  obs.SpanSchedForecast,
		MPL:   mpl,
		Value: makespan,
		Dur:   time.Since(start),
		Err:   obs.ErrLabel(err),
	})
	return jobs, makespan, err
}
