package sched

import (
	"errors"
	"math"
	"testing"
)

// stubPredict: isolated latency = template id seconds; each concurrent
// query adds 50% slowdown per competitor (linear interaction).
func stubPredict(primary int, concurrent []int) (float64, error) {
	if primary <= 0 {
		return 0, errors.New("bad template")
	}
	return float64(primary) * (1 + 0.5*float64(len(concurrent))), nil
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestForecastSingleJob(t *testing.T) {
	jobs, span, err := Forecast([]int{100}, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(span, 100, 1e-9) {
		t.Fatalf("span %g, want 100", span)
	}
	if jobs[0].Start != 0 || !almostEq(jobs[0].End, 100, 1e-9) {
		t.Fatalf("job window %+v", jobs[0])
	}
}

func TestForecastSerialExecution(t *testing.T) {
	// MPL 1: jobs run back to back at isolated speed.
	jobs, span, err := Forecast([]int{10, 20, 30}, 1, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(span, 60, 1e-9) {
		t.Fatalf("span %g, want 60", span)
	}
	if !almostEq(jobs[1].Start, 10, 1e-9) || !almostEq(jobs[2].Start, 30, 1e-9) {
		t.Fatalf("starts %g, %g", jobs[1].Start, jobs[2].Start)
	}
}

func TestForecastPairInteraction(t *testing.T) {
	// Two equal jobs at MPL 2: each runs at 1/(1.5·L) → both end at 1.5·L.
	jobs, span, err := Forecast([]int{100, 100}, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(span, 150, 1e-9) {
		t.Fatalf("span %g, want 150", span)
	}
	for _, j := range jobs {
		if !almostEq(j.Latency(), 150, 1e-9) {
			t.Fatalf("job latency %g, want 150", j.Latency())
		}
	}
}

func TestForecastAdmitsQueue(t *testing.T) {
	// Three equal jobs at MPL 2: the third starts when the first pair
	// produces a completion.
	jobs, _, err := Forecast([]int{100, 100, 100}, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[2].Start <= 0 {
		t.Fatal("third job must wait for a slot")
	}
	if !almostEq(jobs[2].Start, 150, 1e-9) {
		t.Fatalf("third start %g, want 150", jobs[2].Start)
	}
}

func TestForecastErrors(t *testing.T) {
	if _, _, err := Forecast(nil, 2, stubPredict); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := Forecast([]int{-1}, 2, stubPredict); err == nil {
		t.Fatal("predictor errors must propagate")
	}
	zero := func(int, []int) (float64, error) { return 0, nil }
	if _, _, err := Forecast([]int{1}, 2, zero); err == nil {
		t.Fatal("non-positive latency must error")
	}
}

func TestFIFOOrder(t *testing.T) {
	batch := []int{30, 10, 20}
	order, err := (FIFO{}).Order(batch, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if order[i] != batch[i] {
			t.Fatal("FIFO must preserve submission order")
		}
	}
	// And must not alias the input.
	order[0] = 999
	if batch[0] == 999 {
		t.Fatal("FIFO must copy")
	}
}

func TestSJFOrder(t *testing.T) {
	order, err := (SJF{}).Order([]int{30, 10, 20}, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestInteractionAwareImprovesOrNotWorse(t *testing.T) {
	batch := []int{100, 90, 10, 15, 80, 12}
	fifoOrder, _ := (FIFO{}).Order(batch, 2, stubPredict)
	_, fifoSpan, err := Forecast(fifoOrder, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	iaOrder, err := (InteractionAware{}).Order(batch, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if len(iaOrder) != len(batch) {
		t.Fatal("order must be a permutation")
	}
	seen := map[int]bool{}
	for _, id := range iaOrder {
		if seen[id] {
			t.Fatal("duplicate in order")
		}
		seen[id] = true
	}
	_, iaSpan, err := Forecast(iaOrder, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if iaSpan > fifoSpan+1e-9 {
		t.Fatalf("interaction-aware span %g worse than FIFO %g", iaSpan, fifoSpan)
	}
}

func TestPolicyNames(t *testing.T) {
	if (FIFO{}).Name() != "FIFO" || (SJF{}).Name() != "SJF" || (InteractionAware{}).Name() != "Interaction-aware" {
		t.Fatal("policy names wrong")
	}
}

func TestObjectives(t *testing.T) {
	jobs := []JobForecast{
		{Template: 1, Start: 0, End: 10},
		{Template: 2, Start: 0, End: 30},
	}
	if Makespan(jobs, 30) != 30 {
		t.Fatal("makespan objective wrong")
	}
	if MeanLatency(jobs, 30) != 20 {
		t.Fatal("mean-latency objective wrong")
	}
	if MeanLatency(nil, 5) != 0 {
		t.Fatal("empty mean-latency wrong")
	}
}

func TestInteractionAwareForMeanLatency(t *testing.T) {
	batch := []int{100, 90, 10, 15, 80, 12}
	pol := InteractionAwareFor(MeanLatency, 3)
	if pol.Name() == "" {
		t.Fatal("name missing")
	}
	order, err := pol.Order(batch, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	jobs, span, err := Forecast(order, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	got := MeanLatency(jobs, span)

	// Must not be worse than FIFO on its own objective.
	fifoJobs, fifoSpan, err := Forecast(batch, 2, stubPredict)
	if err != nil {
		t.Fatal(err)
	}
	if got > MeanLatency(fifoJobs, fifoSpan)+1e-9 {
		t.Fatalf("mean-latency policy (%.1f) worse than FIFO (%.1f)", got, MeanLatency(fifoJobs, fifoSpan))
	}
}
