// Package analysistest runs an analyzer over golden testdata packages
// and checks its diagnostics against `// want` comments, mirroring
// x/tools/go/analysis/analysistest on the standard library only.
//
// Layout follows the x/tools convention: <dir>/src/<pkgpath>/*.go. A
// line expecting diagnostics carries a comment of the form
//
//	// want "regexp" "another regexp"
//
// Every diagnostic on that line must match one pattern and every
// pattern must be matched by one diagnostic; unmatched either way fails
// the test. Imports between testdata packages resolve GOPATH-style
// under <dir>/src; standard-library imports resolve through the
// toolchain's export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"contender/internal/analysis"
)

// Run loads each named package from dir/src and applies the analyzer,
// comparing diagnostics (including malformed-directive diagnostics)
// against the packages' // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, dir, a, path)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader(dir)
	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("%s: loading %s: %v", a.Name, pkgPath, err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("%s: typechecking %s: %v", a.Name, pkgPath, pkg.TypeError)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	checkWants(t, pkg, diags)
}

// loader type-checks testdata packages, resolving inter-testdata
// imports under root/src and everything else via the toolchain.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*analysis.Package
	std  types.Importer
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		pkgs: map[string]*analysis.Package{},
		std:  stdImporter(fset),
	}
}

// stdImporter resolves standard-library imports from the toolchain's
// export data (hermetic: no network, no module cache). `go list
// -export std` output is cached per process by the go command itself.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("analysistest: locating export data for %q: %w", path, err)
		}
		file := strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("analysistest: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Import implements types.Importer over the testdata tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.root, "src", path)); err == nil && st.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(pkgPath string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[pkgPath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, "src", pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: l, Error: func(error) {}}
	tpkg, terr := conf.Check(pkgPath, l.fset, files, info)
	pkg := &analysis.Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		TypeError: terr,
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// wantRe extracts the quoted patterns of a // want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// splitQuoted parses the sequence of Go-quoted strings after "want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: malformed want comment near %q (patterns must be quoted)", pos, s)
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q: %v", pos, s, err)
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q: %v", pos, s, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[len(prefix):])
	}
	return out
}
