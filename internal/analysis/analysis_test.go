package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

import "time"

func SameLine() {
	_ = time.Now() //contender:allow nodeterminism -- wall clock feeds a log line only
}

func LineAbove() {
	//contender:allow nodeterminism -- wall clock feeds a log line only
	_ = time.Now()
}

//contender:allow nodeterminism -- whole function is diagnostics-only
func FuncScoped() {
	_ = time.Now()
	_ = time.Now()
}

//contender:allow nodeterminism,hotpathalloc -- both invariants waived here
func MultiAnalyzer() {
	_ = time.Now()
}

func MissingReason() {
	_ = time.Now() //contender:allow nodeterminism
}

func EmptyReason() {
	_ = time.Now() //contender:allow nodeterminism --
}

func Unrelated() {
	_ = time.Now()
}
`

func parseDirectiveSrc(t *testing.T) (*token.FileSet, *directiveSet, map[string]int) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	// Record the source line of each function's first time.Now call by
	// scanning the raw text, so the assertions don't hard-code line
	// numbers.
	lines := map[string]int{}
	var current string
	for i, l := range strings.Split(directiveSrc, "\n") {
		if strings.HasPrefix(l, "func ") {
			current = strings.TrimSuffix(strings.Fields(l)[1], "()")
		}
		if strings.Contains(l, "time.Now()") {
			if _, seen := lines[current]; !seen {
				lines[current] = i + 1
			}
			lines[current+"/last"] = i + 1
		}
	}
	return fset, parseDirectives(fset, []*ast.File{f}), lines
}

func TestDirectiveScopes(t *testing.T) {
	fset, ds, lines := parseDirectiveSrc(t)
	_ = fset
	cases := []struct {
		name     string
		analyzer string
		line     int
		want     bool
	}{
		{"SameLine", "nodeterminism", lines["SameLine"], true},
		{"LineAbove", "nodeterminism", lines["LineAbove"], true},
		{"FuncScoped first stmt", "nodeterminism", lines["FuncScoped"], true},
		{"FuncScoped last stmt", "nodeterminism", lines["FuncScoped/last"], true},
		{"MultiAnalyzer nodeterminism", "nodeterminism", lines["MultiAnalyzer"], true},
		{"MultiAnalyzer hotpathalloc", "hotpathalloc", lines["MultiAnalyzer"], true},
		{"MultiAnalyzer other analyzer", "obsemit", lines["MultiAnalyzer"], false},
		{"Unrelated", "nodeterminism", lines["Unrelated"], false},
		{"SameLine wrong analyzer", "hotpathalloc", lines["SameLine"], false},
		{"Malformed does not suppress", "nodeterminism", lines["MissingReason"], false},
	}
	for _, c := range cases {
		if got := ds.allows(c.analyzer, "p.go", c.line); got != c.want {
			t.Errorf("%s: allows(%s, line %d) = %v, want %v", c.name, c.analyzer, c.line, got, c.want)
		}
	}
}

func TestMalformedDirectives(t *testing.T) {
	fset, ds, _ := parseDirectiveSrc(t)
	if len(ds.Malformed) != 2 {
		for _, d := range ds.Malformed {
			t.Logf("malformed at %s: %s", fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d malformed-directive diagnostics, want 2 (missing reason, empty reason)", len(ds.Malformed))
	}
	for _, d := range ds.Malformed {
		if d.Analyzer != "directive" {
			t.Errorf("malformed directive attributed to %q, want \"directive\"", d.Analyzer)
		}
		if !strings.Contains(d.Message, "requires a reason") {
			t.Errorf("malformed directive message %q does not name the missing reason", d.Message)
		}
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		pkgPath, name string
		want          bool
	}{
		{"contender/internal/sim", "internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"a/internal/sim", "internal/sim", true},
		{"contender/internal/simx", "internal/sim", false},
		{"contender/xinternal/sim", "internal/sim", false},
		{"contender", "contender", true},
	}
	for _, c := range cases {
		if got := PathMatches(c.pkgPath, c.name); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.pkgPath, c.name, got, c.want)
		}
	}
}
