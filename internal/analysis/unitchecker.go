package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool` protocol (the x/tools
// "unitchecker" contract): the go command invokes the tool once per
// package with a single argument, the path to a JSON config file, and
// expects diagnostics on stderr plus a non-zero exit when any fire.
// Facts are not used by this suite, so the .vetx output the go command
// asks for is written empty.

// vetConfig mirrors the fields of the go command's vet config file that
// the suite consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetConfig reports whether the lone CLI argument looks like a go vet
// config file rather than a package pattern.
func IsVetConfig(args []string) bool {
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}

// UnitcheckMain runs the suite under the go vet protocol and returns
// the process exit code: 0 when clean, 2 when diagnostics fired.
func UnitcheckMain(w io.Writer, analyzers []*Analyzer, cfgPath string) int {
	code, err := unitcheck(w, analyzers, cfgPath)
	if err != nil {
		fmt.Fprintf(w, "contender-vet: %v\n", err)
		return 1
	}
	return code
}

func unitcheck(w io.Writer, analyzers []*Analyzer, cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The go command requires the vetx output file to exist even for
	// fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return 1, err
	}
	if pkg.TypeError != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, pkg.TypeError)
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 1, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// PrintVersion answers the go command's `-V=full` probe. The go
// command hashes the entire output line into its build cache key, so
// the string needs to change when the tool's behavior does; it embeds
// the analyzer names for that reason.
func PrintVersion(w io.Writer, analyzers []*Analyzer) {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	fmt.Fprintf(w, "contender-vet version 1 buildID=%s\n", strings.Join(names, "+"))
}
