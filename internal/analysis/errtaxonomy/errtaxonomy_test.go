package errtaxonomy_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/errtaxonomy"
)

func TestErrtaxonomy(t *testing.T) {
	analysistest.Run(t, "testdata", errtaxonomy.Analyzer,
		"a/internal/resilience",  // taxonomy roots: sentinels and classifiers exempt
		"a/internal/experiments", // scoped: leafs, severed chains, == comparisons
		"a/other",                // out of scope: no diagnostics
		"a/rootpkg",              // scoped by file name: system.go only
	)
}
