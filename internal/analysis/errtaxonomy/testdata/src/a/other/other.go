// Package other is out of scope: leaf errors here are legal.
package other

import "fmt"

func Leaf() error {
	return fmt.Errorf("other: not a training-path error")
}

func Compare(a, b error) bool { return a == b }
