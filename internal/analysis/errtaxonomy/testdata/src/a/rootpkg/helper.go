// helper.go sits next to system.go but is not a scoped file: leaf
// errors here are legal.
package rootpkg

import "fmt"

func HelperLeaf() error {
	return fmt.Errorf("rootpkg: facade-only error")
}
