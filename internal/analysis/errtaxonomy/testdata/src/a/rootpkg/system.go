// system.go models the trainer in the module root: scoped by file name
// even though its package is otherwise out of scope.
package rootpkg

import "fmt"

func TrainValidate(n int) error {
	if n < 2 {
		return fmt.Errorf("contender: need at least 2 templates, have %d", n) // want `fmt.Errorf without %w creates an error outside the transient/permanent/corrupt taxonomy`
	}
	return nil
}
