// Package experiments is golden testdata for the training-pipeline
// error-taxonomy rules.
package experiments

import (
	"errors"
	"fmt"

	"a/internal/resilience"
)

var errLocal = errors.New("local sentinel") // want `package-level sentinel errLocal is outside the taxonomy`

var errClassified = resilience.Permanent(errors.New("bad campaign config"))

func Leaf(mpl int) error {
	return fmt.Errorf("experiments: no samples at MPL %d", mpl) // want `fmt.Errorf without %w creates an error outside the transient/permanent/corrupt taxonomy`
}

func LeafNew() error {
	return errors.New("boom") // want `errors.New creates an error outside the transient/permanent/corrupt taxonomy`
}

func Classified() error {
	return resilience.Permanent(fmt.Errorf("only %d templates survived", 1))
}

func Wrapped(err error, mpl int) error {
	return fmt.Errorf("experiments: MPL %d: %w", mpl, err)
}

func Severed(err error) error {
	return fmt.Errorf("experiments: sampling failed: %v", err) // want `fmt.Errorf is passed an error but has no %w verb`
}

func Compare(err error) bool {
	return err == resilience.ErrTransient // want `comparing errors with == misses wrapped chains; use errors.Is`
}

func CompareNeq(err error) bool {
	return err != resilience.ErrPermanent // want `comparing errors with != misses wrapped chains; use errors.Is`
}

func CompareNil(err error) bool {
	return err == nil
}

func CompareIs(err error) bool {
	return errors.Is(err, resilience.ErrTransient)
}

func Allowed() error {
	return errors.New("tooling-only error") //contender:allow errtaxonomy -- golden test: never crosses the retry loop
}
