// Package resilience is golden testdata modeling the taxonomy package:
// the root sentinels and classifiers live here and are exempt.
package resilience

import (
	"errors"
	"fmt"
)

var (
	ErrTransient = errors.New("transient measurement failure")
	ErrPermanent = errors.New("permanent measurement failure")
	ErrCorrupt   = errors.New("corrupt measurement")
)

// Transient wraps err as a retryable failure.
func Transient(err error) error { return fmt.Errorf("%w: %w", ErrTransient, err) }

// Permanent wraps err as a non-retryable failure.
func Permanent(err error) error { return fmt.Errorf("%w: %w", ErrPermanent, err) }

// Corrupt wraps err as a corrupt-measurement failure.
func Corrupt(err error) error { return fmt.Errorf("%w: %w", ErrCorrupt, err) }

// Inject builds a classified leaf: the fmt.Errorf is excused because a
// classifier wraps it at the call site.
func Inject(site string) error {
	return Transient(fmt.Errorf("injected fault at %s", site))
}
