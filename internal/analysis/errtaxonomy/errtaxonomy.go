// Package errtaxonomy enforces the transient/permanent/corrupt error
// taxonomy in the training pipeline (internal/resilience,
// internal/experiments, the internal/store + internal/lifecycle
// self-healing layers, and the system.go trainer). The retry and
// quarantine machinery branches on errors.Is, so every error must keep
// its chain intact and every new error must be classified:
//
//   - fmt.Errorf that is passed an error but no %w verb severs the
//     chain and is rejected;
//   - comparing errors with == or != (except against nil) bypasses
//     wrapped chains and is rejected in favor of errors.Is;
//   - a leaf error (errors.New, or fmt.Errorf with no %w) must be
//     classified: either wrapped by a resilience classifier
//     (Transient/Permanent/Corrupt/Corruptf) at the call site, declared
//     as a package-level Err* sentinel inside internal/resilience
//     (the taxonomy roots themselves), or carry a %w wrapping a
//     sentinel.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"contender/internal/analysis"
)

// ScopedPackages are the repo-relative packages the analyzer applies to.
var ScopedPackages = []string{
	"internal/resilience",
	"internal/experiments",
	"internal/store",
	"internal/lifecycle",
	"internal/serve",
}

// ScopedRootFiles are file basenames checked in any other package (the
// trainer lives in the module root next to facade files that are out of
// scope).
var ScopedRootFiles = map[string]bool{"system.go": true}

// ResiliencePackage hosts the taxonomy roots and classifiers.
const ResiliencePackage = "internal/resilience"

// classifiers wrap a leaf error into the taxonomy.
var classifiers = map[string]bool{"Transient": true, "Permanent": true, "Corrupt": true, "Corruptf": true}

// Analyzer is the errtaxonomy check.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "enforce the transient/permanent/corrupt taxonomy: %w wrapping, errors.Is over ==, classified leaf errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkgScoped := false
	for _, p := range ScopedPackages {
		if analysis.PathMatches(pass.Pkg.Path(), p) {
			pkgScoped = true
			break
		}
	}
	inResilience := analysis.PathMatches(pass.Pkg.Path(), ResiliencePackage)
	for _, f := range pass.Files {
		if !pkgScoped && !ScopedRootFiles[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		checkFile(pass, f, inResilience)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File, inResilience bool) {
	// Call sites whose leaf construction is excused because a
	// classifier wraps it directly: Transient(fmt.Errorf(...)).
	excused := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isClassifierCall(pass, call) {
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					excused[inner] = true
				}
			}
		}
		return true
	})
	// Package-level sentinel declarations: allowed taxonomy roots in
	// internal/resilience only.
	sentinelInits := make(map[*ast.CallExpr]string)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, val := range vs.Values {
				if call, ok := ast.Unparen(val).(*ast.CallExpr); ok && i < len(vs.Names) {
					sentinelInits[call] = vs.Names[i].Name
				}
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorConstruction(pass, n, excused, sentinelInits, inResilience)
		case *ast.BinaryExpr:
			checkComparison(pass, n)
		}
		return true
	})
}

// isClassifierCall reports whether the call invokes a resilience
// taxonomy classifier (resilience.Transient etc., or the local
// Transient inside the resilience package itself).
func isClassifierCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !classifiers[fn.Name()] {
		return false
	}
	return analysis.PathMatches(fn.Pkg().Path(), ResiliencePackage)
}

// calleeIs reports whether the call resolves to pkgPath.name.
func calleeIs(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

func checkErrorConstruction(pass *analysis.Pass, call *ast.CallExpr, excused map[*ast.CallExpr]bool, sentinelInits map[*ast.CallExpr]string, inResilience bool) {
	isErrorf := calleeIs(pass, call, "fmt", "Errorf")
	isNew := calleeIs(pass, call, "errors", "New")
	if !isErrorf && !isNew {
		return
	}

	if isErrorf {
		format, ok := formatLiteral(call)
		wraps := ok && strings.Contains(format, "%w")
		if wraps {
			return
		}
		// An error argument without %w severs the chain.
		for _, arg := range call.Args[1:] {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil && isErrorType(tv.Type) {
				pass.Reportf(call.Pos(), "fmt.Errorf is passed an error but has no %%w verb: the chain is severed and errors.Is stops working; wrap with %%w")
				return
			}
		}
		if !ok {
			return // non-literal format: cannot judge statically
		}
	}

	// Leaf error: must be classified into the taxonomy.
	if excused[call] {
		return
	}
	if name, isSentinel := sentinelInits[call]; isSentinel {
		if inResilience {
			return // the taxonomy roots themselves
		}
		pass.Reportf(call.Pos(), "package-level sentinel %s is outside the taxonomy; classify it (e.g. resilience.Permanent(errors.New(…))) or wrap a taxonomy sentinel with %%w", name)
		return
	}
	construct := "errors.New"
	if isErrorf {
		construct = "fmt.Errorf without %w"
	}
	pass.Reportf(call.Pos(), "%s creates an error outside the transient/permanent/corrupt taxonomy; wrap a sentinel with %%w or classify via resilience.Transient/Permanent/Corrupt", construct)
}

// formatLiteral returns the call's first argument when it is a string
// literal (possibly a concatenation of literals).
func formatLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	return stringLit(call.Args[0])
}

func stringLit(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			return e.Value, true
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			l, lok := stringLit(e.X)
			r, rok := stringLit(e.Y)
			if lok && rok {
				return l + r, true
			}
		}
	}
	return "", false
}

// checkComparison flags err == sentinel / err != sentinel: wrapped
// chains never compare equal, so the taxonomy requires errors.Is.
func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt, xok := pass.TypesInfo.Types[be.X]
	yt, yok := pass.TypesInfo.Types[be.Y]
	if !xok || !yok || xt.Type == nil || yt.Type == nil {
		return
	}
	if isUntypedNil(xt) || isUntypedNil(yt) {
		return
	}
	if isErrorType(xt.Type) && isErrorType(yt.Type) {
		pass.Reportf(be.Pos(), "comparing errors with %s misses wrapped chains; use errors.Is", be.Op)
	}
}

func isUntypedNil(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) || types.Identical(t, errorIface)
}
