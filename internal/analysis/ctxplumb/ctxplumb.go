// Package ctxplumb flags exported functions that accept a
// context.Context and then drop it: the body never mentions the
// parameter even though it makes calls that could have carried it
// (callees with a Context parameter, timer waits, channel operations).
// A dropped context means cancellation never reaches the blocking work
// — exactly the bug the resilient training pipeline's prompt-
// cancellation contract forbids. It also flags context.Background()/
// context.TODO() used inside a function that already has a Context
// parameter.
package ctxplumb

import (
	"go/ast"
	"go/types"

	"contender/internal/analysis"
)

// Analyzer is the ctxplumb check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc:  "flag exported Context-accepting functions that drop ctx before reaching a blocking call",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// ctxParams returns the *types.Var objects of the function's
// context.Context parameters.
func ctxParams(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if ok && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := ctxParams(pass, fd)
	if len(params) == 0 {
		return
	}
	used := make(map[*types.Var]bool)
	var blocking ast.Node
	var freshCtx []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
				for _, p := range params {
					if v == p {
						used[p] = true
					}
				}
			}
		case *ast.CallExpr:
			if blocking == nil && callTakesContext(pass, n) {
				blocking = n
			}
			if isBackgroundOrTODO(pass, n) {
				freshCtx = append(freshCtx, n)
			}
		case *ast.SelectStmt, *ast.SendStmt:
			if blocking == nil {
				blocking = n
			}
		case *ast.UnaryExpr:
			// <-ch receive
			if blocking == nil && n.Op.String() == "<-" {
				blocking = n
			}
		}
		return true
	})
	allUsed := true
	for _, p := range params {
		if !used[p] {
			allUsed = false
		}
	}
	if !allUsed && blocking != nil {
		pass.Reportf(fd.Name.Pos(), "exported %s accepts a context.Context but drops it before its blocking calls; plumb ctx through so cancellation works", fd.Name.Name)
	}
	for _, n := range freshCtx {
		pass.Reportf(n.Pos(), "%s has a context.Context parameter; use it instead of minting a fresh context here", fd.Name.Name)
	}
}

// callTakesContext reports whether the callee's signature accepts a
// context.Context (or time.Sleep — an unconditionally blocking wait).
func callTakesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
		return true
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBackgroundOrTODO matches context.Background() and context.TODO().
func isBackgroundOrTODO(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO")
}

