package ctxplumb_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/ctxplumb"
)

func TestCtxplumb(t *testing.T) {
	analysistest.Run(t, "testdata", ctxplumb.Analyzer, "c")
}
