// Package c is golden testdata for the ctxplumb analyzer.
package c

import (
	"context"
	"time"
)

func work(ctx context.Context) error {
	_ = ctx
	return nil
}

func Dropped(ctx context.Context) { // want `exported Dropped accepts a context.Context but drops it before its blocking calls`
	time.Sleep(10 * time.Millisecond)
}

func Plumbed(ctx context.Context) error {
	return work(ctx)
}

func dropped(ctx context.Context) {
	time.Sleep(time.Millisecond)
}

func NoBlocking(ctx context.Context, x int) int {
	return x * 2
}

func ChanRecv(ctx context.Context, ch chan int) int { // want `exported ChanRecv accepts a context.Context but drops it before its blocking calls`
	return <-ch
}

func SelectWait(ctx context.Context, ch chan int) { // want `exported SelectWait accepts a context.Context but drops it before its blocking calls`
	select {
	case <-ch:
	}
}

func Minted(ctx context.Context) error {
	_ = ctx
	return work(context.TODO()) // want `Minted has a context.Context parameter; use it instead of minting a fresh context here`
}

func MintedBackground(ctx context.Context) error {
	_ = ctx
	return work(context.Background()) // want `MintedBackground has a context.Context parameter; use it instead of minting a fresh context here`
}

//contender:allow ctxplumb -- golden test: fire-and-forget logger, cancellation is the caller's job
func Allowed(ctx context.Context) {
	time.Sleep(time.Millisecond)
}
