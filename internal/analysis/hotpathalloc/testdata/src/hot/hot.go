// Package hot is golden testdata for the hotpathalloc analyzer.
package hot

import (
	"errors"
	"fmt"
)

// Buf models a caller-provided reusable buffer.
type Buf struct{ out []float64 }

func sinkAny(v any) {}

func sinkIface(err error) {}

type small struct{ a, b int }

// Marked carries the hot-path contract; every allocating construct in
// its warm path must be reported.
//
//contender:hotpath
func Marked(b *Buf, xs []float64, name string) (float64, error) {
	if len(xs) == 0 {
		// Cold error exit: allocations here are not steady-path costs.
		return 0, fmt.Errorf("hot: empty input for %s", name)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	b.out = append(b.out, sum)  // want `append may grow and allocate`
	s := fmt.Sprintf("%g", sum) // want `fmt.Sprintf allocates`
	_ = s
	tmp := make([]float64, 4) // want `make allocates`
	_ = tmp
	p := new(small) // want `new allocates`
	_ = p
	lit := []int{1, 2} // want `slice/map literal allocates`
	_ = lit
	mlit := map[string]int{} // want `slice/map literal allocates`
	_ = mlit
	f := func() float64 { return sum } // want `closure allocates`
	sum += f()
	joined := name + "!" // want `string concatenation allocates`
	_ = joined
	bs := []byte(name) // want `string/\[\]byte conversion copies`
	_ = bs
	sinkAny(small{1, 2}) // want `passing concrete hot.small as interface .* boxes`
	go func() {}()       // want `spawning a goroutine allocates` `closure allocates`
	return sum, nil
}

//contender:hotpath
func MarkedAllowed(b *Buf, v float64) {
	b.out = append(b.out, v) //contender:allow hotpathalloc -- golden test: appends into the caller's reusable buffer
}

//contender:hotpath
func MarkedIfaceOK(err error) {
	// Already-interface values and pointers do not box.
	sinkIface(err)
	sinkAny(&small{}) // pointer: interface header, no copy — not flagged
}

// Unmarked has no contract; the same constructs are legal.
func Unmarked(xs []float64) string {
	out := make([]float64, 0, len(xs))
	out = append(out, xs...)
	return fmt.Sprintf("%v", out)
}

//contender:hotpath
func MarkedColdElse(v float64) (float64, error) {
	if v >= 0 {
		return v, nil
	} else {
		return 0, errors.New("hot: negative") // cold error exit: not flagged
	}
}
