// Package hotpathalloc flags allocating constructs inside functions
// marked //contender:hotpath. The serving path (PredictKnown,
// PredictBatch, CQI, the cqiIndex helpers) carries a 0 allocs/op
// contract enforced at runtime by the CI bench guard; this analyzer
// moves the same contract to vet time, so an accidental fmt.Sprintf or
// escaping closure fails the build instead of a nightly benchmark.
//
// Error exits are off the steady path: allocations inside an if-block
// that terminates by returning a non-nil error are not flagged (the
// bench guard measures the warmed, error-free path). Everything else —
// fmt calls, append, make/new, slice/map literals, closures, string
// concatenation/conversion, and concrete-to-interface boxing — is
// reported and needs either a rewrite or a //contender:allow with a
// reason.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"contender/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in functions marked //contender:hotpath (0 allocs/op serving contract)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// marked reports whether the function's doc comment carries the
// //contender:hotpath marker.
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), analysis.HotpathMarker) {
			return true
		}
	}
	return false
}

// MarkedFuncs returns the names of the //contender:hotpath functions
// declared in the parsed files, as "Func" or "Recv.Method". The
// marker-set test in internal/core uses it to keep the annotations and
// the 0-allocs bench guard covering the same set.
func MarkedFuncs(files []*ast.File) []string {
	var out []string
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !marked(fd) {
				continue
			}
			out = append(out, FuncDisplayName(fd))
		}
	}
	return out
}

// FuncDisplayName renders a FuncDecl as "Func" or "Recv.Method".
func FuncDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	cold := coldBlocks(pass, fd.Body)
	name := FuncDisplayName(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if blk, ok := n.(*ast.BlockStmt); ok && cold[blk] {
			return false // error exit: off the steady path
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s is hot-path: slice/map literal allocates", name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is hot-path: closure allocates (and its captures may escape)", name)
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(n.Pos(), "%s is hot-path: string concatenation allocates; use a preallocated buffer", name)
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is hot-path: spawning a goroutine allocates", name)
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun] {
		case types.Universe.Lookup("append"):
			pass.Reportf(call.Pos(), "%s is hot-path: append may grow and allocate; reuse a preallocated buffer", name)
			return
		case types.Universe.Lookup("make"), types.Universe.Lookup("new"):
			pass.Reportf(call.Pos(), "%s is hot-path: %s allocates", name, fun.Name)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "%s is hot-path: fmt.%s allocates", name, fn.Name())
			return
		}
	}
	// string([]byte) / []byte(string) conversions copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isString(tv.Type) || isByteSlice(tv.Type) {
			if len(call.Args) == 1 {
				if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && atv.Value == nil &&
					(isString(atv.Type) || isByteSlice(atv.Type)) && !types.Identical(atv.Type, tv.Type) {
					pass.Reportf(call.Pos(), "%s is hot-path: string/[]byte conversion copies", name)
				}
			}
		}
		return // a conversion, not a call: no boxing check
	}
	checkBoxing(pass, name, call)
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkBoxing flags arguments whose concrete value converts implicitly
// to an interface parameter: the conversion may heap-allocate the
// boxed copy.
func checkBoxing(pass *analysis.Pass, name string, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			paramType = sig.Params().At(sig.Params().Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < sig.Params().Len():
			paramType = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		if types.IsInterface(atv.Type) || isNil(atv) || atv.Value != nil {
			continue
		}
		// Pointers box without copying the pointee and small pointer-shaped
		// values stay cheap, but the interface header may still escape;
		// flag only non-pointer concretes to keep noise down.
		if _, isPtr := atv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is hot-path: passing concrete %s as interface %s boxes (allocates)", name, atv.Type, paramType)
	}
}

func isNil(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// coldBlocks returns the if/else blocks that terminate by returning a
// non-nil error: allocations there are error-exit costs, not
// steady-path costs.
func coldBlocks(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.BlockStmt]bool {
	cold := make(map[*ast.BlockStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if returnsError(pass, ifs.Body) {
			cold[ifs.Body] = true
		}
		if blk, ok := ifs.Else.(*ast.BlockStmt); ok && returnsError(pass, blk) {
			cold[blk] = true
		}
		return true
	})
	return cold
}

// returnsError reports whether the block's last statement is a return
// whose final result is a non-nil error expression.
func returnsError(pass *analysis.Pass, blk *ast.BlockStmt) bool {
	if len(blk.List) == 0 {
		return false
	}
	ret, ok := blk.List[len(blk.List)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	tv, ok := pass.TypesInfo.Types[last]
	if !ok || tv.Type == nil || isNil(tv) {
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType) || types.Identical(t, errorType)
}
