package hotpathalloc_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hot")
}
