package wirecompat_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/wirecompat"
)

func TestWirecompat(t *testing.T) {
	analysistest.Run(t, "testdata", wirecompat.Analyzer,
		"w1/internal/serve", // in sync: no diagnostics
		"w2/internal/serve", // retyped + unrecorded + removed entries
		"w3/internal/serve", // lockfile missing
		"w4/internal/serve", // version bumped without regenerating
	)
}
