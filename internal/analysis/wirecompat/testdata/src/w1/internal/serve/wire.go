// w1: code and wire.lock are in sync — no diagnostics.
package serve

type Code uint8

const (
	CodeOK Code = iota
	CodeBadRequest
)

const (
	Version  = 1
	MaxFrame = 1 << 10
)

const (
	OpPredict uint8 = iota + 1
	OpBatch
)

type PredictRequest struct {
	Primary int   `json:"primary"`
	Mix     []int `json:"mix"`
}

type PredictResponse struct {
	Latency float64 `json:"latency"`
}
