// w2: the code drifted from the lock in all three ways — a retyped
// field, a new unrecorded field, and a removed field.
package serve // want `wire contract entry removed: field PredictRequest\.Gone`

const Version = 1

type PredictRequest struct {
	Primary int `json:"primary"` // want `wire contract changed for field PredictRequest\.Primary`
	Hint    int `json:"hint"`    // want `field PredictRequest\.Hint is not recorded in wire\.lock`
}
