// w4: the schema version was bumped without regenerating the lock.
package serve // want `wire schema version changed: wire\.lock has v1, code declares v2`

const Version = 2 // want `wire contract changed for const Version`
