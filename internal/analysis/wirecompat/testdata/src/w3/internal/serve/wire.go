// w3: wire surface declared but no wire.lock checked in.
package serve // want `wire\.lock is missing`

const Version = 1

type Ping struct {
	ID int `json:"id"`
}
