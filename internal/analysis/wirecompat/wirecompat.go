// Package wirecompat freezes the versioned wire contract of the
// serving layer. It derives a canonical fingerprint of the wire
// surface declared in internal/serve — every exported struct carrying
// json tags (field names, types, tags), the response Code constants,
// the frame opcodes (Op*), the opcode flag bits (Flag*), and the
// framing limits (Version, MaxFrame, MaxMix) — and diffs it against the
// checked-in wire.lock file next to the source.
//
// Any drift is a vet failure: growth must be recorded (regenerate the
// lock with `make wire-lock`), and a removal, rename, retype, or retag
// of existing surface is a breaking change that stays red until the
// schema Version is bumped and the lock consciously regenerated. v1
// clients decode by exactly these names and opcodes; the lock makes a
// silent break impossible.
package wirecompat

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"contender/internal/analysis"
)

// ScopedPackage is the package whose wire surface is frozen.
const ScopedPackage = "internal/serve"

// LockFile is the lockfile basename, checked in next to the wire
// declarations.
const LockFile = "wire.lock"

// frozenConsts are non-Code, non-Op constants that are part of the
// contract (framing limits and the schema version itself).
var frozenConsts = map[string]bool{"Version": true, "MaxFrame": true, "MaxMix": true}

// Analyzer is the wirecompat check.
var Analyzer = &analysis.Analyzer{
	Name: "wirecompat",
	Doc:  "the v1 wire surface (struct fields, tags, opcodes, limits) must match the checked-in wire.lock",
	Run:  run,
}

// Entry is one fingerprinted declaration.
type Entry struct {
	Key   string // "struct Name", "field Name.Field", "const Name"
	Value string // canonical payload; empty for struct presence markers
	Pos   token.Pos
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), ScopedPackage) {
		return nil
	}
	version, entries, pkgPos := Fingerprint(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	if len(entries) == 0 {
		return nil // no wire surface declared (yet)
	}
	dir := filepath.Dir(pass.Fset.Position(pkgPos).Filename)
	data, err := os.ReadFile(filepath.Join(dir, LockFile))
	if err != nil {
		pass.Reportf(pkgPos, "%s is missing: the wire contract is unfrozen; generate it with `make wire-lock` and check it in", LockFile)
		return nil
	}
	lockVersion, locked := parseLock(string(data))

	if lockVersion != version {
		pass.Reportf(pkgPos, "wire schema version changed: %s has v%s, code declares v%s; regenerate the lock deliberately with `make wire-lock`", LockFile, lockVersion, version)
	}
	got := make(map[string]Entry, len(entries))
	for _, e := range entries {
		got[e.Key] = e
		want, ok := locked[e.Key]
		switch {
		case !ok:
			pass.Reportf(e.Pos, "%s is not recorded in %s; the wire contract grew — regenerate the lock with `make wire-lock`", e.Key, LockFile)
		case want != e.Value:
			pass.Reportf(e.Pos, "wire contract changed for %s: %s has %q, code has %q; this breaks v%s clients — bump Version and regenerate with `make wire-lock`", e.Key, LockFile, want, e.Value, lockVersion)
		}
	}
	removed := make([]string, 0)
	for key := range locked {
		if _, ok := got[key]; !ok {
			removed = append(removed, key)
		}
	}
	sort.Strings(removed)
	for _, key := range removed {
		pass.Reportf(pkgPos, "wire contract entry removed: %s; removing v%s surface breaks deployed clients — bump Version and regenerate with `make wire-lock`", key, lockVersion)
	}
	return nil
}

// Fingerprint computes the canonical wire entries of a package plus the
// declared schema version. pkgPos anchors package-level diagnostics: the
// package clause of the file declaring Version (first file otherwise).
func Fingerprint(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (version string, entries []Entry, pkgPos token.Pos) {
	version = "?"
	if len(files) > 0 {
		pkgPos = files[0].Name.Pos()
	}
	qual := types.RelativeTo(pkg)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						cn, ok := info.Defs[name].(*types.Const)
						if !ok || !name.IsExported() || !frozenConst(cn) {
							continue
						}
						if name.Name == "Version" {
							version = cn.Val().String()
							pkgPos = f.Name.Pos()
						}
						entries = append(entries, Entry{
							Key:   "const " + name.Name,
							Value: fmt.Sprintf("%s = %s", types.TypeString(cn.Type(), qual), cn.Val()),
							Pos:   name.Pos(),
						})
					}
				}
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || !hasJSONTag(st) {
						continue
					}
					entries = append(entries, Entry{Key: "struct " + ts.Name.Name, Pos: ts.Name.Pos()})
					for _, field := range st.Fields.List {
						ft := info.TypeOf(field.Type)
						val := types.TypeString(ft, qual)
						if tag := jsonTag(field); tag != "" {
							val += fmt.Sprintf(" json:%q", tag)
						}
						for _, fn := range field.Names {
							if !fn.IsExported() {
								continue
							}
							entries = append(entries, Entry{
								Key:   fmt.Sprintf("field %s.%s", ts.Name.Name, fn.Name),
								Value: val,
								Pos:   fn.Pos(),
							})
						}
					}
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return version, entries, pkgPos
}

// frozenConst reports whether an exported constant belongs to the wire
// contract: typed as the package's Code enum, an Op* opcode, a Flag*
// opcode flag bit, or one of the framing limits.
func frozenConst(cn *types.Const) bool {
	if frozenConsts[cn.Name()] || strings.HasPrefix(cn.Name(), "Op") || strings.HasPrefix(cn.Name(), "Flag") {
		return true
	}
	named, ok := cn.Type().(*types.Named)
	return ok && named.Obj().Name() == "Code" && named.Obj().Pkg() == cn.Pkg()
}

func hasJSONTag(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if jsonTag(f) != "" {
			return true
		}
	}
	return false
}

func jsonTag(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(f.Tag.Value)
	if err != nil {
		return ""
	}
	return reflect.StructTag(raw).Get("json")
}

// Render serializes entries into the lockfile format.
func Render(version string, entries []Entry) string {
	var b strings.Builder
	b.WriteString("# wirecompat lock: canonical fingerprint of the versioned wire schema.\n")
	b.WriteString("# Regenerate deliberately with `make wire-lock` after a schema change;\n")
	b.WriteString("# breaking changes must bump serve.Version first.\n")
	fmt.Fprintf(&b, "schema v%s\n", version)
	for _, e := range entries {
		b.WriteString(e.Key)
		if e.Value != "" {
			b.WriteString(" ")
			b.WriteString(e.Value)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// parseLock reads the lockfile back into a key→value map.
func parseLock(data string) (version string, entries map[string]string) {
	entries = make(map[string]string)
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if v, ok := strings.CutPrefix(line, "schema v"); ok {
			version = v
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) < 2 {
			continue
		}
		key := parts[0] + " " + parts[1]
		value := ""
		if len(parts) == 3 {
			value = parts[2]
		}
		entries[key] = value
	}
	return version, entries
}
