package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeError holds the first type-checking error, if any. Analysis
	// still runs on partially-checked packages; the driver surfaces the
	// error alongside any diagnostics.
	TypeError error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir) with
// `go list -export -deps`, then parses and type-checks every non-dep
// package from source. Dependencies — including the standard library —
// are imported from the compiler export data go list produces, so
// loading works hermetically (no network, no pre-populated module
// cache) and stays fast: only the packages under analysis are parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		p := lp
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a go/types importer that resolves every import
// from the export-data files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect the first error via Check's return
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		TypeError: err,
	}, nil
}

// NewTypesInfo allocates the full types.Info the analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
