package analysis

import (
	"fmt"
	"io"
	"strings"
)

// RunAnalyzers applies every analyzer to the package, filters the
// results through the package's //contender:allow directives, and
// returns the surviving diagnostics (malformed-directive diagnostics
// included) in positional order. Diagnostics located in _test.go files
// are dropped: the invariants target production code, and test files
// legitimately construct raw errors, observers, and clocks.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ds := parseDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, ds.Malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			pos := pkg.Fset.Position(d.Pos)
			if ds.allows(a.Name, pos.Filename, pos.Line) {
				continue
			}
			out = append(out, d)
		}
	}
	kept := out[:0]
	for _, d := range out {
		if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
			continue
		}
		kept = append(kept, d)
	}
	SortDiagnostics(pkg.Fset, kept)
	return kept, nil
}

// Main is the standalone driver: load the packages matching patterns
// under dir, run the suite, print "file:line:col: analyzer: message"
// lines to w, and report how many diagnostics were printed. Packages
// that fail to type-check are reported as diagnostics too, so a broken
// tree cannot silently pass vet.
func Main(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) (int, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			fmt.Fprintf(w, "%s: typecheck: %v\n", pkg.PkgPath, pkg.TypeError)
			count++
			continue
		}
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			count++
		}
	}
	return count, nil
}
