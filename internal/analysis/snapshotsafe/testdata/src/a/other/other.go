// Package other is out of snapshotsafe's scope: no diagnostics.
package other

import "sync/atomic"

type box struct{ n int }

func (b *box) SetN(n int) { b.n = n }

func mutateLoaded(p *atomic.Pointer[box]) {
	b := p.Load()
	b.SetN(1)
}
