package core

import "sync/atomic"

type Knowledge struct {
	N     int
	Table map[int]float64
}

func (k *Knowledge) SetN(n int)           { k.N = n }
func (k *Knowledge) Prime()               {}
func (k *Knowledge) Lookup(i int) float64 { return k.Table[i] }
func (k *Knowledge) Quality() *Sink       { return &Sink{} }
func (k *Knowledge) Clone() *Knowledge    { return &Knowledge{N: k.N} }

type Sink struct{ V int }

func (s *Sink) Observe(v int)    { s.V += v }
func (s *Sink) AddDropped(n int) { s.V += n }

type Holder struct {
	snap atomic.Pointer[Knowledge]
}

func (h *Holder) Snapshot() *Knowledge { return h.snap.Load() }

// Clean: reads off the loaded snapshot.
func (h *Holder) goodRead() float64 {
	k := h.snap.Load()
	return k.Lookup(1)
}

func (h *Holder) badFieldWrite() {
	k := h.snap.Load()
	k.N = 2 // want `write to k\.N mutates data reachable from an atomic snapshot`
}

func (h *Holder) badMapWrite() {
	k := h.snap.Load()
	k.Table[1] = 2 // want `write to k\.Table\[1\] mutates data reachable from an atomic snapshot`
}

func (h *Holder) badIncrement() {
	k := h.Snapshot()
	k.N++ // want `write to k\.N mutates data reachable from an atomic snapshot`
}

func (h *Holder) badMutatingCall() {
	k := h.snap.Load()
	k.SetN(3) // want `mutating call k\.SetN on a value derived from an atomic snapshot`
}

// Mutation through a value transitively derived from the load.
func (h *Holder) badTransitive() {
	q := h.snap.Load().Quality()
	q.Observe(1)    // want `mutating call q\.Observe on a value derived from an atomic snapshot`
	q.AddDropped(2) // want `mutating call q\.AddDropped on a value derived from an atomic snapshot`
}

// Clean: re-priming — the loaded value is mutated, then re-published.
func (h *Holder) goodRePrime() {
	k := h.snap.Load()
	k.Prime()
	h.snap.Swap(k)
}

// Clean: fresh candidate primed before first publication.
func (h *Holder) goodFreshPublish() {
	k := &Knowledge{Table: map[int]float64{}}
	k.SetN(1)
	k.Table[0] = 1
	h.snap.Store(k)
}

// Clean: a clone is a new object; mutating it touches no reader. The
// clone is republished, which is the canonical copy-on-write path.
func (h *Holder) goodCopyOnWrite() {
	k := h.snap.Load().Clone()
	k.SetN(7)
	h.snap.Store(k)
}

// The quality sink is shared mutable state by contract.
//
//contender:allow snapshotsafe -- the sink synchronizes internally and survives swaps by contract
func (h *Holder) waivedSink() {
	q := h.snap.Load().Quality()
	q.Observe(4)
}
