// Package snapshotsafe enforces the lock-free hot-swap contract: data
// reachable from an atomic snapshot load is read-only. The serving path
// reads `atomic.Pointer[T].Load()` (surfaced through methods named
// Snapshot) with no lock; any mutation of the loaded object races every
// concurrent reader. Mutation is only legal in the priming path — on a
// value that is subsequently re-published through Store/Swap, which is
// exactly how retrain builds a candidate before swapping it in.
//
// The analyzer tracks, per function, every local transitively derived
// from an atomic load: direct `x.Load()` results where the receiver is
// a sync/atomic.Pointer, results of methods named Snapshot, methods
// called on derived values, field selections, indexing, and
// range-over-derived. On a derived value it rejects:
//
//   - writes through selectors/indices (`k.N = 2`, `k.Table[i] = v`,
//     `k.N++`);
//   - calls to mutating-named methods (Set*, Add*, Observe*, Prime,
//     Reset*, Push*, Record*, Store*, Swap*, Delete*, Remove*, Put*,
//     Inc*, Dec*, Clear*);
//
// unless the derived root is re-published by a later Store/Swap call in
// the same function (the re-priming path). Shared mutable sinks that
// are reachable from a snapshot by design (the observation quality
// aggregator synchronizes internally) carry a reasoned
// //contender:allow snapshotsafe waiver.
package snapshotsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"contender/internal/analysis"
)

// ScopedPackages are the repo-relative packages the analyzer applies to.
var ScopedPackages = []string{
	"internal/core",
	"internal/serve",
	"internal/lifecycle",
	"internal/store",
}

// mutatingPrefixes mark methods assumed to write through their receiver.
var mutatingPrefixes = []string{
	"Set", "Add", "Observe", "Prime", "Reset", "Push", "Record",
	"Store", "Swap", "Delete", "Remove", "Put", "Inc", "Dec", "Clear",
}

// readOnlyNames are exact method names that a mutating prefix would
// otherwise swallow but that are getters by convention.
var readOnlyNames = map[string]bool{"Observer": true}

// Analyzer is the snapshotsafe check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotsafe",
	Doc:  "data loaded from an atomic snapshot is read-only; mutate only in the priming path before Store/Swap",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	scoped := false
	for _, p := range ScopedPackages {
		if analysis.PathMatches(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkFunc analyzes one function body, closures included — derived
// values flow into and out of them freely.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, derived: map[types.Object]bool{}, primed: map[types.Object]bool{}}

	// Derivation is a forward data-flow over simple assignments; a
	// fixed point handles aliases introduced before their source reads
	// naturally enough for straight-line Go.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = c.recordAssign(n.Lhs, n.Rhs) || changed
			case *ast.ValueSpec:
				var lhs []ast.Expr
				for _, name := range n.Names {
					lhs = append(lhs, name)
				}
				changed = c.recordAssign(lhs, n.Values) || changed
			case *ast.RangeStmt:
				if c.derivedExpr(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							changed = c.markDerived(id) || changed
						}
					}
				}
			}
			return true
		})
	}

	// Re-publication: a derived root handed back to Store/Swap is the
	// re-priming path; mutations of it are legal.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
					c.primed[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(n.X)
		case *ast.CallExpr:
			c.checkMutatingCall(n)
		}
		return true
	})
}

type checker struct {
	pass    *analysis.Pass
	derived map[types.Object]bool
	primed  map[types.Object]bool
}

func (c *checker) markDerived(id *ast.Ident) bool {
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil || c.derived[obj] {
		return false
	}
	c.derived[obj] = true
	return true
}

// recordAssign marks LHS identifiers derived when their RHS is.
func (c *checker) recordAssign(lhs, rhs []ast.Expr) bool {
	changed := false
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if id, ok := lhs[i].(*ast.Ident); ok && c.derivedExpr(rhs[i]) {
				changed = c.markDerived(id) || changed
			}
		}
	case len(rhs) == 1:
		if c.derivedExpr(rhs[0]) {
			for _, l := range lhs {
				if id, ok := l.(*ast.Ident); ok {
					changed = c.markDerived(id) || changed
				}
			}
		}
	}
	return changed
}

// derivedExpr reports whether the expression's value is (transitively)
// reachable from an atomic snapshot load.
func (c *checker) derivedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		return obj != nil && c.derived[obj]
	case *ast.SelectorExpr:
		return c.derivedExpr(e.X)
	case *ast.IndexExpr:
		return c.derivedExpr(e.X)
	case *ast.StarExpr:
		return c.derivedExpr(e.X)
	case *ast.TypeAssertExpr:
		return c.derivedExpr(e.X)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if sel.Sel.Name == "Load" && isAtomicPointer(c.pass, sel.X) {
			return true
		}
		if sel.Sel.Name == "Snapshot" {
			return true
		}
		// A method on a derived value yields derived data.
		return c.derivedExpr(sel.X)
	}
	return false
}

// checkWrite flags writes through a derived selector/index chain.
func (c *checker) checkWrite(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		inner := ast.Unparen(lhs)
		var x ast.Expr
		switch l := inner.(type) {
		case *ast.SelectorExpr:
			x = l.X
		case *ast.IndexExpr:
			x = l.X
		case *ast.StarExpr:
			x = l.X
		}
		if c.derivedExpr(x) && !c.rootPrimed(x) {
			c.pass.Reportf(lhs.Pos(), "write to %s mutates data reachable from an atomic snapshot; snapshots are read-only after publication — mutate only a candidate that is re-published via Store/Swap", types.ExprString(l))
		}
	}
}

// checkMutatingCall flags mutating-named methods invoked on derived
// values.
func (c *checker) checkMutatingCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	mutating := false
	for _, p := range mutatingPrefixes {
		if strings.HasPrefix(name, p) {
			mutating = true
			break
		}
	}
	if !mutating || readOnlyNames[name] {
		return
	}
	// Store/Swap on the atomic pointer itself is publication, not a
	// mutation of loaded data.
	if (name == "Store" || name == "Swap") && isAtomicPointer(c.pass, sel.X) {
		return
	}
	if !c.derivedExpr(sel.X) || c.rootPrimed(sel.X) {
		return
	}
	// Only flag calls that resolve to methods (a mutating receiver
	// needs a receiver).
	if _, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
		return
	}
	c.pass.Reportf(call.Pos(), "mutating call %s on a value derived from an atomic snapshot; snapshots are read-only after publication — mutate only a candidate that is re-published via Store/Swap", types.ExprString(sel))
}

// rootPrimed reports whether the expression's base identifier is later
// re-published through Store/Swap.
func (c *checker) rootPrimed(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			return obj != nil && c.primed[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			e = sel.X
		default:
			return false
		}
	}
}

// isAtomicPointer reports whether the expression is a
// sync/atomic.Pointer[T] (or addressable reference to one).
func isAtomicPointer(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}
