package snapshotsafe_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/snapshotsafe"
)

func TestSnapshotsafe(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotsafe.Analyzer,
		"a/internal/core", // scoped: loads, priming, copy-on-write
		"a/other",         // out of scope: no diagnostics
	)
}
