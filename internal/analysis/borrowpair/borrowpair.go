// Package borrowpair enforces the free-list discipline of the serving
// layer (internal/serve): a borrowed shard must be released before the
// borrower can block. The free list bounds concurrent shard users to
// the shard count; a goroutine that parks on a channel, a select, or a
// connection read while holding a shard pins a free-list slot for as
// long as the peer stays quiet — with enough idle holders the list
// runs dry and every new request answers overloaded. This is the exact
// starvation bug the serving layer shipped with once: an idle
// connection holding its burst shard across the next blocking frame
// read.
//
// The analyzer resolves the package's borrow graph first:
//
//   - borrow sources: calls to Acquire (returning *core.Shard),
//     receives from a free-list channel (`<-s.free`), in-package
//     functions that return a borrowed shard (`borrow`), and
//     in-package functions that stash a borrowed shard into a field
//     (`ensureShard` — and transitively everything that calls one,
//     because the held state outlives the call);
//   - releasers: sends of a *Shard back onto a channel (`giveBack`)
//     and in-package functions that call a releaser (`releaseShard`).
//
// Then, per function, two rules over the lexical event order:
//
//   - straight-line: after a borrow, a blocking construct may only
//     follow a release or a return (`defer release` runs after the
//     block and does not count);
//   - loop wrap-around: a loop that both borrows and blocks must
//     release inside the loop before its first block or after its last
//     borrow, so a shard held from iteration N is never parked across
//     iteration N+1's wait.
//
// Blocking constructs: channel send/receive, select without a default
// clause, range over a channel, reads (io.ReadFull/ReadAll/Copy and
// methods named Read*/Peek/Accept), sync Wait, and time.Sleep.
// Intentional hold-across-block designs carry a reasoned
// //contender:allow borrowpair waiver.
package borrowpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"contender/internal/analysis"
)

// ScopedPackages are the repo-relative packages the analyzer applies to.
var ScopedPackages = []string{
	"internal/serve",
}

// Analyzer is the borrowpair check.
var Analyzer = &analysis.Analyzer{
	Name: "borrowpair",
	Doc:  "every free-list shard borrow in internal/serve is released on all paths before a blocking call",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	scoped := false
	for _, p := range ScopedPackages {
		if analysis.PathMatches(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	g := buildGraph(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				g.checkFunc(fd.Body)
			}
		}
	}
	return nil
}

// sourceKind classifies a borrow-source function.
type sourceKind int

const (
	notSource  sourceKind = iota
	kindReturn            // returns the borrowed *Shard to its caller
	kindField             // stashes the borrowed *Shard in a field (held state outlives the call)
)

type graph struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	sources   map[*types.Func]sourceKind
	releasers map[*types.Func]bool
}

// buildGraph computes the package's borrow sources and releasers to a
// fixed point over the (same-package) call graph.
func buildGraph(pass *analysis.Pass) *graph {
	g := &graph{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		sources:   map[*types.Func]sourceKind{},
		releasers: map[*types.Func]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = fd
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range g.decls {
			kind := g.classifySource(fn, fd)
			if kind > g.sources[fn] {
				g.sources[fn] = kind
				changed = true
			}
			if !g.releasers[fn] && g.classifyReleaser(fd) {
				g.releasers[fn] = true
				changed = true
			}
		}
	}
	return g
}

func (g *graph) classifySource(fn *types.Func, fd *ast.FuncDecl) sourceKind {
	hasBorrow, hasFieldStash, callsFieldSource := false, false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if g.baseBorrowCall(n) {
				hasBorrow = true
			}
			if callee := g.callee(n); callee != nil {
				switch g.sources[callee] {
				case kindField:
					callsFieldSource = true
				case kindReturn:
					hasBorrow = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && g.isShardPtr(g.exprType(n)) {
				hasBorrow = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !g.isShardPtr(g.exprType(sel)) {
					continue
				}
				// `st.shard = nil` is release bookkeeping, not a stash.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := ast.Unparen(n.Rhs[i]).(*ast.Ident); ok && id.Name == "nil" {
						continue
					}
				}
				hasFieldStash = true
			}
		}
		return true
	})
	switch {
	case callsFieldSource, hasBorrow && hasFieldStash:
		return kindField
	case hasBorrow && returnsShard(g, fn):
		return kindReturn
	default:
		return notSource
	}
}

func (g *graph) classifyReleaser(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if g.isShardPtr(g.exprType(n.Value)) {
				found = true
			}
		case *ast.CallExpr:
			if callee := g.callee(n); callee != nil && g.releasers[callee] {
				found = true
			}
		}
		return !found
	})
	return found
}

func returnsShard(g *graph, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if g.isShardPtr(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// baseBorrowCall matches the root borrow primitive: an Acquire call
// yielding a *Shard.
func (g *graph) baseBorrowCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" {
		return false
	}
	return g.isShardPtr(g.exprType(call))
}

func (g *graph) callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = g.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = g.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func (g *graph) exprType(e ast.Expr) types.Type {
	tv, ok := g.pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// isShardPtr matches *core.Shard (any package whose path ends in
// internal/core, so the golden testdata's mock core counts too).
func (g *graph) isShardPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Shard" && obj.Pkg() != nil &&
		analysis.PathMatches(obj.Pkg().Path(), "internal/core")
}

// event kinds for the per-function lexical scan.
const (
	eBorrow = iota
	eRelease
	eBlock
	eReturn
)

type event struct {
	pos  token.Pos
	kind int
	desc string // block description
}

// checkFunc applies the straight-line and loop wrap-around rules to
// one function body. Function literals are checked on their own — they
// run on their own goroutine's schedule.
func (g *graph) checkFunc(body *ast.BlockStmt) {
	var events []event
	var loops []ast.Node

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.checkFunc(n.Body)
			return false
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred calls run after every block below; spawned calls
			// run elsewhere. Neither borrows nor releases on this path.
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			if r, ok := n.(*ast.RangeStmt); ok {
				if t := g.exprType(r.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "range over channel"})
					}
				}
			}
		case *ast.ReturnStmt:
			events = append(events, event{pos: n.Pos(), kind: eReturn})
		case *ast.SendStmt:
			if g.isShardPtr(g.exprType(n.Value)) {
				// Sending the shard back IS the release; anchor it at the
				// end of the statement so a borrow inside the same send
				// (`free <- sh.Acquire()`) pairs in source order.
				events = append(events, event{pos: n.End(), kind: eRelease})
			} else {
				events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if g.isShardPtr(g.exprType(n)) {
					events = append(events, event{pos: n.Pos(), kind: eBorrow})
				} else {
					events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "channel receive"})
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "select"})
			}
			// Walk the clauses for borrows/releases/returns; the comm
			// ops themselves are part of the select (or non-blocking
			// when defaulted), not separate block events.
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					ast.Inspect(cc.Comm, func(m ast.Node) bool {
						if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW && g.isShardPtr(g.exprType(u)) {
							events = append(events, event{pos: u.Pos(), kind: eBorrow})
						}
						return true
					})
				}
				for _, s := range cc.Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.CallExpr:
			if g.baseBorrowCall(n) {
				events = append(events, event{pos: n.Pos(), kind: eBorrow})
				return true
			}
			if callee := g.callee(n); callee != nil {
				if g.sources[callee] != notSource {
					events = append(events, event{pos: n.Pos(), kind: eBorrow})
					return true
				}
				if g.releasers[callee] {
					events = append(events, event{pos: n.Pos(), kind: eRelease})
					return true
				}
			}
			if desc, ok := blockingCall(g.pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: eBlock, desc: desc})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// Straight-line rule: after a borrow, the next block must be
	// preceded by a release or a return on the lexical path.
	for i, ev := range events {
		if ev.kind != eBorrow {
			continue
		}
	scan:
		for _, later := range events[i+1:] {
			switch later.kind {
			case eRelease, eReturn:
				break scan
			case eBlock:
				g.pass.Reportf(later.pos, "shard borrowed at line %d is still held across this blocking %s; release it before blocking — a parked holder starves the free list", g.pass.Fset.Position(ev.pos).Line, later.desc)
				break scan
			}
		}
	}

	// Loop wrap-around rule: a loop that borrows and blocks must
	// release before its first block or after its last borrow.
	for _, loop := range loops {
		var firstBlock, lastBorrow token.Pos
		var blockDesc string
		hasRelease := false
		for _, ev := range events {
			if ev.pos < loop.Pos() || ev.pos > loop.End() {
				continue
			}
			switch ev.kind {
			case eBorrow:
				lastBorrow = ev.pos
			case eBlock:
				if firstBlock == token.NoPos {
					firstBlock, blockDesc = ev.pos, ev.desc
				}
			}
		}
		if firstBlock == token.NoPos || lastBorrow == token.NoPos {
			continue
		}
		for _, ev := range events {
			if ev.kind == eRelease && ev.pos >= loop.Pos() && ev.pos <= loop.End() &&
				(ev.pos < firstBlock || ev.pos > lastBorrow) {
				hasRelease = true
				break
			}
		}
		if !hasRelease {
			g.pass.Reportf(firstBlock, "loop borrows a shard and blocks (%s): a shard held from a previous iteration stays parked across this wait; release inside the loop before it blocks", blockDesc)
		}
	}
}

// blockingCall matches read/wait/sleep calls that park the goroutine.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "io" && (fn.Name() == "ReadFull" || fn.Name() == "ReadAll" || fn.Name() == "Copy"):
			return "io." + fn.Name(), true
		case pkg.Path() == "sync" && fn.Name() == "Wait":
			return "sync Wait", true
		case pkg.Path() == "time" && fn.Name() == "Sleep":
			return "time.Sleep", true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name := fn.Name()
		if strings.HasPrefix(name, "Read") || name == "Peek" || name == "Accept" {
			return "read (" + name + ")", true
		}
	}
	return "", false
}
