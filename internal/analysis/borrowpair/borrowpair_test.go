package borrowpair_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/borrowpair"
)

func TestBorrowpair(t *testing.T) {
	analysistest.Run(t, "testdata", borrowpair.Analyzer,
		"a/internal/serve", // scoped: burst loops, defers, field-held borrows
		"a/other",          // out of scope: no diagnostics
	)
}
