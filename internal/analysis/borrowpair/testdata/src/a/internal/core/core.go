// Package core is a minimal mock of the real sharded serving set for
// the borrowpair golden tests.
package core

type Shard struct{ n int }

func (s *Shard) Predict(primary int, mix []int) float64 { return float64(s.n) }

type Sharded struct{ shards []*Shard }

func (s *Sharded) Acquire() *Shard { return &Shard{} }
func (s *Sharded) NumShards() int  { return 4 }
