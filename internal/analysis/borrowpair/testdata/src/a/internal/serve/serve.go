package serve

import (
	"bufio"
	"io"
	"sync"
	"time"

	"a/internal/core"
)

type server struct {
	sh   *core.Sharded
	free chan *core.Shard
	work chan int
}

// Clean: the seed loop borrows and releases inside one send.
func newServer(sh *core.Sharded) *server {
	s := &server{sh: sh, free: make(chan *core.Shard, sh.NumShards())}
	for i := 0; i < sh.NumShards(); i++ {
		s.free <- sh.Acquire()
	}
	return s
}

// borrow is a returns-source: each received shard escapes to the
// caller immediately (the comm-clause returns break the lexical path).
func (s *server) borrow() *core.Shard {
	select {
	case sh := <-s.free:
		return sh
	default:
	}
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case sh := <-s.free:
		return sh
	case <-t.C:
		return nil
	}
}

func (s *server) giveBack(sh *core.Shard) { s.free <- sh }

// Clean: borrow, use, deferred release — nothing blocks in between.
func (s *server) goodBalanced(primary int, mix []int) float64 {
	sh := s.borrow()
	defer s.giveBack(sh)
	return sh.Predict(primary, mix)
}

// The deferred release runs only after the receive unblocks: flagged.
func (s *server) badDeferAcrossBlock(primary int, mix []int) float64 {
	sh := s.borrow()
	defer s.giveBack(sh)
	<-s.work // want `shard borrowed at line \d+ is still held across this blocking channel receive`
	return sh.Predict(primary, mix)
}

// Clean: explicit release before the block.
func (s *server) goodReleaseBeforeBlock(primary int, mix []int) float64 {
	sh := s.borrow()
	v := sh.Predict(primary, mix)
	s.giveBack(sh)
	<-s.work
	return v
}

type connState struct {
	srv   *server
	shard *core.Shard
}

// ensureShard is a field-holding source: the borrow outlives the call.
func (st *connState) ensureShard() *core.Shard {
	if st.shard == nil {
		st.shard = st.srv.borrow()
	}
	return st.shard
}

func (st *connState) releaseShard() {
	if st.shard != nil {
		st.srv.giveBack(st.shard)
		st.shard = nil
	}
}

// handleFrame holds across frames by design; it never blocks — clean.
func (st *connState) handleFrame(primary int, mix []int) float64 {
	sh := st.ensureShard()
	return sh.Predict(primary, mix)
}

// Clean: the per-burst loop releases before the blocking client read
// and after the loop exits.
func (st *connState) goodServeLoop(br *bufio.Reader) {
	var header [4]byte
	for {
		st.releaseShard()
		if _, err := io.ReadFull(br, header[:]); err != nil {
			break
		}
		st.handleFrame(1, nil)
	}
	st.releaseShard()
}

// The starvation bug: a shard held from the previous burst stays
// parked across the next client read — an idle connection pins a
// free-list slot dry.
func (st *connState) badServeLoop(br *bufio.Reader) {
	var header [4]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil { // want `loop borrows a shard and blocks \(io\.ReadFull\)`
			break
		}
		st.handleFrame(1, nil)
	}
	st.releaseShard()
}

// The teardown variant: the last burst's shard is held across the
// writer drain.
func (st *connState) badHeldAcrossWait(br *bufio.Reader, wg *sync.WaitGroup) {
	var header [4]byte
	for {
		st.releaseShard()
		if _, err := io.ReadFull(br, header[:]); err != nil {
			break
		}
		st.handleFrame(1, nil)
	}
	wg.Wait() // want `shard borrowed at line \d+ is still held across this blocking sync Wait`
}

// The probe parks on purpose; it owns a dedicated shard outside the
// serving free list.
//
//contender:allow borrowpair -- diagnostic probe holds its dedicated shard across the wait by design
func (s *server) waivedProbe() {
	sh := s.borrow()
	<-s.work
	s.giveBack(sh)
}
