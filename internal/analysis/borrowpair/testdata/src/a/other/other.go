// Package other is out of borrowpair's scope: no diagnostics.
package other

import "a/internal/core"

func holdAcrossBlock(sh *core.Sharded, work chan int) float64 {
	h := sh.Acquire()
	<-work
	return h.Predict(1, nil)
}
