// Package analysis is Contender's static-analysis toolkit: a small,
// dependency-free subset of the golang.org/x/tools/go/analysis API plus
// the loader, allowlist-directive engine, and driver glue shared by
// cmd/contender-vet and the analyzer golden tests.
//
// The module is built hermetically (no network, no module cache), so
// x/tools cannot be pinned in go.mod; this package reimplements the
// pieces the suite needs — Analyzer, Pass, Diagnostic, a go/types
// loader, and the `go vet -vettool` unit-checker protocol — against the
// standard library only. The API mirrors x/tools deliberately: if the
// dependency ever becomes available, each analyzer ports by changing
// one import path.
//
// # Escape hatch
//
// A diagnostic is suppressed by an allowlist directive:
//
//	//contender:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the offending line, on the line directly above it, or in
// the doc comment of the enclosing function (which suppresses for the
// whole function). The reason string is mandatory; a directive without
// one is itself a diagnostic that cannot be suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors
// x/tools/go/analysis.Analyzer minus facts and requires (the suite's
// analyzers are independent and fact-free).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //contender:allow directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by contender-vet -help;
	// its first line states the enforced invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // analyzer name; "directive" for malformed directives
	Message  string
}

// Report records a diagnostic against the pass's analyzer.
func (p *Pass) Report(pos token.Pos, message string) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: message})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// PathMatches reports whether a package import path denotes the named
// repo-relative package: either exactly (testdata packages use bare
// paths like "internal/sim") or as a path suffix ("contender/internal/sim").
func PathMatches(pkgPath, name string) bool {
	return pkgPath == name || strings.HasSuffix(pkgPath, "/"+name)
}

// directiveRe matches the allowlist directive. The analyzer list is
// comma-separated; everything after " -- " is the mandatory reason.
var directiveRe = regexp.MustCompile(`^//contender:allow\s+([A-Za-z0-9_,]+)\s*(?:--\s*(.*))?$`)

// HotpathMarker is the comment marker hotpathalloc keys on.
const HotpathMarker = "//contender:hotpath"

// directive is one parsed //contender:allow comment.
type directive struct {
	pos       token.Pos
	analyzers map[string]bool
	reason    string
	line      int      // line the directive comment sits on
	funcScope [2]int   // when inside a func doc comment: [startLine, endLine] of the func body; zero otherwise
	file      string
}

// directiveSet holds every directive of one package plus the
// diagnostics produced by malformed ones.
type directiveSet struct {
	byFile map[string][]directive
	// Malformed holds "missing reason" diagnostics; they are not
	// suppressible.
	Malformed []Diagnostic
}

// parseDirectives scans the files' comments for //contender:allow
// directives, attaching function scope when the directive lives in a
// FuncDecl doc comment.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byFile: make(map[string][]directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//contender:allow") {
					continue
				}
				pos := c.Slash
				position := fset.Position(pos)
				m := directiveRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					ds.Malformed = append(ds.Malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "//contender:allow directive requires a reason: `//contender:allow <analyzer> -- <reason>`",
					})
					continue
				}
				d := directive{
					pos:       pos,
					analyzers: make(map[string]bool),
					reason:    strings.TrimSpace(m[2]),
					line:      position.Line,
					file:      position.Filename,
				}
				for _, name := range strings.Split(m[1], ",") {
					d.analyzers[strings.TrimSpace(name)] = true
				}
				ds.byFile[d.file] = append(ds.byFile[d.file], d)
			}
		}
		// A directive whose line falls inside a FuncDecl's doc comment
		// governs that whole function.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			docStart := fset.Position(fd.Doc.Pos()).Line
			docEnd := fset.Position(fd.Doc.End()).Line
			file := fset.Position(fd.Pos()).Filename
			dirs := ds.byFile[file]
			for i := range dirs {
				if dirs[i].line >= docStart && dirs[i].line <= docEnd {
					dirs[i].funcScope = [2]int{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
				}
			}
		}
	}
	return ds
}

// allows reports whether a diagnostic from the named analyzer at
// file:line is suppressed by some directive.
func (ds *directiveSet) allows(analyzer, file string, line int) bool {
	for _, d := range ds.byFile[file] {
		if !d.analyzers[analyzer] {
			continue
		}
		if d.line == line || d.line == line-1 {
			return true
		}
		if d.funcScope != [2]int{} && line >= d.funcScope[0] && line <= d.funcScope[1] {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by position then analyzer name.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
