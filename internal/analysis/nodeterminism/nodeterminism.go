// Package nodeterminism forbids sources of run-to-run nondeterminism
// inside the deterministic training-data collection packages. The
// byte-identity contract — continuum/CQI/QS artifacts identical at any
// worker count (Eqs. 2–7) — rests on every value being derived from the
// campaign seed, so wall clocks, the global math/rand stream,
// goroutine-count-dependent branches, and map-iteration order feeding
// an output sink are all rejected at vet time.
package nodeterminism

import (
	"go/ast"
	"go/types"

	"contender/internal/analysis"
)

// ScopedPackages are the repo-relative packages the analyzer applies
// to: the simulator and experiment harness (all collection), and core
// (persistence/fingerprint paths and the serving pipeline).
var ScopedPackages = []string{
	"internal/sim",
	"internal/experiments",
	"internal/core",
}

// Analyzer is the nodeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: "forbid nondeterminism (time.Now, global math/rand, goroutine-count branches, " +
		"map-range into output sinks) in the deterministic collection packages",
	Run: run,
}

// bannedFuncs maps package path -> function name -> replacement advice.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "derive timestamps from the campaign seed or virtual clock",
		"Since": "durations must come from the simulator's virtual clock",
		"Until": "durations must come from the simulator's virtual clock",
	},
	"runtime": {
		"NumGoroutine": "output must not depend on scheduling width",
		"NumCPU":       "output must not depend on host parallelism",
	},
	"os": {
		"Getpid": "process identity is nondeterministic across runs",
	},
}

// randAllowed lists the math/rand top-level functions that do NOT draw
// from the shared global stream (seeded constructors are the required
// idiom; everything else at package level is banned).
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func inScope(pkgPath string) bool {
	for _, p := range ScopedPackages {
		if analysis.PathMatches(pkgPath, p) {
			return true
		}
	}
	return false
}

// calleeObject resolves a call's callee to its types.Object when the
// callee is a plain identifier or selector (pkg.F or x.M).
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	obj := calleeObject(pass, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods (e.g. a seeded
	// *rand.Rand's Float64) are deterministic given their receiver.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	if advice, ok := bannedFuncs[pkgPath][name]; ok {
		pass.Reportf(call.Pos(), "call to %s.%s breaks the deterministic-collection invariant (%s)", pkgPath, name, advice)
		return
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randAllowed[name] {
		pass.Reportf(call.Pos(), "global %s.%s draws from a shared nondeterministic stream; use a seeded *rand.Rand (sim.DeriveSeed)", pkgPath, name)
	}
}

// sinkMethods are methods that commit bytes to an output or hash in
// call order; reaching one from inside a map range makes the artifact
// order-dependent.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true, "Sum64": true, "Sum32": true,
}

// sinkFmtFuncs are fmt functions that emit to a writer or the process
// streams.
var sinkFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// checkMapRange reports `for … range m` over a map whose body writes to
// an output sink: the iteration order — and therefore the artifact —
// differs run to run. Ranges that only accumulate into resortable
// collections (append then sort) are fine and not flagged.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pass, call)
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		via := ""
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && sinkFmtFuncs[fn.Name()]:
			via = "fmt." + fn.Name()
		case fn.Type().(*types.Signature).Recv() != nil && sinkMethods[fn.Name()]:
			via = fn.Name()
		default:
			return true
		}
		reported = true
		pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and this range writes to an output via %s; iterate sorted keys instead", via)
		return false
	})
}
