package nodeterminism_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/nodeterminism"
)

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterminism.Analyzer,
		"a/internal/sim", // scoped: every banned construct plus allow-directive forms
		"b",              // out of scope: same constructs, no diagnostics
	)
}
