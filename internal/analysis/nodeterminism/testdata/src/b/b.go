// Package b is out of scope (its path names no collection package), so
// nondeterminism here is legal and the analyzer must stay silent.
package b

import (
	"math/rand"
	"time"
)

func Clock() time.Time { return time.Now() }

func Draw() float64 { return rand.Float64() }
