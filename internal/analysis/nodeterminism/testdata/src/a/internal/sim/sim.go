// Package sim is golden testdata modeling a deterministic collection
// package (its import path ends in internal/sim, putting it in scope).
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

func Clocks() time.Duration {
	t0 := time.Now()   // want `call to time.Now breaks the deterministic-collection invariant`
	_ = time.Since(t0) // want `call to time.Since breaks the deterministic-collection invariant`
	return time.Until(t0) // want `call to time.Until breaks the deterministic-collection invariant`
}

func GlobalRand() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle draws from a shared nondeterministic stream`
	return rand.Float64()              // want `global math/rand.Float64 draws from a shared nondeterministic stream`
}

// SeededRand is the required idiom: a constructor-seeded stream.
func SeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func Goroutines() int {
	return runtime.NumGoroutine() // want `call to runtime.NumGoroutine breaks the deterministic-collection invariant`
}

func Pid() int {
	return os.Getpid() // want `call to os.Getpid breaks the deterministic-collection invariant`
}

func MapToBuilder(m map[string]float64, b *strings.Builder) {
	for k := range m { // want `map iteration order is nondeterministic and this range writes to an output via WriteString`
		b.WriteString(k)
	}
}

func MapToHash(m map[string]int) uint64 {
	h := fnv.New64a()
	for k, v := range m { // want `map iteration order is nondeterministic and this range writes to an output via fmt.Fprintf`
		fmt.Fprintf(h, "%s=%d", k, v)
	}
	return h.Sum64()
}

// MapSorted is the required idiom: accumulate, sort, then emit.
func MapSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func AllowedSameLine() time.Time {
	return time.Now() //contender:allow nodeterminism -- golden test: wall clock feeds a span duration only
}

func AllowedLineAbove() time.Time {
	//contender:allow nodeterminism -- golden test: wall clock feeds a span duration only
	return time.Now()
}

// AllowedFuncDoc is observability-only; the doc-comment directive
// suppresses for the whole function.
//
//contender:allow nodeterminism -- golden test: whole function is observability-only
func AllowedFuncDoc() (time.Time, time.Duration) {
	t0 := time.Now()
	return t0, time.Since(t0)
}

func MissingReason() time.Time {
	//contender:allow nodeterminism // want `//contender:allow directive requires a reason`
	return time.Now() // want `call to time.Now breaks the deterministic-collection invariant`
}

func WrongAnalyzerNamed() time.Time {
	//contender:allow hotpathalloc -- golden test: names a different analyzer, so it must not suppress
	return time.Now() // want `call to time.Now breaks the deterministic-collection invariant`
}
