package lockblock_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/lockblock"
)

func TestLockblock(t *testing.T) {
	analysistest.Run(t, "testdata", lockblock.Analyzer,
		"a/internal/serve", // scoped: blocking constructs under mutexes
		"a/other",          // out of scope: no diagnostics
	)
}
