package serve

import (
	"context"
	"sync"
	"time"

	"a/internal/obs"
)

type server struct {
	mu      sync.Mutex
	stateMu sync.RWMutex
	wg      sync.WaitGroup
	ch      chan int
	o       obs.Observer
	n       int
}

// Clean: lock released before every blocking construct.
func (s *server) good() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
	<-s.ch
	s.wg.Wait()
}

// Clean: a select with a default clause never blocks.
func (s *server) goodDefaultedSelect() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func (s *server) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `s\.mu\.Lock is held across this channel send`
	s.mu.Unlock()
}

func (s *server) badReceive() {
	s.stateMu.RLock()
	<-s.ch // want `s\.stateMu\.RLock is held across this channel receive`
	s.stateMu.RUnlock()
}

func (s *server) badDeferUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `s\.mu\.Lock is held across this sync\.WaitGroup\.Wait`
}

func (s *server) badSelect() {
	s.mu.Lock()
	select { // want `s\.mu\.Lock is held across this select`
	case <-s.ch:
	case s.ch <- 1:
	}
	s.mu.Unlock()
}

func (s *server) badRange() {
	s.mu.Lock()
	for range s.ch { // want `s\.mu\.Lock is held across this range over channel`
	}
	s.mu.Unlock()
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `s\.mu\.Lock is held across this time\.Sleep`
	s.mu.Unlock()
}

func (s *server) badEmit() {
	s.mu.Lock()
	obs.Emit(s.o, obs.Event{Name: "x"}) // want `s\.mu\.Lock is held across this observer emission \(obs\.Emit\)`
	s.mu.Unlock()
}

func (s *server) badEvent() {
	s.mu.Lock()
	s.o.Event(obs.Event{Name: "x"}) // want `s\.mu\.Lock is held across this observer emission \(Observer\.Event\)`
	s.mu.Unlock()
}

func collect(ctx context.Context) error { return ctx.Err() }

func (s *server) badCtxCall(ctx context.Context) {
	s.mu.Lock()
	_ = collect(ctx) // want `s\.mu\.Lock is held across this context-accepting call collect`
	s.mu.Unlock()
}

// waived holds the mutex across a retrain emission by design.
//
//contender:allow lockblock -- control-plane mutex serializes steps by contract
func (s *server) waived(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = collect(ctx)
	obs.Emit(s.o, obs.Event{Name: "retrain"})
}

// Clean: the closure body is its own schedule, not this lock region.
func (s *server) goodClosure() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { s.wg.Wait() }
}

// The closure is still checked on its own.
func (s *server) badClosure() func() {
	return func() {
		s.mu.Lock()
		<-s.ch // want `s\.mu\.Lock is held across this channel receive`
		s.mu.Unlock()
	}
}

// Clean: lexical pairing — the early-return branch unlocks, and the
// send after the final unlock is out of region.
func (s *server) goodEarlyReturn(stop bool) {
	s.mu.Lock()
	if stop {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
}
