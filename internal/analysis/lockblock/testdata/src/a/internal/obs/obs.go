// Package obs is a minimal mock of the real observability surface for
// the lockblock golden tests: an Observer interface plus the
// panic-isolating Emit shim.
package obs

type Event struct {
	Name string
}

type Observer interface {
	Event(e Event)
}

func Emit(o Observer, e Event) {
	if o != nil {
		o.Event(e)
	}
}
