// Package other is out of lockblock's scope: no diagnostics.
package other

import "sync"

type t struct {
	mu sync.Mutex
	ch chan int
}

func (x *t) holdAcrossSend() {
	x.mu.Lock()
	x.ch <- 1
	x.mu.Unlock()
}
