// Package lockblock forbids holding a mutex across a blocking call in
// the serving stack (internal/serve, internal/lifecycle,
// internal/store). A shard, connection, or lifecycle step that parks on
// a channel, a WaitGroup, or an observer emission while holding a lock
// serializes the whole data plane behind one waiter — the exact class
// of stall the serving layer's lock discipline exists to prevent.
//
// Blocking constructs: channel send/receive, select without a default
// clause, range over a channel, sync.WaitGroup.Wait, sync.Cond.Wait,
// time.Sleep, Observer.Event / obs.Emit emissions, and any call whose
// callee accepts a context.Context (blocking by convention — it was
// given a cancellation handle for a reason).
//
// Lock regions are paired lexically: a sync.Mutex/RWMutex Lock/RLock
// opens a region that the nearest subsequent Unlock/RUnlock of the same
// receiver closes; `defer mu.Unlock()` holds the lock to the end of the
// function. Early-unlock branches therefore produce false negatives,
// never false positives. Deliberate hold-across-block designs (the
// lifecycle control plane serializes retrains under its mutex by
// contract) carry a //contender:allow lockblock waiver with the reason.
package lockblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"contender/internal/analysis"
)

// ScopedPackages are the repo-relative packages the analyzer applies to.
var ScopedPackages = []string{
	"internal/serve",
	"internal/lifecycle",
	"internal/store",
}

// Analyzer is the lockblock check.
var Analyzer = &analysis.Analyzer{
	Name: "lockblock",
	Doc:  "no mutex held across a blocking call or observer emission in serve/lifecycle/store",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	scoped := false
	for _, p := range ScopedPackages {
		if analysis.PathMatches(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// event is one lexically ordered lock/unlock/block occurrence.
type event struct {
	pos  token.Pos
	kind int    // eLock, eUnlock, eBlock
	key  string // receiver expression for lock/unlock pairing
	read bool   // RLock/RUnlock
	desc string // human description for block events
	def  bool   // unlock inside a defer (holds to function end)
}

const (
	eLock = iota
	eUnlock
	eBlock
)

// checkFunc analyzes one function body (function literals are analyzed
// separately — a closure's body runs on its own goroutine's schedule,
// not inside the enclosing lock region, and when it does run inline the
// per-literal analysis still covers it).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Body)
			return false
		case *ast.DeferStmt:
			if kind, key, read, ok := lockOp(pass, n.Call); ok && kind == eUnlock {
				events = append(events, event{pos: n.Pos(), kind: eUnlock, key: key, read: read, def: true})
			}
			// Other deferred calls run at return, outside every region
			// closed by then; don't scan them as in-region blocks.
			return false
		case *ast.SendStmt:
			events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "channel receive"})
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "select"})
			}
			// Case bodies still execute in-region; comm ops of a
			// defaulted select are non-blocking, so walk only bodies.
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					events = append(events, event{pos: n.Pos(), kind: eBlock, desc: "range over channel"})
				}
			}
		case *ast.CallExpr:
			if kind, key, read, ok := lockOp(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: kind, key: key, read: read})
				return true
			}
			if desc, ok := blockingCall(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: eBlock, desc: desc})
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	// Events arrive in traversal order, which is lexical order for a
	// single body. Pair each lock with the nearest matching unlock.
	for i, ev := range events {
		if ev.kind != eLock {
			continue
		}
		end := body.End()
		for _, later := range events[i+1:] {
			if later.kind == eUnlock && later.key == ev.key && later.read == ev.read && !later.def {
				end = later.pos
				break
			}
		}
		for _, later := range events[i+1:] {
			if later.pos >= end {
				break
			}
			if later.kind == eBlock {
				lockName := ev.key + lockSuffix(ev.read)
				pass.Reportf(later.pos, "%s is held across this %s; unlock before blocking, or waive with //contender:allow lockblock -- <reason> if the hold is by design", lockName, later.desc)
			}
		}
	}
}

func lockSuffix(read bool) string {
	if read {
		return ".RLock"
	}
	return ".Lock"
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockOp classifies a call as a sync mutex lock or unlock, returning
// the pairing key (the receiver expression, printed).
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (kind int, key string, read, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, "", false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, "", false, false
	}
	switch fn.Name() {
	case "Lock":
		kind, read = eLock, false
	case "RLock":
		kind, read = eLock, true
	case "Unlock":
		kind, read = eUnlock, false
	case "RUnlock":
		kind, read = eUnlock, true
	default:
		return 0, "", false, false
	}
	// Cond.Wait is a block, not a lock op; Cond has no Lock method, so
	// reaching here means Mutex or RWMutex.
	return kind, types.ExprString(sel.X), read, true
}

// blockingCall classifies a call as blocking: WaitGroup/Cond Wait,
// time.Sleep, observer emissions, and context-accepting callees.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "sync" && fn.Name() == "Wait":
			return "sync." + recvTypeName(fn) + ".Wait", true
		case pkg.Path() == "time" && fn.Name() == "Sleep":
			return "time.Sleep", true
		case fn.Name() == "Emit" && analysis.PathMatches(pkg.Path(), "internal/obs"):
			return "observer emission (obs.Emit)", true
		}
	}
	if fn.Name() == "Event" && recvTypeName(fn) == "Observer" {
		return "observer emission (Observer.Event)", true
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if named, ok := sig.Params().At(i).Type().(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context" {
				return "context-accepting call " + fn.Name(), true
			}
		}
	}
	return "", false
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
