package goroleak_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer,
		"a/internal/serve", // scoped: tied and untied spawns
		"a/other",          // out of scope: no diagnostics
	)
}
