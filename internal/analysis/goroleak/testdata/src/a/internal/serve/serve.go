package serve

import (
	"context"
	"net/http"
	"sync"
)

type server struct {
	wg    sync.WaitGroup
	stop  chan struct{}
	drain chan struct{}
	work  chan int
}

// Tied: the body Dones a WaitGroup the spawner can Wait on.
func (s *server) goodWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.work
	}()
}

// Tied: named method resolved in-package, exits on a chan struct{}.
func (s *server) goodStopChannel() {
	go s.loop()
}

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case v := <-s.work:
			_ = v
		}
	}
}

// Tied: context-bound loop.
func (s *server) goodCtxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// Tied: the body signals completion by closing a done-channel.
func (s *server) goodDoneClose() chan struct{} {
	done := make(chan struct{})
	go func() {
		s.flush()
		close(done)
	}()
	return done
}

func (s *server) flush() {}

func (s *server) badUntied() {
	go func() { // want `goroutine is not tied to a WaitGroup, done-channel, or ctx-bound loop`
		for v := range s.work {
			_ = v
		}
	}()
}

func (s *server) badUntiedMethod() {
	go s.flushLoop() // want `goroutine is not tied to a WaitGroup, done-channel, or ctx-bound loop`
}

func (s *server) flushLoop() {
	for v := range s.work {
		_ = v
	}
}

func (s *server) badExternal(srv *http.Server) {
	go srv.ListenAndServe() // want `goroutine body cannot be resolved in this package`
}

// The writer signals completion on a buffered error channel the reader
// always receives; conn teardown unblocks a stuck write.
//
//contender:allow goroleak -- completion is signalled on a buffered result channel the spawner receives before returning
func (s *server) waived() error {
	errc := make(chan error, 1)
	go func() {
		errc <- s.write()
	}()
	return <-errc
}

func (s *server) write() error { return nil }
