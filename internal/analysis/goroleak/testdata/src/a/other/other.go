// Package other is out of goroleak's scope: no diagnostics.
package other

func spawnUntied(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}
