// Package goroleak requires every goroutine spawned in internal/serve
// and internal/lifecycle to be tied to a shutdown mechanism, so that
// Shutdown can prove quiescence. An untied goroutine survives Shutdown
// and races the teardown of the very state it touches — the serving
// layer's drain ordering only works because every spawn is accounted
// for.
//
// A spawned body is tied when it contains at least one of:
//
//   - a sync.WaitGroup.Done call (the spawner Waits on the group);
//   - a close(ch) call (the body signals a done-channel);
//   - a receive from ctx.Done() (context-bound loop);
//   - a receive from, or range over, a chan struct{} (the stop/done
//     channel idiom).
//
// `go` statements whose callee cannot be resolved to a body in the same
// package (external functions, method values from other packages) are
// flagged too: the analyzer cannot prove their lifecycle, so the spawn
// either moves behind a tied wrapper or carries a reasoned waiver.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"contender/internal/analysis"
)

// ScopedPackages are the repo-relative packages the analyzer applies to.
var ScopedPackages = []string{
	"internal/serve",
	"internal/lifecycle",
}

// Analyzer is the goroleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "every go statement in serve/lifecycle ties to a WaitGroup, done-channel, or ctx-bound loop",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	scoped := false
	for _, p := range ScopedPackages {
		if analysis.PathMatches(pass.Pkg.Path(), p) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	// Map every same-package function object to its declared body so
	// `go s.drainLoop()` resolves through the method's declaration.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = fd.Body
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, resolved := spawnedBody(pass, gs, bodies)
			if !resolved {
				pass.Reportf(gs.Pos(), "goroutine body cannot be resolved in this package, so its lifecycle cannot be proven; spawn through a tied local wrapper or waive with //contender:allow goroleak -- <reason>")
				return true
			}
			if !tied(pass, body) {
				pass.Reportf(gs.Pos(), "goroutine is not tied to a WaitGroup, done-channel, or ctx-bound loop; Shutdown cannot prove quiescence — add wg.Done/close(done)/<-ctx.Done() or waive with //contender:allow goroleak -- <reason>")
			}
			return true
		})
	}
	return nil
}

// spawnedBody resolves the body the go statement will run.
func spawnedBody(pass *analysis.Pass, gs *ast.GoStmt, bodies map[*types.Func]*ast.BlockStmt) (*ast.BlockStmt, bool) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if b, ok := bodies[fn]; ok {
				return b, true
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if b, ok := bodies[fn]; ok {
				return b, true
			}
		}
	}
	return nil, false
}

// tied reports whether the body contains a recognized shutdown tie.
func tied(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) || isClose(pass, n) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && (isCtxDone(pass, n.X) || isStructChan(pass, n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if isStructChan(pass, n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done"
}

func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isCtxDone matches ctx.Done() receives.
func isCtxDone(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Done"
}

// isStructChan matches expressions of type <-chan struct{} / chan
// struct{} — the stop/done channel idiom.
func isStructChan(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
