package obsemit_test

import (
	"testing"

	"contender/internal/analysis/analysistest"
	"contender/internal/analysis/obsemit"
)

func TestObsemit(t *testing.T) {
	analysistest.Run(t, "testdata", obsemit.Analyzer,
		"a/internal/obs", // the facade itself: raw Event calls are legal here
		"a/use",          // consumers: raw calls flagged, Emit wrapper ok
	)
}
