// Package obsemit enforces the two boundaries between the
// observability layer and the deterministic pipeline:
//
//  1. Outside internal/obs, instrumentation must deliver events through
//     the panic-isolating obs.Emit wrapper (or a facade that wraps it),
//     never by invoking Observer.Event directly — a user-supplied
//     observer that panics must not be able to corrupt training or
//     serving.
//  2. Checkpoint/campaign fingerprint functions must not consume
//     observer state: fingerprints decide checkpoint reuse, and
//     observer identity (pointers, counters) varies run to run even
//     when the campaign is identical.
package obsemit

import (
	"go/ast"
	"go/types"
	"strings"

	"contender/internal/analysis"
)

// ObsPackage is the repo-relative import path of the observability
// package; matching is by suffix so golden testdata can model it.
const ObsPackage = "internal/obs"

// Analyzer is the obsemit check.
var Analyzer = &analysis.Analyzer{
	Name: "obsemit",
	Doc:  "require Observer.Event delivery via the panic-isolating obs.Emit wrapper; keep observer state out of checkpoint fingerprints",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inObs := analysis.PathMatches(pass.Pkg.Path(), ObsPackage)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isFingerprintFunc(fd) {
				checkFingerprint(pass, fd)
			}
			if !inObs {
				checkRawEmit(pass, fd)
			}
		}
	}
	return nil
}

// isObsType reports whether t is declared in (or derived from a type
// declared in) the observability package.
func isObsType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer:
		return isObsType(t.Elem())
	case *types.Slice:
		return isObsType(t.Elem())
	case *types.Named:
		pkg := t.Obj().Pkg()
		return pkg != nil && analysis.PathMatches(pkg.Path(), ObsPackage)
	case *types.Alias:
		return isObsType(types.Unalias(t))
	}
	return false
}

// isObserverInterface reports whether t is the obs Observer interface
// (or an alias of it).
func isObserverInterface(t types.Type) bool {
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && analysis.PathMatches(pkg.Path(), ObsPackage) && named.Obj().Name() == "Observer"
}

// checkRawEmit flags x.Event(ev) where x's static type is the obs
// Observer interface: the call must go through obs.Emit so a panicking
// observer is isolated at the instrumentation boundary.
func checkRawEmit(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Event" {
			return true
		}
		recv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || recv.Type == nil {
			return true
		}
		if isObserverInterface(recv.Type) {
			pass.Reportf(call.Pos(), "raw Observer.Event call bypasses panic isolation; deliver through obs.Emit (or the EmitEvent facade)")
		}
		return true
	})
}

// isFingerprintFunc matches the checkpoint fingerprint helpers
// (trainFingerprint, envFingerprint, …) by name.
func isFingerprintFunc(fd *ast.FuncDecl) bool {
	return strings.Contains(strings.ToLower(fd.Name.Name), "fingerprint")
}

// checkFingerprint flags any expression of an obs-declared type — an
// Observer, a Metrics registry, a Recording log — used inside a
// fingerprint function, and any call argument whose struct type
// carries an obs-typed field (formatting such a struct wholesale, e.g.
// %+v of an Options value, would hash observer identity).
func checkFingerprint(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || obj.Type() == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			if isObsType(obj.Type()) {
				pass.Reportf(n.Pos(), "observer state (%s) must not reach the checkpoint fingerprint: fingerprints gate resume and observers vary run to run", obj.Type())
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if structCarriesObs(tv.Type) {
					pass.Reportf(arg.Pos(), "value of type %s carries observer state; fingerprint its deterministic fields individually", tv.Type)
				}
			}
		}
		return true
	})
}

// structCarriesObs reports whether t is (or points to) a struct with a
// field of an obs-declared type.
func structCarriesObs(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isObsType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
