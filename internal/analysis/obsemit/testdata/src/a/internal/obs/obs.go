// Package obs is golden testdata modeling the observability package
// (its import path ends in internal/obs): raw Event delivery is legal
// only here, inside the panic-isolating wrapper.
package obs

// Event is the value-type instrumentation record.
type Event struct{ Span string }

// Observer receives instrumentation events.
type Observer interface{ Event(Event) }

// Emit delivers ev to o, tolerating nil and panicking observers.
func Emit(o Observer, ev Event) {
	if o == nil {
		return
	}
	defer func() { _ = recover() }()
	o.Event(ev)
}

// Multi fans out to several observers.
func Multi(observers []Observer, ev Event) {
	for _, o := range observers {
		o.Event(ev)
	}
}
