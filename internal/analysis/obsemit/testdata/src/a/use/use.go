// Package use is golden testdata for instrumentation call sites
// outside the observability package.
package use

import (
	"fmt"
	"hash/fnv"

	"a/internal/obs"
)

// Alias mirrors the facade's `type Observer = obs.Observer`.
type Alias = obs.Observer

func Raw(o obs.Observer, ev obs.Event) {
	o.Event(ev) // want `raw Observer.Event call bypasses panic isolation`
}

func RawAlias(o Alias, ev obs.Event) {
	o.Event(ev) // want `raw Observer.Event call bypasses panic isolation`
}

func Wrapped(o obs.Observer, ev obs.Event) {
	obs.Emit(o, ev)
}

func Allowed(o obs.Observer, ev obs.Event) {
	o.Event(ev) //contender:allow obsemit -- golden test: this call site proves the escape hatch
}

// recorder's Event method shares the name but not the interface; other
// Event methods must not be flagged.
type recorder struct{ n int }

func (r *recorder) Event(ev obs.Event) { r.n++ }

func Concrete(r *recorder, ev obs.Event) {
	r.Event(ev)
}

// Options models a campaign config that carries an observer.
type Options struct {
	Seed     int64
	MPLs     []int
	Observer obs.Observer
}

func digest(vs ...any) string { return fmt.Sprint(vs...) }

func campaignFingerprint(o Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d|mpls=%v", o.Seed, o.MPLs)
	_ = digest(o) // want `value of type a/use.Options carries observer state`
	_ = o.Observer // want `observer state \(a/internal/obs.Observer\) must not reach the checkpoint fingerprint`
	return digest(h.Sum64())
}

// report is not a fingerprint function: observer state may flow here.
func report(o Options) string {
	return digest(o.Observer)
}
