// Package obs is Contender's observability layer: a span-style event
// model shared by training, serving, scheduling, and the simulator, an
// allocation-conscious metrics registry with expvar and Prometheus-text
// exposition, and profiling hooks (pprof goroutine labels, a
// slow-operation log).
//
// The design is pull-based and dependency-free: instrumented code emits
// small value-type Events to a single Observer interface, and concrete
// observers (Metrics, Recording, SlowLog, or any user implementation)
// interpret them. A nil Observer is always legal and is checked before
// any clock read or allocation, so uninstrumented hot paths — notably
// Predictor.PredictKnown — stay at 0 allocs/op.
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind distinguishes the three event shapes.
type Kind uint8

const (
	// SpanBegin marks the start of a timed operation. Not every span
	// emits a begin: cheap serving calls emit only a SpanEnd carrying
	// the measured duration.
	SpanBegin Kind = iota
	// SpanEnd marks the completion of a timed operation; Dur holds the
	// wall-clock (or, for simulator spans, virtual) duration and Err is
	// non-empty if the operation failed.
	SpanEnd
	// Point is an instantaneous occurrence — a retry, a quarantine, a
	// checkpoint write — counted but not timed.
	Point
)

// String returns the canonical lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case SpanBegin:
		return "begin"
	case SpanEnd:
		return "end"
	case Point:
		return "point"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Span taxonomy. Every instrumented operation uses one of these names,
// so metric label values and trace streams are stable across layers.
const (
	// Training campaign phases.
	SpanTrainCampaign = "train.campaign" // whole collection+fit run
	SpanTrainScan     = "train.scan"     // fact-table scan calibration
	SpanTrainProfile  = "train.profile"  // full template profile (isolated+spoiler)
	SpanTrainIsolated = "train.isolated" // one isolated latency run
	SpanTrainSpoiler  = "train.spoiler"  // one spoiler run at an MPL
	SpanTrainMix      = "train.mix"      // one LHS mix sample
	SpanTrainFit      = "train.fit"      // QS model fit over collected samples

	// Resilience point events.
	PointTrainRetry      = "train.retry"      // a retryable failure about to back off
	PointTrainQuarantine = "train.quarantine" // a site quarantined after exhausting retries
	PointTrainCheckpoint = "train.checkpoint" // a measurement flushed to the checkpoint
	PointTrainResume     = "train.resume"     // a measurement replayed from a checkpoint

	// Serving calls. serve.predict_explain is PredictKnown with the
	// per-neighbor blame decomposition attached; it carries the same
	// fields as serve.predict_known.
	SpanServePredictKnown   = "serve.predict_known"
	SpanServePredictBatch   = "serve.predict_batch"
	SpanServePredictNew     = "serve.predict_new"
	SpanServePredictExplain = "serve.predict_explain"
	SpanServeCQI            = "serve.cqi"

	// Network serving layer (internal/serve). serve.request spans one
	// wire request on either protocol, with Key carrying the operation
	// ("predict", "predict_batch", "feedback") and Value the number of
	// predictions it produced. The point events mark the control
	// decisions around the data path: serve.overload fires when
	// admission control rejects a request (token bucket empty or the
	// in-flight cap reached), serve.conn per accepted binary connection,
	// and serve.drain per feedback-drain tick with Value carrying the
	// number of samples folded.
	SpanServeRequest   = "serve.request"
	PointServeOverload = "serve.overload"
	PointServeConn     = "serve.conn"
	PointServeDrain    = "serve.drain"

	// Scheduler.
	SpanSchedPolicy   = "sched.policy"   // one policy Order() evaluation
	SpanSchedForecast = "sched.forecast" // one queue-latency forecast

	// Simulator (bridged from sim.Tracer; durations are virtual time).
	SpanSimQuery  = "sim.query"
	PointSimStage = "sim.stage"

	// Prediction-quality feedback (Predictor.Feedback). quality.feedback
	// fires per observed latency with Value carrying the signed relative
	// error; quality.drift fires when a template's drift state changes,
	// with Key carrying the transition (e.g. "healthy>degraded") and
	// Value the detector statistic at the moment it fired.
	PointQualityFeedback = "quality.feedback"
	PointQualityDrift    = "quality.drift"

	// Knowledge lifecycle (internal/lifecycle). lifecycle.retrain spans
	// a re-collection + refit; lifecycle.canary spans the holdout
	// validation replay of a candidate, with Value carrying its holdout
	// MRE. The point events mark control-loop decisions: lifecycle.stale
	// fires per template entering targeted re-collection,
	// lifecycle.promote when a candidate passes canary and hot-swaps in,
	// lifecycle.rollback when it fails and the old model keeps serving,
	// and lifecycle.degraded when a retrain attempt errors out (serving
	// continues on the current model either way).
	SpanLifecycleRetrain   = "lifecycle.retrain"
	SpanLifecycleCanary    = "lifecycle.canary"
	PointLifecycleStale    = "lifecycle.stale"
	PointLifecyclePromote  = "lifecycle.promote"
	PointLifecycleRollback = "lifecycle.rollback"
	PointLifecycleDegraded = "lifecycle.degraded"

	// Versioned knowledge store (internal/store). store.publish fires
	// per published version with Key carrying the fingerprint;
	// store.fallback when recovery demoted a corrupt current version.
	PointStorePublish  = "store.publish"
	PointStoreFallback = "store.fallback"
)

// Event is the single record type flowing through an Observer. It is
// passed by value and contains no pointers besides strings, so emitting
// one performs no heap allocation. Unused fields are left zero.
type Event struct {
	Kind     Kind
	Span     string        // taxonomy name (Span*/Point* constants)
	Key      string        // task site, e.g. "spoiler/5/3" or "mix/4/2"
	Template int           // primary template ID, when one applies
	MPL      int           // multiprogramming level, when one applies
	Stream   int           // simulator stream, for sim.* events
	Attempt  int           // attempts consumed (SpanEnd) or retry ordinal (Point)
	Value    float64       // span-specific payload: latency, CQI, batch size…
	Dur      time.Duration // SpanEnd only; wall-clock unless noted virtual
	Err      string        // non-empty when the operation failed
}

// Observer receives instrumentation events. Implementations must be
// safe for concurrent use: the parallel collection pool emits from
// multiple goroutines. Implementations should be fast — events fire on
// hot-ish paths — and must not retain the Event beyond the call unless
// they copy it (it is a value, so plain assignment copies).
type Observer interface {
	Event(Event)
}

// Emit delivers ev to o, tolerating both a nil observer and a panicking
// one. All instrumented code funnels through Emit (or performs the same
// nil check first), which is what makes a user-supplied Observer unable
// to corrupt training or serving results: a panic inside Event() is
// swallowed here, at the instrumentation boundary.
func Emit(o Observer, ev Event) {
	if o == nil {
		return
	}
	defer func() { _ = recover() }()
	o.Event(ev)
}

// multi fans events out to several observers, isolating each from the
// others' panics.
type multi []Observer

func (m multi) Event(ev Event) {
	for _, o := range m {
		Emit(o, ev)
	}
}

// Multi combines observers into one. Nil entries are dropped; Multi
// returns nil when nothing remains and the sole observer when only one
// does, so the nil fast path and single-observer dispatch stay cheap.
func Multi(observers ...Observer) Observer {
	kept := make(multi, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// FindMetrics returns the first *Metrics reachable from o (directly or
// inside a Multi), or nil. The facade uses it to answer
// MetricsSnapshot() regardless of how the user composed observers.
func FindMetrics(o Observer) *Metrics {
	switch v := o.(type) {
	case *Metrics:
		return v
	case multi:
		for _, sub := range v {
			if m := FindMetrics(sub); m != nil {
				return m
			}
		}
	}
	return nil
}

// Recording is an Observer that appends every event to an in-memory
// log. It is the backbone of the golden determinism tests and a handy
// debugging tool; it is safe for concurrent use.
type Recording struct {
	mu     sync.Mutex
	events []Event
}

// NewRecording returns an empty recording observer.
func NewRecording() *Recording { return &Recording{} }

// Event appends ev to the log.
func (r *Recording) Event(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recording) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recording) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recording) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// CanonicalLog renders the recorded events one per line in a
// byte-stable format: wall-clock durations are excluded (they vary run
// to run) while every deterministic field — spans, keys, attempts,
// simulator virtual times, measured values — is included. Two
// same-seed single-worker campaigns therefore produce byte-identical
// canonical logs.
func (r *Recording) CanonicalLog() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		writeCanonical(&b, ev)
		b.WriteByte('\n')
	}
	return b.String()
}

// CountSpan returns how many recorded events carry the given span name.
func (r *Recording) CountSpan(span string) int {
	n := 0
	r.mu.Lock()
	for _, ev := range r.events {
		if ev.Span == span {
			n++
		}
	}
	r.mu.Unlock()
	return n
}

func writeCanonical(b *strings.Builder, ev Event) {
	b.WriteString(ev.Kind.String())
	b.WriteByte(' ')
	b.WriteString(ev.Span)
	if ev.Key != "" {
		b.WriteString(" key=")
		b.WriteString(ev.Key)
	}
	if ev.Template != 0 {
		b.WriteString(" template=")
		b.WriteString(strconv.Itoa(ev.Template))
	}
	if ev.MPL != 0 {
		b.WriteString(" mpl=")
		b.WriteString(strconv.Itoa(ev.MPL))
	}
	if ev.Stream != 0 {
		b.WriteString(" stream=")
		b.WriteString(strconv.Itoa(ev.Stream))
	}
	if ev.Attempt != 0 {
		b.WriteString(" attempt=")
		b.WriteString(strconv.Itoa(ev.Attempt))
	}
	if ev.Value != 0 {
		b.WriteString(" value=")
		b.WriteString(strconv.FormatFloat(ev.Value, 'g', -1, 64))
	}
	if ev.Err != "" {
		b.WriteString(" err=")
		b.WriteString(ev.Err)
	}
}

// ErrLabel flattens an error into the Event.Err field: empty for nil.
func ErrLabel(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// SortEvents orders events by (span, key, kind, attempt) — a canonical
// order for comparing multi-worker runs, whose arrival order is
// nondeterministic even though the event set is not.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Attempt < b.Attempt
	})
}
