package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestBlameObserveAndReport(t *testing.T) {
	b := NewBlame(BlameConfig{Alpha: 0.5})
	// Primary 1 runs twice beside {2, 3}, once beside {2}.
	b.Observe(1, []int{2, 3}, []float64{1.0, 0.5})
	b.Observe(1, []int{2, 3}, []float64{2.0, 0.5})
	b.Observe(1, []int{2}, []float64{4.0})
	// Primary 3 loses to neighbor 2 once.
	b.Observe(3, []int{2}, []float64{10})

	rep := b.Report()
	if rep.Samples != 4 {
		t.Errorf("Samples = %d, want 4", rep.Samples)
	}
	wantPairs := []BlamePair{
		{Primary: 1, Neighbor: 2, Count: 3, Seconds: 7, EWMASeconds: 0.5*4 + 0.5*(0.5*2+0.5*1), LastSeconds: 4},
		{Primary: 1, Neighbor: 3, Count: 2, Seconds: 1, EWMASeconds: 0.5, LastSeconds: 0.5},
		{Primary: 3, Neighbor: 2, Count: 1, Seconds: 10, EWMASeconds: 10, LastSeconds: 10},
	}
	if !reflect.DeepEqual(rep.Pairs, wantPairs) {
		t.Errorf("Pairs = %+v, want %+v", rep.Pairs, wantPairs)
	}
	// Neighbor 2 steals 17s total; neighbor 3 steals 1s.
	wantAgg := []BlameRank{
		{Template: 2, Seconds: 17, Count: 4},
		{Template: 3, Seconds: 1, Count: 2},
	}
	if !reflect.DeepEqual(rep.Aggressors, wantAgg) {
		t.Errorf("Aggressors = %+v, want %+v", rep.Aggressors, wantAgg)
	}
	// Primary 3 loses 10s; primary 1 loses 8s.
	wantVic := []BlameRank{
		{Template: 3, Seconds: 10, Count: 1},
		{Template: 1, Seconds: 8, Count: 5},
	}
	if !reflect.DeepEqual(rep.Victims, wantVic) {
		t.Errorf("Victims = %+v, want %+v", rep.Victims, wantVic)
	}
}

func TestBlameTopKAndTies(t *testing.T) {
	b := NewBlame(BlameConfig{TopK: 2})
	// Three aggressors with seconds 5, 5, 1 — the tie breaks by ID.
	b.Observe(1, []int{20, 10, 30}, []float64{5, 5, 1})
	rep := b.Report()
	want := []BlameRank{
		{Template: 10, Seconds: 5, Count: 1},
		{Template: 20, Seconds: 5, Count: 1},
	}
	if !reflect.DeepEqual(rep.Aggressors, want) {
		t.Errorf("Aggressors = %+v, want %+v", rep.Aggressors, want)
	}
	if len(rep.Victims) != 1 || rep.Victims[0] != (BlameRank{Template: 1, Seconds: 11, Count: 3}) {
		t.Errorf("Victims = %+v", rep.Victims)
	}
}

func TestBlameDroppedSamples(t *testing.T) {
	b := NewBlame(BlameConfig{})
	b.Observe(1, []int{2, 3}, []float64{1})             // length mismatch: dropped whole
	b.Observe(1, nil, nil)                              // empty: dropped
	b.Observe(1, []int{2, 3}, []float64{math.NaN(), 1}) // NaN term dropped, finite kept
	b.Observe(1, []int{4}, []float64{math.Inf(1)})      // Inf term dropped
	rep := b.Report()
	if rep.Samples != 2 {
		t.Errorf("Samples = %d, want 2 (mismatch and empty are not samples)", rep.Samples)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Primary != 1 || rep.Pairs[0].Neighbor != 3 {
		t.Fatalf("Pairs = %+v, want only (1,3)", rep.Pairs)
	}
}

func TestBlameResetTemplate(t *testing.T) {
	b := NewBlame(BlameConfig{})
	b.Observe(1, []int{2}, []float64{3})
	b.Observe(2, []int{1}, []float64{5})
	b.ResetTemplate(1)
	rep := b.Report()
	// The (1,2) cell was reset and re-observed never: it drops out of the
	// matrix. The (2,1) cell — template 1 as a neighbor — is untouched.
	if len(rep.Pairs) != 1 {
		t.Fatalf("Pairs = %+v, want only (2,1)", rep.Pairs)
	}
	if p := rep.Pairs[0]; p.Primary != 2 || p.Neighbor != 1 || p.Seconds != 5 {
		t.Errorf("surviving pair = %+v", p)
	}
	// Monotone observation counters survive the reset.
	snap := b.Registry().Snapshot()
	if got := snap.Counter(`contender_blame_observations_total{pair="1/2"}`); got != 1 {
		t.Errorf("observations counter after reset = %d, want 1", got)
	}
	if got := snap.Gauge(`contender_blame_seconds{pair="1/2"}`); got != 0 {
		t.Errorf("seconds gauge after reset = %g, want 0", got)
	}
	// Re-observing after the reset starts clean (EWMA reseeds).
	b.Observe(1, []int{2}, []float64{7})
	rep = b.Report()
	var cell *BlamePair
	for i := range rep.Pairs {
		if rep.Pairs[i].Primary == 1 && rep.Pairs[i].Neighbor == 2 {
			cell = &rep.Pairs[i]
		}
	}
	if cell == nil || cell.Count != 1 || cell.Seconds != 7 || cell.EWMASeconds != 7 {
		t.Errorf("re-observed cell = %+v, want count 1 seconds 7 ewma 7", cell)
	}
	// Unknown template: no-op.
	b.ResetTemplate(999)
}

func TestBlameNilSafety(t *testing.T) {
	var b *Blame
	b.Observe(1, []int{2}, []float64{1})
	b.ResetTemplate(1)
	if n := b.Samples(); n != 0 {
		t.Errorf("nil Samples = %d", n)
	}
	rep := b.Report()
	if rep.Pairs == nil || rep.Aggressors == nil || rep.Victims == nil {
		t.Error("nil Blame report has nil slices; want empty non-nil for stable JSON")
	}
}

func TestBlameMetricsFamilies(t *testing.T) {
	b := NewBlame(BlameConfig{})
	b.Observe(4, []int{7}, []float64{2.5})
	b.Observe(4, []int{7}, []float64{1.5})
	var sb strings.Builder
	if err := b.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`contender_blame_observations_total{pair="4/7"} 2`,
		`contender_blame_seconds{pair="4/7"} 4`,
		`contender_blame_samples_total 2`,
		`contender_blame_pairs 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestBlameObserveDoesNotAllocate: once a pair's tracker exists, folding
// an explained prediction into the matrix is allocation-free — the
// serving layer calls it per explain-enabled request.
func TestBlameObserveDoesNotAllocate(t *testing.T) {
	b := NewBlame(BlameConfig{})
	neighbors := []int{2, 3}
	seconds := []float64{1.5, 0.5}
	b.Observe(1, neighbors, seconds) // warm the trackers
	if allocs := testing.AllocsPerRun(100, func() {
		b.Observe(1, neighbors, seconds)
	}); allocs != 0 {
		t.Errorf("Observe: %g allocs/op, want 0", allocs)
	}
}

// TestBlameDeterministicReport runs the same stream twice and requires
// byte-identical reports — the map-backed rankings must sort before
// emitting (nodeterminism discipline).
func TestBlameDeterministicReport(t *testing.T) {
	stream := func() *Blame {
		b := NewBlame(BlameConfig{})
		for i := 0; i < 50; i++ {
			p := i % 7
			b.Observe(p, []int{(p + 1) % 7, (p + 3) % 7}, []float64{float64(i), float64(i) / 2})
		}
		return b
	}
	a, c := stream().Report(), stream().Report()
	if !reflect.DeepEqual(a, c) {
		t.Errorf("same stream produced different reports:\n%+v\n%+v", a, c)
	}
}
