package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Contention blame telemetry: the serving layer decomposes each
// explained prediction into per-neighbor seconds (core.PredictExplain),
// and this file aggregates that stream into a pairwise blame matrix —
// for every (primary, concurrent) template pair, how many predicted
// seconds of the primary's latency the neighbor owns. On top of the
// matrix sit two rankings: aggressors (templates that steal the most
// seconds from others) and victims (templates that lose the most).
//
// The style matches Quality: per-pair trackers with cached metric
// handles so the warm Observe path allocates nothing, deterministic
// aggregation (no clocks, no randomness — the same decomposition stream
// always produces the same matrix), and a nil-safe JSON report mounted
// at /blame beside /quality.

// BlameConfig tunes the aggregator. The zero value selects the defaults
// noted on each field; everything is deterministic.
type BlameConfig struct {
	// Alpha is the EWMA smoothing factor for per-pair seconds: each new
	// sample s updates ewma ← Alpha·s + (1−Alpha)·ewma (default 0.2,
	// seeded by the first sample).
	Alpha float64
	// TopK bounds the aggressor and victim rankings in reports
	// (default 5).
	TopK int
}

func (c BlameConfig) withDefaults() BlameConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	return c
}

// blameKey identifies one (primary, neighbor) cell of the matrix.
type blameKey struct{ primary, neighbor int }

// pairBlame is one matrix cell's tracker. The metric handles and label
// string are allocated once, on first observation, so the warm path is
// allocation-free.
type pairBlame struct {
	mu sync.Mutex

	primary  int
	neighbor int
	count    int64
	seconds  float64 // cumulative predicted seconds stolen
	ewma     float64
	seeded   bool
	last     float64

	obsC  *Counter
	secG  *Gauge
	ewmaG *Gauge
}

// Blame aggregates per-neighbor interaction seconds into a pairwise
// blame matrix. It owns its own metric Registry with the blame.*
// families:
//
//	contender_blame_observations_total{pair=...}  decomposed samples per pair
//	contender_blame_seconds{pair=...}             cumulative seconds stolen
//	contender_blame_ewma_seconds{pair=...}        EWMA of per-sample seconds
//	contender_blame_samples_total                 explained predictions folded
//	contender_blame_pairs                         tracked matrix cells
//
// The pair label renders as "primary/neighbor". All methods are safe
// for concurrent use; Observe is allocation-free once a pair's tracker
// exists.
type Blame struct {
	cfg BlameConfig
	reg *Registry

	observations *CounterVec
	secondsV     *GaugeVec
	ewmaV        *GaugeVec
	samples      *Counter
	pairsG       *Gauge

	mu       sync.RWMutex
	trackers map[blameKey]*pairBlame
}

// NewBlame returns a blame aggregator with the given configuration
// (zero value: defaults).
func NewBlame(cfg BlameConfig) *Blame {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	return &Blame{
		cfg:          cfg,
		reg:          reg,
		observations: reg.CounterVec("contender_blame_observations_total", "Decomposed prediction samples by primary/neighbor pair.", "pair"),
		secondsV:     reg.GaugeVec("contender_blame_seconds", "Cumulative predicted seconds stolen from the primary by the neighbor.", "pair"),
		ewmaV:        reg.GaugeVec("contender_blame_ewma_seconds", "EWMA of per-sample predicted seconds stolen, by pair.", "pair"),
		samples:      reg.Counter("contender_blame_samples_total", "Explained predictions folded into the blame matrix."),
		pairsG:       reg.Gauge("contender_blame_pairs", "Tracked (primary, neighbor) blame matrix cells."),
		trackers:     map[blameKey]*pairBlame{},
	}
}

// Config returns the effective configuration (defaults filled).
func (b *Blame) Config() BlameConfig { return b.cfg }

// Registry exposes the blame metric families for exposition (the CLI
// metrics endpoint appends them to /metrics).
func (b *Blame) Registry() *Registry { return b.reg }

func (b *Blame) tracker(primary, neighbor int) *pairBlame {
	k := blameKey{primary, neighbor}
	b.mu.RLock()
	t, ok := b.trackers[k]
	b.mu.RUnlock()
	if ok {
		return t
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.trackers[k]; ok {
		return t
	}
	label := strconv.Itoa(primary) + "/" + strconv.Itoa(neighbor)
	t = &pairBlame{
		primary:  primary,
		neighbor: neighbor,
		obsC:     b.observations.With(label),
		secG:     b.secondsV.With(label),
		ewmaG:    b.ewmaV.With(label),
	}
	b.trackers[k] = t
	b.pairsG.Set(float64(len(b.trackers)))
	return t
}

// Observe folds one explained prediction into the matrix: seconds[i] is
// the predicted time neighbors[i] steals from the primary (an
// ExplainBuffer's Neighbors/Seconds pair). Mismatched lengths and
// non-finite samples are dropped; a nil Blame ignores the call. The
// warm path performs no heap allocations.
func (b *Blame) Observe(primary int, neighbors []int, seconds []float64) {
	if b == nil || len(neighbors) == 0 || len(neighbors) != len(seconds) {
		return
	}
	b.samples.Inc()
	for i, nb := range neighbors {
		s := seconds[i]
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		t := b.tracker(primary, nb)
		t.mu.Lock()
		t.count++
		t.seconds += s
		t.last = s
		if t.seeded {
			t.ewma = b.cfg.Alpha*s + (1-b.cfg.Alpha)*t.ewma
		} else {
			t.ewma = s
			t.seeded = true
		}
		t.obsC.Inc()
		t.secG.Set(t.seconds)
		t.ewmaG.Set(t.ewma)
		t.mu.Unlock()
	}
}

// Samples returns the number of explained predictions folded in.
func (b *Blame) Samples() int64 {
	if b == nil {
		return 0
	}
	return b.samples.Value()
}

// ResetTemplate rearms every matrix cell whose primary is the given
// template after its model was replaced: cumulative seconds, counts,
// and the EWMA restart from zero so the new model's decompositions are
// judged on their own, mirroring Quality.ResetTemplate. The monotone
// observation counters are preserved — they are cumulative telemetry,
// not model state. Cells where the template appears only as a neighbor
// are untouched: their seconds were predicted by other primaries'
// models, which did not change.
func (b *Blame) ResetTemplate(template int) {
	if b == nil {
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	for k, t := range b.trackers {
		if k.primary != template {
			continue
		}
		t.mu.Lock()
		t.count = 0
		t.seconds = 0
		t.ewma = 0
		t.seeded = false
		t.last = 0
		t.secG.Set(0)
		t.ewmaG.Set(0)
		t.mu.Unlock()
	}
}

// BlamePair is one (primary, neighbor) cell in a BlameReport.
type BlamePair struct {
	Primary     int     `json:"primary"`
	Neighbor    int     `json:"neighbor"`
	Count       int64   `json:"count"`
	Seconds     float64 `json:"seconds"`
	EWMASeconds float64 `json:"ewma_seconds"`
	LastSeconds float64 `json:"last_seconds"`
}

// BlameRank is one template's row in the aggressor or victim ranking.
// For aggressors, Seconds is the total the template steals from every
// primary it runs beside; for victims, the total the template loses to
// every neighbor.
type BlameRank struct {
	Template int     `json:"template"`
	Seconds  float64 `json:"seconds"`
	Count    int64   `json:"count"`
}

// BlameReport is a point-in-time snapshot of the blame matrix, sorted
// by (primary, neighbor), plus the top-K aggressor and victim rankings
// (descending seconds, ties broken by ascending template ID).
type BlameReport struct {
	Samples    int64       `json:"samples"`
	Pairs      []BlamePair `json:"pairs"`
	Aggressors []BlameRank `json:"aggressors"`
	Victims    []BlameRank `json:"victims"`
}

// Report snapshots the blame matrix. A nil Blame reports an empty
// matrix, so callers can expose the endpoint unconditionally.
func (b *Blame) Report() BlameReport {
	rep := BlameReport{Pairs: []BlamePair{}, Aggressors: []BlameRank{}, Victims: []BlameRank{}}
	if b == nil {
		return rep
	}
	rep.Samples = b.samples.Value()
	b.mu.RLock()
	trackers := make([]*pairBlame, 0, len(b.trackers))
	for _, t := range b.trackers {
		trackers = append(trackers, t)
	}
	b.mu.RUnlock()
	sort.Slice(trackers, func(i, j int) bool {
		if trackers[i].primary != trackers[j].primary {
			return trackers[i].primary < trackers[j].primary
		}
		return trackers[i].neighbor < trackers[j].neighbor
	})
	agg := map[int]*BlameRank{}
	vic := map[int]*BlameRank{}
	for _, t := range trackers {
		t.mu.Lock()
		p := BlamePair{
			Primary:     t.primary,
			Neighbor:    t.neighbor,
			Count:       t.count,
			Seconds:     t.seconds,
			EWMASeconds: t.ewma,
			LastSeconds: t.last,
		}
		t.mu.Unlock()
		if p.Count == 0 && p.Seconds == 0 {
			// A cell that was reset and never re-observed contributes
			// nothing; keep it out of the matrix so reports stay small.
			continue
		}
		rep.Pairs = append(rep.Pairs, p)
		accumulate(agg, p.Neighbor, p.Seconds, p.Count)
		accumulate(vic, p.Primary, p.Seconds, p.Count)
	}
	rep.Aggressors = topK(agg, b.cfg.TopK)
	rep.Victims = topK(vic, b.cfg.TopK)
	return rep
}

func accumulate(m map[int]*BlameRank, template int, seconds float64, count int64) {
	r, ok := m[template]
	if !ok {
		r = &BlameRank{Template: template}
		m[template] = r
	}
	r.Seconds += seconds
	r.Count += count
}

// topK flattens a ranking map into its top-k slice. The map is drained
// into a slice and sorted before any output is produced, so the result
// is deterministic regardless of map iteration order.
func topK(m map[int]*BlameRank, k int) []BlameRank {
	ranks := make([]BlameRank, 0, len(m))
	for _, r := range m {
		ranks = append(ranks, *r)
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].Seconds != ranks[j].Seconds {
			return ranks[i].Seconds > ranks[j].Seconds
		}
		return ranks[i].Template < ranks[j].Template
	})
	if len(ranks) > k {
		ranks = ranks[:k]
	}
	return ranks
}

// WritePrometheus renders the blame metric families in the Prometheus
// text exposition format.
func (b *Blame) WritePrometheus(w io.Writer) error { return b.reg.WritePrometheus(w) }

// ServeHTTP serves the blame report as JSON, making *Blame mountable
// directly on an http.ServeMux (the CLIs mount it at /blame beside
// /quality).
func (b *Blame) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(b.Report())
}
