package obs

import (
	"encoding/json"
	"io"
	"strings"
	"time"
)

// Chrome trace-event export: WriteTraceJSON renders a recorded event
// stream to the trace-event JSON format understood by chrome://tracing,
// Perfetto, and speedscope, so campaign and serving spans can be opened
// in a flamegraph viewer.
//
// Two timelines coexist in one file:
//
//   - Simulator events (sim.* spans) carry virtual time in Event.Value
//     (seconds); they are placed on pid 2 with one tid per simulator
//     stream, at ts = Value µs-scaled. Begin/End pairs become nested
//     "B"/"E" events.
//   - Everything else is wall-clock instrumented but the event stream
//     records only durations (absolute timestamps are deliberately
//     excluded from the canonical log). These events are laid out on
//     pid 1 as a synthetic serial timeline: a cursor advances by each
//     span's duration, Begin/End pairs nest, and spans that emit only a
//     SpanEnd (the serving calls) become "X" complete events. The
//     result is not a literal wall-clock replay — concurrent workers
//     are serialized — but it preserves durations, nesting, and order,
//     which is what a flamegraph needs.
//
// Point events become "i" instants (thread scope).

type traceArgs struct {
	Key      string  `json:"key,omitempty"`
	Template int     `json:"template,omitempty"`
	MPL      int     `json:"mpl,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Err      string  `json:"err,omitempty"`
}

func (a traceArgs) empty() bool { return a == traceArgs{} }

type traceEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	S    string     `json:"s,omitempty"`
	Args *traceArgs `json:"args,omitempty"`
}

const (
	tracePidWall = 1 // synthetic serialized wall-clock timeline
	tracePidSim  = 2 // simulator virtual-time timeline (tid = stream)
)

func traceName(ev Event) string {
	if ev.Key == "" {
		return ev.Span
	}
	return ev.Span + " " + ev.Key
}

func newTraceArgs(ev Event) *traceArgs {
	a := traceArgs{
		Key:      ev.Key,
		Template: ev.Template,
		MPL:      ev.MPL,
		Attempt:  ev.Attempt,
		Value:    ev.Value,
		Err:      ev.Err,
	}
	if a.empty() {
		return nil
	}
	return &a
}

// WriteTraceJSON renders events (e.g. Recording.Events()) as Chrome
// trace-event JSON. The output is deterministic for a deterministic
// event stream: timestamps derive only from event order, durations, and
// simulator virtual times — never from the wall clock.
func WriteTraceJSON(w io.Writer, events []Event) error {
	out := make([]traceEvent, 0, len(events))

	// Synthetic wall timeline state: a µs cursor plus a stack of open
	// Begin events for nesting.
	type open struct {
		ts   float64
		span string
	}
	var cursor float64
	var stack []open

	for _, ev := range events {
		if strings.HasPrefix(ev.Span, "sim.") {
			// Virtual-time timeline: Value is virtual seconds.
			ts := ev.Value * 1e6
			te := traceEvent{Name: ev.Span, Ts: ts, Pid: tracePidSim, Tid: ev.Stream, Args: newTraceArgs(ev)}
			switch ev.Kind {
			case SpanBegin:
				te.Ph = "B" // Value is the virtual admission time
			case SpanEnd:
				te.Ph = "E" // Value is the virtual completion time
			case Point:
				te.Ph = "i"
				te.S = "t"
			}
			out = append(out, te)
			continue
		}

		durUS := float64(ev.Dur) / float64(time.Microsecond)
		switch ev.Kind {
		case SpanBegin:
			out = append(out, traceEvent{Name: traceName(ev), Ph: "B", Ts: cursor, Pid: tracePidWall, Args: newTraceArgs(ev)})
			stack = append(stack, open{ts: cursor, span: ev.Span})
		case SpanEnd:
			if n := len(stack); n > 0 && stack[n-1].span == ev.Span {
				// Close the matching Begin: the end lands at begin+dur,
				// or at the cursor if children already pushed past it.
				end := stack[n-1].ts + durUS
				if cursor > end {
					end = cursor
				}
				stack = stack[:n-1]
				out = append(out, traceEvent{Name: traceName(ev), Ph: "E", Ts: end, Pid: tracePidWall, Args: newTraceArgs(ev)})
				cursor = end
			} else {
				// No Begin (serving-style spans): a complete event.
				out = append(out, traceEvent{Name: traceName(ev), Ph: "X", Ts: cursor, Dur: durUS, Pid: tracePidWall, Args: newTraceArgs(ev)})
				cursor += durUS
			}
		case Point:
			out = append(out, traceEvent{Name: traceName(ev), Ph: "i", Ts: cursor, Pid: tracePidWall, S: "t", Args: newTraceArgs(ev)})
		}
	}

	// Close any Begins left open (e.g. a truncated recording).
	for i := len(stack) - 1; i >= 0; i-- {
		out = append(out, traceEvent{Name: stack[i].span, Ph: "E", Ts: cursor, Pid: tracePidWall})
	}

	type traceFile struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// WriteTrace renders a Recording to Chrome trace-event JSON.
func (r *Recording) WriteTrace(w io.Writer) error {
	return WriteTraceJSON(w, r.Events())
}
