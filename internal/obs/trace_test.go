package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodedTrace mirrors the trace-event JSON for assertions.
type decodedTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		S    string  `json:"s"`
		Args *struct {
			Key      string  `json:"key"`
			Template int     `json:"template"`
			Value    float64 `json:"value"`
		} `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeTrace(t *testing.T, events []Event) decodedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	var d decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	return d
}

// TestWriteTraceWallTimeline: Begin/End pairs nest on the synthetic
// serial timeline, and End-only spans become "X" complete events that
// advance the cursor.
func TestWriteTraceWallTimeline(t *testing.T) {
	events := []Event{
		{Kind: SpanBegin, Span: SpanTrainCampaign},
		{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: 200 * time.Microsecond, Template: 71},
		{Kind: SpanEnd, Span: SpanTrainCampaign, Dur: time.Millisecond},
	}
	d := decodeTrace(t, events)
	if d.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", d.DisplayTimeUnit)
	}
	if len(d.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(d.TraceEvents), d.TraceEvents)
	}
	b, x, e := d.TraceEvents[0], d.TraceEvents[1], d.TraceEvents[2]
	if b.Ph != "B" || b.Ts != 0 || b.Pid != 1 {
		t.Errorf("begin event: %+v", b)
	}
	if x.Ph != "X" || x.Ts != 0 || x.Dur != 200 || x.Args == nil || x.Args.Template != 71 {
		t.Errorf("serving span should be a complete event at the cursor: %+v", x)
	}
	// The campaign ran 1ms but its child already pushed the cursor to
	// 200µs; the end lands at begin+dur = 1000µs.
	if e.Ph != "E" || e.Ts != 1000 {
		t.Errorf("end event: %+v", e)
	}
}

// TestWriteTraceCursorAdvances: consecutive End-only spans are laid out
// back to back, preserving order and duration.
func TestWriteTraceCursorAdvances(t *testing.T) {
	events := []Event{
		{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: 100 * time.Microsecond},
		{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: 300 * time.Microsecond},
		{Kind: Point, Span: PointQualityFeedback, Template: 2, Value: 0.12},
	}
	d := decodeTrace(t, events)
	if d.TraceEvents[0].Ts != 0 || d.TraceEvents[1].Ts != 100 {
		t.Errorf("X events not laid out serially: %+v", d.TraceEvents[:2])
	}
	pt := d.TraceEvents[2]
	if pt.Ph != "i" || pt.S != "t" || pt.Ts != 400 {
		t.Errorf("point event: %+v", pt)
	}
	if pt.Args == nil || pt.Args.Template != 2 || pt.Args.Value != 0.12 {
		t.Errorf("point args: %+v", pt.Args)
	}
}

// TestWriteTraceSimTimeline: sim.* events land on pid 2 with virtual
// timestamps from Event.Value and one tid per stream.
func TestWriteTraceSimTimeline(t *testing.T) {
	events := []Event{
		{Kind: SpanBegin, Span: "sim.query", Stream: 3, Value: 1.5},
		{Kind: SpanEnd, Span: "sim.query", Stream: 3, Value: 4.25, Dur: 2750 * time.Millisecond},
		{Kind: Point, Span: "sim.restart", Stream: 3, Value: 4.25},
	}
	d := decodeTrace(t, events)
	b, e, i := d.TraceEvents[0], d.TraceEvents[1], d.TraceEvents[2]
	if b.Ph != "B" || b.Pid != 2 || b.Tid != 3 || b.Ts != 1.5e6 {
		t.Errorf("sim begin: %+v", b)
	}
	if e.Ph != "E" || e.Ts != 4.25e6 {
		t.Errorf("sim end: %+v", e)
	}
	if i.Ph != "i" || i.S != "t" || i.Ts != 4.25e6 {
		t.Errorf("sim instant: %+v", i)
	}
}

// TestWriteTraceClosesTruncatedSpans: a recording cut off mid-span still
// yields balanced B/E pairs so viewers accept the file.
func TestWriteTraceClosesTruncatedSpans(t *testing.T) {
	d := decodeTrace(t, []Event{
		{Kind: SpanBegin, Span: SpanTrainCampaign},
		{Kind: SpanBegin, Span: SpanTrainMix, Key: "2+22"},
	})
	if len(d.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 2 begins + 2 synthetic ends: %+v", len(d.TraceEvents), d.TraceEvents)
	}
	// Innermost span closes first.
	if d.TraceEvents[2].Ph != "E" || d.TraceEvents[2].Name != SpanTrainMix {
		t.Errorf("first synthetic end: %+v", d.TraceEvents[2])
	}
	if d.TraceEvents[3].Ph != "E" || d.TraceEvents[3].Name != SpanTrainCampaign {
		t.Errorf("second synthetic end: %+v", d.TraceEvents[3])
	}
}

// TestWriteTraceDeterministic: the same event stream renders to
// identical bytes — the exporter derives every timestamp from the
// events, never from the wall clock.
func TestWriteTraceDeterministic(t *testing.T) {
	events := []Event{
		{Kind: SpanBegin, Span: SpanTrainCampaign},
		{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: 42 * time.Microsecond},
		{Kind: Point, Span: PointQualityDrift, Key: "healthy>degraded", Template: 2, Value: 0.4},
		{Kind: SpanEnd, Span: SpanTrainCampaign, Dur: time.Second},
	}
	var a, b bytes.Buffer
	if err := WriteTraceJSON(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSON(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical event streams rendered differently")
	}
}

func TestRecordingWriteTrace(t *testing.T) {
	rec := NewRecording()
	rec.Event(Event{Kind: SpanEnd, Span: SpanServePredictKnown, Dur: time.Microsecond})
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Errorf("unexpected trace output: %s", buf.String())
	}
}
