package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used
// for every span-duration histogram: exponential from 100µs to ~100s,
// wide enough for both sub-millisecond serving calls and multi-second
// simulated campaign phases.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// ServeLatencyBuckets are the bounds for serve.* span-duration series:
// DefaultLatencyBuckets with sub-microsecond bounds (100ns…50µs)
// prepended. A warm prediction span runs tens of nanoseconds, so under
// the default bounds every serving span collapsed into the first
// (100µs) bucket and the latency histograms carried no information;
// these bounds resolve the nanosecond regime while keeping the slow
// tail identical to every other span family.
var ServeLatencyBuckets = append([]float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
}, DefaultLatencyBuckets...)

// atomicFloat64 is a float64 with atomic Add/Set built on CAS over the
// IEEE-754 bits.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat64) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}
func (f *atomicFloat64) Add(delta float64) float64 {
	for {
		old := f.bits.Load()
		next := math.Float64frombits(old) + delta
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored to
// keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a floating-point metric that can move both ways.
type Gauge struct{ v atomicFloat64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative-style buckets.
// All methods are lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf after
	counts []atomic.Uint64
	sum    atomicFloat64
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot returns cumulative bucket counts aligned with bounds plus a
// final +Inf bucket.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]Bucket, len(h.bounds)+1),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{Le: le, Count: cum}
	}
	return s
}

// Bucket is one cumulative histogram bucket: Count observations ≤ Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket. Rough, but good enough for dashboards.
// Out-of-range q is clamped to [0, 1]; empty histograms and NaN q
// return 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	prevCum, prevLe := uint64(0), 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.Le, 1) {
				return prevLe
			}
			width := float64(b.Count - prevCum)
			if width == 0 {
				return b.Le
			}
			return prevLe + (b.Le-prevLe)*(rank-float64(prevCum))/width
		}
		prevCum, prevLe = b.Count, b.Le
	}
	return prevLe
}

// Snapshot is a consistent-enough copy of a Registry's state. Map keys
// are the exposition identities: `name` for unlabeled metrics and
// `name{label="value"}` for labeled ones.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 when absent), e.g.
// snap.Counter(`contender_spans_total{span="train.mix"}`).
func (s Snapshot) Counter(key string) int64 { return s.Counters[key] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(key string) float64 { return s.Gauges[key] }

// Histogram returns the named histogram snapshot (zero when absent).
func (s Snapshot) Histogram(key string) HistogramSnapshot { return s.Histograms[key] }

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

// family is one named metric with at most one label dimension; series
// maps label values ("" for the unlabeled singleton) to live metrics.
type family struct {
	name   string
	help   string
	label  string // "" means unlabeled singleton
	typ    metricType
	bounds []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any
}

func (f *family) get(labelValue string) any {
	f.mu.RLock()
	m, ok := f.series[labelValue]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[labelValue]; ok {
		return m
	}
	var m2 any
	switch f.typ {
	case typeCounter:
		m2 = &Counter{}
	case typeGauge:
		m2 = &Gauge{}
	case typeHistogram:
		m2 = newHistogram(f.bounds)
	}
	f.series[labelValue] = m2
	return m2
}

// getHist is get for histogram families with per-series bounds: the
// series is created with the given bounds when absent.
func (f *family) getHist(labelValue string, bounds []float64) any {
	f.mu.RLock()
	m, ok := f.series[labelValue]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[labelValue]; ok {
		return m
	}
	m2 := newHistogram(bounds)
	f.series[labelValue] = m2
	return m2
}

// key renders the exposition identity for a label value.
func (f *family) key(labelValue string) string {
	if f.label == "" {
		return f.name
	}
	return f.name + "{" + f.label + "=" + promEscape(labelValue) + "}"
}

// promEscape renders a label value for the Prometheus text exposition
// format: only backslash, double quote, and newline are escaped, and
// everything else — including non-ASCII UTF-8 — passes through
// verbatim. strconv.Quote is NOT format-compliant here: it escapes
// non-printable and non-ASCII runes to \xNN/\uNNNN sequences, which
// Prometheus would read as literal backslash-u text.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return `"` + v + `"`
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Registry holds named metric families. All methods are safe for
// concurrent use; registering the same name twice returns the existing
// family (a type mismatch panics — it is a programming error).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

func (r *Registry) family(name, help, label string, typ metricType, bounds []float64) *family {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.fams[name]
		if !ok {
			f = &family{name: name, help: help, label: label, typ: typ, bounds: bounds, series: map[string]any{}}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type or label", name))
	}
	return f
}

// Counter returns (registering on first use) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "", typeCounter, nil).get("").(*Counter)
}

// Gauge returns the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "", typeGauge, nil).get("").(*Gauge)
}

// Histogram returns the unlabeled histogram name with the given bucket
// bounds (DefaultLatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return r.family(name, help, "", typeHistogram, bounds).get("").(*Histogram)
}

// CounterVec declares a counter family with a single label dimension.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family name.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.family(name, help, label, typeCounter, nil)}
}

// With returns the counter for one label value.
func (v *CounterVec) With(labelValue string) *Counter { return v.f.get(labelValue).(*Counter) }

// GaugeVec declares a gauge family with a single label dimension.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.family(name, help, label, typeGauge, nil)}
}

// With returns the gauge for one label value.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.f.get(labelValue).(*Gauge) }

// HistogramVec declares a histogram family with a single label dimension.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family name
// (DefaultLatencyBuckets when bounds is nil).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &HistogramVec{r.family(name, help, label, typeHistogram, bounds)}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.get(labelValue).(*Histogram) }

// WithBuckets returns the histogram for one label value, creating the
// series with the given bucket bounds instead of the family default
// when it does not exist yet. A series that already exists keeps its
// original bounds — bounds are fixed at first observation, exactly like
// a family's. The exposition formats carry bounds per series, so
// heterogeneous families render correctly.
func (v *HistogramVec) WithBuckets(labelValue string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = v.f.bounds
	}
	return v.f.getHist(labelValue, bounds).(*Histogram)
}

// sortedFamilies returns families in name order (stable exposition).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []string {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Snapshot copies every live series. Counters, gauges, and histograms
// are read atomically per series (not transactionally across series).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, f := range r.sortedFamilies() {
		for _, lv := range f.sortedSeries() {
			key := f.key(lv)
			switch m := f.get(lv).(type) {
			case *Counter:
				snap.Counters[key] = m.Value()
			case *Gauge:
				snap.Gauges[key] = m.Value()
			case *Histogram:
				snap.Histograms[key] = m.snapshot()
			}
		}
	}
	return snap
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (v0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		typ := "counter"
		switch f.typ {
		case typeGauge:
			typ = "gauge"
		case typeHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
			return err
		}
		for _, lv := range f.sortedSeries() {
			label := ""
			if f.label != "" {
				label = "{" + f.label + "=" + promEscape(lv) + "}"
			}
			switch m := f.get(lv).(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, label, m.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, label, formatFloat(m.Value())); err != nil {
					return err
				}
			case *Histogram:
				if err := writePromHistogram(w, f, lv, m.snapshot()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, f *family, lv string, s HistogramSnapshot) error {
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.Le, 1) {
			le = formatFloat(b.Le)
		}
		var labels string
		if f.label != "" {
			labels = "{" + f.label + "=" + promEscape(lv) + ",le=" + promEscape(le) + "}"
		} else {
			labels = "{le=" + promEscape(le) + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, b.Count); err != nil {
			return err
		}
	}
	var suffix string
	if f.label != "" {
		suffix = "{" + f.label + "=" + promEscape(lv) + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		f.name, suffix, formatFloat(s.Sum), f.name, suffix, s.Count); err != nil {
		return err
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ExpvarFunc adapts the registry to expvar: publish it once with
// expvar.Publish(name, registry.ExpvarFunc()).
func (r *Registry) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}

// ServeHTTP exposes the registry in Prometheus text format, making a
// *Registry mountable directly on an http.ServeMux.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// Metrics is the canonical Observer that folds the event stream into a
// Registry:
//
//	contender_spans_total{span=...}            completed spans
//	contender_span_errors_total{span=...}      spans that ended in error
//	contender_span_duration_seconds{span=...}  latency histogram per span
//	contender_inflight_spans{span=...}         begun-but-unfinished spans
//	contender_events_total{event=...}          point events by name
//	contender_retries_total                    convenience totals for the
//	contender_quarantines_total                resilience machinery
//	contender_checkpoint_writes_total
//	contender_resumed_total
//	contender_drift_transitions_total          quality.drift points (the
//	                                           per-template breakdown
//	                                           lives in *Quality)
type Metrics struct {
	reg *Registry

	spans    *CounterVec
	spanErrs *CounterVec
	spanDur  *HistogramVec
	inflight *GaugeVec
	events   *CounterVec

	retries     *Counter
	quarantines *Counter
	checkpoints *Counter
	resumes     *Counter
	drifts      *Counter

	mu   sync.RWMutex
	open map[string]*atomic.Int64 // span -> begun-minus-ended, floored at 0
}

// NewMetrics returns a Metrics observer over a fresh Registry.
func NewMetrics() *Metrics {
	reg := NewRegistry()
	return &Metrics{
		reg:         reg,
		spans:       reg.CounterVec("contender_spans_total", "Completed spans by taxonomy name.", "span"),
		spanErrs:    reg.CounterVec("contender_span_errors_total", "Spans that ended in error, by taxonomy name.", "span"),
		spanDur:     reg.HistogramVec("contender_span_duration_seconds", "Span latency by taxonomy name.", "span", nil),
		inflight:    reg.GaugeVec("contender_inflight_spans", "Spans begun but not yet finished, by taxonomy name.", "span"),
		events:      reg.CounterVec("contender_events_total", "Point events by taxonomy name.", "event"),
		retries:     reg.Counter("contender_retries_total", "Retryable measurement failures that backed off and retried."),
		quarantines: reg.Counter("contender_quarantines_total", "Measurement sites quarantined after exhausting retries."),
		checkpoints: reg.Counter("contender_checkpoint_writes_total", "Measurements flushed to the write-through checkpoint."),
		resumes:     reg.Counter("contender_resumed_total", "Measurements replayed from a checkpoint instead of re-run."),
		drifts:      reg.Counter("contender_drift_transitions_total", "Prediction-quality drift state transitions across all templates."),
		open:        map[string]*atomic.Int64{},
	}
}

func (m *Metrics) openCount(span string) *atomic.Int64 {
	m.mu.RLock()
	c, ok := m.open[span]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.open[span]; ok {
		return c
	}
	c = &atomic.Int64{}
	m.open[span] = c
	return c
}

// Event folds one event into the registry.
func (m *Metrics) Event(ev Event) {
	switch ev.Kind {
	case SpanBegin:
		c := m.openCount(ev.Span)
		m.inflight.With(ev.Span).Set(float64(c.Add(1)))
	case SpanEnd:
		// Serving spans emit End without Begin; only decrement what was
		// actually begun so the inflight gauge never goes negative.
		c := m.openCount(ev.Span)
		for {
			cur := c.Load()
			if cur <= 0 {
				break
			}
			if c.CompareAndSwap(cur, cur-1) {
				m.inflight.With(ev.Span).Set(float64(cur - 1))
				break
			}
		}
		m.spans.With(ev.Span).Inc()
		if ev.Err != "" {
			m.spanErrs.With(ev.Span).Inc()
		}
		// serve.* spans finish in nanoseconds; give their duration
		// series sub-microsecond resolution (other spans keep the
		// family's default bounds).
		if strings.HasPrefix(ev.Span, "serve.") {
			m.spanDur.WithBuckets(ev.Span, ServeLatencyBuckets).Observe(ev.Dur.Seconds())
		} else {
			m.spanDur.With(ev.Span).Observe(ev.Dur.Seconds())
		}
	case Point:
		m.events.With(ev.Span).Inc()
		switch ev.Span {
		case PointTrainRetry:
			m.retries.Inc()
		case PointTrainQuarantine:
			m.quarantines.Inc()
		case PointTrainCheckpoint:
			m.checkpoints.Inc()
		case PointTrainResume:
			m.resumes.Inc()
		case PointQualityDrift:
			m.drifts.Inc()
		}
	}
}

// Registry exposes the underlying registry (for mounting extra series
// or custom exposition).
func (m *Metrics) Registry() *Registry { return m.reg }

// Snapshot copies the current metric state.
func (m *Metrics) Snapshot() Snapshot { return m.reg.Snapshot() }

// WritePrometheus renders the metrics in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// ServeHTTP makes *Metrics an http.Handler serving Prometheus text.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) { m.reg.ServeHTTP(w, r) }
